#pragma once

/**
 * @file
 * Journaled sweep results: every completed grid point is appended to a
 * JSONL file as a fingerprinted record, so a sweep that dies can be
 * resumed (--resume skips recorded points), split across processes or
 * machines (--shard i/N owns a deterministic grid partition) and merged
 * back into one result set that is byte-identical — same CSV/JSON, same
 * fingerprints — to an unsharded run.
 *
 * File layout (one JSON object per line):
 *   {"hermes_journal":2,"space":"<hex16>","points":N}     <- header
 *   {"i":3,"label":"...","point":"<hex16>","fp":"<hex16>",
 *    "wall":0.12,"host":[s,instrs],"stats":{...}}          <- record
 *
 * A journal holds one or more *segments* (header + records); the bench
 * harness writes one segment per runGrid() call so whole figure drivers
 * shard and resume for free, while hermes_sweep uses a single segment.
 *
 * The "stats" object is not hand-rolled: encode and decode both walk
 * the stat registry's codec plan (sim/stat_registry.hh), so a counter
 * registered there is journaled, fingerprinted and round-tripped with
 * no change in this file.
 *
 * Integrity: "space" fingerprints the entire scenario space (every
 * point's label, full registry-rendered config, traces and budget), so
 * a journal recorded for a different grid — or for the same grid under
 * changed defaults — is rejected at load. "point" pins one grid slot
 * the same way, and "fp" is statsFingerprint() of the recorded stats;
 * the loader re-derives it after decoding, which catches both file
 * corruption and encode/decode drift. Appends are a single write of a
 * complete line followed by a flush and fsync (headers too), so a
 * crash can only lose or truncate the final line — the loader
 * tolerates exactly that (a truncated *tail*, including a trailing
 * header-only segment left by a crash between beginGrid and the first
 * append) and rejects any earlier malformed line.
 */

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace hermes::sweep
{

class ResultCache;

/**
 * Identity hash of one grid point: label, every registry-rendered
 * config key=value, trace names and instruction budgets.
 */
std::uint64_t pointFingerprint(const GridPoint &point);

/** Identity hash of a whole grid (size + every pointFingerprint). */
std::uint64_t spaceFingerprint(const std::vector<GridPoint> &grid);

/** One decoded journal record. */
struct JournalRecord
{
    std::size_t index = 0;
    std::uint64_t pointFp = 0;
    PointResult result;
};

/** One header + its records, in file order. */
struct JournalSegment
{
    std::uint64_t spaceFp = 0;
    std::size_t points = 0;
    std::vector<JournalRecord> records;
};

/**
 * The journal line format version; bumped when the record layout or
 * the stats codec changes shape. The result cache stamps its entries
 * with the same version, so a codec bump invalidates both together.
 */
std::uint64_t journalFormatVersion();

/** Serialize one record as its JSONL journal line (no newline). */
std::string encodeJournalRecord(const JournalRecord &rec);

/**
 * Parse + verify one record line: the decoded stats must reproduce the
 * recorded "fp" fingerprint. Throws std::runtime_error on any defect.
 * Shared by the journal loader, the result cache and the sweep server.
 */
JournalRecord decodeJournalRecord(const std::string &line);

/**
 * Parse a journal file into segments. Structural validation only (the
 * grid match happens in validateSegment): every record must decode and
 * reproduce its recorded stats fingerprint, except that a truncated or
 * garbled *final* line is dropped with @p truncated_tail set (crash
 * mid-append). Any earlier bad line throws std::runtime_error naming
 * the line number. @p truncated_tail may be nullptr.
 */
std::vector<JournalSegment> readJournal(const std::string &path,
                                        bool *truncated_tail = nullptr);

/**
 * Check @p seg against @p grid: space fingerprint, record indices,
 * labels and per-point fingerprints. Throws std::runtime_error with a
 * "re-run without --resume" hint on any mismatch.
 */
void validateSegment(const JournalSegment &seg,
                     const std::vector<GridPoint> &grid);

/**
 * Union segments from several journals of the *same* sweep (segment k
 * of every file must share space/points). Duplicate records for a grid
 * index are fine when their stats fingerprints agree (deterministic
 * re-runs) and an error otherwise. Records come out sorted by index.
 */
std::vector<JournalSegment>
mergeSegments(const std::vector<std::vector<JournalSegment>> &files);

/** Serialize segments back to journal text (grid-index order). */
std::string journalText(const std::vector<JournalSegment> &segments);

/**
 * Crash-safe append-side of the store. The writer rewrites @p path:
 * resume flows read the old journal fully, then re-record everything
 * (resumed records land before any new simulation starts). An existing
 * file is atomically renamed to "<path>.bak" first, so even a kill in
 * the middle of the rewrite can never cost already-persisted records —
 * the worst case is re-simulating points newer than the backup.
 */
class JournalWriter
{
  public:
    /**
     * Renames any existing @p path to "<path>.bak" (replacing a stale
     * backup), then opens @p path fresh. Throws std::runtime_error if
     * either step fails.
     */
    explicit JournalWriter(const std::string &path);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Start a segment: write its header line. */
    void beginGrid(const std::vector<GridPoint> &grid);

    /**
     * Append one completed point of the current grid and flush.
     * Thread-safe; failed points (!r.ok) are not recorded.
     */
    void append(const PointResult &r);

    const std::string &path() const { return path_; }

  private:
    /** One complete line, written + flushed + fsynced (or throws). */
    void writeLine(const std::string &line);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
    const std::vector<GridPoint> *grid_ = nullptr;
};

/** Shard/resume/journal plan for one orchestrated grid run. */
struct OrchestrateOptions
{
    /** This process's slice of the grid (default: all of it). */
    ShardSpec shard;
    /**
     * Previously recorded results (e.g. a loaded + validated journal
     * segment, or a merge of several); recorded points are not
     * re-simulated. May be nullptr.
     */
    const JournalSegment *resume = nullptr;
    /**
     * Journal to append completions to; beginGrid() is called here,
     * and resumed records are re-recorded first. May be nullptr.
     */
    JournalWriter *journal = nullptr;
    /**
     * Content-addressed result store (sweep/result_cache.hh). Points
     * it already holds are loaded instead of simulated (and journaled
     * like any other completion); every point that does simulate — or
     * arrives via resume — is stored back, so overlapping grids and
     * later runs share the work. May be nullptr.
     */
    ResultCache *cache = nullptr;
};

/** Outcome of runJournaled(): full-grid results plus a presence map. */
struct OrchestratedRun
{
    /** Grid-order results; only present[i] slots hold real stats. */
    std::vector<PointResult> results;
    std::vector<bool> present;
    std::size_t simulated = 0;
    std::size_t resumed = 0;
    /** Points loaded from the result cache instead of simulated. */
    std::size_t cached = 0;
    /** Points owned by other shards (absent unless resumed). */
    std::size_t otherShard = 0;

    bool complete() const;
    std::size_t missing() const;
};

/**
 * The orchestrated sweep: skip resumed points, simulate this shard's
 * remainder with a SweepEngine built from @p engine_opts (seeds stay
 * keyed by grid index, so any shard/resume split reproduces the
 * unsharded run bit-for-bit), journal every completion as it lands.
 */
OrchestratedRun runJournaled(const SweepOptions &engine_opts,
                             const std::vector<GridPoint> &grid,
                             const OrchestrateOptions &opts);

} // namespace hermes::sweep
