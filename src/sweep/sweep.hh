#pragma once

/**
 * @file
 * Parallel experiment engine: fans a grid of (SystemConfig x trace)
 * points across hardware threads with a work-stealing pool.
 *
 * Determinism contract: each grid point simulates on exactly the seeds
 * derived from its *grid index* (never from submission order, thread id
 * or completion order), and results land in an index-addressed vector,
 * so the output is byte-identical at any thread count.
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/stat_registry.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes
{
class WarmupCache;
}

namespace hermes::sweep
{

/** One experiment: a labelled (config, traces, budget) grid point. */
struct GridPoint
{
    std::string label;
    SystemConfig config;
    /**
     * One trace per core (a single entry runs simulateOne; N entries
     * run simulateMix on an N-core config).
     */
    std::vector<TraceSpec> traces;
    SimBudget budget;
};

/** Result of one grid point, tagged with its grid index. */
struct PointResult
{
    std::size_t index = 0;
    std::string label;
    RunStats stats;
    double wallSeconds = 0;
    /** False when the point's simulation threw (stats are default). */
    bool ok = true;
};

/**
 * One shard of a deterministic grid partition: shard i of N owns every
 * grid index with index % count == index_ - 1 (1-based, so the CLI spec
 * "--shard 2/4" reads naturally). count == 1 means "the whole grid".
 */
struct ShardSpec
{
    int index = 1;
    int count = 1;
};

/**
 * Parse "i/N" (1 <= i <= N). Throws std::invalid_argument on malformed
 * specs, zero/negative counts or an out-of-range index.
 */
ShardSpec parseShardSpec(const std::string &spec);

/** How the engine derives per-point seeds. */
enum class SeedPolicy : std::uint8_t
{
    /**
     * Keep the seeds the caller put into each GridPoint (default).
     * Paired comparisons (same trace under different configs) then see
     * identical instruction streams, matching a serial run exactly.
     */
    Keep,
    /**
     * Derive config.seed from (seedBase, grid index) via splitmix64;
     * use for replication studies that want decorrelated system RNG
     * per point while staying order-independent.
     */
    PerPoint,
};

/** Called as points finish: (completed count, total, finished point). */
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const PointResult &)>;

struct SweepOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    int threads = 0;
    SeedPolicy seedPolicy = SeedPolicy::Keep;
    std::uint64_t seedBase = 1;
    /** Invoked under an internal mutex; may be empty. */
    ProgressFn onProgress;
    /**
     * Warmup checkpoint store (sim/warmup_cache.hh). Points whose
     * warmup identity is already present restore the warmed state
     * instead of re-executing the warmup window; each distinct
     * identity warms exactly once per store (per-fingerprint locks
     * cover the in-process workers, first-writer-wins covers
     * processes). Stats are unaffected either way. May be nullptr.
     */
    WarmupCache *warmupCache = nullptr;
};

/**
 * Work-stealing experiment runner. Point i of the grid always produces
 * slot i of the result vector; thread count only affects wall-clock.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /**
     * Run every grid point; returns results in grid order. The first
     * exception thrown by a point (e.g. a malformed config) is
     * rethrown on the calling thread after all workers drain.
     */
    std::vector<PointResult> run(const std::vector<GridPoint> &grid) const;

    /**
     * Run the grid points whose @p skip entry is false (an empty mask
     * skips nothing). Seeds stay keyed by *grid* index, so a point
     * simulates identically whether it runs in a full sweep, a shard
     * or a resume; skipped slots keep a default PointResult (index and
     * label filled, stats empty). Progress counts selected points only.
     */
    std::vector<PointResult> run(const std::vector<GridPoint> &grid,
                                 const std::vector<bool> &skip) const;

    /** Threads that run() will use for a grid of @p points points. */
    int effectiveThreads(std::size_t points) const;

    /** splitmix64 mix of (base, index); the PerPoint seed derivation. */
    static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);

    /**
     * True when grid index @p index belongs to @p shard. The partition
     * is deterministic in the grid index alone (round-robin), so N
     * shard runs cover every point exactly once regardless of machine,
     * thread count or launch order. A degenerate spec (count < 1 or an
     * index outside 1..count) throws std::invalid_argument rather than
     * silently mis-partitioning.
     */
    static bool inShard(std::size_t index, const ShardSpec &shard);

  private:
    SweepOptions opts_;
};

/**
 * csvHeader() plus one formatCsvRow() line per result, grid order.
 * @p with_host_perf appends the (non-deterministic) sim_mips and
 * host_seconds columns; leave it off for reproducible dumps.
 */
std::string toCsv(const std::vector<PointResult> &results,
                  bool with_host_perf = false);

/** The same dump over a registry-selected column list (--stats). */
std::string toCsv(const std::vector<PointResult> &results,
                  const std::vector<StatColumn> &columns);

/** JSON array of formatJsonRow() objects, grid order. */
std::string toJson(const std::vector<PointResult> &results,
                   bool with_host_perf = false);

/** The same dump over a registry-selected column list (--stats). */
std::string toJson(const std::vector<PointResult> &results,
                   const std::vector<StatColumn> &columns);

/**
 * FNV-1a over (index, statsFingerprint) of every result in grid order:
 * one deterministic hash for a whole sweep. A merged set of shard
 * journals must reproduce the unsharded run's value exactly — the
 * sharded CI figure job pins these in tests/golden.
 */
std::uint64_t sweepFingerprint(const std::vector<PointResult> &results);

/**
 * Wall-clock progress formatter for --progress meters: tracks its own
 * start time and renders "[done/total] label  3.2 pts/s  eta 0:41".
 * Rate and ETA appear once the first point lands.
 */
class ProgressMeter
{
  public:
    ProgressMeter();

    std::string line(std::size_t done, std::size_t total,
                     const std::string &label) const;

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace hermes::sweep
