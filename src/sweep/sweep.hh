#pragma once

/**
 * @file
 * Parallel experiment engine: fans a grid of (SystemConfig x trace)
 * points across hardware threads with a work-stealing pool.
 *
 * Determinism contract: each grid point simulates on exactly the seeds
 * derived from its *grid index* (never from submission order, thread id
 * or completion order), and results land in an index-addressed vector,
 * so the output is byte-identical at any thread count.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes::sweep
{

/** One experiment: a labelled (config, traces, budget) grid point. */
struct GridPoint
{
    std::string label;
    SystemConfig config;
    /**
     * One trace per core (a single entry runs simulateOne; N entries
     * run simulateMix on an N-core config).
     */
    std::vector<TraceSpec> traces;
    SimBudget budget;
};

/** Result of one grid point, tagged with its grid index. */
struct PointResult
{
    std::size_t index = 0;
    std::string label;
    RunStats stats;
    double wallSeconds = 0;
};

/** How the engine derives per-point seeds. */
enum class SeedPolicy : std::uint8_t
{
    /**
     * Keep the seeds the caller put into each GridPoint (default).
     * Paired comparisons (same trace under different configs) then see
     * identical instruction streams, matching a serial run exactly.
     */
    Keep,
    /**
     * Derive config.seed from (seedBase, grid index) via splitmix64;
     * use for replication studies that want decorrelated system RNG
     * per point while staying order-independent.
     */
    PerPoint,
};

/** Called as points finish: (completed count, total, finished point). */
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const PointResult &)>;

struct SweepOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    int threads = 0;
    SeedPolicy seedPolicy = SeedPolicy::Keep;
    std::uint64_t seedBase = 1;
    /** Invoked under an internal mutex; may be empty. */
    ProgressFn onProgress;
};

/**
 * Work-stealing experiment runner. Point i of the grid always produces
 * slot i of the result vector; thread count only affects wall-clock.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /**
     * Run every grid point; returns results in grid order. The first
     * exception thrown by a point (e.g. a malformed config) is
     * rethrown on the calling thread after all workers drain.
     */
    std::vector<PointResult> run(const std::vector<GridPoint> &grid) const;

    /** Threads that run() will use for a grid of @p points points. */
    int effectiveThreads(std::size_t points) const;

    /** splitmix64 mix of (base, index); the PerPoint seed derivation. */
    static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);

  private:
    SweepOptions opts_;
};

/**
 * csvHeader() plus one formatCsvRow() line per result, grid order.
 * @p with_host_perf appends the (non-deterministic) sim_mips and
 * host_seconds columns; leave it off for reproducible dumps.
 */
std::string toCsv(const std::vector<PointResult> &results,
                  bool with_host_perf = false);

/** JSON array of formatJsonRow() objects, grid order. */
std::string toJson(const std::vector<PointResult> &results,
                   bool with_host_perf = false);

} // namespace hermes::sweep
