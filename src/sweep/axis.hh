#pragma once

/**
 * @file
 * String-driven sweep axes: declare a grid dimension as a single spec
 * string ("llc.latency=30,40,50,60") and expand it into labelled
 * SystemConfigs through the parameter registry. Figure drivers compose
 * these with the bench harness instead of hand-written struct-mutation
 * lambdas, and the hermes_run CLI reuses the same parsing, so any
 * registered key is sweepable without recompiling.
 */

#include <string>
#include <vector>

#include "sim/system.hh"

namespace hermes::sweep
{

/** One parsed sweep axis: a dotted parameter key + its value list. */
struct Axis
{
    std::string key;
    std::vector<std::string> values;
};

/**
 * Parse "key=v1,v2,v3" (at least one value; empty values rejected).
 * The key is validated against the parameter registry. Throws
 * std::invalid_argument on malformed specs or unknown keys.
 */
Axis parseAxis(const std::string &spec);

/**
 * Split a comma-separated list into its entries. Empty entries — and
 * an empty @p spec — are rejected with std::invalid_argument naming
 * @p what. Shared by axis values, --mix trace lists and friends.
 */
std::vector<std::string> splitCommaList(const std::string &spec,
                                        const std::string &what);

/** A labelled configuration produced by axis expansion. */
struct ConfigPoint
{
    std::string label; ///< "key=value" ('/'-joined across axes)
    SystemConfig config;
};

/**
 * One ConfigPoint per value of @p spec applied to @p base. Every value
 * is validated (range, power-of-two, enum membership) before any
 * simulation starts.
 */
std::vector<ConfigPoint> expandAxis(const SystemConfig &base,
                                    const std::string &spec);

/**
 * Cartesian product of several axis specs over @p base; the last axis
 * varies fastest and labels join with '/'. With no specs, returns the
 * base config with an empty label.
 */
std::vector<ConfigPoint> expandGrid(const SystemConfig &base,
                                    const std::vector<std::string> &specs);

} // namespace hermes::sweep
