#pragma once

/**
 * @file
 * hermes_sweep --serve: a long-running job queue over a local unix
 * socket, so many clients share one warm result store instead of each
 * re-simulating the same grid points. A job is one grid point; its id
 * IS the point's content fingerprint (pointFingerprint hex), so
 * duplicate submissions from any number of clients collapse onto one
 * simulation, and a completed job's result is exactly a result-cache
 * entry.
 *
 * Protocol (newline-delimited text, any number of requests per
 * connection; every response is a single "ok ..." / "error ..." line):
 *
 *   submit <spec>    enqueue a scenario     -> ok <fp16> <state>
 *   poll <fp16>      job state              -> ok <fp16> <state>
 *   wait <fp16>      block until done/failed-> ok <fp16> <state>
 *   result <fp16>    completed record       -> ok <record json line>
 *   stats            server counters        -> ok k=v ...
 *   ping             liveness               -> ok pong
 *   shutdown         graceful stop          -> ok bye
 *
 * <state> is queued | running | done | failed; "poll" and "wait" of a
 * failed job append the error text. A scenario <spec> is ';'-separated
 * key=value pairs: trace=NAME[,NAME...] (one per core), plus optional
 * label= / warmup= / instrs=; every other key is a parameter-registry
 * override (see specFromPoint, which renders the full config so specs
 * round-trip through pointFingerprint exactly).
 *
 * Persistence: completed results live in the shared ResultCache
 * (atomic, fingerprint-verified entries); pending submissions are
 * fsynced to "<state>/queue.log" before the submit is acknowledged.
 * On restart the queue journal is compacted — specs whose fingerprint
 * the cache already holds are resolved, the rest re-enqueue — so a
 * kill -9 mid-grid loses at most the single simulation in flight,
 * never an acknowledged submission or a persisted result.
 */

#include <cstdint>
#include <string>

#include "sweep/result_cache.hh"
#include "sweep/sweep.hh"

namespace hermes::sweep
{

/**
 * Parse a scenario spec into a grid point (see the file comment for
 * the syntax). Throws std::invalid_argument / std::runtime_error on
 * unknown traces, bad registry keys or malformed pairs.
 */
GridPoint pointFromSpec(const std::string &spec);

/**
 * Render @p point as a spec that parses back to the identical
 * fingerprint: label/warmup/instrs/trace pairs plus every
 * registry-rendered config key. Throws std::invalid_argument if the
 * label cannot be carried (contains ';' or a newline).
 */
std::string specFromPoint(const GridPoint &point);

/**
 * One round trip against a serving hermes_sweep: connect to
 * @p socket_path, send @p request (newline appended), return the
 * single-line response. Throws std::runtime_error on connect/io
 * failure.
 */
std::string serverRequest(const std::string &socket_path,
                          const std::string &request);

struct ServeOptions
{
    std::string socketPath;
    /** Holds queue.log (and the default cache dir). */
    std::string stateDir;
    /** Simulation worker threads; 0 is allowed (accept/queue only). */
    int workers = 1;
    /** Result store shared with every other consumer. Required. */
    ResultCache *cache = nullptr;
};

/** Counters reported by the "stats" request. */
struct ServerStats
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    /** Submissions answered straight from the result cache. */
    std::size_t cacheHits = 0;
    /** Queued submissions re-enqueued from queue.log on startup. */
    std::size_t restored = 0;
};

class SweepServer
{
  public:
    /**
     * Restores persisted state (compacting queue.log) but does not
     * open the socket yet. Throws std::runtime_error on unusable
     * options or a corrupt (non-tail) queue journal.
     */
    explicit SweepServer(ServeOptions opts);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind + listen on the socket, spawn accept + worker threads. */
    void start();

    /** Stop accepting, drain threads, close + unlink the socket. */
    void stop();

    /** Block until a client sends "shutdown" (or stop() is called). */
    void waitForShutdown();

    /** Jobs currently queued or running. */
    std::size_t pending() const;

    ServerStats statsSnapshot() const;

    const std::string &socketPath() const;

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace hermes::sweep
