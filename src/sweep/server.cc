#include "sweep/server.hh"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <poll.h>
#include <sstream>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sweep/axis.hh"
#include "sweep/journal.hh"
#include "trace/resolve.hh"
#include "trace/suite.hh"

namespace hermes::sweep
{

namespace
{

/** Sweep-server defaults for specs that omit warmup=/instrs=. */
constexpr std::uint64_t kDefaultWarmup = 60'000;
constexpr std::uint64_t kDefaultInstrs = 250'000;

/** Responses are one line; fold any embedded breaks out of errors. */
std::string
oneLine(std::string s)
{
    for (char &c : s)
        if (c == '\n' || c == '\r')
            c = ' ';
    return s;
}

std::optional<std::uint64_t>
parseFpHex(const std::string &s)
{
    if (s.size() != 16)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
    if (errno != 0 || end != s.c_str() + 16)
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
fillSockaddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            "server: socket path must be 1.." +
            std::to_string(sizeof(addr.sun_path) - 1) +
            " characters; got '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

} // namespace

GridPoint
pointFromSpec(const std::string &spec)
{
    Config overrides;
    std::string label;
    bool have_label = false;
    std::vector<std::string> trace_names;
    std::uint64_t warmup = kDefaultWarmup;
    std::uint64_t instrs = kDefaultInstrs;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t next = spec.find(';', pos);
        if (next == std::string::npos)
            next = spec.size();
        const std::string part = spec.substr(pos, next - pos);
        pos = next + 1;
        if (part.empty())
            continue;
        const std::size_t eq = part.find('=');
        if (eq == 0 || eq == std::string::npos)
            throw std::invalid_argument(
                "scenario spec wants ';'-separated key=value pairs; "
                "got '" +
                part + "'");
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "label") {
            label = value;
            have_label = true;
        } else if (key == "trace") {
            for (std::string &name :
                 splitCommaList(value, "trace list"))
                trace_names.push_back(std::move(name));
        } else if (key == "warmup" || key == "instrs") {
            const auto v = parseUint64(value);
            if (!v)
                throw std::invalid_argument(
                    key + " wants a non-negative integer; got '" +
                    value + "'");
            (key == "warmup" ? warmup : instrs) = *v;
        } else {
            overrides.set(key, value);
        }
    }
    if (trace_names.empty())
        throw std::invalid_argument(
            "scenario spec needs at least one trace=NAME");

    std::vector<TraceSpec> traces;
    std::string joined;
    for (const std::string &name : trace_names) {
        traces.push_back(resolveTrace(name));
        joined += (joined.empty() ? "" : "+") + name;
    }
    // The same conventions as the CLIs: a mix implies its core count
    // unless pinned, and a single trace replicates across cores.
    if (!overrides.contains("system.cores") && traces.size() > 1)
        overrides.set("system.cores",
                      std::to_string(traces.size()));

    GridPoint p;
    p.config = SystemConfig::fromConfig(overrides);
    if (traces.size() == 1 && p.config.numCores > 1)
        traces.assign(static_cast<std::size_t>(p.config.numCores),
                      traces[0]);
    if (static_cast<int>(traces.size()) != p.config.numCores &&
        !(traces.size() == 1 && p.config.numCores == 1))
        throw std::invalid_argument(
            "got " + std::to_string(traces.size()) + " traces for a " +
            std::to_string(p.config.numCores) + "-core system");
    p.traces = std::move(traces);
    // Budgets are taken verbatim: HERMES_SIM_SCALE is applied by
    // clients before they build specs, never by the server, so one
    // server answers every client with consistent point identities.
    p.budget.warmupInstrs = warmup;
    p.budget.simInstrs = instrs;
    p.label = have_label ? label : joined;
    return p;
}

std::string
specFromPoint(const GridPoint &point)
{
    auto checked = [](const std::string &s, const char *what) {
        if (s.find(';') != std::string::npos ||
            s.find('\n') != std::string::npos ||
            s.find('\r') != std::string::npos)
            throw std::invalid_argument(
                std::string(what) +
                " cannot carry ';' or line breaks in a scenario "
                "spec: '" +
                s + "'");
        return s;
    };
    std::string spec = "label=" + checked(point.label, "label");
    spec += ";warmup=" + std::to_string(point.budget.warmupInstrs);
    spec += ";instrs=" + std::to_string(point.budget.simInstrs);
    std::string traces;
    for (const TraceSpec &t : point.traces) {
        // Trace names join into one comma-separated field, so a name
        // (e.g. a file: path) must not carry the list separator.
        if (t.name().find(',') != std::string::npos)
            throw std::invalid_argument(
                "trace name cannot carry ',' in a scenario spec: '" +
                t.name() + "'");
        traces += (traces.empty() ? "" : ",") + checked(t.name(),
                                                        "trace name");
    }
    spec += ";trace=" + traces;
    // The full registry rendering (not a delta): pointFromSpec then
    // reconstructs the identical config whatever the defaults are.
    const Config cfg = point.config.toConfig();
    for (const std::string &key : cfg.keys())
        spec += ";" + key + "=" +
                checked(cfg.getString(key).value_or(""),
                        "config value");
    return spec;
}

std::string
serverRequest(const std::string &socket_path,
              const std::string &request)
{
    sockaddr_un addr;
    fillSockaddr(socket_path, addr);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(std::string("server: socket: ") +
                                 std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("server: cannot connect to " +
                                 socket_path + ": " +
                                 std::strerror(err) +
                                 " (is hermes_sweep --serve running?)");
    }
    bool ok = writeAll(fd, request + "\n");
    std::string response;
    while (ok) {
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
        if (response.find('\n') != std::string::npos)
            break;
    }
    ::close(fd);
    const std::size_t nl = response.find('\n');
    if (!ok || nl == std::string::npos)
        throw std::runtime_error(
            "server: no response from " + socket_path + " for '" +
            request + "'");
    return response.substr(0, nl);
}

// --- the server -------------------------------------------------------

struct SweepServer::Impl
{
    enum class JobState : std::uint8_t
    {
        Queued,
        Running,
        Done,
        Failed
    };

    struct Job
    {
        std::string spec;
        GridPoint point;
        JobState state = JobState::Queued;
        PointResult result; ///< Valid when Done.
        std::string error;  ///< Valid when Failed.
    };

    ServeOptions opts;
    std::string queuePath;

    mutable std::mutex m;
    std::condition_variable cvWork; ///< Wakes workers.
    std::condition_variable cvDone; ///< Wakes "wait" + waitForShutdown.
    std::map<std::uint64_t, Job> jobs;
    std::deque<std::uint64_t> queue;
    ServerStats stats;
    bool started = false;
    bool stopping = false;
    bool shutdownRequested = false;

    int listenFd = -1;
    std::FILE *queueFile = nullptr;
    std::thread acceptThread;
    std::vector<std::thread> workerThreads;
    std::vector<std::thread> connThreads;
    /** Open connection fds; entries are closed only under m. */
    std::vector<int> connFds;

    explicit Impl(ServeOptions o) : opts(std::move(o))
    {
        if (opts.cache == nullptr)
            throw std::runtime_error(
                "server: a result cache is required");
        if (opts.workers < 0)
            throw std::runtime_error("server: negative worker count");
        if (opts.stateDir.empty())
            throw std::runtime_error("server: empty state directory");
        sockaddr_un probe;
        fillSockaddr(opts.socketPath, probe); // validates the length
        ensureDirectory(opts.stateDir);
        queuePath = opts.stateDir + "/queue.log";
        restoreQueue();
    }

    ~Impl()
    {
        stopLocked();
        if (queueFile != nullptr)
            std::fclose(queueFile);
    }

    static const char *
    stateName(JobState s)
    {
        switch (s) {
        case JobState::Queued:
            return "queued";
        case JobState::Running:
            return "running";
        case JobState::Done:
            return "done";
        case JobState::Failed:
            return "failed";
        }
        return "unknown";
    }

    /**
     * Replay queue.log: every acknowledged submission either resolves
     * from the result cache (completed before the restart) or
     * re-enqueues. The journal is then compacted to the still-pending
     * specs. Torn final lines are dropped (crash mid-append); a
     * malformed earlier line is corruption and a hard error.
     */
    void
    restoreQueue()
    {
        std::ifstream in(queuePath, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            const std::string text = buf.str();
            std::size_t pos = 0;
            std::size_t line_no = 0;
            while (pos < text.size()) {
                const std::size_t nl = text.find('\n', pos);
                const bool complete = nl != std::string::npos;
                const std::string line = text.substr(
                    pos, complete ? nl - pos : std::string::npos);
                pos = complete ? nl + 1 : text.size();
                ++line_no;
                if (line.empty())
                    continue;
                std::string why;
                try {
                    restoreLine(line);
                    continue;
                } catch (const std::exception &e) {
                    why = e.what();
                }
                if (!complete || pos >= text.size())
                    continue; // torn tail: the submit never acked
                throw std::runtime_error(
                    "server: corrupt queue journal " + queuePath +
                    " line " + std::to_string(line_no) + ": " + why);
            }
        }
        compactQueue();
    }

    void
    restoreLine(const std::string &line)
    {
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos)
            throw std::runtime_error("want '<fp16> <spec>'");
        const auto fp = parseFpHex(line.substr(0, sp));
        if (!fp)
            throw std::runtime_error("bad fingerprint");
        const std::string spec = line.substr(sp + 1);
        GridPoint point = pointFromSpec(spec);
        if (pointFingerprint(point) != *fp)
            throw std::runtime_error(
                "spec does not match its recorded fingerprint");
        if (jobs.count(*fp) != 0)
            return; // duplicate submission, already restored
        Job job;
        job.spec = spec;
        job.point = std::move(point);
        if (auto hit = opts.cache->loadByFp(*fp)) {
            job.state = JobState::Done;
            job.result = std::move(*hit);
            ++stats.cacheHits;
        } else {
            job.state = JobState::Queued;
            queue.push_back(*fp);
            ++stats.restored;
        }
        jobs.emplace(*fp, std::move(job));
    }

    /** Rewrite queue.log to the pending specs, then reopen to append. */
    void
    compactQueue()
    {
        const std::string tmp = queuePath + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (f == nullptr)
            throw std::runtime_error("server: cannot write " + tmp +
                                     ": " + std::strerror(errno));
        bool ok = true;
        for (const std::uint64_t fp : queue) {
            const Job &job = jobs.at(fp);
            const std::string line =
                fingerprintHex(fp) + " " + job.spec + "\n";
            ok &= std::fwrite(line.data(), 1, line.size(), f) ==
                  line.size();
        }
        ok = ok && std::fflush(f) == 0;
        if (ok)
            static_cast<void>(fsync(fileno(f)));
        std::fclose(f);
        if (!ok || std::rename(tmp.c_str(), queuePath.c_str()) != 0) {
            static_cast<void>(unlink(tmp.c_str()));
            throw std::runtime_error("server: cannot compact " +
                                     queuePath);
        }
        queueFile = std::fopen(queuePath.c_str(), "ab");
        if (queueFile == nullptr)
            throw std::runtime_error("server: cannot append to " +
                                     queuePath + ": " +
                                     std::strerror(errno));
    }

    /** Durable append; the submit is acked only after this returns. */
    void
    appendQueueLocked(std::uint64_t fp, const std::string &spec)
    {
        const std::string line = fingerprintHex(fp) + " " + spec + "\n";
        if (std::fwrite(line.data(), 1, line.size(), queueFile) !=
                line.size() ||
            std::fflush(queueFile) != 0)
            throw std::runtime_error("server: write failed on " +
                                     queuePath);
        static_cast<void>(fsync(fileno(queueFile)));
    }

    void
    start()
    {
        std::lock_guard<std::mutex> g(m);
        if (started)
            throw std::runtime_error("server: already started");
        sockaddr_un addr;
        fillSockaddr(opts.socketPath, addr);
        // A leftover socket file from a killed server would make bind
        // fail; only a *live* server (one that answers connect) blocks
        // the address.
        if (access(opts.socketPath.c_str(), F_OK) == 0) {
            const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (probe >= 0 &&
                ::connect(probe,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0) {
                ::close(probe);
                throw std::runtime_error(
                    "server: another server is already listening on " +
                    opts.socketPath);
            }
            if (probe >= 0)
                ::close(probe);
            static_cast<void>(unlink(opts.socketPath.c_str()));
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw std::runtime_error(std::string("server: socket: ") +
                                     std::strerror(errno));
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            const int err = errno;
            ::close(fd);
            throw std::runtime_error("server: cannot listen on " +
                                     opts.socketPath + ": " +
                                     std::strerror(err));
        }
        listenFd = fd;
        started = true;
        stopping = false;
        acceptThread = std::thread([this] { acceptLoop(); });
        for (int i = 0; i < opts.workers; ++i)
            workerThreads.emplace_back([this] { workerLoop(); });
    }

    void
    stopLocked()
    {
        {
            std::lock_guard<std::mutex> g(m);
            if (!started || stopping) {
                stopping = true;
                cvWork.notify_all();
                cvDone.notify_all();
                if (!started)
                    return;
            }
            stopping = true;
        }
        cvWork.notify_all();
        cvDone.notify_all();
        // The accept loop polls with a timeout and re-checks stopping,
        // so it exits on its own; join it before touching connFds
        // (only it appends there).
        if (acceptThread.joinable())
            acceptThread.join();
        {
            // Kick blocked reads; the fds stay open (and thus stay
            // *ours*) until their connection thread closes them.
            std::lock_guard<std::mutex> g(m);
            for (const int fd : connFds)
                static_cast<void>(::shutdown(fd, SHUT_RDWR));
        }
        for (std::thread &t : connThreads)
            if (t.joinable())
                t.join();
        for (std::thread &t : workerThreads)
            if (t.joinable())
                t.join();
        connThreads.clear();
        workerThreads.clear();
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        static_cast<void>(unlink(opts.socketPath.c_str()));
        std::lock_guard<std::mutex> g(m);
        started = false;
    }

    void
    acceptLoop()
    {
        for (;;) {
            {
                std::lock_guard<std::mutex> g(m);
                if (stopping)
                    return;
            }
            pollfd p = {};
            p.fd = listenFd;
            p.events = POLLIN;
            const int pr = ::poll(&p, 1, 200);
            if (pr <= 0)
                continue;
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                continue;
            std::lock_guard<std::mutex> g(m);
            if (stopping) {
                ::close(fd);
                return;
            }
            connFds.push_back(fd);
            connThreads.emplace_back(
                [this, fd] { connectionLoop(fd); });
        }
    }

    void
    closeConnection(int fd)
    {
        std::lock_guard<std::mutex> g(m);
        for (std::size_t i = 0; i < connFds.size(); ++i) {
            if (connFds[i] == fd) {
                connFds.erase(connFds.begin() +
                              static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        ::close(fd);
    }

    void
    connectionLoop(int fd)
    {
        std::string buf;
        for (;;) {
            std::size_t nl;
            while ((nl = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (line.empty())
                    continue;
                std::string resp;
                try {
                    resp = handleRequest(line);
                } catch (const std::exception &e) {
                    resp = "error " + oneLine(e.what());
                }
                if (!writeAll(fd, resp + "\n")) {
                    closeConnection(fd);
                    return;
                }
            }
            char chunk[4096];
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        closeConnection(fd);
    }

    std::string
    statusOf(std::uint64_t fp, const Job &job) const
    {
        std::string out =
            "ok " + fingerprintHex(fp) + " " + stateName(job.state);
        if (job.state == JobState::Failed)
            out += " " + job.error;
        return out;
    }

    std::string
    handleRequest(const std::string &line)
    {
        const std::size_t sp = line.find(' ');
        const std::string verb =
            sp == std::string::npos ? line : line.substr(0, sp);
        const std::string rest =
            sp == std::string::npos ? "" : line.substr(sp + 1);
        if (verb == "ping")
            return "ok pong";
        if (verb == "submit")
            return handleSubmit(rest);
        if (verb == "poll" || verb == "wait" || verb == "result") {
            const auto fp = parseFpHex(rest);
            if (!fp)
                return "error bad job id '" + oneLine(rest) +
                       "' (want 16 hex digits)";
            if (verb == "poll")
                return handlePoll(*fp);
            if (verb == "wait")
                return handleWait(*fp);
            return handleResult(*fp);
        }
        if (verb == "stats")
            return handleStats();
        if (verb == "shutdown") {
            std::lock_guard<std::mutex> g(m);
            shutdownRequested = true;
            cvDone.notify_all();
            return "ok bye";
        }
        return "error unknown request '" + oneLine(verb) +
               "' (want submit|poll|wait|result|stats|ping|shutdown)";
    }

    std::string
    handleSubmit(const std::string &spec)
    {
        GridPoint point = pointFromSpec(spec); // throws -> error line
        const std::uint64_t fp = pointFingerprint(point);
        std::lock_guard<std::mutex> g(m);
        ++stats.submitted;
        const auto it = jobs.find(fp);
        if (it != jobs.end())
            return statusOf(fp, it->second);
        Job job;
        job.spec = spec;
        if (auto hit = opts.cache->load(point)) {
            job.point = std::move(point);
            job.state = JobState::Done;
            job.result = std::move(*hit);
            ++stats.cacheHits;
            const std::string resp = statusOf(fp, job);
            jobs.emplace(fp, std::move(job));
            cvDone.notify_all();
            return resp;
        }
        // Ack only after the submission is durable: a restart between
        // the ack and the simulation re-enqueues it from queue.log.
        appendQueueLocked(fp, spec);
        job.point = std::move(point);
        job.state = JobState::Queued;
        jobs.emplace(fp, std::move(job));
        queue.push_back(fp);
        cvWork.notify_one();
        return "ok " + fingerprintHex(fp) + " queued";
    }

    std::string
    handlePoll(std::uint64_t fp)
    {
        std::lock_guard<std::mutex> g(m);
        const auto it = jobs.find(fp);
        if (it != jobs.end())
            return statusOf(fp, it->second);
        // A compacted restart forgets finished jobs; their results
        // still live in the store, which is the durable answer.
        if (opts.cache->loadByFp(fp))
            return "ok " + fingerprintHex(fp) + " done";
        return "error unknown job " + fingerprintHex(fp);
    }

    std::string
    handleWait(std::uint64_t fp)
    {
        std::unique_lock<std::mutex> lock(m);
        const auto it = jobs.find(fp);
        if (it == jobs.end()) {
            if (opts.cache->loadByFp(fp))
                return "ok " + fingerprintHex(fp) + " done";
            return "error unknown job " + fingerprintHex(fp);
        }
        cvDone.wait(lock, [&] {
            const Job &job = jobs.at(fp);
            return stopping || job.state == JobState::Done ||
                   job.state == JobState::Failed;
        });
        const Job &job = jobs.at(fp);
        if (job.state != JobState::Done &&
            job.state != JobState::Failed)
            return "error server shutting down";
        return statusOf(fp, job);
    }

    std::string
    handleResult(std::uint64_t fp)
    {
        std::lock_guard<std::mutex> g(m);
        const auto it = jobs.find(fp);
        if (it != jobs.end()) {
            const Job &job = it->second;
            if (job.state == JobState::Failed)
                return "error job failed: " + oneLine(job.error);
            if (job.state != JobState::Done)
                return "error job not finished (" +
                       std::string(stateName(job.state)) + ")";
            JournalRecord rec;
            rec.index = 0;
            rec.pointFp = fp;
            rec.result = job.result;
            rec.result.index = 0;
            return "ok " + encodeJournalRecord(rec);
        }
        if (auto hit = opts.cache->loadByFp(fp)) {
            JournalRecord rec;
            rec.index = 0;
            rec.pointFp = fp;
            rec.result = std::move(*hit);
            return "ok " + encodeJournalRecord(rec);
        }
        return "error unknown job " + fingerprintHex(fp);
    }

    std::string
    handleStats()
    {
        std::lock_guard<std::mutex> g(m);
        std::size_t pending_jobs = 0;
        for (const auto &[fp, job] : jobs) {
            static_cast<void>(fp);
            if (job.state == JobState::Queued ||
                job.state == JobState::Running)
                ++pending_jobs;
        }
        return "ok submitted=" + std::to_string(stats.submitted) +
               " completed=" + std::to_string(stats.completed) +
               " failed=" + std::to_string(stats.failed) +
               " cache_hits=" + std::to_string(stats.cacheHits) +
               " restored=" + std::to_string(stats.restored) +
               " pending=" + std::to_string(pending_jobs) +
               " workers=" + std::to_string(opts.workers);
    }

    void
    workerLoop()
    {
        for (;;) {
            std::unique_lock<std::mutex> lock(m);
            cvWork.wait(lock,
                        [&] { return stopping || !queue.empty(); });
            if (stopping)
                return;
            const std::uint64_t fp = queue.front();
            queue.pop_front();
            jobs.at(fp).state = JobState::Running;
            const GridPoint point = jobs.at(fp).point;
            lock.unlock();

            PointResult r;
            r.index = 0;
            r.label = point.label;
            std::string error;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                r.stats = point.traces.size() == 1 &&
                                  point.config.numCores == 1
                              ? simulateOne(point.config,
                                            point.traces[0],
                                            point.budget)
                              : simulateMix(point.config, point.traces,
                                            point.budget);
            } catch (const std::exception &e) {
                error = e.what();
            }
            r.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            lock.lock();
            Job &job = jobs.at(fp);
            if (error.empty()) {
                // Persist first: once a client sees "done" the result
                // must survive a restart.
                try {
                    opts.cache->store(point, r);
                } catch (const std::exception &e) {
                    error = e.what();
                }
            }
            if (error.empty()) {
                job.result = std::move(r);
                job.state = JobState::Done;
                ++stats.completed;
            } else {
                job.error = oneLine(error);
                job.state = JobState::Failed;
                ++stats.failed;
            }
            cvDone.notify_all();
        }
    }
};

SweepServer::SweepServer(ServeOptions opts)
    : impl_(new Impl(std::move(opts)))
{
}

SweepServer::~SweepServer()
{
    delete impl_;
}

void
SweepServer::start()
{
    impl_->start();
}

void
SweepServer::stop()
{
    impl_->stopLocked();
}

void
SweepServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(impl_->m);
    impl_->cvDone.wait(lock, [this] {
        return impl_->shutdownRequested || impl_->stopping;
    });
}

std::size_t
SweepServer::pending() const
{
    std::lock_guard<std::mutex> g(impl_->m);
    std::size_t n = 0;
    for (const auto &[fp, job] : impl_->jobs) {
        static_cast<void>(fp);
        if (job.state == Impl::JobState::Queued ||
            job.state == Impl::JobState::Running)
            ++n;
    }
    return n;
}

ServerStats
SweepServer::statsSnapshot() const
{
    std::lock_guard<std::mutex> g(impl_->m);
    return impl_->stats;
}

const std::string &
SweepServer::socketPath() const
{
    return impl_->opts.socketPath;
}

} // namespace hermes::sweep
