#pragma once

/**
 * @file
 * Content-addressed result store: a directory holding one file per
 * completed grid point, named by the point's identity fingerprint
 * (pointFingerprint over label + full registry-rendered config +
 * traces + budget). Any sweep — hermes_sweep, hermes_run, a bench
 * driver, a CI shard — that reaches the same point loads the recorded
 * result instead of simulating, so overlapping figure grids and
 * repeated runs share one warm store.
 *
 * Entry layout ("<hex16>.rec", two journal-format lines):
 *   {"hermes_result_cache":V,"point":"<hex16>"}   <- version + key echo
 *   {"i":0,"label":...,"fp":...,"stats":{...}}    <- journal record
 *
 * V is journalFormatVersion(): a stats-codec bump invalidates cache
 * entries and journals together. The record's grid index is stored as
 * 0 (an entry is grid-independent); load() rewrites it for the caller.
 *
 * Trust model: every load re-derives the record's stats fingerprint
 * (decodeJournalRecord) and re-checks the filename / header / record
 * point fingerprints against each other — a corrupt or stale entry is
 * unlinked and reported as a miss, never returned. Determinism makes
 * concurrent writers safe: two processes storing the same point write
 * identical stats, and each store is an atomic tmp-file rename, so
 * readers always see a complete entry.
 *
 * Size is LRU-bounded (by mtime; hits touch it): after a store grows
 * the directory past max_bytes / max_entries, the oldest entries are
 * evicted until it fits. Both limits default to unbounded.
 *
 * Deliberately NOT part of the parameter registry: registry keys are
 * rendered into every point's fingerprint, so a cache knob there would
 * change point identity and invalidate the store it configures. The
 * cache is addressed by CLI flag (--cache SPEC) or environment
 * (HERMES_RESULT_CACHE) instead; see parseResultCacheSpec().
 */

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "sweep/journal.hh"
#include "sweep/sweep.hh"

namespace hermes::sweep
{

/** Where the store lives and how big it may grow (0 = unbounded). */
struct ResultCacheConfig
{
    std::string dir;
    std::uint64_t maxBytes = 0;
    std::uint64_t maxEntries = 0;
};

/**
 * Parse "DIR[,max_bytes=SIZE][,max_entries=N]" (the --cache flag and
 * HERMES_RESULT_CACHE syntax; SIZE takes K/M/G suffixes). Throws
 * std::invalid_argument on malformed specs.
 */
ResultCacheConfig parseResultCacheSpec(const std::string &spec);

/** mkdir -p. Throws std::runtime_error when a component can't be made. */
void ensureDirectory(const std::string &path);

/** Hit/miss/housekeeping counters for one ResultCache instance. */
struct ResultCacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Entries written (stores of already-present points are free). */
    std::size_t stores = 0;
    /** Corrupt/stale entries unlinked during load(). */
    std::size_t rejected = 0;
    std::size_t evicted = 0;
};

/** The store itself. Thread-safe; one instance per process is enough. */
class ResultCache
{
  public:
    /** Opens (mkdir -p) the directory. Throws std::runtime_error. */
    explicit ResultCache(ResultCacheConfig cfg);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look @p point up. A hit returns the verified result (index 0 —
     * the caller assigns its grid index) and refreshes the entry's LRU
     * clock; a corrupt entry is unlinked and counts as a miss.
     */
    std::optional<PointResult> load(const GridPoint &point);

    /**
     * Look a point up by fingerprint alone (the server's poll path,
     * where only the job id survives a restart). Same verification
     * minus the caller-side label/config cross-check.
     */
    std::optional<PointResult> loadByFp(std::uint64_t point_fp);

    /**
     * Persist @p r under @p point's fingerprint: write to a tmp file,
     * fsync, atomically rename, evict past the budget. Failed results
     * (!r.ok) and already-present points are skipped.
     */
    void store(const GridPoint &point, const PointResult &r);

    const std::string &dir() const { return cfg_.dir; }
    const ResultCacheStats &stats() const { return stats_; }

    /** Live count of "*.rec" entries (rescans the directory). */
    std::size_t entryCount() const;

    /** Entry filename for a point fingerprint: "<hex16>.rec". */
    static std::string entryName(std::uint64_t point_fp);

  private:
    std::optional<PointResult> loadLocked(std::uint64_t point_fp,
                                          const GridPoint *point);
    void evictToBudgetLocked();

    ResultCacheConfig cfg_;
    mutable std::mutex mutex_;
    ResultCacheStats stats_;
};

} // namespace hermes::sweep
