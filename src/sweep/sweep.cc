#include "sweep/sweep.hh"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/report.hh"

namespace hermes::sweep
{

namespace
{

/**
 * A mutex-guarded deque of grid indices per worker. Owners pop from the
 * back (LIFO keeps the hot point's memory warm); thieves steal from the
 * front (FIFO steals the largest remaining chunk of the round-robin
 * distribution first).
 */
class StealQueue
{
  public:
    void
    push(std::size_t v)
    {
        std::lock_guard<std::mutex> g(m_);
        q_.push_back(v);
    }

    bool
    popBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(m_);
        if (q_.empty())
            return false;
        out = q_.back();
        q_.pop_back();
        return true;
    }

    bool
    stealFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(m_);
        if (q_.empty())
            return false;
        out = q_.front();
        q_.pop_front();
        return true;
    }

  private:
    std::mutex m_;
    std::deque<std::size_t> q_;
};

RunStats
simulatePoint(const GridPoint &point, std::uint64_t seed,
              SeedPolicy policy)
{
    GridPoint p = point;
    if (policy == SeedPolicy::PerPoint)
        p.config.seed = seed;
    if (p.traces.size() == 1 && p.config.numCores == 1)
        return simulateOne(p.config, p.traces[0], p.budget);
    return simulateMix(p.config, p.traces, p.budget);
}

} // namespace

SweepEngine::SweepEngine(SweepOptions opts) : opts_(std::move(opts)) {}

std::uint64_t
SweepEngine::pointSeed(std::uint64_t base, std::size_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

int
SweepEngine::effectiveThreads(std::size_t points) const
{
    int t = opts_.threads;
    if (t <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        t = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(t) > points)
        t = static_cast<int>(points ? points : 1);
    return t;
}

std::vector<PointResult>
SweepEngine::run(const std::vector<GridPoint> &grid) const
{
    const std::size_t n = grid.size();
    std::vector<PointResult> results(n);
    if (n == 0)
        return results;

    const int threads = effectiveThreads(n);

    std::size_t done = 0; ///< Guarded by progress_mutex.
    std::mutex progress_mutex;
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto run_one = [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        PointResult r;
        r.index = i;
        r.label = grid[i].label;
        try {
            r.stats = simulatePoint(
                grid[i], pointSeed(opts_.seedBase, i), opts_.seedPolicy);
        } catch (...) {
            std::lock_guard<std::mutex> g(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
        r.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        results[i] = std::move(r);
        if (opts_.onProgress) {
            // Count and report under one lock so the done counter is
            // monotonic in callback order (the final done==total call
            // really is the last one).
            std::lock_guard<std::mutex> g(progress_mutex);
            opts_.onProgress(++done, n, results[i]);
        }
    };

    if (threads == 1) {
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
    } else {
        // Round-robin initial distribution, then work stealing.
        std::vector<StealQueue> queues(threads);
        for (std::size_t i = 0; i < n; ++i)
            queues[i % threads].push(i);

        auto worker = [&](int id) {
            std::size_t i;
            for (;;) {
                if (queues[id].popBack(i)) {
                    run_one(i);
                    continue;
                }
                bool stole = false;
                for (int v = 1; v < threads && !stole; ++v)
                    stole = queues[(id + v) % threads].stealFront(i);
                if (!stole)
                    return;
                run_one(i);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

std::string
toCsv(const std::vector<PointResult> &results, bool with_host_perf)
{
    std::string out = csvHeader(with_host_perf) + "\n";
    for (const auto &r : results)
        out += formatCsvRow(r.label, r.stats, with_host_perf) + "\n";
    return out;
}

std::string
toJson(const std::vector<PointResult> &results, bool with_host_perf)
{
    std::string out = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ",";
        out += "\n  " + formatJsonRow(results[i].label, results[i].stats,
                                      with_host_perf);
    }
    out += results.empty() ? "]" : "\n]";
    return out;
}

} // namespace hermes::sweep
