#include "sweep/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/config.hh"
#include "sim/report.hh"
#include "sim/warmup_cache.hh"

namespace hermes::sweep
{

namespace
{

/**
 * A mutex-guarded deque of grid indices per worker. Owners pop from the
 * back (LIFO keeps the hot point's memory warm); thieves steal from the
 * front (FIFO steals the largest remaining chunk of the round-robin
 * distribution first).
 */
class StealQueue
{
  public:
    void
    push(std::size_t v)
    {
        std::lock_guard<std::mutex> g(m_);
        q_.push_back(v);
    }

    bool
    popBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(m_);
        if (q_.empty())
            return false;
        out = q_.back();
        q_.pop_back();
        return true;
    }

    bool
    stealFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(m_);
        if (q_.empty())
            return false;
        out = q_.front();
        q_.pop_front();
        return true;
    }

  private:
    std::mutex m_;
    std::deque<std::size_t> q_;
};

RunStats
simulatePoint(const GridPoint &point, std::uint64_t seed,
              SeedPolicy policy, WarmupCache *warmup_cache)
{
    GridPoint p = point;
    if (policy == SeedPolicy::PerPoint)
        p.config.seed = seed;
    // Grid builders emit fully-specified trace lists, so unlike the
    // simulate() shim (which replicates a lone trace across cores) a
    // count mismatch here is a caller bug and must propagate.
    if (p.traces.size() != static_cast<std::size_t>(p.config.numCores) &&
        !(p.traces.size() == 1 && p.config.numCores == 1))
        throw std::invalid_argument("need one trace per core");
    // The session path is stats-identical to the legacy
    // simulateOne/simulateMix shims; the cache only short-circuits the
    // warmup window (fingerprint-keyed, so a PerPoint seed policy
    // yields per-point identities and simply never shares).
    SimSession session(p.config, p.traces, p.budget);
    return runSession(session, warmup_cache);
}

} // namespace

ShardSpec
parseShardSpec(const std::string &spec)
{
    const auto slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= spec.size())
        throw std::invalid_argument(
            "shard spec must look like i/N (e.g. 2/4); got '" + spec +
            "'");
    const auto idx = parseInt64(spec.substr(0, slash));
    const auto count = parseInt64(spec.substr(slash + 1));
    if (!idx || !count)
        throw std::invalid_argument(
            "shard spec must be two integers i/N; got '" + spec + "'");
    if (*count < 1)
        throw std::invalid_argument(
            "shard count must be at least 1; got '" + spec + "'");
    // Bound before the int narrowing: a count past INT_MAX would wrap
    // into a nonsense (possibly negative) partition.
    if (*count > std::numeric_limits<int>::max())
        throw std::invalid_argument(
            "shard count is out of range; got '" + spec + "'");
    if (*idx < 1 || *idx > *count)
        throw std::invalid_argument(
            "shard index must be in 1..N; got '" + spec + "'");
    return ShardSpec{static_cast<int>(*idx), static_cast<int>(*count)};
}

SweepEngine::SweepEngine(SweepOptions opts) : opts_(std::move(opts)) {}

bool
SweepEngine::inShard(std::size_t index, const ShardSpec &shard)
{
    // parseShardSpec() can't produce a degenerate spec, but a
    // hand-built one could: count < 1 would silently mean "the whole
    // grid" N times over, and an out-of-range index would make the
    // shard own nothing — both quietly corrupt a partition, so they
    // are hard errors here.
    if (shard.count < 1 || shard.index < 1 ||
        shard.index > shard.count)
        throw std::invalid_argument(
            "shard spec out of range: " + std::to_string(shard.index) +
            "/" + std::to_string(shard.count));
    if (shard.count == 1)
        return true;
    return index % static_cast<std::size_t>(shard.count) ==
           static_cast<std::size_t>(shard.index - 1);
}

std::uint64_t
SweepEngine::pointSeed(std::uint64_t base, std::size_t index)
{
    std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

int
SweepEngine::effectiveThreads(std::size_t points) const
{
    int t = opts_.threads;
    if (t <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        t = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(t) > points)
        t = static_cast<int>(points ? points : 1);
    return t;
}

std::vector<PointResult>
SweepEngine::run(const std::vector<GridPoint> &grid) const
{
    return run(grid, {});
}

std::vector<PointResult>
SweepEngine::run(const std::vector<GridPoint> &grid,
                 const std::vector<bool> &skip) const
{
    const std::size_t n = grid.size();
    if (!skip.empty() && skip.size() != n)
        throw std::invalid_argument(
            "skip mask size does not match the grid");

    std::vector<PointResult> results(n);
    std::vector<std::size_t> selected;
    selected.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Skipped slots still carry their identity so callers can
        // label and re-plan them without consulting the grid again.
        results[i].index = i;
        results[i].label = grid[i].label;
        if (skip.empty() || !skip[i])
            selected.push_back(i);
    }
    const std::size_t todo = selected.size();
    if (todo == 0)
        return results;

    const int threads = effectiveThreads(todo);

    std::size_t done = 0; ///< Guarded by progress_mutex.
    std::mutex progress_mutex;
    std::mutex error_mutex;
    std::exception_ptr first_error;
    // Once any point (or its journaling) fails the whole run is going
    // to rethrow, so don't burn hours simulating results that will be
    // discarded: in-flight points finish, queued ones are abandoned.
    std::atomic<bool> stop{false};

    auto record_error = [&] {
        std::lock_guard<std::mutex> g(error_mutex);
        if (!first_error)
            first_error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
    };

    auto run_one = [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        PointResult r;
        r.index = i;
        r.label = grid[i].label;
        try {
            r.stats = simulatePoint(grid[i],
                                    pointSeed(opts_.seedBase, i),
                                    opts_.seedPolicy, opts_.warmupCache);
        } catch (...) {
            r.ok = false;
            record_error();
        }
        r.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        results[i] = std::move(r);
        if (opts_.onProgress) {
            // Count and report under one lock so the done counter is
            // monotonic in callback order (the final done==total call
            // really is the last one). A throwing callback (e.g. a
            // journal append hitting a full disk) must not escape a
            // worker thread; it surfaces as the run's exception.
            std::lock_guard<std::mutex> g(progress_mutex);
            try {
                opts_.onProgress(++done, todo, results[i]);
            } catch (...) {
                record_error();
            }
        }
    };

    if (threads == 1) {
        for (std::size_t i : selected) {
            if (stop.load(std::memory_order_relaxed))
                break;
            run_one(i);
        }
    } else {
        // Round-robin initial distribution, then work stealing.
        std::vector<StealQueue> queues(threads);
        for (std::size_t k = 0; k < todo; ++k)
            queues[k % threads].push(selected[k]);

        auto worker = [&](int id) {
            std::size_t i;
            for (;;) {
                if (stop.load(std::memory_order_relaxed))
                    return;
                if (queues[id].popBack(i)) {
                    run_one(i);
                    continue;
                }
                bool stole = false;
                for (int v = 1; v < threads && !stole; ++v)
                    stole = queues[(id + v) % threads].stealFront(i);
                if (!stole)
                    return;
                run_one(i);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

std::string
toCsv(const std::vector<PointResult> &results,
      const std::vector<StatColumn> &columns)
{
    std::string out = csvHeader(columns) + "\n";
    for (const auto &r : results)
        out += formatCsvRow(r.label, r.stats, columns) + "\n";
    return out;
}

std::string
toCsv(const std::vector<PointResult> &results, bool with_host_perf)
{
    return toCsv(results, defaultStatColumns(with_host_perf));
}

std::string
toJson(const std::vector<PointResult> &results,
       const std::vector<StatColumn> &columns)
{
    std::string out = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ",";
        out += "\n  " + formatJsonRow(results[i].label, results[i].stats,
                                      columns);
    }
    out += results.empty() ? "]" : "\n]";
    return out;
}

std::string
toJson(const std::vector<PointResult> &results, bool with_host_perf)
{
    return toJson(results, defaultStatColumns(with_host_perf));
}

std::uint64_t
sweepFingerprint(const std::vector<PointResult> &results)
{
    Fnv64 h;
    for (const PointResult &r : results) {
        h.add(r.index);
        h.add(statsFingerprint(r.stats));
    }
    return h.value();
}

ProgressMeter::ProgressMeter() : start_(std::chrono::steady_clock::now())
{
}

std::string
ProgressMeter::line(std::size_t done, std::size_t total,
                    const std::string &label) const
{
    char buf[160];
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (done == 0 || elapsed <= 0) {
        std::snprintf(buf, sizeof(buf), "[%zu/%zu] %-40.40s", done,
                      total, label.c_str());
        return buf;
    }
    const double rate = static_cast<double>(done) / elapsed;
    const double eta_s =
        rate > 0 ? static_cast<double>(total - done) / rate : 0;
    const long eta = static_cast<long>(eta_s + 0.5);
    std::snprintf(buf, sizeof(buf),
                  "[%zu/%zu] %-40.40s %6.1f pts/s  eta %ld:%02ld", done,
                  total, label.c_str(), rate, eta / 60, eta % 60);
    return buf;
}

} // namespace hermes::sweep
