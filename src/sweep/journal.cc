#include "sweep/journal.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unistd.h>

#include "common/config.hh"
#include "sim/report.hh"
#include "sim/stat_registry.hh"
#include "sweep/result_cache.hh"

namespace hermes::sweep
{

namespace
{

/**
 * Journal format version. 2: the stats object is the registry codec
 * plan's layout ("dram" split into dram/hermes sections, "cfg"
 * configuration echoes added); version-1 journals (hand-rolled
 * 14-element "dram" array) are rejected with a clear version error
 * rather than a misleading decode failure.
 */
constexpr std::uint64_t kJournalVersion = 2;

std::string
formatDouble(double v)
{
    // max_digits10: the decimal round trip is exact for IEEE doubles.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// --- encoding ---------------------------------------------------------

/**
 * Serialize every raw counter of @p s by walking the stat registry's
 * codec plan: scalars as "name":value, per-core groups as
 * array-of-arrays (flat for single-statistic groups), scalar sections
 * as flat arrays. A counter registered in sim/stat_registry.cc is
 * journaled with no further work here.
 */
std::string
encodeStats(const RunStats &s)
{
    std::string out = "{";
    bool first_item = true;
    for (const StatCodecItem &item :
         StatRegistry::instance().codecPlan()) {
        if (!first_item)
            out += ',';
        first_item = false;
        out += '"' + item.name + "\":";
        switch (item.kind) {
        case StatCodecItem::Kind::Scalar:
            out += std::to_string(item.defs[0]->getU64(s));
            break;
        case StatCodecItem::Kind::Group: {
            const std::size_t n = item.count(s);
            out += '[';
            for (std::size_t i = 0; i < n; ++i) {
                if (i)
                    out += ',';
                if (item.defs.size() == 1) {
                    out += std::to_string(item.defs[0]->getAtU64(s, i));
                    continue;
                }
                out += '[';
                for (std::size_t j = 0; j < item.defs.size(); ++j)
                    out += (j ? "," : "") +
                           std::to_string(item.defs[j]->getAtU64(s, i));
                out += ']';
            }
            out += ']';
            break;
        }
        case StatCodecItem::Kind::Section:
            out += '[';
            for (std::size_t j = 0; j < item.defs.size(); ++j)
                out += (j ? "," : "") +
                       std::to_string(item.defs[j]->getU64(s));
            out += ']';
            break;
        }
    }
    out += '}';
    return out;
}

std::string
encodeHeader(std::uint64_t space_fp, std::size_t points)
{
    return "{\"hermes_journal\":" + std::to_string(kJournalVersion) +
           ",\"space\":\"" +
           fingerprintHex(space_fp) +
           "\",\"points\":" + std::to_string(points) + "}";
}

std::string
encodeRecord(const JournalRecord &rec)
{
    const PointResult &r = rec.result;
    std::string out = "{\"i\":" + std::to_string(rec.index);
    out += ",\"label\":\"" + jsonEscape(r.label) + "\"";
    out += ",\"point\":\"" + fingerprintHex(rec.pointFp) + "\"";
    out += ",\"fp\":\"" + fingerprintHex(statsFingerprint(r.stats)) +
           "\"";
    out += ",\"wall\":" + formatDouble(r.wallSeconds);
    out += ",\"host\":[" + formatDouble(r.stats.hostPerf.seconds) + "," +
           std::to_string(r.stats.hostPerf.instrs) + "]";
    out += ",\"stats\":" + encodeStats(r.stats);
    out += '}';
    return out;
}

// --- a minimal JSON parser (only what the journal itself emits) ------

struct Jv
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string scalar; ///< Number text (exact) or decoded string.
    std::vector<Jv> items;
    std::vector<std::pair<std::string, Jv>> fields;

    const Jv *
    find(const char *key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }
};

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("journal: " + what);
}

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    Jv
    parse()
    {
        Jv v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of line");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Jv
    value()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return Jv{};
        }
        return number();
    }

    Jv
    object()
    {
        Jv v;
        v.kind = Jv::Kind::Obj;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            Jv key = string();
            skipWs();
            expect(':');
            v.fields.emplace_back(std::move(key.scalar), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Jv
    array()
    {
        Jv v;
        v.kind = Jv::Kind::Arr;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Jv
    string()
    {
        Jv v;
        v.kind = Jv::Kind::Str;
        expect('"');
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.scalar += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"':
                v.scalar += '"';
                break;
            case '\\':
                v.scalar += '\\';
                break;
            case '/':
                v.scalar += '/';
                break;
            case 'n':
                v.scalar += '\n';
                break;
            case 't':
                v.scalar += '\t';
                break;
            case 'r':
                v.scalar += '\r';
                break;
            case 'b':
                v.scalar += '\b';
                break;
            case 'f':
                v.scalar += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                const std::string hex = s_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const unsigned long cp =
                    std::strtoul(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4 || cp > 0xFF)
                    fail("unsupported \\u escape '" + hex + "'");
                v.scalar += static_cast<char>(cp);
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    Jv
    boolean()
    {
        Jv v;
        v.kind = Jv::Kind::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    void
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            fail("bad literal");
        pos_ += n;
    }

    Jv
    number()
    {
        Jv v;
        v.kind = Jv::Kind::Num;
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        v.scalar = s_.substr(start, pos_ - start);
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::uint64_t
asU64(const Jv &v)
{
    if (v.kind != Jv::Kind::Num)
        fail("expected an integer");
    const auto parsed = parseUint64(v.scalar);
    if (!parsed)
        fail("bad integer '" + v.scalar + "'");
    return *parsed;
}

double
asDouble(const Jv &v)
{
    if (v.kind != Jv::Kind::Num)
        fail("expected a number");
    const auto parsed = parseFiniteDouble(v.scalar);
    if (!parsed)
        fail("bad number '" + v.scalar + "'");
    return *parsed;
}

const Jv &
member(const Jv &obj, const char *key)
{
    if (obj.kind != Jv::Kind::Obj)
        fail("expected an object");
    const Jv *v = obj.find(key);
    if (v == nullptr)
        fail(std::string("missing key '") + key + "'");
    return *v;
}

std::uint64_t
asHexFp(const Jv &v)
{
    if (v.kind != Jv::Kind::Str || v.scalar.size() != 16)
        fail("expected a 16-hex-digit fingerprint");
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed =
        std::strtoull(v.scalar.c_str(), &end, 16);
    if (errno != 0 || end != v.scalar.c_str() + 16)
        fail("bad fingerprint '" + v.scalar + "'");
    return parsed;
}

/**
 * The inverse plan walk: every raw counter decodes through its
 * registry setter, and the record-level fingerprint re-check in
 * decodeRecord() catches any encode/decode drift.
 */
RunStats
decodeStats(const Jv &obj)
{
    RunStats s;
    for (const StatCodecItem &item :
         StatRegistry::instance().codecPlan()) {
        const Jv &v = member(obj, item.name.c_str());
        switch (item.kind) {
        case StatCodecItem::Kind::Scalar:
            item.defs[0]->setU64(s, asU64(v));
            break;
        case StatCodecItem::Kind::Group: {
            if (v.kind != Jv::Kind::Arr)
                fail("bad " + item.name + " array");
            item.resize(s, v.items.size());
            for (std::size_t i = 0; i < v.items.size(); ++i) {
                if (item.defs.size() == 1) {
                    item.defs[0]->setAtU64(s, i, asU64(v.items[i]));
                    continue;
                }
                const Jv &e = v.items[i];
                if (e.kind != Jv::Kind::Arr ||
                    e.items.size() != item.defs.size())
                    fail("bad " + item.name + " array");
                for (std::size_t j = 0; j < item.defs.size(); ++j)
                    item.defs[j]->setAtU64(s, i, asU64(e.items[j]));
            }
            break;
        }
        case StatCodecItem::Kind::Section:
            if (v.kind != Jv::Kind::Arr ||
                v.items.size() != item.defs.size())
                fail("bad " + item.name + " array");
            for (std::size_t j = 0; j < item.defs.size(); ++j)
                item.defs[j]->setU64(s, asU64(v.items[j]));
            break;
        }
    }
    return s;
}

JournalRecord
decodeRecord(const Jv &obj)
{
    JournalRecord rec;
    rec.index = asU64(member(obj, "i"));
    rec.pointFp = asHexFp(member(obj, "point"));

    PointResult &r = rec.result;
    const Jv &label = member(obj, "label");
    if (label.kind != Jv::Kind::Str)
        fail("bad label");
    r.index = rec.index;
    r.label = label.scalar;
    r.wallSeconds = asDouble(member(obj, "wall"));

    const Jv &host = member(obj, "host");
    if (host.kind != Jv::Kind::Arr || host.items.size() != 2)
        fail("bad host array");

    r.stats = decodeStats(member(obj, "stats"));
    r.stats.hostPerf.seconds = asDouble(host.items[0]);
    r.stats.hostPerf.instrs = asU64(host.items[1]);

    // The recorded fingerprint must match the decoded stats: this
    // catches flipped bytes in the file and any codec drift.
    const std::uint64_t recorded = asHexFp(member(obj, "fp"));
    if (statsFingerprint(r.stats) != recorded)
        fail("record fingerprint mismatch (corrupt record for grid "
             "index " +
             std::to_string(rec.index) + ")");
    return rec;
}

} // namespace

std::uint64_t
journalFormatVersion()
{
    return kJournalVersion;
}

std::string
encodeJournalRecord(const JournalRecord &rec)
{
    return encodeRecord(rec);
}

JournalRecord
decodeJournalRecord(const std::string &line)
{
    const Jv obj = JsonParser(line).parse();
    if (obj.kind != Jv::Kind::Obj)
        fail("expected a JSON object record");
    return decodeRecord(obj);
}

std::uint64_t
pointFingerprint(const GridPoint &point)
{
    Fnv64 h;
    h.add(point.label);
    const Config cfg = point.config.toConfig();
    for (const std::string &key : cfg.keys()) {
        h.add(key);
        h.add(cfg.getString(key).value_or(""));
    }
    h.add(static_cast<std::uint64_t>(point.traces.size()));
    for (const TraceSpec &t : point.traces)
        h.add(t.name());
    h.add(point.budget.warmupInstrs);
    h.add(point.budget.simInstrs);
    return h.value();
}

std::uint64_t
spaceFingerprint(const std::vector<GridPoint> &grid)
{
    Fnv64 h;
    h.add(static_cast<std::uint64_t>(grid.size()));
    for (const GridPoint &p : grid)
        h.add(pointFingerprint(p));
    return h.value();
}

std::vector<JournalSegment>
readJournal(const std::string &path, bool *truncated_tail)
{
    if (truncated_tail != nullptr)
        *truncated_tail = false;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("journal: cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<JournalSegment> segments;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool has_newline = nl != std::string::npos;
        const std::string line =
            text.substr(pos, has_newline ? nl - pos : std::string::npos);
        pos = has_newline ? nl + 1 : text.size();
        ++line_no;
        if (line.empty())
            continue;
        // The last line is the only one a crash can leave half-written
        // (records are appended as one line + flush), so only there is
        // a defect tolerated — as a truncated tail, dropped with a
        // flag. Anywhere else it is corruption and a hard error.
        const bool is_last = pos >= text.size();
        try {
            const Jv obj = JsonParser(line).parse();
            if (obj.kind != Jv::Kind::Obj)
                fail("expected a JSON object per line");
            if (obj.find("hermes_journal") != nullptr) {
                const std::uint64_t version =
                    asU64(member(obj, "hermes_journal"));
                if (version != kJournalVersion)
                    throw std::runtime_error(
                        "journal: unsupported journal version " +
                        std::to_string(version) + " in " + path +
                        " (this build reads version " +
                        std::to_string(kJournalVersion) +
                        "; re-run the sweep to regenerate it)");
                JournalSegment seg;
                seg.spaceFp = asHexFp(member(obj, "space"));
                seg.points = asU64(member(obj, "points"));
                segments.push_back(std::move(seg));
                continue;
            }
            if (segments.empty())
                fail("record before any journal header");
            JournalRecord rec = decodeRecord(obj);
            if (rec.index >= segments.back().points)
                fail("record index " + std::to_string(rec.index) +
                     " out of range for a " +
                     std::to_string(segments.back().points) +
                     "-point grid");
            segments.back().records.push_back(std::move(rec));
        } catch (const std::runtime_error &e) {
            // Version/semantic errors on the last line are still
            // tolerated as a torn tail; a malformed *earlier* line can
            // only be corruption.
            if (is_last) {
                if (truncated_tail != nullptr)
                    *truncated_tail = true;
                break;
            }
            throw std::runtime_error(
                std::string(e.what()) + " (" + path + " line " +
                std::to_string(line_no) + ")");
        }
    }
    // A crash between beginGrid() and the first append leaves a
    // complete header line as the file's tail. That segment holds
    // nothing recoverable, so treat it like any other torn tail: drop
    // it and flag. A journal whose *only* segment is empty stays as-is
    // — that is a valid "began a grid, recorded nothing yet" journal
    // (e.g. a shard owning none of a tiny grid), not a torn tail.
    if (segments.size() > 1 && segments.back().records.empty()) {
        segments.pop_back();
        if (truncated_tail != nullptr)
            *truncated_tail = true;
    }
    if (segments.empty())
        throw std::runtime_error(
            "journal: " + path +
            " contains no complete journal header");
    return segments;
}

void
validateSegment(const JournalSegment &seg,
                const std::vector<GridPoint> &grid)
{
    const std::uint64_t space = spaceFingerprint(grid);
    if (seg.spaceFp != space || seg.points != grid.size())
        throw std::runtime_error(
            "journal: recorded for a different scenario space (journal "
            "space " +
            fingerprintHex(seg.spaceFp) + " over " +
            std::to_string(seg.points) + " points, current space " +
            fingerprintHex(space) + " over " +
            std::to_string(grid.size()) +
            " points); re-run without --resume or regenerate the "
            "journal");
    std::vector<std::uint64_t> point_fps(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        point_fps[i] = pointFingerprint(grid[i]);
    for (const JournalRecord &rec : seg.records) {
        if (rec.index >= grid.size() ||
            rec.pointFp != point_fps[rec.index] ||
            rec.result.label != grid[rec.index].label)
            throw std::runtime_error(
                "journal: record '" + rec.result.label +
                "' (grid index " + std::to_string(rec.index) +
                ") does not match the current grid point; re-run "
                "without --resume or regenerate the journal");
    }
}

std::vector<JournalSegment>
mergeSegments(const std::vector<std::vector<JournalSegment>> &files)
{
    std::size_t count = 0;
    for (const auto &f : files)
        count = std::max(count, f.size());

    std::vector<JournalSegment> out;
    for (std::size_t k = 0; k < count; ++k) {
        JournalSegment merged;
        bool started = false;
        for (const auto &f : files) {
            if (k >= f.size())
                continue;
            const JournalSegment &seg = f[k];
            if (!started) {
                merged.spaceFp = seg.spaceFp;
                merged.points = seg.points;
                started = true;
            } else if (merged.spaceFp != seg.spaceFp ||
                       merged.points != seg.points) {
                throw std::runtime_error(
                    "journal: cannot merge journals of different "
                    "scenario spaces (segment " +
                    std::to_string(k) + ": space " +
                    fingerprintHex(merged.spaceFp) + " vs " +
                    fingerprintHex(seg.spaceFp) + ")");
            }
            for (const JournalRecord &rec : seg.records)
                merged.records.push_back(rec);
        }
        // Dedup by grid index; duplicates must agree (same simulation,
        // deterministic) or one of the journals is lying.
        std::stable_sort(merged.records.begin(), merged.records.end(),
                         [](const JournalRecord &a,
                            const JournalRecord &b) {
                             return a.index < b.index;
                         });
        std::vector<JournalRecord> dedup;
        for (JournalRecord &rec : merged.records) {
            if (!dedup.empty() && dedup.back().index == rec.index) {
                if (statsFingerprint(dedup.back().result.stats) !=
                    statsFingerprint(rec.result.stats))
                    throw std::runtime_error(
                        "journal: conflicting records for grid index " +
                        std::to_string(rec.index) +
                        " ('" + rec.result.label +
                        "'): the merged journals disagree");
                continue;
            }
            dedup.push_back(std::move(rec));
        }
        merged.records = std::move(dedup);
        out.push_back(std::move(merged));
    }
    return out;
}

std::string
journalText(const std::vector<JournalSegment> &segments)
{
    std::string out;
    for (const JournalSegment &seg : segments) {
        out += encodeHeader(seg.spaceFp, seg.points) + "\n";
        for (const JournalRecord &rec : seg.records)
            out += encodeRecord(rec) + "\n";
    }
    return out;
}

JournalWriter::JournalWriter(const std::string &path) : path_(path)
{
    // Never truncate in place: a kill between the truncate and the
    // re-recording of resumed points would destroy the only durable
    // copy. The atomic rename keeps the old journal recoverable at
    // <path>.bak until a newer rewrite replaces it.
    std::ifstream exists(path);
    if (exists.good()) {
        exists.close();
        const std::string bak = path + ".bak";
        if (std::rename(path.c_str(), bak.c_str()) != 0)
            throw std::runtime_error("journal: cannot back up " + path +
                                     " to " + bak + ": " +
                                     std::strerror(errno));
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        throw std::runtime_error("journal: cannot write " + path + ": " +
                                 std::strerror(errno));
}

JournalWriter::~JournalWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
JournalWriter::writeLine(const std::string &line)
{
    // One complete line per write, flushed and fsynced before the line
    // is considered recorded: a crash can only cost the line in
    // flight, which the loader drops as a truncated tail. Headers get
    // the same durability as records — a header that reaches the page
    // cache but not the disk would silently demote every record synced
    // after it.
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0)
        throw std::runtime_error("journal: write failed on " + path_);
    static_cast<void>(fsync(fileno(file_)));
}

void
JournalWriter::beginGrid(const std::vector<GridPoint> &grid)
{
    std::lock_guard<std::mutex> g(mutex_);
    grid_ = &grid;
    writeLine(encodeHeader(spaceFingerprint(grid), grid.size()) + "\n");
}

void
JournalWriter::append(const PointResult &r)
{
    if (!r.ok)
        return;
    std::lock_guard<std::mutex> g(mutex_);
    if (grid_ == nullptr || r.index >= grid_->size())
        throw std::logic_error(
            "journal: append without a matching beginGrid");
    JournalRecord rec;
    rec.index = r.index;
    rec.pointFp = pointFingerprint((*grid_)[r.index]);
    rec.result = r;
    writeLine(encodeRecord(rec) + "\n");
}

bool
OrchestratedRun::complete() const
{
    for (bool p : present)
        if (!p)
            return false;
    return true;
}

std::size_t
OrchestratedRun::missing() const
{
    std::size_t n = 0;
    for (bool p : present)
        n += p ? 0 : 1;
    return n;
}

OrchestratedRun
runJournaled(const SweepOptions &engine_opts,
             const std::vector<GridPoint> &grid,
             const OrchestrateOptions &opts)
{
    const std::size_t n = grid.size();
    OrchestratedRun out;
    out.results.resize(n);
    out.present.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        out.results[i].index = i;
        out.results[i].label = grid[i].label;
    }

    if (opts.journal != nullptr)
        opts.journal->beginGrid(grid);

    std::vector<bool> skip(n, false);
    if (opts.resume != nullptr) {
        for (const JournalRecord &rec : opts.resume->records) {
            if (rec.index >= n || out.present[rec.index])
                continue;
            out.results[rec.index] = rec.result;
            out.present[rec.index] = true;
            skip[rec.index] = true;
            ++out.resumed;
            // Re-record resumed points up front: the rewritten journal
            // is complete-so-far before any new simulation starts.
            if (opts.journal != nullptr)
                opts.journal->append(rec.result);
            // Resumed records also warm the store: --resume old.jsonl
            // --cache DIR migrates a journal into the cache.
            if (opts.cache != nullptr)
                opts.cache->store(grid[rec.index], rec.result);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (skip[i])
            continue;
        if (!SweepEngine::inShard(i, opts.shard)) {
            skip[i] = true;
            ++out.otherShard;
        }
    }

    // Consult the store for every point this run would simulate. Hits
    // are journaled like any completion (so a journal stays a full
    // record of its grid) and re-verified by the cache on load, which
    // keeps cached and simulated runs byte-identical downstream.
    if (opts.cache != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
            if (skip[i])
                continue;
            auto hit = opts.cache->load(grid[i]);
            if (!hit)
                continue;
            hit->index = i;
            out.results[i] = std::move(*hit);
            out.present[i] = true;
            skip[i] = true;
            ++out.cached;
            if (opts.journal != nullptr)
                opts.journal->append(out.results[i]);
        }
    }

    SweepOptions eopts = engine_opts;
    if (opts.journal != nullptr || opts.cache != nullptr) {
        JournalWriter *writer = opts.journal;
        ResultCache *cache = opts.cache;
        ProgressFn user = engine_opts.onProgress;
        // The engine invokes progress under one lock as each point
        // finishes; journaling and cache publication there make
        // completion and persistence a single step.
        eopts.onProgress = [writer, cache, &grid,
                            user](std::size_t done, std::size_t total,
                                  const PointResult &r) {
            if (writer != nullptr)
                writer->append(r);
            if (cache != nullptr && r.ok)
                cache->store(grid[r.index], r);
            if (user)
                user(done, total, r);
        };
    }

    const auto run = SweepEngine(eopts).run(grid, skip);
    for (std::size_t i = 0; i < n; ++i) {
        if (skip[i])
            continue;
        out.results[i] = run[i];
        if (run[i].ok) {
            out.present[i] = true;
            ++out.simulated;
        }
    }
    return out;
}

} // namespace hermes::sweep
