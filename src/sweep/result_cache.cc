#include "sweep/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <stdexcept>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "sim/report.hh"

namespace hermes::sweep
{

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("result cache: " + what);
}

/** The first line of every entry; byte-compared on load. */
std::string
entryHeader(std::uint64_t point_fp)
{
    return "{\"hermes_result_cache\":" +
           std::to_string(journalFormatVersion()) + ",\"point\":\"" +
           fingerprintHex(point_fp) + "\"}";
}

struct EntryInfo
{
    std::string name;
    std::uint64_t bytes = 0;
    /** mtime in nanoseconds — the LRU clock (hits touch it). */
    std::int64_t mtimeNs = 0;
};

std::vector<EntryInfo>
scanEntries(const std::string &dir)
{
    std::vector<EntryInfo> out;
    DIR *d = opendir(dir.c_str());
    if (d == nullptr)
        fail("cannot scan " + dir + ": " + std::strerror(errno));
    while (const dirent *e = readdir(d)) {
        const std::string name = e->d_name;
        // Entries are exactly "<hex16>.rec"; tmp files and strangers
        // are invisible to the budget and never evicted from here.
        if (name.size() != 20 || name.compare(16, 4, ".rec") != 0)
            continue;
        struct stat st = {};
        if (stat((dir + "/" + name).c_str(), &st) != 0)
            continue;
        EntryInfo info;
        info.name = name;
        info.bytes = static_cast<std::uint64_t>(st.st_size);
        info.mtimeNs =
            static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
            st.st_mtim.tv_nsec;
        out.push_back(std::move(info));
    }
    closedir(d);
    return out;
}

std::string
slurpFile(const std::string &path, bool &exists)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        exists = false;
        return "";
    }
    exists = true;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

void
ensureDirectory(const std::string &path)
{
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        const std::string partial = path.substr(0, next);
        pos = next + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            throw std::runtime_error("cannot create directory " +
                                     partial + ": " +
                                     std::strerror(errno));
    }
}

ResultCacheConfig
parseResultCacheSpec(const std::string &spec)
{
    ResultCacheConfig cfg;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= spec.size()) {
        std::size_t next = spec.find(',', pos);
        if (next == std::string::npos)
            next = spec.size();
        const std::string part = spec.substr(pos, next - pos);
        pos = next + 1;
        if (first) {
            first = false;
            if (part.empty())
                throw std::invalid_argument(
                    "result cache spec wants "
                    "\"DIR[,max_bytes=SIZE][,max_entries=N]\"; got '" +
                    spec + "'");
            cfg.dir = part;
            continue;
        }
        const std::size_t eq = part.find('=');
        const std::string key =
            eq == std::string::npos ? part : part.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : part.substr(eq + 1);
        if (key == "max_bytes") {
            const auto v = parseSizeBytes(value);
            if (!v || *v == 0)
                throw std::invalid_argument(
                    "result cache max_bytes wants a positive size "
                    "(K/M/G suffixes allowed); got '" +
                    value + "'");
            cfg.maxBytes = *v;
        } else if (key == "max_entries") {
            const auto v = parseUint64(value);
            if (!v || *v == 0)
                throw std::invalid_argument(
                    "result cache max_entries wants a positive "
                    "integer; got '" +
                    value + "'");
            cfg.maxEntries = *v;
        } else {
            throw std::invalid_argument(
                "unknown result cache option '" + key +
                "' (want max_bytes or max_entries)");
        }
    }
    return cfg;
}

ResultCache::ResultCache(ResultCacheConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.dir.empty())
        fail("empty cache directory");
    ensureDirectory(cfg_.dir);
    struct stat st = {};
    if (stat(cfg_.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fail(cfg_.dir + " is not a directory");
}

std::string
ResultCache::entryName(std::uint64_t point_fp)
{
    return fingerprintHex(point_fp) + ".rec";
}

std::optional<PointResult>
ResultCache::load(const GridPoint &point)
{
    std::lock_guard<std::mutex> g(mutex_);
    return loadLocked(pointFingerprint(point), &point);
}

std::optional<PointResult>
ResultCache::loadByFp(std::uint64_t point_fp)
{
    std::lock_guard<std::mutex> g(mutex_);
    return loadLocked(point_fp, nullptr);
}

std::optional<PointResult>
ResultCache::loadLocked(std::uint64_t point_fp, const GridPoint *point)
{
    const std::string path = cfg_.dir + "/" + entryName(point_fp);
    bool exists = false;
    const std::string text = slurpFile(path, exists);
    if (!exists) {
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        const std::size_t nl1 = text.find('\n');
        if (nl1 == std::string::npos)
            fail("truncated entry");
        // The header is deterministic given the key, so a flat byte
        // compare checks version and point echo at once.
        if (text.substr(0, nl1) != entryHeader(point_fp))
            fail("version/point header mismatch");
        const std::size_t nl2 = text.find('\n', nl1 + 1);
        if (nl2 == std::string::npos || nl2 + 1 != text.size())
            fail("truncated entry");
        JournalRecord rec =
            decodeJournalRecord(text.substr(nl1 + 1, nl2 - nl1 - 1));
        if (rec.pointFp != point_fp)
            fail("record point fingerprint mismatch");
        if (point != nullptr && rec.result.label != point->label)
            fail("label mismatch");
        // Refresh the LRU clock; eviction drops the coldest mtime.
        static_cast<void>(
            utimensat(AT_FDCWD, path.c_str(), nullptr, 0));
        ++stats_.hits;
        rec.result.index = 0;
        rec.result.ok = true;
        return rec.result;
    } catch (const std::exception &) {
        // Never serve a doubtful entry: drop it and let the caller
        // re-simulate (the store will then rewrite it cleanly).
        static_cast<void>(unlink(path.c_str()));
        ++stats_.rejected;
        ++stats_.misses;
        return std::nullopt;
    }
}

void
ResultCache::store(const GridPoint &point, const PointResult &r)
{
    if (!r.ok)
        return;
    std::lock_guard<std::mutex> g(mutex_);
    if (r.label != point.label)
        fail("store: result label '" + r.label +
             "' does not match point '" + point.label + "'");
    const std::uint64_t point_fp = pointFingerprint(point);
    const std::string path = cfg_.dir + "/" + entryName(point_fp);
    // Content-addressed and deterministic: an existing entry already
    // holds these stats, so the first writer wins and re-stores (e.g.
    // every resumed point of a warm re-run) cost one access() check.
    if (access(path.c_str(), F_OK) == 0)
        return;

    JournalRecord rec;
    rec.index = 0;
    rec.pointFp = point_fp;
    rec.result = r;
    rec.result.index = 0;
    const std::string text =
        entryHeader(point_fp) + "\n" + encodeJournalRecord(rec) + "\n";

    // Atomic publish: tmp file + fsync + rename. Concurrent processes
    // may race on the rename — harmless, both wrote identical stats —
    // but no reader ever sees a half-written entry. The pid suffix
    // keeps their tmp files apart.
    const std::string tmp = cfg_.dir + "/.tmp." +
                            fingerprintHex(point_fp) + "." +
                            std::to_string(getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        fail("cannot write " + tmp + ": " + std::strerror(errno));
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fflush(f) == 0;
    if (wrote)
        static_cast<void>(fsync(fileno(f)));
    std::fclose(f);
    if (!wrote) {
        static_cast<void>(unlink(tmp.c_str()));
        fail("write failed on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        static_cast<void>(unlink(tmp.c_str()));
        fail("cannot publish " + path + ": " + std::strerror(err));
    }
    ++stats_.stores;
    evictToBudgetLocked();
}

std::size_t
ResultCache::entryCount() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return scanEntries(cfg_.dir).size();
}

void
ResultCache::evictToBudgetLocked()
{
    if (cfg_.maxBytes == 0 && cfg_.maxEntries == 0)
        return;
    // Rescan instead of tracking incrementally: other processes share
    // the directory, and stores are rare next to simulation work.
    std::vector<EntryInfo> entries = scanEntries(cfg_.dir);
    std::uint64_t bytes = 0;
    for (const EntryInfo &e : entries)
        bytes += e.bytes;
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.mtimeNs != b.mtimeNs ? a.mtimeNs < b.mtimeNs
                                                : a.name < b.name;
              });
    std::size_t count = entries.size();
    std::size_t victim = 0;
    while (victim < entries.size() &&
           ((cfg_.maxEntries != 0 && count > cfg_.maxEntries) ||
            (cfg_.maxBytes != 0 && bytes > cfg_.maxBytes))) {
        const EntryInfo &e = entries[victim++];
        if (unlink((cfg_.dir + "/" + e.name).c_str()) == 0)
            ++stats_.evicted;
        --count;
        bytes -= e.bytes;
    }
}

} // namespace hermes::sweep
