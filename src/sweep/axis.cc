#include "sweep/axis.hh"

#include <stdexcept>

#include "sim/param_registry.hh"

namespace hermes::sweep
{

std::vector<std::string>
splitCommaList(const std::string &spec, const std::string &what)
{
    std::vector<std::string> out;
    if (spec.empty())
        throw std::invalid_argument(what + " '" + spec +
                                    "' has no entries");
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end == start)
            throw std::invalid_argument(what + " '" + spec +
                                        "' has an empty entry");
        out.push_back(spec.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty())
        throw std::invalid_argument(what + " '" + spec +
                                    "' has no entries");
    return out;
}

Axis
parseAxis(const std::string &spec)
{
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument(
            "axis spec must look like key=v1,v2,...; got '" + spec +
            "'");
    Axis axis;
    axis.key = spec.substr(0, eq);
    ParamRegistry::instance().findOrThrow(axis.key);
    axis.values = splitCommaList(spec.substr(eq + 1), "axis spec");
    return axis;
}

std::vector<ConfigPoint>
expandAxis(const SystemConfig &base, const std::string &spec)
{
    const Axis axis = parseAxis(spec);
    std::vector<ConfigPoint> out;
    out.reserve(axis.values.size());
    for (const std::string &v : axis.values) {
        ConfigPoint pt{axis.key + "=" + v, base};
        ParamRegistry::instance().apply(pt.config, axis.key, v);
        out.push_back(std::move(pt));
    }
    return out;
}

std::vector<ConfigPoint>
expandGrid(const SystemConfig &base, const std::vector<std::string> &specs)
{
    std::vector<ConfigPoint> points{{"", base}};
    for (const std::string &spec : specs) {
        std::vector<ConfigPoint> next;
        for (const ConfigPoint &pt : points) {
            for (ConfigPoint &sub : expandAxis(pt.config, spec)) {
                sub.label = pt.label.empty()
                                ? sub.label
                                : pt.label + "/" + sub.label;
                next.push_back(std::move(sub));
            }
        }
        points = std::move(next);
    }
    return points;
}

} // namespace hermes::sweep
