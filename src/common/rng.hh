#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workloads
 * and tests. A small xorshift128+ generator is used instead of <random>
 * engines so that the exact sequence is stable across standard-library
 * versions, keeping trace generation reproducible byte-for-byte.
 */

#include <cstdint>

namespace hermes
{

/** Stateless 64-bit mixer (splitmix64 finaliser) for derived values. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** xorshift128+ PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 to spread low-entropy seeds over both words.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9E3779B97F4A7C15ull;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
            t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
            *s = t ^ (t >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift; bias is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** The two raw state words, for checkpoint serialization. */
    struct State
    {
        std::uint64_t s0 = 0;
        std::uint64_t s1 = 0;
    };

    State state() const { return {s0_, s1_}; }

    void
    setState(const State &s)
    {
        s0_ = s.s0;
        s1_ = s.s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

} // namespace hermes
