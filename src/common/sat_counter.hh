#pragma once

/**
 * @file
 * Saturating counters used throughout the predictors: an n-bit signed
 * saturating weight (perceptrons) and an n-bit unsigned saturating
 * counter (bimodal tables, SHiP, SPP confidence).
 */

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace hermes
{

/**
 * Signed saturating integer with a configurable bit width.
 * A 5-bit instance saturates at [-16, +15], matching POPET's weights.
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned bits = 5, int initial = 0)
        : min_(-(1 << (bits - 1))), max_((1 << (bits - 1)) - 1),
          value_(std::clamp(initial, min_, max_))
    {
        assert(bits >= 2 && bits <= 16);
    }

    int value() const { return value_; }
    int min() const { return min_; }
    int max() const { return max_; }

    /** Increment toward the positive saturation point. */
    void increment() { value_ = std::min(value_ + 1, max_); }
    /** Decrement toward the negative saturation point. */
    void decrement() { value_ = std::max(value_ - 1, min_); }

    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == min_; }

  private:
    int min_;
    int max_;
    int value_;
};

/**
 * Unsigned saturating counter with a configurable bit width, e.g. the
 * 2-bit hysteresis counters of HMP's component predictors.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(std::min(initial, max_))
    {
        assert(bits >= 1 && bits <= 16);
    }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    void increment() { value_ = std::min(value_ + 1, max_); }
    void decrement() { value_ = value_ == 0 ? 0 : value_ - 1; }

    /** True when in the upper half of the counter's range. */
    bool taken() const { return value_ > max_ / 2; }

    void set(unsigned v) { value_ = std::min(v, max_); }

  private:
    unsigned max_;
    unsigned value_;
};

} // namespace hermes
