#pragma once

/**
 * @file
 * Growable power-of-two ring buffer used for the simulator's hot-path
 * queues (cache read/write/prefetch queues, the core's ready-load
 * queue). Replaces std::deque in the per-cycle loops: elements are
 * contiguous-in-ring, push/pop are branch-light index arithmetic and no
 * allocation happens once the ring reaches its working-set size.
 *
 * FIFO semantics match std::deque for the operations the simulator
 * uses: push_back, push_front (head-of-line retry), front, pop_front.
 */

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace hermes
{

template <typename T>
class Ring
{
  public:
    explicit Ring(std::size_t initial_capacity = 8)
    {
        buf_.resize(ceilPow2(initial_capacity < 2 ? 2 : initial_capacity));
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** Element @p i positions behind the front (0 == front). */
    const T &
    at(std::size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    push_back(const T &v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = v;
        ++size_;
    }

    void
    push_front(const T &v)
    {
        if (size_ == buf_.size())
            grow();
        head_ = (head_ + buf_.size() - 1) & (buf_.size() - 1);
        buf_[head_] = v;
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace hermes
