#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace hermes
{

namespace
{

std::string
trim(const std::string &s)
{
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto b = std::find_if_not(s.begin(), s.end(), is_space);
    auto e = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
    return (b < e) ? std::string(b, e) : std::string();
}

} // namespace

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::optional<std::int64_t>
parseInt64(const std::string &s)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t>
parseUint64(const std::string &s)
{
    // strtoull silently wraps negatives ("-1" -> UINT64_MAX); reject
    // any minus sign up front.
    if (s.find('-') != std::string::npos)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<double>
parseFiniteDouble(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    // Overflow parses to +-inf; "nan"/"inf" literals are rejected the
    // same way (no configuration knob here has a non-finite meaning).
    if (end == s.c_str() || *end != '\0' || !std::isfinite(v))
        return std::nullopt;
    return v;
}

std::optional<bool>
parseBoolWord(const std::string &s)
{
    std::string v = s;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return std::nullopt;
}

std::optional<std::uint64_t>
parseSizeBytes(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    std::uint64_t mult = 1;
    std::string digits = s;
    switch (std::tolower(static_cast<unsigned char>(s.back()))) {
      case 'k':
        mult = 1ull << 10;
        break;
      case 'm':
        mult = 1ull << 20;
        break;
      case 'g':
        mult = 1ull << 30;
        break;
      default:
        break;
    }
    if (mult != 1)
        digits = s.substr(0, s.size() - 1);
    const auto v = parseInt64(digits);
    if (!v || *v < 0)
        return std::nullopt;
    const std::uint64_t u = static_cast<std::uint64_t>(*v);
    if (mult != 1 && u > UINT64_MAX / mult)
        return std::nullopt;
    return u * mult;
}

bool
Config::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    bool ok = true;
    while (std::getline(in, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        const auto eq = t.find('=');
        if (eq == std::string::npos) {
            ok = false;
            continue;
        }
        const std::string key = trim(t.substr(0, eq));
        const std::string value = trim(t.substr(eq + 1));
        if (key.empty()) {
            ok = false;
            continue;
        }
        set(key, value);
    }
    return ok;
}

void
Config::parseArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        std::string key = arg.substr(0, eq);
        // Accept --key=value as well as key=value.
        while (!key.empty() && key.front() == '-')
            key.erase(key.begin());
        set(key, arg.substr(eq + 1));
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    if (values_.find(key) == values_.end())
        order_.push_back(key);
    values_[key] = value;
}

bool
Config::contains(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::optional<std::string>
Config::getString(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::int64_t>
Config::getInt(const std::string &key) const
{
    auto s = getString(key);
    return s ? parseInt64(*s) : std::nullopt;
}

std::optional<double>
Config::getDouble(const std::string &key) const
{
    auto s = getString(key);
    return s ? parseFiniteDouble(*s) : std::nullopt;
}

std::optional<bool>
Config::getBool(const std::string &key) const
{
    auto s = getString(key);
    return s ? parseBoolWord(*s) : std::nullopt;
}

std::string
Config::get(const std::string &key, const std::string &dflt) const
{
    return getString(key).value_or(dflt);
}

std::int64_t
Config::get(const std::string &key, std::int64_t dflt) const
{
    return getInt(key).value_or(dflt);
}

double
Config::get(const std::string &key, double dflt) const
{
    return getDouble(key).value_or(dflt);
}

bool
Config::get(const std::string &key, bool dflt) const
{
    return getBool(key).value_or(dflt);
}

std::vector<std::string>
Config::keys() const
{
    return order_;
}

} // namespace hermes
