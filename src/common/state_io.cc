#include "common/state_io.hh"

#include "trace/trace_io.hh"

namespace hermes
{

void
StateWriter::bytes(const void *data, std::size_t size)
{
    hash_.addBytes(data, size);
    sink_.write(data, size);
}

void
StateWriter::sealChecksum()
{
    const std::uint64_t sum = hash_.value();
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>((sum >> (8 * i)) & 0xFF);
    sink_.write(buf, 8);
}

void
StateReader::rawBytes(void *data, std::size_t size)
{
    auto *p = static_cast<unsigned char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const std::size_t n = source_.read(p + got, size - got);
        if (n == 0)
            throw StateError("truncated stream (wanted " +
                             std::to_string(size) + " bytes, got " +
                             std::to_string(got) + ")");
        got += n;
    }
}

void
StateReader::bytes(void *data, std::size_t size)
{
    rawBytes(data, size);
    hash_.addBytes(data, size);
}

std::string
StateReader::str(std::size_t max_size)
{
    const std::size_t n = count(max_size);
    std::string s(n, '\0');
    if (n != 0)
        bytes(&s[0], n);
    return s;
}

void
StateReader::section(const char *tag)
{
    const std::string got = str(64);
    if (got != tag)
        throw StateError("expected section '" + std::string(tag) +
                         "', found '" + got + "'");
}

void
StateReader::verifyChecksum()
{
    const std::uint64_t expect = hash_.value();
    std::uint8_t buf[8];
    rawBytes(buf, 8);
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= std::uint64_t{buf[i]} << (8 * i);
    if (stored != expect)
        throw StateError("payload checksum mismatch");
    unsigned char extra = 0;
    if (source_.read(&extra, 1) != 0)
        throw StateError("trailing bytes after checksum");
}

} // namespace hermes
