#pragma once

/**
 * @file
 * Open-addressed hash index mapping an in-flight line address to its
 * MSHR slot. Replaces the linear MSHR array scan on every cache lookup
 * (the second-hottest operation in the simulator after tag search).
 *
 * Linear probing with backward-shift deletion; the table is sized at
 * 4x the MSHR count so probe chains stay short. Keys are unique: the
 * cache never allocates two MSHRs for the same line.
 */

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hermes
{

class AddrIndex
{
  public:
    explicit AddrIndex(std::uint32_t mshr_count)
    {
        const auto cap = static_cast<std::uint32_t>(ceilPow2(
            mshr_count * 4 < 8 ? 8 : static_cast<std::size_t>(mshr_count) * 4));
        mask_ = cap - 1;
        slots_.assign(cap, kEmpty);
        lines_.assign(cap, 0);
    }

    /** Slot holding @p line, or kNotFound if absent. */
    std::uint32_t
    find(Addr line) const
    {
        for (std::uint32_t h = hash(line);; h = (h + 1) & mask_) {
            if (slots_[h] == kEmpty)
                return kNotFound;
            if (lines_[h] == line)
                return slots_[h];
        }
    }

    void
    insert(Addr line, std::uint32_t slot)
    {
        std::uint32_t h = hash(line);
        while (slots_[h] != kEmpty)
            h = (h + 1) & mask_;
        slots_[h] = slot;
        lines_[h] = line;
    }

    void
    erase(Addr line)
    {
        std::uint32_t h = hash(line);
        while (slots_[h] != kEmpty && lines_[h] != line)
            h = (h + 1) & mask_;
        assert(slots_[h] != kEmpty && "erasing a line not present");
        if (slots_[h] == kEmpty)
            return; // absent: nothing to erase

        // Backward-shift deletion keeps probe chains intact without
        // tombstones.
        std::uint32_t hole = h;
        for (std::uint32_t j = (h + 1) & mask_; slots_[j] != kEmpty;
             j = (j + 1) & mask_) {
            const std::uint32_t ideal = hash(lines_[j]);
            // Move j into the hole iff the hole lies within j's probe
            // path (cyclic distance check).
            if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                lines_[hole] = lines_[j];
                hole = j;
            }
        }
        slots_[hole] = kEmpty;
    }

    /** Drop every mapping (checkpoint restore rebuilds from content). */
    void
    clear()
    {
        for (std::uint32_t &s : slots_)
            s = kEmpty;
    }

    static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  private:
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

    std::uint32_t
    hash(Addr line) const
    {
        // splitmix64 finalizer: line addresses are sequential-ish, so
        // mix thoroughly before masking.
        std::uint64_t z = line + 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return static_cast<std::uint32_t>((z ^ (z >> 31)) & mask_);
    }

    std::uint32_t mask_ = 0;
    std::vector<std::uint32_t> slots_; ///< MSHR slot or kEmpty
    std::vector<Addr> lines_;          ///< Key for occupied entries
};

} // namespace hermes
