#pragma once

/**
 * @file
 * Field-by-field binary serialization for warmup checkpoints: the
 * StateWriter/StateReader pair every component's saveState/loadState
 * uses (see docs/sessions.md). The format is deliberately dumb and
 * explicit — fixed-width little-endian integers written one field at a
 * time, never whole structs — so a checkpoint is identical across
 * compilers, padding rules and host endianness.
 *
 * Robustness: every payload byte feeds a running FNV-1a checksum on
 * both sides; section tags ("CORE", "LLC0", ...) frame each
 * component so a truncated or drifted stream fails with a message
 * naming the section, not garbage state. All reader defects throw
 * StateError; SimSession::restore() turns any defect into a clean
 * "re-warm from scratch" miss.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/fnv.hh"

namespace hermes
{

class ByteSink;
class ByteSource;

/** Any checkpoint decode defect: truncation, bad tag, bad checksum. */
class StateError : public std::runtime_error
{
  public:
    explicit StateError(const std::string &what)
        : std::runtime_error("checkpoint: " + what)
    {
    }
};

/** Serializes checkpoint fields into a ByteSink, checksumming along. */
class StateWriter
{
  public:
    explicit StateWriter(ByteSink &sink) : sink_(sink) {}

    void u8(std::uint8_t v) { bytes(&v, 1); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    u16(std::uint16_t v)
    {
        std::uint8_t buf[2] = {static_cast<std::uint8_t>(v & 0xFF),
                               static_cast<std::uint8_t>(v >> 8)};
        bytes(buf, 2);
    }

    void
    u32(std::uint32_t v)
    {
        std::uint8_t buf[4];
        for (int i = 0; i < 4; ++i)
            buf[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
        bytes(buf, 4);
    }

    void
    u64(std::uint64_t v)
    {
        std::uint8_t buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
        bytes(buf, 8);
    }

    void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
    void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** IEEE bit pattern: exact round trip, no locale/format drift. */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    f32(float v)
    {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        if (!s.empty())
            bytes(s.data(), s.size());
    }

    /** Frame the next component; the reader must match the same tag. */
    void
    section(const char *tag)
    {
        str(tag);
    }

    /** Checksum of everything written so far. */
    std::uint64_t checksum() const { return hash_.value(); }

    /**
     * Append the running checksum (not fed back into the hash). Call
     * exactly once, after the last field.
     */
    void sealChecksum();

  private:
    void bytes(const void *data, std::size_t size);

    ByteSink &sink_;
    Fnv64 hash_;
};

/** The mirror-image reader; any defect throws StateError. */
class StateReader
{
  public:
    explicit StateReader(ByteSource &source) : source_(source) {}

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        bytes(&v, 1);
        return v;
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw StateError("bad boolean byte");
        return v != 0;
    }

    std::uint16_t
    u16()
    {
        std::uint8_t buf[2];
        bytes(buf, 2);
        return static_cast<std::uint16_t>(buf[0] |
                                          (std::uint16_t{buf[1]} << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint8_t buf[4];
        bytes(buf, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{buf[i]} << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint8_t buf[8];
        bytes(buf, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{buf[i]} << (8 * i);
        return v;
    }

    std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
    std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    float
    f32()
    {
        const std::uint32_t bits = u32();
        float v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str(std::size_t max_size = kMaxString);

    /** Read a section tag and require it to equal @p tag. */
    void section(const char *tag);

    /** Bounded count for containers (defends against garbage sizes). */
    std::size_t
    count(std::size_t max)
    {
        const std::uint64_t n = u64();
        if (n > max)
            throw StateError("container size " + std::to_string(n) +
                             " exceeds bound " + std::to_string(max));
        return static_cast<std::size_t>(n);
    }

    std::uint64_t checksum() const { return hash_.value(); }

    /**
     * Read the trailing checksum word (not hashed) and require it to
     * match the payload hash; then require end-of-stream.
     */
    void verifyChecksum();

  private:
    void bytes(void *data, std::size_t size);
    /** Raw read, no checksumming (the checksum word itself). */
    void rawBytes(void *data, std::size_t size);

    static constexpr std::size_t kMaxString = 1u << 20;

    ByteSource &source_;
    Fnv64 hash_;
};

} // namespace hermes
