#pragma once

/**
 * @file
 * Incremental FNV-1a over 64-bit words and length-prefixed strings:
 * the one hash behind the whole golden-fingerprint family
 * (statsFingerprint, the sweep journal's point/space fingerprints,
 * sweepFingerprint, the warmup-checkpoint fingerprint and the
 * checkpoint payload checksum). Keep every fingerprint on this class
 * so the pinned goldens can never diverge between sites.
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace hermes
{

class Fnv64
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte((v >> (8 * i)) & 0xFF);
    }

    void
    add(const std::string &s)
    {
        // Length first so "ab"+"c" and "a"+"bc" hash apart.
        add(static_cast<std::uint64_t>(s.size()));
        for (unsigned char c : s)
            byte(c);
    }

    /** Raw bytes, no length prefix (the checkpoint stream checksum). */
    void
    addBytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i)
            byte(p[i]);
    }

    std::uint64_t value() const { return h_; }

  private:
    void
    byte(std::uint64_t b)
    {
        h_ ^= b;
        h_ *= 0x100000001B3ull;
    }

    std::uint64_t h_ = 0xCBF29CE484222325ull;
};

} // namespace hermes
