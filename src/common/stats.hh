#pragma once

/**
 * @file
 * Small statistics toolkit used by the simulator and the benchmark
 * harness: aggregation helpers (mean, geometric mean), a streaming
 * summary, a box-and-whiskers summary (Fig. 15a style) and a fixed-bin
 * histogram.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace hermes
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty vector. All inputs must be > 0. */
double geomean(const std::vector<double> &xs);

/** p-th percentile (0..100) using linear interpolation; 0 if empty. */
double percentile(std::vector<double> xs, double p);

/**
 * Five-number summary plus mean, matching the box-and-whiskers plots in
 * the paper (first/third quartile box, 1.5*IQR whiskers, mean marker).
 */
struct BoxStats
{
    double min = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double max = 0;
    double mean = 0;
    double whiskerLow = 0;
    double whiskerHigh = 0;
};

/** Compute a BoxStats summary of the samples. */
BoxStats boxStats(const std::vector<double> &xs);

/** Streaming mean/min/max accumulator. */
class Summary
{
  public:
    void
    add(double x)
    {
        sum_ += x;
        count_ += 1;
        if (count_ == 1 || x < min_)
            min_ = x;
        if (count_ == 1 || x > max_)
            max_ = x;
    }

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::size_t count_ = 0;
};

/** Fixed-width histogram over [lo, hi) with an overflow/underflow bin. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, std::uint64_t weight = 1);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    /** Inclusive lower edge of bin i. */
    double binLow(std::size_t i) const;

    std::string toString() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace hermes
