#include "common/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <sstream>

namespace hermes
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs) {
        assert(x > 0.0);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

BoxStats
boxStats(const std::vector<double> &xs)
{
    BoxStats b;
    if (xs.empty())
        return b;
    b.min = *std::min_element(xs.begin(), xs.end());
    b.max = *std::max_element(xs.begin(), xs.end());
    b.q1 = percentile(xs, 25);
    b.median = percentile(xs, 50);
    b.q3 = percentile(xs, 75);
    b.mean = mean(xs);
    const double iqr = b.q3 - b.q1;
    b.whiskerLow = std::max(b.min, b.q1 - 1.5 * iqr);
    b.whiskerHigh = std::min(b.max, b.q3 + 1.5 * iqr);
    return b;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    if (x >= hi_) {
        overflow_ += weight;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    counts_[idx] += weight;
}

double
Histogram::binLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        os << "[" << binLow(i) << ", " << binLow(i + 1) << "): "
           << counts_[i] << "\n";
    os << "underflow: " << underflow_ << " overflow: " << overflow_ << "\n";
    return os.str();
}

} // namespace hermes
