#pragma once

/**
 * @file
 * Minimal key=value configuration store used by the examples and the
 * benchmark harness to override simulation parameters from the command
 * line or from simple .ini-style strings ("key = value" lines, '#'
 * comments).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hermes
{

/**
 * Strict scalar parsers shared by Config and the parameter registry.
 * The whole string must parse: trailing garbage, overflow and (for
 * doubles) NaN/inf are rejected with std::nullopt.
 */
std::optional<std::int64_t> parseInt64(const std::string &s);
std::optional<std::uint64_t> parseUint64(const std::string &s);
std::optional<double> parseFiniteDouble(const std::string &s);
std::optional<bool> parseBoolWord(const std::string &s);

/**
 * parseInt64 plus case-insensitive K/M/G suffixes (powers of 1024),
 * e.g. "3M" == 3145728. Negative values and overflow are rejected.
 */
std::optional<std::uint64_t> parseSizeBytes(const std::string &s);

/**
 * Levenshtein distance between two strings. Shared by every registry
 * (params, stats, models) to turn "unknown key" errors into
 * "did you mean ...?" suggestions.
 */
std::size_t editDistance(const std::string &a, const std::string &b);

/** Ordered key=value store with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse "key = value" lines. Blank lines and lines starting with '#'
     * or ';' are ignored. Later keys override earlier ones.
     * @return false if any non-comment line is malformed.
     */
    bool parse(const std::string &text);

    /** Parse command-line style "key=value" tokens; others are ignored. */
    void parseArgs(int argc, const char *const *argv);

    void set(const std::string &key, const std::string &value);
    bool contains(const std::string &key) const;

    std::optional<std::string> getString(const std::string &key) const;
    std::optional<std::int64_t> getInt(const std::string &key) const;
    std::optional<double> getDouble(const std::string &key) const;
    std::optional<bool> getBool(const std::string &key) const;

    /** Typed accessors with defaults. */
    std::string get(const std::string &key, const std::string &dflt) const;
    std::int64_t get(const std::string &key, std::int64_t dflt) const;
    double get(const std::string &key, double dflt) const;
    bool get(const std::string &key, bool dflt) const;

    /** All keys, in insertion order. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

} // namespace hermes
