#pragma once

/**
 * @file
 * Fundamental types and memory-geometry constants shared across the
 * simulator: addresses, cycles, block/page geometry and helpers to move
 * between byte addresses, cache-line addresses and page numbers.
 */

#include <cstddef>
#include <cstdint>

namespace hermes
{

/** Smallest power of two >= @p n (>= 1); used to size masked rings,
 * hash tables and the ROB so indexing avoids division. */
constexpr std::size_t
ceilPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p *= 2;
    return p;
}

/** Byte address in the simulated (virtual == physical) address space. */
using Addr = std::uint64_t;

/** Core clock cycle count. All latencies are expressed in core cycles. */
using Cycle = std::uint64_t;

/**
 * "No pending event" sentinel for the event-horizon main loop (see
 * docs/performance.md): a component whose nextEventCycle() returns this
 * has no internally scheduled work and only reacts to other components.
 */
constexpr Cycle kNoEventCycle = ~Cycle{0};

/** Monotonically increasing instruction sequence number. */
using InstrId = std::uint64_t;

/** Cache-block geometry (64B lines, 4KB pages), matching the paper. */
constexpr unsigned kLogBlockSize = 6;
constexpr unsigned kBlockSize = 1u << kLogBlockSize;
constexpr unsigned kLogPageSize = 12;
constexpr unsigned kPageSize = 1u << kLogPageSize;
/** Cache lines per page (64). */
constexpr unsigned kBlocksPerPage = kPageSize / kBlockSize;

/** Byte address -> cache-line address (block number). */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLogBlockSize;
}

/** Byte address -> virtual page number. */
constexpr Addr
pageNumber(Addr byte_addr)
{
    return byte_addr >> kLogPageSize;
}

/** Byte offset of an address within its cache line [0, 63]. */
constexpr unsigned
byteOffsetInLine(Addr byte_addr)
{
    return static_cast<unsigned>(byte_addr & (kBlockSize - 1));
}

/** Cache-line offset of an address within its page [0, 63]. */
constexpr unsigned
lineOffsetInPage(Addr byte_addr)
{
    return static_cast<unsigned>((byte_addr >> kLogBlockSize) &
                                 (kBlocksPerPage - 1));
}

/** Word (4B) offset of an address within its cache line [0, 15]. */
constexpr unsigned
wordOffsetInLine(Addr byte_addr)
{
    return static_cast<unsigned>((byte_addr >> 2) & (kBlockSize / 4 - 1));
}

} // namespace hermes
