#include "trace/corpus.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/config.hh"

namespace hermes
{

namespace
{

constexpr const char *kPrefix = "corpus.";

void
setFootprintMb(SyntheticParams &p, double v)
{
    p.footprintBytes = static_cast<std::uint64_t>(v) << 20;
}

void setSeed(SyntheticParams &p, double v)
{
    p.seed = static_cast<std::uint64_t>(v);
}

void setAlu(SyntheticParams &p, double v)
{
    p.aluPerMemop = static_cast<unsigned>(v);
}

void setStride(SyntheticParams &p, double v)
{
    p.strideBytes = static_cast<unsigned>(v);
}

void setMlp(SyntheticParams &p, double v)
{
    p.loadMlp = static_cast<unsigned>(v);
}

void setStoreFrac(SyntheticParams &p, double v) { p.storeFraction = v; }

void setBranchFrac(SyntheticParams &p, double v)
{
    p.dataBranchFraction = v;
}

void setChains(SyntheticParams &p, double v)
{
    p.chaseChains = static_cast<unsigned>(v);
}

void setHitFrac(SyntheticParams &p, double v) { p.hitLoadFraction = v; }

void setDegree(SyntheticParams &p, double v)
{
    p.graphAvgDegree = static_cast<unsigned>(v);
}

void setDataStride(SyntheticParams &p, double v)
{
    p.graphDataStride = static_cast<unsigned>(v);
}

void setGatherHotFrac(SyntheticParams &p, double v)
{
    p.gatherHotFraction = v;
}

void setColdFrac(SyntheticParams &p, double v)
{
    p.mixColdFraction = v;
}

// Shared knob rows (tables repeat them so each generator lists only
// what it honours, in a stable documented order).
constexpr CorpusKnob kSeed = {"seed", "generator RNG seed", 0, 1e15,
                              true, setSeed};
constexpr CorpusKnob kFootprint = {
    "footprint_mb", "main working-set size in MiB", 1, 1 << 16, true,
    setFootprintMb};
constexpr CorpusKnob kAlu = {"alu", "ALU ops per memory op", 0, 64,
                             true, setAlu};
constexpr CorpusKnob kStoreFrac = {
    "store_frac", "probability a block also stores", 0, 1, false,
    setStoreFrac};
constexpr CorpusKnob kBranchFrac = {
    "branch_frac", "probability of a data-dependent branch", 0, 1,
    false, setBranchFrac};
constexpr CorpusKnob kMlp = {
    "mlp", "load-level-parallelism bound (0 = unlimited)", 0, 256,
    true, setMlp};
constexpr CorpusKnob kStride = {"stride", "sweep stride in bytes", 1,
                                4096, true, setStride};

void
chaseDefaults(SyntheticParams &p)
{
    p.pattern = Pattern::PointerChase;
    p.chaseChains = 2;
    p.aluPerMemop = 8;
    p.hitLoadFraction = 0.4;
}

void
streamDefaults(SyntheticParams &p)
{
    p.pattern = Pattern::Stream;
    p.strideBytes = 8;
    p.aluPerMemop = 6;
    p.loadMlp = 16;
}

void
gatherDefaults(SyntheticParams &p)
{
    p.pattern = Pattern::GraphGather;
    p.graphAvgDegree = 8;
    p.graphDataStride = 64;
    p.gatherHotFraction = 0.85;
    p.aluPerMemop = 8;
    p.loadMlp = 10;
}

void
mlpDefaults(SyntheticParams &p)
{
    p.pattern = Pattern::Stream;
    p.strideBytes = 8;
    p.aluPerMemop = 2;
    p.loadMlp = 48;
}

void
tlbDefaults(SyntheticParams &p)
{
    // Uniform random probes over a multi-GB table: every access lands
    // on a fresh 4KB page, stressing TLB/page-locality behaviour.
    p.pattern = Pattern::HashProbe;
    p.footprintBytes = 2048ull << 20;
    p.probeTableHotFraction = 0.0;
    p.probeHotFraction = 0.0;
    p.warmBytes = 8ull << 20;
    p.aluPerMemop = 6;
}

void
mixDefaults(SyntheticParams &p)
{
    p.pattern = Pattern::MixedCompute;
    p.mixColdFraction = 0.25;
    p.aluPerMemop = 8;
    p.loadMlp = 12;
}

std::vector<CorpusGenerator>
buildGenerators()
{
    return {
        {"chase", "dependent pointer chase (mcf/canneal-like)",
         chaseDefaults,
         {kFootprint,
          {"chains", "independent chase chains interleaved", 1, 4,
           true, setChains},
          {"hit_frac", "extra always-hitting loads per block", 0, 1,
           false, setHitFrac},
          kAlu, kStoreFrac, kBranchFrac, kSeed}},
        {"stream", "dense sequential sweep (lbm-like)", streamDefaults,
         {kFootprint, kStride, kMlp, kAlu, kStoreFrac, kBranchFrac,
          kSeed}},
        {"gather",
         "edge scan + random vertex gather (Ligra-like)",
         gatherDefaults,
         {kFootprint,
          {"degree", "average vertex out-degree", 1, 64, true,
           setDegree},
          {"data_stride", "bytes gathered per vertex", 8, 4096, true,
           setDataStride},
          {"hot_frac", "fraction of gathers into the hot subset", 0, 1,
           false, setGatherHotFrac},
          kAlu, kStoreFrac, kSeed}},
        {"mlp", "high memory-level-parallelism sweep", mlpDefaults,
         {kFootprint, kMlp, kStride, kAlu, kSeed}},
        {"tlb",
         "uniform random probes over a multi-GB table "
         "(TLB/page-irregular)",
         tlbDefaults, {kFootprint, kAlu, kStoreFrac, kSeed}},
        {"mix",
         "weighted accesses over L1/L2/LLC/DRAM working sets "
         "(gcc-like)",
         mixDefaults,
         {kFootprint,
          {"cold_frac", "probability of touching the DRAM array", 0, 1,
           false, setColdFrac},
          kMlp, kAlu, kBranchFrac, kSeed}},
    };
}

/** Nearest candidate by edit distance, for typo suggestions. */
template <typename Names>
std::string
nearest(const std::string &needle, const Names &names)
{
    std::string best;
    std::size_t best_dist = static_cast<std::size_t>(-1);
    for (const auto &n : names) {
        const std::size_t d = editDistance(needle, n);
        if (d < best_dist) {
            best_dist = d;
            best = n;
        }
    }
    return best_dist <= 3 ? best : std::string();
}

[[noreturn]] void
failSpec(const std::string &spec, const std::string &why,
         const std::string &suggestion = std::string())
{
    std::string msg = "corpus spec '" + spec + "': " + why;
    if (!suggestion.empty())
        msg += " (did you mean '" + suggestion + "'?)";
    throw std::invalid_argument(msg);
}

std::string
formatKnobValue(const CorpusKnob &knob, double value)
{
    char buf[32];
    if (knob.integer)
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
    else
        std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
}

} // namespace

const std::vector<CorpusGenerator> &
corpusGenerators()
{
    static const std::vector<CorpusGenerator> generators =
        buildGenerators();
    return generators;
}

bool
isCorpusSpec(const std::string &spec)
{
    return spec.rfind(kPrefix, 0) == 0;
}

TraceSpec
makeCorpusTrace(const std::string &spec)
{
    if (!isCorpusSpec(spec))
        failSpec(spec, "missing 'corpus.' prefix");

    // Split on ':' — the first field names the generator, the rest
    // are knob=value settings.
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t colon = spec.find(':', start);
        const std::size_t end =
            colon == std::string::npos ? spec.size() : colon;
        fields.push_back(spec.substr(start, end - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }

    const std::string gen_name = fields[0].substr(std::strlen(kPrefix));
    const CorpusGenerator *gen = nullptr;
    for (const auto &g : corpusGenerators())
        if (gen_name == g.name) {
            gen = &g;
            break;
        }
    if (gen == nullptr) {
        std::vector<std::string> names;
        for (const auto &g : corpusGenerators())
            names.push_back(g.name);
        failSpec(spec, "unknown generator '" + gen_name + "'",
                 nearest(gen_name, names));
    }

    SyntheticParams params;
    gen->defaults(params);

    // Values keyed by knob-table position, so the canonical name lists
    // knobs in one stable order however the user spelled the spec.
    std::vector<double> values(gen->knobs.size());
    std::vector<bool> set(gen->knobs.size(), false);
    for (std::size_t f = 1; f < fields.size(); ++f) {
        const std::string &field = fields[f];
        const std::size_t eq = field.find('=');
        if (field.empty() || eq == std::string::npos || eq == 0)
            failSpec(spec, "expected knob=value, got '" + field + "'");
        const std::string key = field.substr(0, eq);
        const std::string value_str = field.substr(eq + 1);

        std::size_t idx = gen->knobs.size();
        for (std::size_t k = 0; k < gen->knobs.size(); ++k)
            if (key == gen->knobs[k].key) {
                idx = k;
                break;
            }
        if (idx == gen->knobs.size()) {
            std::vector<std::string> keys;
            for (const auto &k : gen->knobs)
                keys.push_back(k.key);
            failSpec(spec,
                     "generator '" + gen_name + "' has no knob '" +
                         key + "'",
                     nearest(key, keys));
        }
        if (set[idx])
            failSpec(spec, "duplicate knob '" + key + "'");

        const CorpusKnob &knob = gen->knobs[idx];
        const auto parsed = parseFiniteDouble(value_str);
        if (!parsed)
            failSpec(spec, "knob '" + key + "': invalid number '" +
                               value_str + "'");
        const double v = *parsed;
        if (knob.integer && v != std::floor(v))
            failSpec(spec, "knob '" + key + "': expected an integer, "
                           "got '" + value_str + "'");
        if (v < knob.min || v > knob.max)
            failSpec(spec, "knob '" + key + "': " + value_str +
                               " out of range [" +
                               formatKnobValue(knob, knob.min) + ", " +
                               formatKnobValue(knob, knob.max) + "]");
        values[idx] = v;
        set[idx] = true;
    }

    std::string canonical = std::string(kPrefix) + gen->name;
    for (std::size_t k = 0; k < gen->knobs.size(); ++k) {
        if (!set[k])
            continue;
        gen->knobs[k].apply(params, values[k]);
        canonical += ':';
        canonical += gen->knobs[k].key;
        canonical += '=';
        canonical += formatKnobValue(gen->knobs[k], values[k]);
    }

    params.name = canonical;
    params.category = "CORPUS";
    return TraceSpec{std::move(params)};
}

namespace
{

/** Split a "corpus.<gen>.<knob>" override key; throws on bad shape. */
void
splitOverrideKey(const std::string &key, std::string &gen_name,
                 std::string &knob_name)
{
    const std::size_t prefix_len = std::strlen(kPrefix);
    const std::size_t dot = key.find('.', prefix_len);
    if (key.rfind(kPrefix, 0) != 0 || dot == std::string::npos ||
        dot == prefix_len || dot + 1 >= key.size())
        throw std::invalid_argument(
            "corpus override '" + key +
            "': expected corpus.<generator>.<knob>");
    gen_name = key.substr(prefix_len, dot - prefix_len);
    knob_name = key.substr(dot + 1);
}

/** Resolve generator + knob for an override key; throws with
 * suggestions. */
const CorpusKnob &
findOverrideKnob(const std::string &key, const CorpusGenerator *&gen_out)
{
    std::string gen_name, knob_name;
    splitOverrideKey(key, gen_name, knob_name);

    const CorpusGenerator *gen = nullptr;
    for (const auto &g : corpusGenerators())
        if (gen_name == g.name) {
            gen = &g;
            break;
        }
    if (gen == nullptr) {
        std::vector<std::string> names;
        for (const auto &g : corpusGenerators())
            names.push_back(g.name);
        std::string msg = "corpus override '" + key +
                          "': unknown generator '" + gen_name + "'";
        const std::string s = nearest(gen_name, names);
        if (!s.empty())
            msg += " (did you mean '" + s + "'?)";
        throw std::invalid_argument(msg);
    }
    for (const auto &k : gen->knobs)
        if (knob_name == k.key) {
            gen_out = gen;
            return k;
        }
    std::vector<std::string> keys;
    for (const auto &k : gen->knobs)
        keys.push_back(k.key);
    std::string msg = "corpus override '" + key + "': generator '" +
                      gen_name + "' has no knob '" + knob_name + "'";
    const std::string s = nearest(knob_name, keys);
    if (!s.empty())
        msg += " (did you mean '" + s + "'?)";
    throw std::invalid_argument(msg);
}

} // namespace

void
validateCorpusOverride(const std::string &key, const std::string &value)
{
    const CorpusGenerator *gen = nullptr;
    const CorpusKnob &knob = findOverrideKnob(key, gen);
    const auto parsed = parseFiniteDouble(value);
    if (!parsed)
        throw std::invalid_argument(key + ": invalid number '" + value +
                                    "'");
    const double v = *parsed;
    if (knob.integer && v != std::floor(v))
        throw std::invalid_argument(key + ": expected an integer, got '" +
                                    value + "'");
    if (v < knob.min || v > knob.max)
        throw std::invalid_argument(
            key + ": " + value + " out of range [" +
            formatKnobValue(knob, knob.min) + ", " +
            formatKnobValue(knob, knob.max) + "]");
}

std::vector<TraceSpec>
applyCorpusOverrides(std::vector<TraceSpec> traces,
                     const std::map<std::string, std::string> &knobs)
{
    if (knobs.empty())
        return traces;
    for (const auto &[key, value] : knobs) {
        const CorpusGenerator *gen = nullptr;
        const CorpusKnob &knob = findOverrideKnob(key, gen);
        std::string gen_name, knob_name;
        splitOverrideKey(key, gen_name, knob_name);
        // Normalize through the validated double so the rebuilt spec
        // canonicalizes identically to the inline spelling.
        validateCorpusOverride(key, value);
        const std::string canon_value =
            formatKnobValue(knob, *parseFiniteDouble(value));

        const std::string spec_prefix = std::string(kPrefix) + gen_name;
        bool matched = false;
        for (TraceSpec &trace : traces) {
            const std::string &name = trace.name();
            if (!isCorpusSpec(name))
                continue;
            if (name != spec_prefix &&
                name.rfind(spec_prefix + ":", 0) != 0)
                continue;
            matched = true;
            // Drop any inline setting of the same knob, then append the
            // override; makeCorpusTrace re-canonicalizes the order.
            std::string rebuilt = spec_prefix;
            std::size_t start = spec_prefix.size();
            while (start < name.size()) {
                const std::size_t next = name.find(':', start + 1);
                const std::size_t end =
                    next == std::string::npos ? name.size() : next;
                const std::string field =
                    name.substr(start + 1, end - start - 1);
                if (field.rfind(knob_name + "=", 0) != 0)
                    rebuilt += ":" + field;
                start = end;
            }
            rebuilt += ":" + knob_name + "=" + canon_value;
            trace = makeCorpusTrace(rebuilt);
        }
        if (!matched)
            throw std::invalid_argument(
                key + ": no trace in this run uses generator 'corpus." +
                gen_name + "' (the override would be dead)");
    }
    return traces;
}

std::string
describeCorpus()
{
    std::ostringstream out;
    out << "Corpus generators (corpus.<name>[:knob=value]...; also "
           "settable as corpus.<name>.<knob> config keys):\n";
    for (const auto &g : corpusGenerators()) {
        out << "  corpus." << g.name << " — " << g.doc << "\n";
        for (const auto &k : g.knobs)
            out << "    " << k.key << " — " << k.doc << " ["
                << formatKnobValue(k, k.min) << ".."
                << formatKnobValue(k, k.max) << "]\n";
    }
    return out.str();
}

} // namespace hermes
