#include "trace/trace_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#if HERMES_HAVE_ZLIB
#include <zlib.h>
#endif
#if HERMES_HAVE_LZMA
#include <lzma.h>
#endif

namespace hermes
{

namespace
{

[[noreturn]] void
fail(const std::string &msg)
{
    throw std::runtime_error("trace io: " + msg);
}

/** Compressed-side buffer: bounds resident memory per open stream. */
constexpr std::size_t kIoChunk = 64 * 1024;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr
openForRead(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fail("cannot open " + path + ": " + std::strerror(errno));
    return f;
}

Compression
sniffCompression(std::FILE *f, const std::string &path)
{
    unsigned char magic[6] = {};
    const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
    if (std::fseek(f, 0, SEEK_SET) != 0)
        fail("cannot rewind " + path);
    if (got >= 2 && magic[0] == 0x1f && magic[1] == 0x8b)
        return Compression::Gzip;
    static const unsigned char xz_magic[6] = {0xfd, '7',  'z',
                                              'X',  'Z',  0x00};
    if (got >= 6 && std::memcmp(magic, xz_magic, 6) == 0)
        return Compression::Xz;
    return Compression::None;
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

class RawFileSource final : public ByteSource
{
  public:
    RawFileSource(FilePtr f, std::string path)
        : f_(std::move(f)), path_(std::move(path))
    {
    }

    std::size_t
    read(void *data, std::size_t size) override
    {
        const std::size_t got = std::fread(data, 1, size, f_.get());
        if (got < size && std::ferror(f_.get()))
            fail("read error on " + path_);
        return got;
    }

    void
    rewind() override
    {
        if (std::fseek(f_.get(), 0, SEEK_SET) != 0)
            fail("cannot rewind " + path_);
    }

    const std::string &path() const override { return path_; }
    Compression compression() const override { return Compression::None; }

    std::int64_t
    sizeHint() const override
    {
        struct stat st;
        if (fstat(fileno(f_.get()), &st) != 0)
            return -1;
        return static_cast<std::int64_t>(st.st_size);
    }

  private:
    FilePtr f_;
    std::string path_;
};

#if HERMES_HAVE_ZLIB

class GzipSource final : public ByteSource
{
  public:
    GzipSource(FilePtr f, std::string path)
        : f_(std::move(f)), path_(std::move(path)), in_(kIoChunk)
    {
        std::memset(&z_, 0, sizeof(z_));
        // windowBits 15+16: gzip wrapper only.
        if (inflateInit2(&z_, 15 + 16) != Z_OK)
            fail("inflateInit failed for " + path_);
        live_ = true;
    }

    ~GzipSource() override
    {
        if (live_)
            inflateEnd(&z_);
    }

    std::size_t
    read(void *data, std::size_t size) override
    {
        std::size_t total = 0;
        auto *out = static_cast<unsigned char *>(data);
        while (total < size && !done_) {
            if (z_.avail_in == 0) {
                const std::size_t got =
                    std::fread(in_.data(), 1, in_.size(), f_.get());
                if (got == 0 && std::ferror(f_.get()))
                    fail("read error on " + path_);
                input_eof_ = got == 0;
                z_.next_in = in_.data();
                z_.avail_in = static_cast<unsigned>(got);
            }
            z_.next_out = out + total;
            z_.avail_out = static_cast<unsigned>(size - total);
            const int rc = inflate(&z_, Z_NO_FLUSH);
            total = size - z_.avail_out;
            if (rc == Z_STREAM_END) {
                // Concatenated gzip members are one logical stream.
                if (z_.avail_in > 0 || !input_eof_) {
                    if (inflateReset(&z_) != Z_OK)
                        fail("corrupt gzip stream in " + path_);
                    // A clean EOF right after a member is fine; probe
                    // for more input on the next loop iteration.
                    if (z_.avail_in == 0 && probeEof())
                        done_ = true;
                } else {
                    done_ = true;
                }
                continue;
            }
            if (rc != Z_OK && rc != Z_BUF_ERROR)
                fail("corrupt gzip stream in " + path_ +
                     (z_.msg != nullptr ? std::string(": ") + z_.msg
                                        : std::string()));
            if (rc == Z_BUF_ERROR && z_.avail_in == 0 && input_eof_)
                fail("truncated gzip stream in " + path_);
        }
        return total;
    }

    void
    rewind() override
    {
        if (std::fseek(f_.get(), 0, SEEK_SET) != 0)
            fail("cannot rewind " + path_);
        if (inflateReset(&z_) != Z_OK)
            fail("inflateReset failed for " + path_);
        z_.avail_in = 0;
        z_.next_in = in_.data();
        done_ = input_eof_ = false;
    }

    const std::string &path() const override { return path_; }
    Compression compression() const override { return Compression::Gzip; }
    std::int64_t sizeHint() const override { return -1; }

  private:
    /** True when the underlying file has no bytes left. */
    bool
    probeEof()
    {
        const std::size_t got =
            std::fread(in_.data(), 1, in_.size(), f_.get());
        if (got == 0 && std::ferror(f_.get()))
            fail("read error on " + path_);
        z_.next_in = in_.data();
        z_.avail_in = static_cast<unsigned>(got);
        input_eof_ = got == 0;
        return got == 0;
    }

    FilePtr f_;
    std::string path_;
    std::vector<unsigned char> in_;
    z_stream z_{};
    bool live_ = false;
    bool done_ = false;
    bool input_eof_ = false;
};

#endif // HERMES_HAVE_ZLIB

#if HERMES_HAVE_LZMA

class XzSource final : public ByteSource
{
  public:
    XzSource(FilePtr f, std::string path)
        : f_(std::move(f)), path_(std::move(path)), in_(kIoChunk)
    {
        initDecoder();
    }

    ~XzSource() override { lzma_end(&z_); }

    std::size_t
    read(void *data, std::size_t size) override
    {
        std::size_t total = 0;
        auto *out = static_cast<std::uint8_t *>(data);
        while (total < size && !done_) {
            if (z_.avail_in == 0 && !input_eof_) {
                const std::size_t got =
                    std::fread(in_.data(), 1, in_.size(), f_.get());
                if (got == 0 && std::ferror(f_.get()))
                    fail("read error on " + path_);
                input_eof_ = got == 0;
                z_.next_in = in_.data();
                z_.avail_in = got;
            }
            z_.next_out = out + total;
            z_.avail_out = size - total;
            const lzma_ret rc =
                lzma_code(&z_, input_eof_ ? LZMA_FINISH : LZMA_RUN);
            total = size - z_.avail_out;
            if (rc == LZMA_STREAM_END) {
                done_ = true;
            } else if (rc == LZMA_BUF_ERROR && input_eof_) {
                fail("truncated xz stream in " + path_);
            } else if (rc != LZMA_OK && rc != LZMA_BUF_ERROR) {
                fail("corrupt xz stream in " + path_);
            }
        }
        return total;
    }

    void
    rewind() override
    {
        if (std::fseek(f_.get(), 0, SEEK_SET) != 0)
            fail("cannot rewind " + path_);
        lzma_end(&z_);
        initDecoder();
    }

    const std::string &path() const override { return path_; }
    Compression compression() const override { return Compression::Xz; }
    std::int64_t sizeHint() const override { return -1; }

  private:
    void
    initDecoder()
    {
        z_ = LZMA_STREAM_INIT;
        // LZMA_CONCATENATED: concatenated .xz members decode as one
        // stream, mirroring the gzip source.
        if (lzma_stream_decoder(&z_, UINT64_MAX, LZMA_CONCATENATED) !=
            LZMA_OK)
            fail("lzma decoder init failed for " + path_);
        done_ = input_eof_ = false;
    }

    FilePtr f_;
    std::string path_;
    std::vector<std::uint8_t> in_;
    lzma_stream z_ = LZMA_STREAM_INIT;
    bool done_ = false;
    bool input_eof_ = false;
};

#endif // HERMES_HAVE_LZMA

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/**
 * Shared atomic-publish plumbing: a temporary next to the destination
 * that commit() fsyncs and renames into place (the result_cache
 * publish discipline).
 */
class AtomicFile
{
  public:
    explicit AtomicFile(std::string path)
        : path_(std::move(path)),
          tmp_(path_ + ".tmp." + std::to_string(::getpid()))
    {
        f_ = std::fopen(tmp_.c_str(), "wb");
        if (f_ == nullptr)
            fail("cannot write " + tmp_ + ": " + std::strerror(errno));
    }

    ~AtomicFile()
    {
        if (f_ != nullptr) {
            std::fclose(f_);
            static_cast<void>(::unlink(tmp_.c_str()));
        }
    }

    void
    write(const void *data, std::size_t size)
    {
        if (std::fwrite(data, 1, size, f_) != size)
            fail("write failed on " + tmp_ + ": " +
                 std::strerror(errno));
    }

    void
    commit()
    {
        if (std::fflush(f_) != 0 || fsync(fileno(f_)) != 0) {
            fail("flush failed on " + tmp_ + ": " +
                 std::strerror(errno));
        }
        std::fclose(f_);
        f_ = nullptr;
        if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
            const int err = errno;
            static_cast<void>(::unlink(tmp_.c_str()));
            fail("cannot publish " + path_ + ": " +
                 std::strerror(err));
        }
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string tmp_;
    std::FILE *f_ = nullptr;
};

class RawFileSink final : public ByteSink
{
  public:
    explicit RawFileSink(const std::string &path) : file_(path) {}

    void
    write(const void *data, std::size_t size) override
    {
        file_.write(data, size);
    }

    void finish() override { file_.commit(); }
    const std::string &path() const override { return file_.path(); }

  private:
    AtomicFile file_;
};

#if HERMES_HAVE_ZLIB

class GzipSink final : public ByteSink
{
  public:
    explicit GzipSink(const std::string &path)
        : file_(path), out_(kIoChunk)
    {
        std::memset(&z_, 0, sizeof(z_));
        if (deflateInit2(&z_, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                         15 + 16, 8, Z_DEFAULT_STRATEGY) != Z_OK)
            fail("deflateInit failed for " + path);
        live_ = true;
    }

    ~GzipSink() override
    {
        if (live_)
            deflateEnd(&z_);
    }

    void
    write(const void *data, std::size_t size) override
    {
        z_.next_in =
            const_cast<Bytef *>(static_cast<const Bytef *>(data));
        z_.avail_in = static_cast<unsigned>(size);
        pump(Z_NO_FLUSH);
    }

    void
    finish() override
    {
        z_.next_in = nullptr;
        z_.avail_in = 0;
        pump(Z_FINISH);
        file_.commit();
    }

    const std::string &path() const override { return file_.path(); }

  private:
    void
    pump(int flush)
    {
        do {
            z_.next_out = out_.data();
            z_.avail_out = static_cast<unsigned>(out_.size());
            const int rc = deflate(&z_, flush);
            if (rc == Z_STREAM_ERROR)
                fail("deflate failed for " + file_.path());
            const std::size_t produced = out_.size() - z_.avail_out;
            if (produced > 0)
                file_.write(out_.data(), produced);
            if (flush == Z_FINISH && rc == Z_STREAM_END)
                break;
        } while (z_.avail_in > 0 || z_.avail_out == 0 ||
                 flush == Z_FINISH);
    }

    AtomicFile file_;
    std::vector<unsigned char> out_;
    z_stream z_{};
    bool live_ = false;
};

#endif // HERMES_HAVE_ZLIB

#if HERMES_HAVE_LZMA

class XzSink final : public ByteSink
{
  public:
    explicit XzSink(const std::string &path)
        : file_(path), out_(kIoChunk)
    {
        z_ = LZMA_STREAM_INIT;
        if (lzma_easy_encoder(&z_, 6, LZMA_CHECK_CRC64) != LZMA_OK)
            fail("lzma encoder init failed for " + path);
    }

    ~XzSink() override { lzma_end(&z_); }

    void
    write(const void *data, std::size_t size) override
    {
        z_.next_in = static_cast<const std::uint8_t *>(data);
        z_.avail_in = size;
        pump(LZMA_RUN);
    }

    void
    finish() override
    {
        z_.next_in = nullptr;
        z_.avail_in = 0;
        pump(LZMA_FINISH);
        file_.commit();
    }

    const std::string &path() const override { return file_.path(); }

  private:
    void
    pump(lzma_action action)
    {
        while (true) {
            z_.next_out = out_.data();
            z_.avail_out = out_.size();
            const lzma_ret rc = lzma_code(&z_, action);
            if (rc != LZMA_OK && rc != LZMA_STREAM_END)
                fail("xz compression failed for " + file_.path());
            const std::size_t produced = out_.size() - z_.avail_out;
            if (produced > 0)
                file_.write(out_.data(), produced);
            if (action == LZMA_RUN && z_.avail_in == 0)
                break;
            if (action == LZMA_FINISH && rc == LZMA_STREAM_END)
                break;
        }
    }

    AtomicFile file_;
    std::vector<std::uint8_t> out_;
    lzma_stream z_ = LZMA_STREAM_INIT;
};

#endif // HERMES_HAVE_LZMA

[[noreturn]] [[maybe_unused]] void
failUnsupported(Compression c, const std::string &path)
{
    const char *lib = c == Compression::Gzip ? "zlib" : "liblzma";
    fail(std::string(compressionName(c)) + " stream " + path +
         " needs " + lib + ", which this build lacks (rebuild with " +
         lib + " development headers installed)");
}

} // namespace

const char *
compressionName(Compression c)
{
    switch (c) {
      case Compression::Gzip:
        return "gzip";
      case Compression::Xz:
        return "xz";
      case Compression::None:
        break;
    }
    return "none";
}

bool
compressionSupported(Compression c)
{
    switch (c) {
      case Compression::Gzip:
#if HERMES_HAVE_ZLIB
        return true;
#else
        return false;
#endif
      case Compression::Xz:
#if HERMES_HAVE_LZMA
        return true;
#else
        return false;
#endif
      case Compression::None:
        break;
    }
    return true;
}

Compression
compressionForPath(const std::string &path)
{
    auto ends_with = [&path](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    if (ends_with(".gz"))
        return Compression::Gzip;
    if (ends_with(".xz"))
        return Compression::Xz;
    return Compression::None;
}

std::unique_ptr<ByteSource>
openByteSource(const std::string &path)
{
    FilePtr f = openForRead(path);
    const Compression c = sniffCompression(f.get(), path);
    switch (c) {
      case Compression::Gzip:
#if HERMES_HAVE_ZLIB
        return std::make_unique<GzipSource>(std::move(f), path);
#else
        failUnsupported(c, path);
#endif
      case Compression::Xz:
#if HERMES_HAVE_LZMA
        return std::make_unique<XzSource>(std::move(f), path);
#else
        failUnsupported(c, path);
#endif
      case Compression::None:
        break;
    }
    return std::make_unique<RawFileSource>(std::move(f), path);
}

std::unique_ptr<ByteSink>
openByteSink(const std::string &path, Compression compression)
{
    switch (compression) {
      case Compression::Gzip:
#if HERMES_HAVE_ZLIB
        return std::make_unique<GzipSink>(path);
#else
        failUnsupported(compression, path);
#endif
      case Compression::Xz:
#if HERMES_HAVE_LZMA
        return std::make_unique<XzSink>(path);
#else
        failUnsupported(compression, path);
#endif
      case Compression::None:
        break;
    }
    return std::make_unique<RawFileSink>(path);
}

} // namespace hermes
