#pragma once

/**
 * @file
 * The evaluation suite: named synthetic traces grouped into the paper's
 * five workload categories (SPEC06, SPEC17, PARSEC, Ligra, CVP). Each
 * entry mirrors the memory behaviour of a representative workload the
 * paper's trace list contains (e.g. mcf -> dependent pointer chase,
 * lbm -> dense stream, Ligra PageRank -> gather).
 */

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"
#include "trace/workload.hh"

namespace hermes
{

/** Where a TraceSpec's instructions come from. */
enum class TraceSource : std::uint8_t
{
    Synthetic, ///< Generated from SyntheticParams
    File,      ///< Streamed from an on-disk trace (filePath)
};

/**
 * A named trace: category + generator parameters, or a file replay.
 * The name is the trace's identity everywhere (reports, result-cache
 * keys, pointFingerprint); file traces use "file:<path>".
 */
struct TraceSpec
{
    SyntheticParams params;
    TraceSource source = TraceSource::Synthetic;
    std::string filePath;

    TraceSpec() = default;
    explicit TraceSpec(SyntheticParams p) : params(std::move(p)) {}

    const std::string &name() const { return params.name; }
    const std::string &category() const { return params.category; }

    /** Instantiate a fresh workload for this trace. */
    std::unique_ptr<Workload> make() const;
};

/** The full 28-trace evaluation suite across all five categories. */
std::vector<TraceSpec> fullSuite();

/** A fast 10-trace subset (2 per category) for quick runs and tests. */
std::vector<TraceSpec> quickSuite();

/** All distinct categories in suite order. */
std::vector<std::string> suiteCategories();

/** Look a trace up by name; throws std::out_of_range if unknown. */
TraceSpec findTrace(const std::string &name);

/**
 * Reject duplicate trace names in a suite: names are trace identity
 * (fingerprints, result-cache keys, per-trace stats), so a duplicate
 * silently merges two workloads. Throws std::invalid_argument naming
 * the colliding trace.
 */
void validateUniqueTraceNames(const std::vector<TraceSpec> &suite);

} // namespace hermes
