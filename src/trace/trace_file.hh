#pragma once

/**
 * @file
 * Binary trace file support, ChampSim-style: any workload (synthetic or
 * otherwise) can be captured to a compact on-disk format and replayed
 * later, which makes experiments shareable and lets users bring their
 * own traces without linking against the generators.
 *
 * Format (little-endian):
 *   header: magic "HRMTRACE" (8B) | version u32 | reserved u32
 *           | name length u32 | name bytes | category length u32
 *           | category bytes | record count u64
 *   records: { pc u64 | vaddr u64 | depDistance u32 | kind u8
 *              | branchTaken u8 | pad u16 } x count
 *
 * A replayed trace loops when it reaches the end (workloads are
 * infinite streams by contract).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace hermes
{

/** Magic bytes identifying a Hermes trace file. */
inline constexpr char kTraceMagic[8] = {'H', 'R', 'M', 'T',
                                        'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

/**
 * Capture @p count instructions of @p workload into @p path.
 * @return true on success.
 */
bool writeTraceFile(const std::string &path, Workload &workload,
                    std::uint64_t count, const std::string &name,
                    const std::string &category);

/**
 * Replays a trace file as an infinite workload (loops at EOF).
 * Construction throws std::runtime_error on malformed files.
 */
class FileWorkload : public Workload
{
  public:
    explicit FileWorkload(const std::string &path);

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return category_; }
    TraceInstr next() override;
    std::unique_ptr<Workload> clone(std::uint64_t seed_offset) const
        override;

    std::uint64_t recordCount() const { return records_.size(); }

  private:
    FileWorkload() = default;

    std::string path_;
    std::string name_;
    std::string category_;
    std::vector<TraceInstr> records_;
    std::size_t pos_ = 0;
};

} // namespace hermes
