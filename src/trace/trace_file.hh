#pragma once

/**
 * @file
 * On-disk trace capture and replay: any workload (synthetic or
 * otherwise) can be captured to a compact on-disk format and replayed
 * later, which makes experiments shareable and lets users bring their
 * own traces without linking against the generators.
 *
 * Native HRMTRACE format (little-endian):
 *   header: magic "HRMTRACE" (8B) | version u32 | reserved u32
 *           | name length u32 | name bytes | category length u32
 *           | category bytes | record count u64
 *   records: { pc u64 | vaddr u64 | depDistance u32 | kind u8
 *              | branchTaken u8 | pad u16 } x count
 *
 * Replay streams through a TraceReader with a fixed-size chunk buffer
 * (bounded memory however large the file), understands ChampSim-format
 * traces (by file name, see formatForPath) and gzip/xz compression (by
 * magic bytes), and loops when it reaches the end — workloads are
 * infinite streams by contract.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace_reader.hh"
#include "trace/workload.hh"

namespace hermes
{

/** Magic bytes identifying a Hermes trace file. */
inline constexpr char kTraceMagic[8] = {'H', 'R', 'M', 'T',
                                        'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

/**
 * Capture @p count instructions of @p workload into @p path. Format and
 * compression follow the file name (formatForPath/compressionForPath;
 * plain names produce uncompressed HRMTRACE). The write is crash-safe:
 * bytes stream into a temporary that is fsync'd and atomically renamed
 * into place, so a crash leaves either the old file or nothing.
 *
 * @return features the chosen format could not represent (0 for
 *         HRMTRACE; ChampSim drops load dependences > 255).
 * @throws std::runtime_error with a descriptive message on any I/O,
 *         codec or validation failure.
 */
std::uint64_t writeTraceFile(const std::string &path,
                             Workload &workload, std::uint64_t count,
                             const std::string &name,
                             const std::string &category);

/**
 * Replays a trace file as an infinite workload (loops at EOF) while
 * holding only a fixed-size read buffer resident — a multi-GB trace
 * streams from disk. Construction throws std::runtime_error on
 * malformed files; ChampSim traces are fully scanned once up front so
 * corruption fails at open, not mid-simulation.
 */
class FileWorkload : public Workload
{
  public:
    explicit FileWorkload(const std::string &path);

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return category_; }
    TraceInstr next() override;

    /**
     * Replica starting at a rotated position derived from
     * mix64(seed_offset), so multi-core copies of the same file do not
     * run in lockstep (for seed_offset > 0 and more than one record,
     * the rotation is guaranteed nonzero). File replays have no RNG,
     * so rotation is the whole seed-offset contract here.
     */
    std::unique_ptr<Workload> clone(std::uint64_t seed_offset) const
        override;

    /** Instructions per replay loop (ChampSim records expand 1:N). */
    std::uint64_t recordCount() const { return instrCount_; }

    /** Fixed buffering held by the streaming reader. */
    std::size_t residentBytes() const;

    /**
     * File replays checkpoint as their absolute loop position: restore
     * rewinds the reader and re-skips, so the (stateful, compressed)
     * reader internals never have to serialize.
     */
    bool checkpointable() const override { return true; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    FileWorkload() = default;

    std::string path_;
    std::string name_;
    std::string category_;
    std::uint64_t instrCount_ = 0;
    std::uint64_t pos_ = 0; ///< Instructions consumed this loop
    std::unique_ptr<TraceReader> reader_;
};

} // namespace hermes
