#include "trace/resolve.hh"

#include <cstring>
#include <stdexcept>

#include <sys/stat.h>

#include "common/config.hh"
#include "trace/corpus.hh"
#include "trace/trace_file.hh"

namespace hermes
{

namespace
{

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/**
 * Heuristic for bare paths given without the "file:" prefix: anything
 * with a directory separator, or a bare file name that actually exists
 * with a trace-like extension. A bare word that matches neither stays
 * a (mistyped) suite-trace name — "no.such.trace" should suggest suite
 * names, not report a failed open; spell it "file:no.such.trace" to
 * force the file path and get the precise I/O error.
 */
bool
looksLikePath(const std::string &s)
{
    if (s.find('/') != std::string::npos)
        return true;
    for (const char *ext : {".hrm", ".trace", ".champsim",
                            ".champsimtrace", ".gz", ".xz", ".bin"}) {
        if (!endsWith(s, ext))
            continue;
        struct stat st;
        return ::stat(s.c_str(), &st) == 0;
    }
    return false;
}

TraceSpec
fileTrace(const std::string &path)
{
    TraceSpec spec;
    spec.source = TraceSource::File;
    spec.filePath = path;
    spec.params.name = "file:" + path;
    // Open and header-validate now, so a missing file or torn header
    // fails at resolve time, not minutes into a sweep.
    TraceReader reader(openByteSource(path), formatForPath(path));
    const TraceMeta &meta = reader.meta();
    if (meta.format == TraceFormat::ChampSim)
        spec.params.category = "CHAMPSIM";
    else
        spec.params.category =
            meta.category.empty() ? "FILE" : meta.category;
    return spec;
}

} // namespace

TraceSpec
resolveTrace(const std::string &spec)
{
    if (spec.empty())
        throw std::invalid_argument("empty trace spec");
    if (isCorpusSpec(spec))
        return makeCorpusTrace(spec);
    if (spec.rfind("file:", 0) == 0)
        return fileTrace(spec.substr(5));
    try {
        return findTrace(spec);
    } catch (const std::out_of_range &) {
        // fall through to the path heuristic / suggestion below
    }
    if (looksLikePath(spec))
        return fileTrace(spec);

    std::string best;
    std::size_t best_dist = static_cast<std::size_t>(-1);
    for (const auto &t : fullSuite()) {
        const std::size_t d = editDistance(spec, t.name());
        if (d < best_dist) {
            best_dist = d;
            best = t.name();
        }
    }
    std::string msg = "unknown trace '" + spec + "'";
    if (best_dist <= 3)
        msg += " (did you mean '" + best + "'?)";
    msg += "; expected a suite trace name, "
           "corpus.<generator>[:knob=value...], or file:<path>";
    throw std::invalid_argument(msg);
}

std::vector<TraceSpec>
resolveSuite(const std::string &spec)
{
    if (spec == "full")
        return fullSuite();
    if (spec == "quick")
        return quickSuite();
    std::vector<TraceSpec> out;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        const std::string item = spec.substr(start, end - start);
        if (!item.empty())
            out.push_back(resolveTrace(item));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty())
        throw std::invalid_argument(
            "empty suite spec (expected quick, full, or a "
            "comma-separated trace list)");
    validateUniqueTraceNames(out);
    return out;
}

} // namespace hermes
