#include "trace/trace_file.hh"

#include <stdexcept>

#include "common/rng.hh"
#include "common/state_io.hh"
#include "trace/trace_io.hh"

namespace hermes
{

std::uint64_t
writeTraceFile(const std::string &path, Workload &workload,
               std::uint64_t count, const std::string &name,
               const std::string &category)
{
    auto writer =
        openTraceWriter(path, formatForPath(path),
                        compressionForPath(path), count, name, category);
    for (std::uint64_t i = 0; i < count; ++i)
        writer->append(workload.next());
    writer->finish();
    return writer->droppedDeps();
}

FileWorkload::FileWorkload(const std::string &path) : path_(path)
{
    reader_ = std::make_unique<TraceReader>(openByteSource(path),
                                            formatForPath(path));
    const TraceMeta &meta = reader_->meta();
    if (meta.format == TraceFormat::Hrmtrace) {
        name_ = meta.name;
        category_ = meta.category;
        instrCount_ = meta.recordCount;
        return;
    }
    // ChampSim traces carry no header: scan the stream once so every
    // record is validated and the loop length is known, then rewind.
    name_ = path.substr(path.find_last_of('/') + 1);
    category_ = "CHAMPSIM";
    TraceInstr t;
    while (reader_->next(t))
        ++instrCount_;
    if (instrCount_ == 0)
        throw std::runtime_error("empty champsim trace: " + path);
    reader_->rewind();
}

TraceInstr
FileWorkload::next()
{
    if (pos_ == instrCount_) {
        reader_->rewind();
        pos_ = 0;
    }
    TraceInstr t;
    if (!reader_->next(t))
        throw std::runtime_error("trace ended early: " + path_);
    ++pos_;
    return t;
}

std::unique_ptr<Workload>
FileWorkload::clone(std::uint64_t seed_offset) const
{
    auto copy = std::unique_ptr<FileWorkload>(new FileWorkload());
    copy->path_ = path_;
    copy->name_ = name_;
    copy->category_ = category_;
    copy->instrCount_ = instrCount_;
    copy->reader_ = std::make_unique<TraceReader>(
        openByteSource(path_), formatForPath(path_));
    // Start replicas at a rotated position so multi-core copies of the
    // same file do not run in lockstep. mix64 decorrelates the start
    // from the raw offset (the old offset*9973 scheme collapsed every
    // replica onto position 0 whenever the record count divided the
    // product); the fallback keeps distinct nonzero offsets off the
    // base workload's start position.
    std::uint64_t start = 0;
    if (seed_offset > 0 && instrCount_ > 1) {
        start = mix64(seed_offset) % instrCount_;
        if (start == 0)
            start = 1 + (seed_offset - 1) % (instrCount_ - 1);
    }
    TraceInstr t;
    for (std::uint64_t i = 0; i < start; ++i)
        static_cast<void>(copy->reader_->next(t));
    copy->pos_ = start;
    return copy;
}

void
FileWorkload::saveState(StateWriter &w) const
{
    w.section("WFIL");
    w.str(name_);
    w.u64(instrCount_);
    w.u64(pos_);
}

void
FileWorkload::loadState(StateReader &r)
{
    r.section("WFIL");
    const std::string name = r.str();
    const std::uint64_t count = r.u64();
    const std::uint64_t target = r.u64();
    if (name != name_ || count != instrCount_ || target > instrCount_)
        throw StateError("checkpointed trace '" + name +
                         "' does not match workload '" + name_ + "'");
    // Reposition by replaying through next(): the reader's compressed
    // stream state rebuilds itself, and the loop/rewind behavior is by
    // construction identical to a straight run's.
    reader_->rewind();
    pos_ = 0;
    for (std::uint64_t i = 0; i < target; ++i)
        static_cast<void>(next());
}

std::size_t
FileWorkload::residentBytes() const
{
    return sizeof(*this) + reader_->residentBytes();
}

} // namespace hermes
