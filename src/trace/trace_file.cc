#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace hermes
{

namespace
{

/** On-disk record layout (fixed 24 bytes). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t vaddr;
    std::uint32_t depDistance;
    std::uint8_t kind;
    std::uint8_t branchTaken;
    std::uint16_t pad;
};
static_assert(sizeof(DiskRecord) == 24, "unexpected record padding");

bool
writeBytes(std::FILE *f, const void *data, std::size_t size)
{
    return std::fwrite(data, 1, size, f) == size;
}

bool
writeString(std::FILE *f, const std::string &s)
{
    const auto len = static_cast<std::uint32_t>(s.size());
    return writeBytes(f, &len, sizeof(len)) &&
           writeBytes(f, s.data(), s.size());
}

bool
readBytes(std::FILE *f, void *data, std::size_t size)
{
    return std::fread(data, 1, size, f) == size;
}

bool
readString(std::FILE *f, std::string &out)
{
    std::uint32_t len = 0;
    if (!readBytes(f, &len, sizeof(len)) || len > (1u << 20))
        return false;
    out.resize(len);
    return len == 0 || readBytes(f, out.data(), len);
}

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTraceFile(const std::string &path, Workload &workload,
               std::uint64_t count, const std::string &name,
               const std::string &category)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    const std::uint32_t version = kTraceVersion;
    const std::uint32_t reserved = 0;
    if (!writeBytes(f.get(), kTraceMagic, sizeof(kTraceMagic)) ||
        !writeBytes(f.get(), &version, sizeof(version)) ||
        !writeBytes(f.get(), &reserved, sizeof(reserved)) ||
        !writeString(f.get(), name) || !writeString(f.get(), category) ||
        !writeBytes(f.get(), &count, sizeof(count)))
        return false;

    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceInstr t = workload.next();
        DiskRecord rec{};
        rec.pc = t.pc;
        rec.vaddr = t.vaddr;
        rec.depDistance = t.depDistance;
        rec.kind = static_cast<std::uint8_t>(t.kind);
        rec.branchTaken = t.branchTaken ? 1 : 0;
        if (!writeBytes(f.get(), &rec, sizeof(rec)))
            return false;
    }
    return true;
}

FileWorkload::FileWorkload(const std::string &path) : path_(path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw std::runtime_error("cannot open trace file: " + path);

    char magic[8];
    std::uint32_t version = 0, reserved = 0;
    if (!readBytes(f.get(), magic, sizeof(magic)) ||
        std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        throw std::runtime_error("not a Hermes trace file: " + path);
    if (!readBytes(f.get(), &version, sizeof(version)) ||
        version != kTraceVersion)
        throw std::runtime_error("unsupported trace version in " + path);
    if (!readBytes(f.get(), &reserved, sizeof(reserved)) ||
        !readString(f.get(), name_) || !readString(f.get(), category_))
        throw std::runtime_error("corrupt trace header in " + path);

    std::uint64_t count = 0;
    if (!readBytes(f.get(), &count, sizeof(count)) || count == 0)
        throw std::runtime_error("empty or corrupt trace: " + path);

    // Validate the header's record count against the actual file size
    // before reserving: a corrupt count must fail cleanly instead of
    // attempting a multi-exabyte allocation.
    const long record_start = std::ftell(f.get());
    if (record_start < 0 || std::fseek(f.get(), 0, SEEK_END) != 0)
        throw std::runtime_error("cannot size trace file: " + path);
    const long file_end = std::ftell(f.get());
    if (file_end < record_start ||
        std::fseek(f.get(), record_start, SEEK_SET) != 0)
        throw std::runtime_error("cannot size trace file: " + path);
    const std::uint64_t available =
        static_cast<std::uint64_t>(file_end - record_start);
    if (count > available / sizeof(DiskRecord))
        throw std::runtime_error("truncated trace file: " + path);

    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        DiskRecord rec{};
        if (!readBytes(f.get(), &rec, sizeof(rec)))
            throw std::runtime_error("truncated trace file: " + path);
        if (rec.kind > static_cast<std::uint8_t>(InstrKind::Branch))
            throw std::runtime_error("corrupt record in " + path);
        TraceInstr t;
        t.pc = rec.pc;
        t.vaddr = rec.vaddr;
        t.depDistance = rec.depDistance;
        t.kind = static_cast<InstrKind>(rec.kind);
        t.branchTaken = rec.branchTaken != 0;
        records_.push_back(t);
    }
}

TraceInstr
FileWorkload::next()
{
    const TraceInstr t = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    return t;
}

std::unique_ptr<Workload>
FileWorkload::clone(std::uint64_t seed_offset) const
{
    auto copy = std::unique_ptr<FileWorkload>(new FileWorkload());
    copy->path_ = path_;
    copy->name_ = name_;
    copy->category_ = category_;
    copy->records_ = records_;
    // Start replicas at a rotated position so multi-core copies of the
    // same file do not run in lockstep.
    copy->pos_ = records_.empty()
                     ? 0
                     : (seed_offset * 9973) % records_.size();
    return copy;
}

} // namespace hermes
