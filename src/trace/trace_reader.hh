#pragma once

/**
 * @file
 * Streaming trace readers and writers over the byte-stream layer.
 *
 * A TraceReader decodes an on-disk trace into TraceInstr records one at
 * a time through a fixed-size chunk buffer, so replaying a multi-GB
 * (possibly compressed) trace holds O(100KB) resident regardless of
 * trace length. Two formats are understood:
 *
 *  - HRMTRACE: the native format (header + 24-byte records, see
 *    trace_file.hh). Lossless.
 *  - ChampSim: the 64-byte packed record format of the ChampSim
 *    simulator ecosystem the source paper evaluates with
 *    ({ip u64; is_branch u8; branch_taken u8; destRegs u8[2];
 *      srcRegs u8[4]; destMem u64[2]; srcMem u64[4]}).
 *
 * ChampSim import expands each record deterministically: source-memory
 * loads in slot order, then the branch (or a plain ALU op when the
 * record touches no memory and is not a branch), then destination-memory
 * stores. Register writes are tracked through a 256-entry last-writer
 * table so a load's register sources become a TraceInstr::depDistance
 * back to the youngest producing instruction — the same dependence the
 * synthetic generators express directly.
 *
 * ChampSim *export* encodes each TraceInstr as one record and cycles
 * destination-register tags so that a load's depDistance (up to 255)
 * survives a round trip through import; longer dependences cannot be
 * represented and are counted as dropped.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace hermes
{

/** On-disk trace encodings the reader/writer pair understands. */
enum class TraceFormat : std::uint8_t
{
    Hrmtrace, ///< Native header + 24-byte records (lossless)
    ChampSim, ///< ChampSim 64-byte packed records (deps > 255 dropped)
};

/** Human-readable format name ("hrmtrace", "champsim"). */
const char *traceFormatName(TraceFormat f);

/**
 * Format implied by a file name: after stripping a ".gz"/".xz"
 * extension, names ending in ".champsim", ".champsimtrace" or ".trace"
 * are ChampSim; everything else is HRMTRACE. (Read-side *compression*
 * is detected by magic, but ChampSim records have no magic, so format
 * follows the ecosystem's naming convention.)
 */
TraceFormat formatForPath(const std::string &path);

/** What a reader learned about a trace before decoding records. */
struct TraceMeta
{
    TraceFormat format = TraceFormat::Hrmtrace;
    Compression compression = Compression::None;
    /** Trace name from the HRMTRACE header; empty for ChampSim. */
    std::string name;
    /** Suite category from the HRMTRACE header; empty for ChampSim. */
    std::string category;
    /**
     * Instruction count from the HRMTRACE header; 0 for ChampSim
     * (unknown until the stream is scanned — records expand 1:N).
     */
    std::uint64_t recordCount = 0;
};

/**
 * Streaming decoder. next() yields instructions until clean
 * end-of-trace; corruption and truncation throw std::runtime_error
 * naming the file. rewind() restarts from the first instruction
 * (including ChampSim dependence-tracking state), so replay loops are
 * deterministic.
 */
class TraceReader
{
  public:
    TraceReader(std::unique_ptr<ByteSource> source, TraceFormat format);
    ~TraceReader();

    const TraceMeta &meta() const { return meta_; }

    /** Decode the next instruction; false at clean end-of-trace. */
    bool next(TraceInstr &out);

    /** Restart from the first instruction. */
    void rewind();

    /** Bytes of buffering this reader holds (excludes the source's
     * fixed codec buffers); stays constant however long the trace. */
    std::size_t residentBytes() const;

  private:
    /**
     * Copy exactly @p size bytes of record payload. Returns false when
     * the stream ended cleanly *before* the first byte; a partial
     * record throws.
     */
    bool readRecordBytes(void *out, std::size_t size);

    /** Like readRecordBytes but any shortfall is a header error. */
    void readHeaderBytes(void *out, std::size_t size);

    void parseHrmHeader();
    void expandChampSimRecord(const unsigned char *rec);

    std::unique_ptr<ByteSource> src_;
    TraceMeta meta_;

    std::vector<unsigned char> buf_;
    std::size_t bufPos_ = 0;
    std::size_t bufLen_ = 0;

    std::uint64_t headerBytes_ = 0;  ///< HRMTRACE record-area offset
    std::uint64_t recordsRead_ = 0;  ///< HRMTRACE records consumed

    // ChampSim expansion state
    std::array<TraceInstr, 8> pending_{};
    unsigned pendingPos_ = 0;
    unsigned pendingLen_ = 0;
    std::uint64_t emitted_ = 0; ///< 1-based emitted-instruction cursor
    std::array<std::uint64_t, 256> lastWrite_{};
};

/**
 * Streaming encoder counterpart. finish() verifies the promised record
 * count, flushes and atomically publishes the file (ByteSink
 * semantics); destroying an unfinished writer discards the temporary.
 */
class TraceWriter
{
  public:
    virtual ~TraceWriter() = default;

    virtual void append(const TraceInstr &instr) = 0;

    /** Verify count, flush, fsync and publish. Call exactly once. */
    virtual void finish() = 0;

    /** Features this format could not represent (ChampSim: load
     * depDistance > 255, non-load dependences, memory ops at vaddr 0);
     * always 0 for lossless formats. */
    virtual std::uint64_t droppedDeps() const = 0;

    virtual const std::string &path() const = 0;
};

/**
 * Create a writer for @p count instructions at @p path. @p name and
 * @p category go into the HRMTRACE header (ChampSim has no header and
 * ignores them). Throws std::runtime_error on I/O or codec errors.
 */
std::unique_ptr<TraceWriter> openTraceWriter(const std::string &path,
                                             TraceFormat format,
                                             Compression compression,
                                             std::uint64_t count,
                                             const std::string &name,
                                             const std::string &category);

} // namespace hermes
