#pragma once

/**
 * @file
 * Declarative workload corpus: named, parameterized synthetic
 * generators driven entirely by strings, so new workloads need no
 * recompilation — `hermes_run --trace corpus.chase:footprint_mb=512`
 * instantiates a half-GB pointer chase on the spot.
 *
 * Grammar (':'-separated so specs compose with the comma-separated
 * trace lists and the sweep server's ';'-separated point specs):
 *
 *   corpus.<generator>[:<knob>=<value>]...
 *
 * e.g. corpus.gather:degree=16:footprint_mb=256:seed=7
 *
 * Each generator exposes a fixed knob table (range-checked, with
 * nearest-key suggestions on typos, mirroring the param registry).
 * The *canonical* spec — knobs reordered into table order with
 * normalized value formatting — becomes the trace name, so two
 * spellings of the same workload share one identity everywhere a
 * trace name matters (reports, result-cache keys, pointFingerprint).
 */

#include <map>
#include <string>
#include <vector>

#include "trace/suite.hh"

namespace hermes
{

/** One string-settable parameter of a corpus generator. */
struct CorpusKnob
{
    const char *key;
    const char *doc;
    double min;
    double max;
    bool integer;
    void (*apply)(SyntheticParams &params, double value);
};

/** A named generator family and its knob table. */
struct CorpusGenerator
{
    const char *name; ///< Spec prefix after "corpus." (e.g. "chase")
    const char *doc;
    void (*defaults)(SyntheticParams &params);
    std::vector<CorpusKnob> knobs;
};

/** All registered generators, in listing order. */
const std::vector<CorpusGenerator> &corpusGenerators();

/** True when @p spec names a corpus workload ("corpus." prefix). */
bool isCorpusSpec(const std::string &spec);

/**
 * Parse a corpus spec into a ready-to-run TraceSpec whose name is the
 * canonical spec string and whose category is "CORPUS".
 * @throws std::invalid_argument naming the offending generator, knob
 *         or value (with a nearest-name suggestion where possible).
 */
TraceSpec makeCorpusTrace(const std::string &spec);

/** Human-readable generator/knob reference (docs gate + --list). */
std::string describeCorpus();

/**
 * Validate a "corpus.<generator>.<knob>" configuration override (the
 * param-registry spelling of a generator knob, so sweep axes can vary
 * corpus workloads like any "llc.*" key).
 * @throws std::invalid_argument naming the generator/knob/value defect.
 */
void validateCorpusOverride(const std::string &key,
                            const std::string &value);

/**
 * Re-canonicalize every corpus-backed spec in @p traces with the
 * "corpus.<generator>.<knob>" overrides in @p knobs applied (an
 * override replaces the same knob spelled inline in the spec).
 * @throws std::invalid_argument if an override targets a generator no
 *         trace in the list uses (a silently-dead axis otherwise).
 */
std::vector<TraceSpec>
applyCorpusOverrides(std::vector<TraceSpec> traces,
                     const std::map<std::string, std::string> &knobs);

} // namespace hermes
