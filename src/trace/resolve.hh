#pragma once

/**
 * @file
 * The one trace resolver every front end goes through (`hermes_run
 * --trace`, `hermes_sweep` grids, the sweep server's point specs and
 * the bench harness): a trace spec string is either
 *
 *   - a suite trace name      ("spec06.mcf_like.0"),
 *   - a corpus generator spec ("corpus.chase:footprint_mb=256"), or
 *   - an on-disk trace file   ("file:/path/to/t.champsim.gz", or a
 *     bare path containing '/' or a known trace extension).
 *
 * Suite names resolve exactly as before this resolver existed — trace
 * names feed pointFingerprint, so existing suite/golden fingerprints
 * stay byte-identical. File specs are opened and header-validated at
 * resolve time so a bad path fails before any simulation starts.
 */

#include <string>
#include <vector>

#include "trace/suite.hh"

namespace hermes
{

/**
 * Resolve one trace spec string.
 * @throws std::invalid_argument (unknown name/bad corpus knob, with
 *         suggestions) or std::runtime_error (unreadable file).
 */
TraceSpec resolveTrace(const std::string &spec);

/**
 * Resolve a suite spec: "quick", "full", or a comma-separated list of
 * trace specs (each resolved via resolveTrace; duplicate names are
 * rejected). Unknown bare words throw std::invalid_argument instead of
 * silently falling back to a default suite.
 */
std::vector<TraceSpec> resolveSuite(const std::string &spec);

} // namespace hermes
