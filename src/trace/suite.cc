#include "trace/suite.hh"

#include <stdexcept>
#include <unordered_set>

#include "trace/trace_file.hh"

namespace hermes
{

std::unique_ptr<Workload>
TraceSpec::make() const
{
    if (source == TraceSource::File)
        return std::make_unique<FileWorkload>(filePath);
    return std::make_unique<SyntheticWorkload>(params);
}

void
validateUniqueTraceNames(const std::vector<TraceSpec> &suite)
{
    std::unordered_set<std::string> seen;
    for (const auto &spec : suite)
        if (!seen.insert(spec.name()).second)
            throw std::invalid_argument("duplicate trace name in suite: " +
                                        spec.name());
}

namespace
{

SyntheticParams
base(std::string name, std::string category, Pattern pattern,
     std::uint64_t seed, std::uint64_t footprint_mb)
{
    SyntheticParams p;
    p.name = std::move(name);
    p.category = std::move(category);
    p.pattern = pattern;
    p.seed = seed;
    p.footprintBytes = footprint_mb << 20;
    return p;
}

std::vector<TraceSpec>
buildFullSuite()
{
    std::vector<TraceSpec> suite;
    auto add = [&suite](SyntheticParams p) {
        suite.push_back(TraceSpec{std::move(p)});
    };

    // ---- SPEC06-like -------------------------------------------------
    {
        // mcf: dependent pointer chasing over a large working set.
        auto p = base("spec06.mcf_like.0", "SPEC06", Pattern::PointerChase,
                      101, 64);
        p.chaseChains = 2;
        p.hitLoadFraction = 0.5;
        p.aluPerMemop = 16;
        add(p);
    }
    {
        // lbm: dense streaming with stores.
        auto p = base("spec06.lbm_like.0", "SPEC06", Pattern::Stream, 102,
                      64);
        p.strideBytes = 8;
        p.storeFraction = 0.35;
        p.aluPerMemop = 6;
        p.loadMlp = 24;
        add(p);
    }
    {
        // libquantum: long unit-stride sweeps, few branches mispredict.
        auto p = base("spec06.libquantum_like.0", "SPEC06", Pattern::Stream,
                      103, 32);
        p.strideBytes = 16;
        p.aluPerMemop = 8;
        p.loadMlp = 16;
        p.dataBranchFraction = 0.02;
        add(p);
    }
    {
        // omnetpp: pointer-heavy with moderate locality.
        auto p = base("spec06.omnetpp_like.0", "SPEC06",
                      Pattern::PointerChase, 104, 24);
        p.chaseChains = 1;
        p.hitLoadFraction = 0.8;
        p.aluPerMemop = 24;
        p.hotBytes = 64ull << 10;
        add(p);
    }
    {
        // gcc: branchy compute mix over several working sets.
        auto p = base("spec06.gcc_like.0", "SPEC06", Pattern::MixedCompute,
                      105, 48);
        p.mixColdFraction = 0.04;
        p.loadMlp = 12;
        p.dataBranchFraction = 0.25;
        p.dataBranchBias = 0.88;
        add(p);
    }
    {
        // cactusADM: stencil sweep with cross-row reuse.
        auto p = base("spec06.cactus_like.0", "SPEC06",
                      Pattern::StencilReuse, 106, 64);
        p.rowBytes = 2ull << 20;
        p.strideBytes = 8;
        p.loadMlp = 24;
        add(p);
    }

    // ---- SPEC17-like -------------------------------------------------
    {
        auto p = base("spec17.mcf_like.0", "SPEC17", Pattern::PointerChase,
                      201, 96);
        p.chaseChains = 3;
        p.hitLoadFraction = 0.4;
        p.aluPerMemop = 16;
        add(p);
    }
    {
        auto p = base("spec17.lbm_like.0", "SPEC17", Pattern::Stream, 202,
                      96);
        p.strideBytes = 8;
        p.storeFraction = 0.30;
        p.aluPerMemop = 6;
        p.loadMlp = 24;
        add(p);
    }
    {
        // fotonik3d: streaming with large stride.
        auto p = base("spec17.fotonik_like.0", "SPEC17", Pattern::Stride,
                      203, 64);
        p.strideBytes = 20;
        p.aluPerMemop = 10;
        p.loadMlp = 8;
        add(p);
    }
    {
        // pop2: stencil/ocean-model behaviour.
        auto p = base("spec17.pop2_like.0", "SPEC17", Pattern::StencilReuse,
                      204, 48);
        p.rowBytes = 1ull << 20;
        p.strideBytes = 16;
        p.loadMlp = 16;
        add(p);
    }
    {
        // xalancbmk: hash/table driven with hot metadata.
        auto p = base("spec17.xalancbmk_like.0", "SPEC17",
                      Pattern::HashProbe, 205, 32);
        p.probeHotFraction = 0.85;
        p.probeTableHotFraction = 0.9;
        p.aluPerMemop = 8;
        p.dataBranchFraction = 0.3;
        add(p);
    }
    {
        auto p = base("spec17.gcc_like.0", "SPEC17", Pattern::MixedCompute,
                      206, 64);
        p.mixColdFraction = 0.05;
        p.loadMlp = 12;
        p.dataBranchFraction = 0.25;
        add(p);
    }

    // ---- PARSEC-like -------------------------------------------------
    {
        // canneal: random element swaps over a big netlist.
        auto p = base("parsec.canneal_like.0", "PARSEC",
                      Pattern::PointerChase, 301, 48);
        p.chaseChains = 2;
        p.hitLoadFraction = 0.3;
        p.aluPerMemop = 16;
        add(p);
    }
    {
        // facesim: stencil with reuse.
        auto p = base("parsec.facesim_like.0", "PARSEC",
                      Pattern::StencilReuse, 302, 64);
        p.rowBytes = 1ull << 20;
        p.strideBytes = 8;
        p.storeFraction = 0.25;
        p.loadMlp = 24;
        add(p);
    }
    {
        // streamcluster: distance computations = dense streaming.
        auto p = base("parsec.streamcluster_like.0", "PARSEC",
                      Pattern::Stream, 303, 48);
        p.strideBytes = 4;
        p.aluPerMemop = 4;
        p.loadMlp = 48;
        add(p);
    }
    {
        // raytrace: irregular structure walks with a hot BVH top.
        auto p = base("parsec.raytrace_like.0", "PARSEC",
                      Pattern::HashProbe, 304, 48);
        p.probeHotFraction = 0.6;
        p.probeTableHotFraction = 0.9;
        p.aluPerMemop = 10;
        p.loadMlp = 12;
        p.warmBytes = 4ull << 20;
        add(p);
    }

    // ---- Ligra-like --------------------------------------------------
    const struct
    {
        const char *name;
        std::uint64_t seed;
        std::uint64_t mb;
        unsigned degree;
        unsigned stride;
    } ligra[] = {
        {"ligra.bfs_like.0", 401, 64, 6, 64},
        {"ligra.pagerank_like.0", 402, 96, 12, 64},
        {"ligra.components_like.0", 403, 64, 8, 64},
        {"ligra.radii_like.0", 404, 48, 10, 64},
        {"ligra.triangle_like.0", 405, 64, 16, 32},
        {"ligra.bc_like.0", 406, 80, 8, 64},
    };
    for (const auto &l : ligra) {
        auto p = base(l.name, "Ligra", Pattern::GraphGather, l.seed, l.mb);
        p.graphAvgDegree = l.degree;
        p.graphDataStride = l.stride;
        p.gatherHotFraction = 0.94;
        p.aluPerMemop = 10;
        p.loadMlp = 10;
        p.dataBranchFraction = 0.15;
        p.dataBranchBias = 0.8;
        add(p);
    }

    // ---- CVP-like (server/commercial) --------------------------------
    {
        auto p = base("cvp.server_db_like.0", "CVP", Pattern::HashProbe,
                      501, 96);
        p.probeHotFraction = 0.7;
        p.probeTableHotFraction = 0.9;
        p.aluPerMemop = 10;
        p.loadMlp = 12;
        p.warmBytes = 4ull << 20;
        p.dataBranchFraction = 0.2;
        p.dataBranchBias = 0.75;
        add(p);
    }
    {
        auto p = base("cvp.server_int_like.0", "CVP", Pattern::HashProbe,
                      502, 48);
        p.probeHotFraction = 0.8;
        p.probeTableHotFraction = 0.9;
        p.aluPerMemop = 10;
        p.loadMlp = 12;
        p.dataBranchFraction = 0.3;
        add(p);
    }
    {
        auto p = base("cvp.compute_int_like.0", "CVP", Pattern::MixedCompute,
                      503, 32);
        p.mixColdFraction = 0.06;
        p.aluPerMemop = 8;
        p.loadMlp = 12;
        add(p);
    }
    {
        auto p = base("cvp.compute_fp_like.0", "CVP", Pattern::Stride, 504,
                      64);
        p.strideBytes = 12;
        p.aluPerMemop = 8;
        p.loadMlp = 12;
        add(p);
    }
    {
        auto p = base("cvp.crypto_like.0", "CVP", Pattern::MixedCompute,
                      505, 24);
        p.mixColdFraction = 0.07;
        p.loadMlp = 12;
        p.dataBranchFraction = 0.05;
        add(p);
    }
    {
        auto p = base("cvp.server_misc_like.0", "CVP", Pattern::GraphGather,
                      506, 48);
        p.graphAvgDegree = 4;
        p.graphDataStride = 128;
        add(p);
    }


    // Second trace per workload: the paper evaluates multiple SimPoint
    // traces of each binary; we mirror that with a seed- and
    // footprint-perturbed ".1" variant of every entry.
    const std::size_t base_count = suite.size();
    for (std::size_t i = 0; i < base_count; ++i) {
        SyntheticParams q = suite[i].params;
        q.name.replace(q.name.rfind(".0"), 2, ".1");
        q.seed += 1009;
        q.footprintBytes = q.footprintBytes * 3 / 4;
        suite.push_back(TraceSpec{std::move(q)});
    }

    validateUniqueTraceNames(suite);
    return suite;
}

} // namespace

std::vector<TraceSpec>
fullSuite()
{
    static const std::vector<TraceSpec> suite = buildFullSuite();
    return suite;
}

std::vector<TraceSpec>
quickSuite()
{
    static const char *names[] = {
        "spec06.mcf_like.0",    "spec06.lbm_like.0",
        "spec17.fotonik_like.0", "spec17.xalancbmk_like.0",
        "parsec.streamcluster_like.0", "parsec.canneal_like.0",
        "ligra.bfs_like.0",     "ligra.pagerank_like.0",
        "cvp.server_db_like.0", "cvp.compute_int_like.0",
    };
    std::vector<TraceSpec> out;
    for (const char *n : names)
        out.push_back(findTrace(n));
    return out;
}

std::vector<std::string>
suiteCategories()
{
    return {"SPEC06", "SPEC17", "PARSEC", "Ligra", "CVP"};
}

TraceSpec
findTrace(const std::string &name)
{
    for (const auto &spec : fullSuite())
        if (spec.name() == name)
            return spec;
    throw std::out_of_range("unknown trace: " + name);
}

} // namespace hermes
