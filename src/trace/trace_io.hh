#pragma once

/**
 * @file
 * Byte-stream layer under the trace readers and writers: buffered file
 * sources and crash-safe sinks with transparent gzip/xz compression.
 *
 * Compression is detected by magic bytes on the read side (never by
 * file name), and chosen by file extension on the write side (".gz",
 * ".xz"). The codecs stream through fixed-size buffers, so a source
 * over a multi-GB compressed trace stays O(100KB) resident.
 *
 * zlib and liblzma are optional build dependencies: when the build
 * lacks one, opening a stream of that compression throws a
 * std::runtime_error naming the missing library (the formats are
 * still *detected* so the error is precise, not a parse failure).
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace hermes
{

/** Stream compression schemes the trace layer understands. */
enum class Compression : std::uint8_t
{
    None,
    Gzip, ///< RFC 1952 (magic 1f 8b), via zlib
    Xz,   ///< .xz container (magic fd '7zXZ' 00), via liblzma
};

/** Human-readable codec name ("none", "gzip", "xz"). */
const char *compressionName(Compression c);

/** True when this build can encode/decode @p c. */
bool compressionSupported(Compression c);

/** Codec implied by a file name's extension (".gz", ".xz"). */
Compression compressionForPath(const std::string &path);

/**
 * Sequential byte stream with rewind. read() fills up to @p size
 * bytes and returns the count; 0 means clean end-of-stream. Corrupt
 * or truncated compressed data throws std::runtime_error.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    virtual std::size_t read(void *data, std::size_t size) = 0;

    /** Restart the stream from the first byte. */
    virtual void rewind() = 0;

    /** The underlying file path (for error messages). */
    virtual const std::string &path() const = 0;

    /** Detected compression scheme. */
    virtual Compression compression() const = 0;

    /**
     * Size of the *decompressed* stream when cheaply known
     * (uncompressed files: the file size); -1 otherwise.
     */
    virtual std::int64_t sizeHint() const = 0;
};

/**
 * Open @p path, sniff the compression magic and return a decompressing
 * source. Throws std::runtime_error when the file cannot be opened or
 * the detected codec is not compiled in.
 */
std::unique_ptr<ByteSource> openByteSource(const std::string &path);

/**
 * Crash-safe byte sink: bytes stream into a hidden temporary next to
 * the destination; finish() flushes the codec, fsyncs and atomically
 * renames into place, so a crash at any earlier point leaves either
 * the old file or nothing — never a torn trace. Destroying an
 * unfinished sink discards the temporary.
 */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append bytes; throws std::runtime_error on I/O errors. */
    virtual void write(const void *data, std::size_t size) = 0;

    /** Flush, fsync and publish the file. Call exactly once. */
    virtual void finish() = 0;

    virtual const std::string &path() const = 0;
};

/**
 * Create a sink writing @p path with @p compression (pass
 * compressionForPath(path) for extension-driven choice). Throws when
 * the codec is not compiled in or the temporary cannot be created.
 */
std::unique_ptr<ByteSink> openByteSink(const std::string &path,
                                       Compression compression);

} // namespace hermes
