#pragma once

/**
 * @file
 * Trace-instruction record and the workload (trace source) interface.
 *
 * The simulator is trace-driven in the style of ChampSim: a workload is
 * an infinite, deterministic stream of decoded instructions. The paper's
 * SPEC/PARSEC/Ligra/CVP championship traces are replaced by synthetic
 * generators that reproduce the same *memory-access structure* (see
 * DESIGN.md §1); the core/memory models consume both identically.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace hermes
{

class StateReader;
class StateWriter;

/** Instruction classes the core model distinguishes. */
enum class InstrKind : std::uint8_t
{
    Alu,    ///< Non-memory, non-branch instruction (1-cycle execute)
    Load,   ///< Memory read; occupies an LQ entry
    Store,  ///< Memory write; occupies an SQ entry
    Branch, ///< Conditional branch with a recorded outcome
};

/**
 * One decoded instruction from a trace.
 *
 * @c depDistance expresses a data dependence on an older instruction:
 * 0 means no modelled dependence, k means this instruction's execution
 * (for loads: address generation) must wait for the instruction k
 * positions earlier in program order to complete. Synthetic generators
 * use this to serialise pointer-chasing loads.
 */
struct TraceInstr
{
    // Field order packs the record into 24 bytes (wide members first);
    // the ROB embeds one per entry, so its size is hot-path real estate.
    Addr pc = 0;
    Addr vaddr = 0;            ///< Byte address for Load/Store
    std::uint32_t depDistance = 0;
    InstrKind kind = InstrKind::Alu;
    bool branchTaken = false;  ///< Outcome for Branch
};

/**
 * Infinite instruction stream. Implementations must be deterministic
 * given their construction parameters.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Stable trace name, e.g. "ligra.pagerank_like.1". */
    virtual const std::string &name() const = 0;

    /** Suite category, e.g. "Ligra" (used for per-category averages). */
    virtual const std::string &category() const = 0;

    /** Produce the next instruction in program order. */
    virtual TraceInstr next() = 0;

    /**
     * Fresh, rewound copy of this workload. @p seed_offset perturbs the
     * RNG seed so multi-core mixes of the same trace do not run in
     * lockstep.
     */
    virtual std::unique_ptr<Workload> clone(std::uint64_t seed_offset) const
        = 0;

    /**
     * True when saveState/loadState round-trip this workload's cursor
     * exactly (sim/simulator.hh warmup checkpoints). Defaults to false:
     * a workload that does not opt in simply disables checkpointing for
     * runs that use it — never a wrong checkpoint.
     */
    virtual bool checkpointable() const { return false; }

    /** Serialize the stream cursor (only if checkpointable()). */
    virtual void saveState(StateWriter &) const {}

    /** Restore a cursor written by saveState on an identical workload. */
    virtual void loadState(StateReader &) {}
};

} // namespace hermes
