#include "trace/synthetic.hh"

#include <cassert>

namespace hermes
{

namespace
{

/** Code region base; PC slots are 4B apart like real instructions. */
constexpr Addr kPcBase = 0x400000;

/** Each logical array gets its own 4GB-aligned data region. */
constexpr Addr
regionBase(unsigned region_id)
{
    return (static_cast<Addr>(region_id) + 1) << 32;
}

/**
 * Full-period LCG step modulo 2^k: multiplier ≡ 1 (mod 4), odd
 * increment. Used as a fixed pointer-graph successor function so chases
 * revisit nodes in a stable order.
 */
std::uint64_t
lcgStep(std::uint64_t node, std::uint64_t mask)
{
    return (node * 2891336453ull + 12345ull) & mask;
}

/** Round down to a power of two (at least 1). */
std::uint64_t
floorPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}

} // namespace

SyntheticWorkload::SyntheticWorkload(SyntheticParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    assert(params_.footprintBytes >= kPageSize);
    assert(params_.chaseChains >= 1 && params_.chaseChains <= 4);
    if (params_.loadMlp > 0)
        sweepLoadRing_.assign(params_.loadMlp, 0);
    for (unsigned c = 0; c < params_.chaseChains; ++c)
        chaseNode_[c] = mix64(params_.seed + c) &
                        (floorPow2(params_.footprintBytes / kBlockSize) - 1);
}

TraceInstr
SyntheticWorkload::next()
{
    if (buffer_.empty())
        refill();
    TraceInstr instr = buffer_.front();
    buffer_.pop_front();
    return instr;
}

std::unique_ptr<Workload>
SyntheticWorkload::clone(std::uint64_t seed_offset) const
{
    SyntheticParams p = params_;
    p.seed = params_.seed + seed_offset * 0x5851F42D4C957F2Dull;
    return std::make_unique<SyntheticWorkload>(std::move(p));
}

void
SyntheticWorkload::emitAlu(unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        TraceInstr t;
        t.pc = kPcBase + 4 * (200 + (emitted_ % 16));
        t.kind = InstrKind::Alu;
        buffer_.push_back(t);
        ++emitted_;
    }
}

void
SyntheticWorkload::emitLoad(unsigned pc_slot, Addr vaddr, std::uint32_t dep)
{
    TraceInstr t;
    t.pc = kPcBase + 4 * pc_slot;
    t.kind = InstrKind::Load;
    t.vaddr = vaddr;
    t.depDistance = dep;
    buffer_.push_back(t);
    ++emitted_;
}

void
SyntheticWorkload::emitSweepLoad(unsigned pc_slot, Addr vaddr)
{
    std::uint32_t dep = 0;
    if (params_.loadMlp > 0) {
        const std::size_t slot = sweepLoadCount_ % params_.loadMlp;
        if (sweepLoadCount_ >= params_.loadMlp)
            dep = emitted_ - sweepLoadRing_[slot];
        sweepLoadRing_[slot] = emitted_;
        ++sweepLoadCount_;
    }
    emitLoad(pc_slot, vaddr, dep);
}

void
SyntheticWorkload::emitStore(unsigned pc_slot, Addr vaddr)
{
    TraceInstr t;
    t.pc = kPcBase + 4 * pc_slot;
    t.kind = InstrKind::Store;
    t.vaddr = vaddr;
    buffer_.push_back(t);
    ++emitted_;
}

void
SyntheticWorkload::emitBranch(unsigned pc_slot, bool taken)
{
    TraceInstr t;
    t.pc = kPcBase + 4 * pc_slot;
    t.kind = InstrKind::Branch;
    t.branchTaken = taken;
    buffer_.push_back(t);
    ++emitted_;
}

void
SyntheticWorkload::emitBlockTail()
{
    if (rng_.chance(params_.dataBranchFraction))
        emitBranch(190, rng_.chance(params_.dataBranchBias));
    ++loopCounter_;
    // Inner-loop branch: taken except at trip-count boundaries, so the
    // branch predictor sees the highly regular behaviour of real loops.
    const bool exit_loop = (loopCounter_ % params_.loopTripCount) == 0;
    emitBranch(191, !exit_loop);
    if (exit_loop)
        emitBranch(192, true); // outer loop back-edge
}

Addr
SyntheticWorkload::hotAddr()
{
    return regionBase(9) + rng_.below(params_.hotBytes);
}

void
SyntheticWorkload::refill()
{
    switch (params_.pattern) {
      case Pattern::Stream:
        refillStream();
        break;
      case Pattern::Stride:
        refillStride();
        break;
      case Pattern::PointerChase:
        refillPointerChase();
        break;
      case Pattern::GraphGather:
        refillGraphGather();
        break;
      case Pattern::HashProbe:
        refillHashProbe();
        break;
      case Pattern::MixedCompute:
        refillMixedCompute();
        break;
      case Pattern::StencilReuse:
        refillStencilReuse();
        break;
    }
    emitBlockTail();
}

void
SyntheticWorkload::refillStream()
{
    const Addr base = regionBase(0);
    emitAlu(params_.aluPerMemop);
    emitSweepLoad(10, base + sweepPos_);
    if (rng_.chance(params_.storeFraction))
        emitStore(11, regionBase(1) + sweepPos_);
    sweepPos_ += params_.strideBytes;
    if (sweepPos_ >= params_.footprintBytes)
        sweepPos_ = 0;
}

void
SyntheticWorkload::refillStride()
{
    const Addr base = regionBase(0);
    emitAlu(params_.aluPerMemop);
    emitSweepLoad(20, base + sweepPos_);
    if (rng_.chance(params_.storeFraction))
        emitStore(21, base + sweepPos_);
    sweepPos_ += params_.strideBytes;
    if (sweepPos_ >= params_.footprintBytes)
        sweepPos_ = sweepPos_ % params_.strideBytes;
}

void
SyntheticWorkload::refillPointerChase()
{
    const std::uint64_t nodes = floorPow2(params_.footprintBytes /
                                          kBlockSize);
    const Addr base = regionBase(0);
    for (unsigned c = 0; c < params_.chaseChains; ++c) {
        emitAlu(params_.aluPerMemop + 2);
        chaseNode_[c] = lcgStep(chaseNode_[c], nodes - 1);
        // Dependence on the previous chase load of this chain
        // serialises the chain like a real linked-list traversal.
        std::uint32_t dep = 0;
        if (lastChaseEmit_[c] != 0)
            dep = emitted_ - lastChaseEmit_[c];
        lastChaseEmit_[c] = emitted_;
        emitLoad(30 + c, base + chaseNode_[c] * kBlockSize, dep);
        if (rng_.chance(params_.hitLoadFraction))
            emitLoad(38, hotAddr());
        if (rng_.chance(params_.storeFraction))
            emitStore(39, hotAddr());
    }
}

void
SyntheticWorkload::refillGraphGather()
{
    const std::uint64_t vcount =
        std::max<std::uint64_t>(params_.footprintBytes /
                                params_.graphDataStride, 1024);
    const Addr offsets = regionBase(0);
    const Addr edges = regionBase(1);
    const Addr vdata = regionBase(2);

    // Visit the next vertex: sequential offset-array load (cache
    // friendly) ...
    emitAlu(params_.aluPerMemop);
    emitLoad(40, offsets + vertex_ * 8);
    const unsigned degree =
        1 + static_cast<unsigned>(mix64(params_.seed ^ vertex_) %
                                  (2 * params_.graphAvgDegree));
    // ... then scan its edge list (sequential) and gather destination
    // vertex data. Community locality keeps a hot vertex subset
    // LLC-resident; cold gathers (PC slot 42) go off-chip, so the
    // gather PC correlates strongly with off-chip behaviour.
    const std::uint64_t hot_vcount = std::max<std::uint64_t>(
        std::min<std::uint64_t>(vcount / 8, (16ull << 10) /
                                            params_.graphDataStride),
        128);
    for (unsigned e = 0; e < degree; ++e) {
        emitLoad(41, edges + edgeCursor_ * 4);
        const std::uint64_t h = mix64((vertex_ << 20) ^ e ^ params_.seed);
        std::uint64_t dst;
        if (rng_.chance(params_.gatherHotFraction))
            dst = h % hot_vcount;
        else
            dst = h % vcount;
        emitSweepLoad(42, vdata + dst * params_.graphDataStride);
        if (rng_.chance(params_.storeFraction))
            emitStore(43, vdata + dst * params_.graphDataStride);
        emitAlu(params_.aluPerMemop / 2 + 1);
        ++edgeCursor_;
    }
    vertex_ = (vertex_ + 1) % vcount;
}

void
SyntheticWorkload::refillHashProbe()
{
    const std::uint64_t buckets = params_.footprintBytes / kBlockSize;
    const Addr table = regionBase(0);
    const Addr hot = regionBase(9);
    const Addr warm = regionBase(3);

    emitAlu(params_.aluPerMemop);
    // Bucket probe: a hot part of the table stays cache-resident
    // (skewed key popularity); the long tail goes off-chip.
    const std::uint64_t hot_buckets = std::max<std::uint64_t>(
        std::min<std::uint64_t>(buckets / 16, 512), 128);
    const std::uint64_t bucket =
        rng_.chance(params_.probeTableHotFraction)
            ? rng_.below(hot_buckets)
            : rng_.below(buckets);
    emitSweepLoad(50, table + bucket * kBlockSize);
    // Bucket overflow chain: next sequential line, sometimes.
    if (rng_.chance(0.3))
        emitLoad(51, table + (bucket + 1) * kBlockSize);
    emitAlu(params_.aluPerMemop / 2);
    // Payload: mostly a hot region (cache-resident), sometimes a warm
    // LLC-sized region, giving the mid-accuracy regime HMP struggles in.
    if (rng_.chance(params_.probeHotFraction)) {
        emitLoad(52, hot + rng_.below(params_.hotBytes));
    } else {
        emitLoad(53, warm + rng_.below(params_.warmBytes));
    }
    if (rng_.chance(params_.storeFraction))
        emitStore(54, hot + rng_.below(params_.hotBytes));
}

void
SyntheticWorkload::refillMixedCompute()
{
    const Addr l1_arr = regionBase(4);  // 16KB: L1-resident
    const Addr l2_arr = regionBase(5);  // 256KB: L2-resident
    const Addr llc_arr = regionBase(6); // 1.5MB: LLC-resident
    const Addr big_arr = regionBase(8); // 6MB: fits only large LLCs
    const Addr cold = regionBase(0);    // footprint: DRAM-resident

    emitAlu(params_.aluPerMemop + 2);
    const double r = rng_.uniform();
    const double cold_p = params_.mixColdFraction;
    if (r < cold_p) {
        emitSweepLoad(60, cold + rng_.below(params_.footprintBytes));
    } else if (r < cold_p + 0.05) {
        // Working set sized between the default and the largest LLCs
        // swept in Fig. 20: misses at 3MB/core, hits at 12MB+.
        emitSweepLoad(66, big_arr + rng_.below(6ull << 20));
    } else if (r < cold_p + 0.11) {
        emitLoad(61, llc_arr + rng_.below(3ull << 19));
    } else if (r < cold_p + 0.35) {
        emitLoad(62, l2_arr + rng_.below(256ull << 10));
    } else {
        emitLoad(63, l1_arr + rng_.below(16ull << 10));
    }
    // A slow prefetch-friendly sweep interleaved with the random mix.
    if (rng_.chance(0.10)) {
        emitLoad(64, regionBase(7) + sweepPos_);
        sweepPos_ = (sweepPos_ + 16) % params_.footprintBytes;
    }
    if (rng_.chance(params_.storeFraction))
        emitStore(65, l2_arr + rng_.below(256ull << 10));
}

void
SyntheticWorkload::refillStencilReuse()
{
    const Addr grid = regionBase(0);
    const Addr out = regionBase(1);
    const std::uint64_t rows =
        std::max<std::uint64_t>(params_.footprintBytes / params_.rowBytes,
                                4);

    emitAlu(params_.aluPerMemop);
    const Addr cur = grid + row_ * params_.rowBytes + sweepPos_;
    // Current row: first touch of each line misses but prefetches well.
    emitSweepLoad(70, cur);
    // Row above: touched one row-sweep ago -> hits in L2/LLC when two
    // rows fit, giving the partially-resident reuse PARSEC exhibits.
    emitLoad(71, cur - params_.rowBytes +
                     (row_ == 0 ? params_.rowBytes * rows : 0));
    // Row below: leading accesses, miss + prefetchable.
    emitLoad(72, cur + params_.rowBytes -
                     (row_ + 1 == rows ? params_.rowBytes * rows : 0));
    emitStore(73, out + row_ * params_.rowBytes + sweepPos_);

    sweepPos_ += params_.strideBytes;
    if (sweepPos_ >= params_.rowBytes) {
        sweepPos_ = 0;
        row_ = (row_ + 1) % rows;
    }
}

} // namespace hermes
