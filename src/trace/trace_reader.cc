#include "trace/trace_reader.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "trace/trace_file.hh"

namespace hermes
{

namespace
{

/** Record-side chunk: one refill per ~10K instructions. */
constexpr std::size_t kReaderChunk = 256 * 1024;

/** On-disk HRMTRACE record layout (fixed 24 bytes). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t vaddr;
    std::uint32_t depDistance;
    std::uint8_t kind;
    std::uint8_t branchTaken;
    std::uint16_t pad;
};
static_assert(sizeof(DiskRecord) == 24, "unexpected record padding");

/** ChampSim packed record size and field offsets. */
constexpr std::size_t kChampSimRecordBytes = 64;
constexpr std::size_t kCsIp = 0;
constexpr std::size_t kCsIsBranch = 8;
constexpr std::size_t kCsBranchTaken = 9;
constexpr std::size_t kCsDestRegs = 10; // u8[2]
constexpr std::size_t kCsSrcRegs = 12;  // u8[4]
constexpr std::size_t kCsDestMem = 16;  // u64[2]
constexpr std::size_t kCsSrcMem = 32;   // u64[4]

std::uint64_t
loadLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    std::memcpy(&v, p, sizeof(v)); // little-endian hosts only (x86/arm)
    return v;
}

void
storeLe64(unsigned char *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

} // namespace

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
      case TraceFormat::ChampSim:
        return "champsim";
      case TraceFormat::Hrmtrace:
        break;
    }
    return "hrmtrace";
}

TraceFormat
formatForPath(const std::string &path)
{
    std::string stem = path;
    for (const char *codec : {".gz", ".xz"}) {
        const std::size_t n = std::strlen(codec);
        if (stem.size() >= n &&
            stem.compare(stem.size() - n, n, codec) == 0) {
            stem.resize(stem.size() - n);
            break;
        }
    }
    for (const char *suffix :
         {".champsimtrace", ".champsim", ".trace"}) {
        const std::size_t n = std::strlen(suffix);
        if (stem.size() >= n &&
            stem.compare(stem.size() - n, n, suffix) == 0)
            return TraceFormat::ChampSim;
    }
    return TraceFormat::Hrmtrace;
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

TraceReader::TraceReader(std::unique_ptr<ByteSource> source,
                         TraceFormat format)
    : src_(std::move(source))
{
    meta_.format = format;
    meta_.compression = src_->compression();
    buf_.resize(kReaderChunk);

    if (format == TraceFormat::Hrmtrace) {
        parseHrmHeader();
        return;
    }
    // ChampSim has no header; when the decompressed size is knowable
    // up front, a torn file fails here instead of mid-replay.
    const std::int64_t hint = src_->sizeHint();
    if (hint == 0)
        throw std::runtime_error("empty champsim trace: " +
                                 src_->path());
    if (hint > 0 &&
        static_cast<std::uint64_t>(hint) % kChampSimRecordBytes != 0)
        throw std::runtime_error(
            "champsim trace size is not a multiple of 64 bytes: " +
            src_->path());
}

TraceReader::~TraceReader() = default;

bool
TraceReader::readRecordBytes(void *out, std::size_t size)
{
    auto *dst = static_cast<unsigned char *>(out);
    std::size_t total = 0;
    while (total < size) {
        if (bufPos_ == bufLen_) {
            bufLen_ = src_->read(buf_.data(), buf_.size());
            bufPos_ = 0;
            if (bufLen_ == 0) {
                if (total == 0)
                    return false;
                throw std::runtime_error("truncated trace file: " +
                                         src_->path());
            }
        }
        const std::size_t take =
            std::min(size - total, bufLen_ - bufPos_);
        std::memcpy(dst + total, buf_.data() + bufPos_, take);
        bufPos_ += take;
        total += take;
    }
    return true;
}

void
TraceReader::readHeaderBytes(void *out, std::size_t size)
{
    if (!readRecordBytes(out, size))
        throw std::runtime_error("truncated trace header in " +
                                 src_->path());
}

void
TraceReader::parseHrmHeader()
{
    char magic[8];
    try {
        readHeaderBytes(magic, sizeof(magic));
    } catch (const std::runtime_error &) {
        throw std::runtime_error("not a Hermes trace file: " +
                                 src_->path());
    }
    if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        throw std::runtime_error("not a Hermes trace file: " +
                                 src_->path());

    std::uint32_t version = 0, reserved = 0;
    readHeaderBytes(&version, sizeof(version));
    if (version != kTraceVersion)
        throw std::runtime_error("unsupported trace version in " +
                                 src_->path());
    readHeaderBytes(&reserved, sizeof(reserved));

    std::uint64_t consumed = 16;
    for (std::string *s : {&meta_.name, &meta_.category}) {
        std::uint32_t len = 0;
        readHeaderBytes(&len, sizeof(len));
        if (len > (1u << 20))
            throw std::runtime_error("corrupt trace header in " +
                                     src_->path());
        s->resize(len);
        if (len > 0)
            readHeaderBytes(s->data(), len);
        consumed += sizeof(len) + len;
    }

    std::uint64_t count = 0;
    readHeaderBytes(&count, sizeof(count));
    consumed += sizeof(count);
    if (count == 0)
        throw std::runtime_error("empty or corrupt trace: " +
                                 src_->path());
    headerBytes_ = consumed;

    // Validate the header's record count against the stream size when
    // cheaply known: a corrupt count must fail at open, not after
    // minutes of replay.
    const std::int64_t hint = src_->sizeHint();
    if (hint >= 0) {
        const std::uint64_t available =
            static_cast<std::uint64_t>(hint) > headerBytes_
                ? static_cast<std::uint64_t>(hint) - headerBytes_
                : 0;
        if (count > available / sizeof(DiskRecord))
            throw std::runtime_error("truncated trace file: " +
                                     src_->path());
    }
    meta_.recordCount = count;
}

bool
TraceReader::next(TraceInstr &out)
{
    if (meta_.format == TraceFormat::Hrmtrace) {
        if (recordsRead_ == meta_.recordCount)
            return false;
        DiskRecord rec{};
        if (!readRecordBytes(&rec, sizeof(rec)))
            throw std::runtime_error("truncated trace file: " +
                                     src_->path());
        if (rec.kind > static_cast<std::uint8_t>(InstrKind::Branch))
            throw std::runtime_error("corrupt record in " +
                                     src_->path());
        out.pc = rec.pc;
        out.vaddr = rec.vaddr;
        out.depDistance = rec.depDistance;
        out.kind = static_cast<InstrKind>(rec.kind);
        out.branchTaken = rec.branchTaken != 0;
        ++recordsRead_;
        return true;
    }

    if (pendingPos_ == pendingLen_) {
        unsigned char rec[kChampSimRecordBytes];
        if (!readRecordBytes(rec, sizeof(rec)))
            return false;
        expandChampSimRecord(rec);
    }
    out = pending_[pendingPos_++];
    return true;
}

void
TraceReader::expandChampSimRecord(const unsigned char *rec)
{
    const std::uint64_t ip = loadLe64(rec + kCsIp);
    const unsigned char is_branch = rec[kCsIsBranch];
    const unsigned char taken = rec[kCsBranchTaken];
    if (is_branch > 1 || taken > 1)
        throw std::runtime_error("corrupt champsim record in " +
                                 src_->path());

    pendingPos_ = 0;
    pendingLen_ = 0;

    // A load's dependence reaches back to the youngest instruction
    // that wrote any of its source registers.
    std::uint64_t youngest_writer = 0;
    for (std::size_t r = 0; r < 4; ++r) {
        const unsigned char reg = rec[kCsSrcRegs + r];
        if (reg != 0)
            youngest_writer =
                std::max(youngest_writer, lastWrite_[reg]);
    }

    bool has_mem = false;
    for (std::size_t m = 0; m < 4; ++m) {
        const std::uint64_t vaddr = loadLe64(rec + kCsSrcMem + 8 * m);
        if (vaddr == 0)
            continue;
        has_mem = true;
        TraceInstr t;
        t.pc = ip;
        t.kind = InstrKind::Load;
        t.vaddr = vaddr;
        if (youngest_writer > 0) {
            const std::uint64_t idx = emitted_ + pendingLen_ + 1;
            const std::uint64_t dist = idx - youngest_writer;
            if (dist <= UINT32_MAX)
                t.depDistance = static_cast<std::uint32_t>(dist);
        }
        pending_[pendingLen_++] = t;
    }
    bool has_store = false;
    for (std::size_t m = 0; m < 2; ++m)
        has_store |= loadLe64(rec + kCsDestMem + 8 * m) != 0;

    if (is_branch != 0) {
        TraceInstr t;
        t.pc = ip;
        t.kind = InstrKind::Branch;
        t.branchTaken = taken != 0;
        pending_[pendingLen_++] = t;
    } else if (!has_mem && !has_store) {
        TraceInstr t;
        t.pc = ip;
        t.kind = InstrKind::Alu;
        pending_[pendingLen_++] = t;
    }
    for (std::size_t m = 0; m < 2; ++m) {
        const std::uint64_t vaddr = loadLe64(rec + kCsDestMem + 8 * m);
        if (vaddr == 0)
            continue;
        TraceInstr t;
        t.pc = ip;
        t.kind = InstrKind::Store;
        t.vaddr = vaddr;
        pending_[pendingLen_++] = t;
    }

    emitted_ += pendingLen_;
    for (std::size_t r = 0; r < 2; ++r) {
        const unsigned char reg = rec[kCsDestRegs + r];
        if (reg != 0)
            lastWrite_[reg] = emitted_;
    }
}

void
TraceReader::rewind()
{
    src_->rewind();
    bufPos_ = bufLen_ = 0;
    recordsRead_ = 0;
    pendingPos_ = pendingLen_ = 0;
    emitted_ = 0;
    lastWrite_.fill(0);
    if (meta_.format == TraceFormat::Hrmtrace) {
        unsigned char scratch[256];
        std::uint64_t left = headerBytes_;
        while (left > 0) {
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, sizeof(scratch)));
            readHeaderBytes(scratch, take);
            left -= take;
        }
    }
}

std::size_t
TraceReader::residentBytes() const
{
    return sizeof(*this) + buf_.capacity() + meta_.name.capacity() +
           meta_.category.capacity();
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

namespace
{

class HrmTraceWriter final : public TraceWriter
{
  public:
    HrmTraceWriter(std::unique_ptr<ByteSink> sink, std::uint64_t count,
                   const std::string &name, const std::string &category)
        : sink_(std::move(sink)), count_(count)
    {
        sink_->write(kTraceMagic, sizeof(kTraceMagic));
        const std::uint32_t version = kTraceVersion;
        const std::uint32_t reserved = 0;
        sink_->write(&version, sizeof(version));
        sink_->write(&reserved, sizeof(reserved));
        for (const std::string *s : {&name, &category}) {
            const auto len = static_cast<std::uint32_t>(s->size());
            sink_->write(&len, sizeof(len));
            if (len > 0)
                sink_->write(s->data(), len);
        }
        sink_->write(&count_, sizeof(count_));
    }

    void
    append(const TraceInstr &instr) override
    {
        DiskRecord rec{};
        rec.pc = instr.pc;
        rec.vaddr = instr.vaddr;
        rec.depDistance = instr.depDistance;
        rec.kind = static_cast<std::uint8_t>(instr.kind);
        rec.branchTaken = instr.branchTaken ? 1 : 0;
        sink_->write(&rec, sizeof(rec));
        ++appended_;
    }

    void
    finish() override
    {
        if (appended_ != count_)
            throw std::runtime_error(
                "trace writer: appended " + std::to_string(appended_) +
                " of " + std::to_string(count_) + " records for " +
                sink_->path());
        sink_->finish();
    }

    std::uint64_t droppedDeps() const override { return 0; }
    const std::string &path() const override { return sink_->path(); }

  private:
    std::unique_ptr<ByteSink> sink_;
    std::uint64_t count_;
    std::uint64_t appended_ = 0;
};

class ChampSimTraceWriter final : public TraceWriter
{
  public:
    ChampSimTraceWriter(std::unique_ptr<ByteSink> sink,
                        std::uint64_t count)
        : sink_(std::move(sink)), count_(count)
    {
    }

    void
    append(const TraceInstr &instr) override
    {
        unsigned char rec[kChampSimRecordBytes] = {};
        storeLe64(rec + kCsIp, instr.pc);
        rec[kCsIsBranch] = instr.kind == InstrKind::Branch ? 1 : 0;
        rec[kCsBranchTaken] = instr.branchTaken ? 1 : 0;
        // Every record writes a register tag cycling through 255
        // values; a load's depDistance k (k <= 255) is then encoded as
        // a read of the tag instruction (i - k) wrote, which the
        // importer's last-writer table maps back to exactly k.
        rec[kCsDestRegs] =
            static_cast<unsigned char>(1 + (appended_ % 255));
        const std::uint64_t dep = instr.depDistance;
        switch (instr.kind) {
          case InstrKind::Load:
            if (instr.vaddr != 0)
                storeLe64(rec + kCsSrcMem, instr.vaddr);
            else
                ++droppedOps_; // zero vaddr means "empty slot"
            if (dep > 0) {
                if (dep <= 255 && dep <= appended_)
                    rec[kCsSrcRegs] = static_cast<unsigned char>(
                        1 + ((appended_ - dep) % 255));
                else
                    ++droppedDeps_;
            }
            break;
          case InstrKind::Store:
            if (instr.vaddr != 0)
                storeLe64(rec + kCsDestMem, instr.vaddr);
            else
                ++droppedOps_;
            if (dep > 0)
                ++droppedDeps_; // importer derives deps for loads only
            break;
          case InstrKind::Alu:
          case InstrKind::Branch:
            if (dep > 0)
                ++droppedDeps_;
            break;
        }
        sink_->write(rec, sizeof(rec));
        ++appended_;
    }

    void
    finish() override
    {
        if (appended_ != count_)
            throw std::runtime_error(
                "trace writer: appended " + std::to_string(appended_) +
                " of " + std::to_string(count_) + " records for " +
                sink_->path());
        sink_->finish();
    }

    std::uint64_t
    droppedDeps() const override
    {
        return droppedDeps_ + droppedOps_;
    }

    const std::string &path() const override { return sink_->path(); }

  private:
    std::unique_ptr<ByteSink> sink_;
    std::uint64_t count_;
    std::uint64_t appended_ = 0;
    std::uint64_t droppedDeps_ = 0;
    std::uint64_t droppedOps_ = 0;
};

} // namespace

std::unique_ptr<TraceWriter>
openTraceWriter(const std::string &path, TraceFormat format,
                Compression compression, std::uint64_t count,
                const std::string &name, const std::string &category)
{
    auto sink = openByteSink(path, compression);
    if (format == TraceFormat::ChampSim)
        return std::make_unique<ChampSimTraceWriter>(std::move(sink),
                                                     count);
    return std::make_unique<HrmTraceWriter>(std::move(sink), count,
                                            name, category);
}

} // namespace hermes
