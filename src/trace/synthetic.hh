#pragma once

/**
 * @file
 * Synthetic workload generators.
 *
 * Each generator emits an infinite, deterministic instruction stream
 * whose memory-access structure mimics one class of the paper's
 * workloads (DESIGN.md §1): streaming sweeps, strided sweeps, dependent
 * pointer chases, graph-analytics gathers (Ligra-like), server-style
 * hash probes (CVP-like), multi-working-set compute mixes (SPEC-like)
 * and stencil sweeps with cross-row reuse (PARSEC-like).
 *
 * Address-space layout: every logical array lives in its own 4GB-aligned
 * region, so arrays never alias in the cache index bits.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ring.hh"
#include "common/rng.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "trace/workload.hh"

namespace hermes
{

/** Access-pattern families implemented by SyntheticWorkload. */
enum class Pattern : std::uint8_t
{
    Stream,       ///< Dense sequential sweep over a huge array
    Stride,       ///< Constant-stride sweep (stride > one element)
    PointerChase, ///< Serialised dependent chase over an LCG permutation
    GraphGather,  ///< Sequential edge scan + random vertex-data gather
    HashProbe,    ///< Random bucket probes with a hot payload region
    MixedCompute, ///< Weighted accesses over L1/L2/LLC/DRAM working sets
    StencilReuse, ///< Row sweep reading neighbour rows (temporal reuse)
};

/** Construction parameters for a synthetic workload. */
struct SyntheticParams
{
    std::string name = "synthetic";
    std::string category = "MISC";
    Pattern pattern = Pattern::Stream;
    std::uint64_t seed = 1;

    /** Size of the main (DRAM-resident) data structure. */
    std::uint64_t footprintBytes = 64ull << 20;
    /** Element step for Stream/Stride sweeps. */
    unsigned strideBytes = 4;
    /** ALU instructions emitted around each memory operation. */
    unsigned aluPerMemop = 4;
    /** Probability that a block also writes (emits a store). */
    double storeFraction = 0.10;
    /** Probability that a block carries a data-dependent branch. */
    double dataBranchFraction = 0.10;
    /** Taken-probability (predictability) of data-dependent branches. */
    double dataBranchBias = 0.85;
    /** Inner-loop trip count (loop branch not-taken once per trip). */
    unsigned loopTripCount = 64;
    /**
     * Limit on load-level parallelism for regular sweeps: each sweep
     * load depends on the one @c loadMlp loads earlier, bounding the
     * number of concurrent misses like loop-carried dependences do in
     * real kernels. 0 disables the limit.
     */
    unsigned loadMlp = 0;

    /** PointerChase: number of independent chains interleaved. */
    unsigned chaseChains = 1;
    /** PointerChase/HashProbe: extra always-hitting loads per block. */
    double hitLoadFraction = 0.4;
    /** Size of the small always-hitting (hot) region. */
    std::uint64_t hotBytes = 16ull << 10;

    /** GraphGather: average out-degree of a vertex. */
    unsigned graphAvgDegree = 8;
    /** GraphGather: bytes of data gathered per destination vertex. */
    unsigned graphDataStride = 64;
    /** GraphGather: fraction of gathers hitting a hot vertex subset
     * (community locality; the subset is LLC-resident). */
    double gatherHotFraction = 0.75;

    /** HashProbe: probability a payload access goes to the hot region. */
    double probeHotFraction = 0.75;
    /** HashProbe: fraction of probes into a hot (cache-resident) part
     * of the table. */
    double probeTableHotFraction = 0.6;
    /** HashProbe: size of the medium (LLC-resident) payload region. */
    std::uint64_t warmBytes = 1ull << 20;

    /** MixedCompute: probability of touching the DRAM-resident array. */
    double mixColdFraction = 0.25;

    /** StencilReuse: bytes per grid row. */
    std::uint64_t rowBytes = 1ull << 20;
};

/**
 * Deterministic synthetic instruction stream implementing the patterns
 * above. See the .cc file for the per-pattern block shapes.
 */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(SyntheticParams params);

    const std::string &name() const override { return params_.name; }
    const std::string &category() const override { return params_.category; }
    TraceInstr next() override;
    std::unique_ptr<Workload> clone(std::uint64_t seed_offset) const override;

    const SyntheticParams &params() const { return params_; }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("WSYN");
        const Rng::State rs = rng_.state();
        w.u64(rs.s0);
        w.u64(rs.s1);
        w.u64(buffer_.size());
        for (std::size_t i = 0; i < buffer_.size(); ++i) {
            const TraceInstr &t = buffer_.at(i);
            w.u64(t.pc);
            w.u8(static_cast<std::uint8_t>(t.kind));
            w.u64(t.vaddr);
            w.b(t.branchTaken);
            w.u32(t.depDistance);
        }
        w.u32(emitted_);
        w.u64(sweepPos_);
        w.u64(loopCounter_);
        for (std::uint64_t v : chaseNode_)
            w.u64(v);
        for (std::uint32_t v : lastChaseEmit_)
            w.u32(v);
        w.u64(vertex_);
        w.u64(sweepLoadRing_.size());
        for (std::uint32_t v : sweepLoadRing_)
            w.u32(v);
        w.u64(sweepLoadCount_);
        w.u64(edgeCursor_);
        w.u64(row_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("WSYN");
        Rng::State rs;
        rs.s0 = r.u64();
        rs.s1 = r.u64();
        rng_.setState(rs);
        buffer_.clear();
        const std::size_t n = r.count(1u << 20);
        for (std::size_t i = 0; i < n; ++i) {
            TraceInstr t;
            t.pc = r.u64();
            t.kind = static_cast<InstrKind>(r.u8());
            t.vaddr = r.u64();
            t.branchTaken = r.b();
            t.depDistance = r.u32();
            buffer_.push_back(t);
        }
        emitted_ = r.u32();
        sweepPos_ = r.u64();
        loopCounter_ = r.u64();
        for (std::uint64_t &v : chaseNode_)
            v = r.u64();
        for (std::uint32_t &v : lastChaseEmit_)
            v = r.u32();
        vertex_ = r.u64();
        const std::size_t m = r.count(1u << 20);
        sweepLoadRing_.assign(m, 0);
        for (std::uint32_t &v : sweepLoadRing_)
            v = r.u32();
        sweepLoadCount_ = r.u64();
        edgeCursor_ = r.u64();
        row_ = r.u64();
    }

  private:
    /** Generate one loop-body block of instructions into the buffer. */
    void refill();

    void emitAlu(unsigned count);
    void emitLoad(unsigned pc_slot, Addr vaddr, std::uint32_t dep = 0);
    /** Emit a sweep load with the loadMlp dependence chain applied. */
    void emitSweepLoad(unsigned pc_slot, Addr vaddr);
    void emitStore(unsigned pc_slot, Addr vaddr);
    void emitBranch(unsigned pc_slot, bool taken);
    /** Loop branch + optional data-dependent branch at block end. */
    void emitBlockTail();

    void refillStream();
    void refillStride();
    void refillPointerChase();
    void refillGraphGather();
    void refillHashProbe();
    void refillMixedCompute();
    void refillStencilReuse();

    Addr hotAddr();

    SyntheticParams params_;
    Rng rng_;
    Ring<TraceInstr> buffer_;

    /** Emission cursor used to assign dependence distances. */
    std::uint32_t emitted_ = 0;

    // Pattern state
    std::uint64_t sweepPos_ = 0;       ///< Stream/Stride/Stencil cursor
    std::uint64_t loopCounter_ = 0;    ///< Inner-loop trip counter
    std::uint64_t chaseNode_[4] = {};  ///< PointerChase chain positions
    std::uint32_t lastChaseEmit_[4] = {}; ///< emitted_ at last chase load
    std::uint64_t vertex_ = 0;         ///< GraphGather vertex cursor
    std::vector<std::uint32_t> sweepLoadRing_; ///< loadMlp dep ring
    std::uint64_t sweepLoadCount_ = 0;
    std::uint64_t edgeCursor_ = 0;     ///< GraphGather global edge index
    std::uint64_t row_ = 0;            ///< StencilReuse current row
};

} // namespace hermes
