#include "dram/dram.hh"

#include <algorithm>
#include <cassert>

namespace hermes
{

DramController::DramController(DramParams params) : params_(params)
{
    assert(params_.channels > 0);
    channels_.resize(params_.channels);
    const unsigned banks = params_.ranksPerChannel * params_.banksPerRank;
    for (auto &ch : channels_)
        ch.banks.resize(banks);
}

void
DramController::setClient(int core_id, MemClient *client)
{
    if (clients_.size() <= static_cast<std::size_t>(core_id))
        clients_.resize(core_id + 1, nullptr);
    clients_[core_id] = client;
}

unsigned
DramController::channelOf(Addr line) const
{
    return static_cast<unsigned>(line % params_.channels);
}

std::uint32_t
DramController::bankOf(Addr line) const
{
    const Addr l = line / params_.channels;
    const unsigned lines_per_row = params_.rowBufferBytes / kBlockSize;
    const unsigned banks = params_.ranksPerChannel * params_.banksPerRank;
    return static_cast<std::uint32_t>((l / lines_per_row) % banks);
}

std::uint64_t
DramController::rowOf(Addr line) const
{
    const Addr l = line / params_.channels;
    const unsigned lines_per_row = params_.rowBufferBytes / kBlockSize;
    const unsigned banks = params_.ranksPerChannel * params_.banksPerRank;
    return (l / lines_per_row) / banks;
}

bool
DramController::addRead(const MemRequest &req)
{
    Channel &ch = channels_[channelOf(req.line())];

    // Read-after-write forwarding from the write queue (the line set
    // gates the scan so the common no-match case is O(1)).
    if (ch.wqLines.find(req.line()) != ch.wqLines.end())
        for (const auto &w : ch.wq) {
            if (w.line != req.line())
                continue;
            ++stats_.wqForwards;
            MemRequest resp = req;
            resp.servedFrom = MemLevel::Dram;
            resp.cycleMcArrive = now_;
            const auto idx = static_cast<std::size_t>(req.coreId);
            if (idx < clients_.size() && clients_[idx] != nullptr)
                clients_[idx]->returnData(resp);
            return true;
        }

    // Merge with an in-flight read (regular or Hermes) to the same
    // line; rq holds at most one entry per line, so the line set
    // decides in O(1) whether the locating scan is needed at all.
    if (ch.rqLines.find(req.line()) != ch.rqLines.end())
        for (auto &e : ch.rq) {
            if (e.line != req.line())
                continue;
            MemRequest w = req;
            w.cycleMcArrive = now_;
            if (e.hermesInitiated && e.hermesOnly)
                w.servedByHermes = true;
            e.waiters.push_back(w);
            e.hermesOnly = false;
            ++stats_.readMerges;
            return true;
        }

    if (ch.rq.size() >= params_.rqSize)
        return false;

    ReadEntry e;
    e.line = req.line();
    e.bank = bankOf(req.line());
    e.row = rowOf(req.line());
    e.arrived = now_;
    e.hermesOnly = false;
    MemRequest w = req;
    w.cycleMcArrive = now_;
    e.waiters.push_back(w);
    ch.rqLines.insert(e.line);
    ch.rq.push_back(std::move(e));
    ++ch.queuedReads;
    ch.readSchedBlockedUntil = 0;
    return true;
}

bool
DramController::addHermes(const MemRequest &req)
{
    Channel &ch = channels_[channelOf(req.line())];

    // Already in flight (regular or another Hermes request): nothing to
    // do, the data is on its way. Pure membership test — no entry needs
    // touching, so the line set answers without any rq scan.
    if (ch.rqLines.find(req.line()) != ch.rqLines.end()) {
        ++stats_.hermesMergedIntoExisting;
        return true;
    }
    if (ch.rq.size() >= params_.rqSize) {
        ++stats_.hermesRejected;
        return false;
    }
    ReadEntry e;
    e.line = req.line();
    e.bank = bankOf(req.line());
    e.row = rowOf(req.line());
    e.arrived = now_;
    e.hermesOnly = true;
    e.hermesInitiated = true;
    ch.rqLines.insert(e.line);
    ch.rq.push_back(std::move(e));
    ++ch.queuedReads;
    ++stats_.hermesIssued;
    ch.readSchedBlockedUntil = 0;
    return true;
}

bool
DramController::addWrite(const MemRequest &req)
{
    Channel &ch = channels_[channelOf(req.line())];
    // Soft-bounded like the cache write path; pressure shows up through
    // drain mode stealing read bandwidth.
    WriteEntry w;
    w.line = req.line();
    w.bank = bankOf(req.line());
    w.row = rowOf(req.line());
    w.arrived = req.cycleCreated;
    ++ch.wqLines[w.line];
    ch.wq.push_back(w);
    ++ch.queuedWrites;
    return true;
}

Cycle
DramController::access(Channel &ch, std::uint32_t bank, std::uint64_t row,
                       Cycle now)
{
    Bank &b = ch.banks[bank];
    const Cycle start = std::max(now, b.readyAt);
    // CAS latency is pipelined: consecutive column reads to an open row
    // are spaced by the data burst (tCCD), not by tCAS. Activation and
    // precharge do occupy the bank.
    Cycle latency;      // command-to-data latency
    Cycle bank_busy;    // cycles the bank cannot accept a new command
    if (b.open && b.row == row) {
        latency = params_.tCas;
        bank_busy = params_.busCyclesPerLine();
        ++stats_.rowHits;
    } else if (!b.open) {
        latency = params_.tRcd + params_.tCas;
        bank_busy = params_.tRcd + params_.busCyclesPerLine();
        ++stats_.rowMisses;
    } else {
        latency = params_.tRp + params_.tRcd + params_.tCas;
        bank_busy = params_.tRp + params_.tRcd +
                    params_.busCyclesPerLine();
        ++stats_.rowConflicts;
    }
    b.open = true;
    b.row = row;

    // Data transfer occupies the shared channel bus.
    const Cycle data_start = std::max(start + latency, ch.busFreeAt);
    const Cycle finish = data_start + params_.busCyclesPerLine();
    ch.busFreeAt = finish;
    b.readyAt = start + bank_busy +
                (data_start - (start + latency)); // inherit bus backlog
    return finish;
}

void
DramController::scheduleReads(Channel &ch, Cycle now)
{
    // FR-FCFS: prefer the oldest row-hit among ready banks, else the
    // oldest request whose bank is ready. Stop scanning once every
    // still-Queued entry has been seen (the tail is all in-flight).
    ReadEntry *pick = nullptr;
    Cycle earliest_bank = kNoEventCycle;
    unsigned queued_left = ch.queuedReads;
    for (auto &e : ch.rq) {
        if (queued_left == 0)
            break;
        if (e.state != State::Queued)
            continue;
        --queued_left;
        const Bank &b = ch.banks[e.bank];
        if (b.readyAt > now) {
            earliest_bank = std::min(earliest_bank, b.readyAt);
            continue;
        }
        if (b.open && b.row == e.row) {
            pick = &e;
            break;
        }
        if (pick == nullptr)
            pick = &e;
    }
    if (pick == nullptr) {
        // Every queued entry's bank is busy; nothing can be picked
        // before the earliest bank frees up, so skip the scan until
        // then (bank readyAt values only ever move later, and a new
        // arrival clears the bound).
        ch.readSchedBlockedUntil = earliest_bank;
        return;
    }
    ch.readSchedBlockedUntil = 0;
    pick->state = State::Issued;
    pick->finishAt = access(ch, pick->bank, pick->row, now);
    --ch.queuedReads;
    ch.nextReadFinish = ch.issuedReads == 0
                            ? pick->finishAt
                            : std::min(ch.nextReadFinish, pick->finishAt);
    ++ch.issuedReads;
}

void
DramController::scheduleWrites(Channel &ch, Cycle now)
{
    auto it = std::find_if(ch.wq.begin(), ch.wq.end(), [&](const auto &w) {
        return w.state == State::Queued && ch.banks[w.bank].readyAt <= now;
    });
    if (it == ch.wq.end())
        return;
    it->state = State::Issued;
    it->finishAt = access(ch, it->bank, it->row, now);
    --ch.queuedWrites;
    ch.nextWriteFinish = ch.issuedWrites == 0
                             ? it->finishAt
                             : std::min(ch.nextWriteFinish, it->finishAt);
    ++ch.issuedWrites;
}

void
DramController::completeReads(Channel &ch, Cycle now)
{
    Cycle next_read = 0;
    bool have_next_read = false;
    unsigned issued_left = ch.issuedReads;
    for (auto it = ch.rq.begin(); issued_left != 0 && it != ch.rq.end();) {
        if (it->state != State::Issued || it->finishAt > now) {
            if (it->state == State::Issued) {
                --issued_left;
                if (!have_next_read || it->finishAt < next_read) {
                    next_read = it->finishAt;
                    have_next_read = true;
                }
            }
            ++it;
            continue;
        }
        --issued_left;
        --ch.issuedReads;
        // Account the serviced read once, by its originating class.
        if (it->hermesInitiated)
            ++stats_.hermesReads;
        else if (!it->waiters.empty() &&
                 it->waiters.front().type == AccessType::Prefetch)
            ++stats_.prefetchReads;
        else
            ++stats_.demandReads;

        if (it->hermesInitiated) {
            if (it->waiters.empty())
                ++stats_.hermesDropped; // §6.2.2: drop, no cache fill.
            else
                ++stats_.hermesUseful;
        }
        for (MemRequest w : it->waiters) {
            w.servedFrom = MemLevel::Dram;
            const auto idx = static_cast<std::size_t>(w.coreId);
            if (idx < clients_.size() && clients_[idx] != nullptr)
                clients_[idx]->returnData(w);
        }
        ch.rqLines.erase(it->line);
        it = ch.rq.erase(it);
    }
    ch.nextReadFinish = next_read;

    Cycle next_write = 0;
    bool have_next_write = false;
    unsigned w_issued_left = ch.issuedWrites;
    for (auto it = ch.wq.begin();
         w_issued_left != 0 && it != ch.wq.end();) {
        if (it->state == State::Issued && it->finishAt <= now) {
            ++stats_.writes;
            --w_issued_left;
            --ch.issuedWrites;
            const auto lit = ch.wqLines.find(it->line);
            if (lit != ch.wqLines.end() && --lit->second == 0)
                ch.wqLines.erase(lit);
            it = ch.wq.erase(it);
        } else {
            if (it->state == State::Issued) {
                --w_issued_left;
                if (!have_next_write || it->finishAt < next_write) {
                    next_write = it->finishAt;
                    have_next_write = true;
                }
            }
            ++it;
        }
    }
    ch.nextWriteFinish = next_write;
}

void
DramController::tick(Cycle now)
{
    now_ = now;
    for (auto &ch : channels_) {
        if (ch.rq.empty() && ch.wq.empty())
            continue;
        const bool reads_done =
            ch.issuedReads != 0 && ch.nextReadFinish <= now;
        const bool writes_done =
            ch.issuedWrites != 0 && ch.nextWriteFinish <= now;
        // Idle fast path: nothing completes this cycle and nothing is
        // waiting for a bank, so neither sweep can make progress — and
        // the drain-mode hysteresis below is a pure function of queue
        // sizes, which cannot have changed since it last ran.
        if (!reads_done && !writes_done && ch.queuedReads == 0 &&
            ch.queuedWrites == 0)
            continue;
        // Sweep completions only when an in-flight access can actually
        // finish this cycle; otherwise the scan finds nothing.
        if (reads_done || writes_done)
            completeReads(ch, now);

        // Write drain hysteresis: start draining when the WQ is deep or
        // reads are absent; stop when it has mostly emptied.
        if (ch.wq.size() >= params_.wqSize * 7 / 8 ||
            (ch.rq.empty() && !ch.wq.empty()))
            ch.drainingWrites = true;
        // Leave drain mode quickly once pressure eases so reads are
        // not starved behind long write bursts.
        if (ch.wq.empty() ||
            (ch.wq.size() <= params_.wqSize / 2 && !ch.rq.empty()))
            ch.drainingWrites = false;

        // The FR-FCFS scan can only pick a Queued entry — and, for
        // reads, only once the earliest busy bank it last saw frees up.
        if (ch.drainingWrites) {
            if (ch.queuedWrites != 0)
                scheduleWrites(ch, now);
        } else if (ch.queuedReads != 0 &&
                   now >= ch.readSchedBlockedUntil) {
            scheduleReads(ch, now);
        }
    }
}

Cycle
DramController::nextEventCycle(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle horizon = kNoEventCycle;
    for (const Channel &ch : channels_) {
        if (ch.rq.empty() && ch.wq.empty())
            continue;
        if (ch.issuedReads != 0) {
            if (ch.nextReadFinish <= now)
                return next;
            horizon = std::min(horizon, ch.nextReadFinish);
        }
        if (ch.issuedWrites != 0) {
            if (ch.nextWriteFinish <= now)
                return next;
            horizon = std::min(horizon, ch.nextWriteFinish);
        }
        // Mirror the write-drain hysteresis the next tick will apply.
        // Inside an event-free span the queue sizes cannot change, so
        // the flag tick() recomputes is a pure function of today's
        // sizes; applying the same set-then-clear rules here selects
        // the side the scheduler will actually scan.
        bool draining = ch.drainingWrites;
        if (ch.wq.size() >= params_.wqSize * 7 / 8 ||
            (ch.rq.empty() && !ch.wq.empty()))
            draining = true;
        if (ch.wq.empty() ||
            (ch.wq.size() <= params_.wqSize / 2 && !ch.rq.empty()))
            draining = false;
        if (draining) {
            unsigned left = ch.queuedWrites;
            for (const WriteEntry &e : ch.wq) {
                if (left == 0)
                    break;
                if (e.state != State::Queued)
                    continue;
                --left;
                const Cycle at = ch.banks[e.bank].readyAt;
                if (at <= now)
                    return next;
                horizon = std::min(horizon, at);
            }
        } else if (ch.queuedReads != 0) {
            // The scheduler's cached bound is a valid lower bound on
            // the next read issue (cleared on arrivals, and bank
            // readyAt only moves later); reuse it to skip the walk.
            if (ch.readSchedBlockedUntil > now) {
                horizon = std::min(horizon, ch.readSchedBlockedUntil);
                continue;
            }
            unsigned left = ch.queuedReads;
            for (const ReadEntry &e : ch.rq) {
                if (left == 0)
                    break;
                if (e.state != State::Queued)
                    continue;
                --left;
                const Cycle at = ch.banks[e.bank].readyAt;
                if (at <= now)
                    return next;
                horizon = std::min(horizon, at);
            }
        }
    }
    return horizon;
}

bool
DramController::probeRead(Addr line) const
{
    const Channel &ch = channels_[channelOf(line)];
    return ch.rqLines.find(line) != ch.rqLines.end();
}

void
DramController::saveState(StateWriter &w) const
{
    w.section("DRAM");
    w.u64(channels_.size());
    for (const Channel &ch : channels_) {
        w.u64(ch.rq.size());
        for (const ReadEntry &e : ch.rq) {
            w.u64(e.line);
            w.u32(e.bank);
            w.u64(e.row);
            w.u64(e.arrived);
            w.u8(static_cast<std::uint8_t>(e.state));
            w.u64(e.finishAt);
            w.b(e.hermesOnly);
            w.b(e.hermesInitiated);
            w.u64(e.waiters.size());
            for (const MemRequest &req : e.waiters)
                saveMemRequest(w, req);
        }
        w.u64(ch.wq.size());
        for (const WriteEntry &e : ch.wq) {
            w.u64(e.line);
            w.u32(e.bank);
            w.u64(e.row);
            w.u64(e.arrived);
            w.u8(static_cast<std::uint8_t>(e.state));
            w.u64(e.finishAt);
        }
        w.u64(ch.banks.size());
        for (const Bank &b : ch.banks) {
            w.b(b.open);
            w.u64(b.row);
            w.u64(b.readyAt);
        }
        w.u64(ch.busFreeAt);
        w.b(ch.drainingWrites);
        w.u32(ch.queuedReads);
        w.u32(ch.issuedReads);
        w.u32(ch.queuedWrites);
        w.u32(ch.issuedWrites);
        w.u64(ch.nextReadFinish);
        w.u64(ch.nextWriteFinish);
    }
    w.u64(now_);
}

void
DramController::loadState(StateReader &r)
{
    r.section("DRAM");
    if (r.u64() != channels_.size())
        throw StateError("dram channel count mismatch");
    for (Channel &ch : channels_) {
        ch.rq.clear();
        const std::size_t nr = r.count(1u << 20);
        for (std::size_t i = 0; i < nr; ++i) {
            ReadEntry e;
            e.line = r.u64();
            e.bank = r.u32();
            e.row = r.u64();
            e.arrived = r.u64();
            e.state = static_cast<State>(r.u8());
            e.finishAt = r.u64();
            e.hermesOnly = r.b();
            e.hermesInitiated = r.b();
            e.waiters.resize(r.count(1u << 16));
            for (MemRequest &req : e.waiters)
                loadMemRequest(r, req);
            ch.rq.push_back(std::move(e));
        }
        ch.wq.clear();
        const std::size_t nw = r.count(1u << 20);
        for (std::size_t i = 0; i < nw; ++i) {
            WriteEntry e;
            e.line = r.u64();
            e.bank = r.u32();
            e.row = r.u64();
            e.arrived = r.u64();
            e.state = static_cast<State>(r.u8());
            e.finishAt = r.u64();
            ch.wq.push_back(e);
        }
        if (r.u64() != ch.banks.size())
            throw StateError("dram bank count mismatch");
        for (Bank &b : ch.banks) {
            b.open = r.b();
            b.row = r.u64();
            b.readyAt = r.u64();
        }
        ch.busFreeAt = r.u64();
        ch.drainingWrites = r.b();
        ch.queuedReads = r.u32();
        ch.issuedReads = r.u32();
        ch.queuedWrites = r.u32();
        ch.issuedWrites = r.u32();
        ch.nextReadFinish = r.u64();
        ch.nextWriteFinish = r.u64();
        // Derived lookup state: rebuild the line indexes and drop the
        // scheduler's cached bound (it re-establishes on the next scan).
        ch.rqLines.clear();
        for (const ReadEntry &e : ch.rq)
            ch.rqLines.insert(e.line);
        ch.wqLines.clear();
        for (const WriteEntry &e : ch.wq)
            ++ch.wqLines[e.line];
        ch.readSchedBlockedUntil = 0;
    }
    now_ = r.u64();
}

} // namespace hermes
