#pragma once

/**
 * @file
 * DDR4 main-memory controller: per-channel read/write queues, banks with
 * open-row state, FR-FCFS scheduling, a shared per-channel data bus and
 * write-drain mode. Timing parameters follow Table 4 (DDR4-3200,
 * tRCD=tRP=tCAS=12.5ns) expressed in core cycles at 4GHz.
 *
 * The controller is also where the Hermes datapath lands (paper §6.2):
 *  - a Hermes request enqueues like a read but has no cache-side waiter;
 *  - a regular LLC-miss read arriving while a Hermes request to the same
 *    line is in flight merges with it and completes when it does;
 *  - a Hermes request that completes with no waiting regular request is
 *    dropped without filling any cache (keeping the hierarchy coherent).
 */

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/mem_iface.hh"
#include "common/types.hh"

namespace hermes
{

/** DRAM geometry and timing. */
struct DramParams
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;
    unsigned rowBufferBytes = 2048;
    /** Core clock (MHz) used to convert transfer rate into cycles. */
    unsigned coreFreqMhz = 4000;
    /** Transfer rate in mega-transfers/s (Fig. 17a sweeps this). */
    unsigned mtps = 3200;
    /** Bank timing in core cycles (12.5ns at 4GHz = 50 cycles). */
    Cycle tRcd = 50;
    Cycle tRp = 50;
    Cycle tCas = 50;
    std::uint32_t rqSize = 48;  ///< Read-queue entries per channel
    std::uint32_t wqSize = 48;  ///< Write-queue entries per channel

    /** Core cycles the data bus is busy transferring one 64B line. */
    Cycle
    busCyclesPerLine() const
    {
        // 64B line over a 64-bit (8B) bus = 8 transfers.
        const double cycles_per_transfer =
            static_cast<double>(coreFreqMhz) / static_cast<double>(mtps);
        const double total = 8.0 * cycles_per_transfer;
        return total < 1.0 ? 1 : static_cast<Cycle>(total + 0.999);
    }
};

/** Controller-level counters. */
struct DramStats
{
    std::uint64_t demandReads = 0;   ///< Load/RFO reads serviced
    std::uint64_t prefetchReads = 0; ///< Prefetch reads serviced
    std::uint64_t hermesReads = 0;   ///< Hermes-initiated reads serviced
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;   ///< Closed-row activations
    std::uint64_t rowConflicts = 0;
    std::uint64_t readMerges = 0;  ///< Reads merged into in-flight reads
    std::uint64_t wqForwards = 0;  ///< Reads serviced from the write queue

    std::uint64_t hermesIssued = 0;  ///< Hermes requests enqueued
    std::uint64_t hermesMergedIntoExisting = 0; ///< Already in flight
    std::uint64_t hermesDropped = 0; ///< Completed with no waiter
    std::uint64_t hermesUseful = 0;  ///< Completed with >=1 waiter
    std::uint64_t hermesRejected = 0; ///< RQ full at enqueue

    /** Total reads serviced by DRAM (the "main memory requests" metric,
     * Fig. 15b / Fig. 22). */
    std::uint64_t
    totalReads() const
    {
        return demandReads + prefetchReads + hermesReads;
    }
};

/** DDR4-style memory controller. */
class DramController final : public MemDevice
{
  public:
    explicit DramController(DramParams params);

    /** Wire the response receiver for core @p core_id (its LLC path). */
    void setClient(int core_id, MemClient *client);

    // MemDevice
    bool addRead(const MemRequest &req) override;
    bool addWrite(const MemRequest &req) override;
    void tick(Cycle now) override;

    /**
     * Event-horizon contract (docs/performance.md): a lower bound on
     * the next cycle at which tick() could complete or issue anything —
     * the earliest in-flight finish time, or the earliest bank-ready
     * time of a Queued entry on the side the write-drain hysteresis
     * will select. Never less than @p now + 1.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Emulate an event-free span ending at @p now: such ticks only
     * advance the controller clock (used to stamp enqueues). */
    void skipTo(Cycle now) { now_ = now; }

    /**
     * Enqueue a speculative Hermes read (paper §6.2.1). Returns false if
     * the channel read queue is full, in which case the request is
     * simply not issued (accounted in stats).
     */
    bool addHermes(const MemRequest &req);

    /** True if a read (incl. Hermes) to @p line is in flight. */
    bool probeRead(Addr line) const;

    const DramParams &params() const { return params_; }
    const DramStats &stats() const { return stats_; }
    void clearStats() { stats_ = DramStats{}; }

    /** Warmup checkpoint hooks. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    enum class State : std::uint8_t { Queued, Issued };

    struct ReadEntry
    {
        Addr line = 0;
        std::uint32_t bank = 0;
        std::uint64_t row = 0;
        Cycle arrived = 0;
        State state = State::Queued;
        Cycle finishAt = 0;
        bool hermesOnly = true; ///< No regular request attached yet
        bool hermesInitiated = false;
        std::vector<MemRequest> waiters;
    };

    struct WriteEntry
    {
        Addr line = 0;
        std::uint32_t bank = 0;
        std::uint64_t row = 0;
        Cycle arrived = 0;
        State state = State::Queued;
        Cycle finishAt = 0;
    };

    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Cycle readyAt = 0;
    };

    struct Channel
    {
        std::deque<ReadEntry> rq;
        std::deque<WriteEntry> wq;
        std::vector<Bank> banks;
        Cycle busFreeAt = 0;
        bool drainingWrites = false;

        // Scheduler fast-path bookkeeping: how many entries are still
        // waiting for a bank (Queued) vs in flight (Issued), and the
        // earliest in-flight completion time. Lets tick() skip the
        // FR-FCFS scan and the completion sweep on the many cycles
        // where neither can make progress.
        unsigned queuedReads = 0;
        unsigned issuedReads = 0;
        unsigned queuedWrites = 0;
        unsigned issuedWrites = 0;
        Cycle nextReadFinish = 0;
        Cycle nextWriteFinish = 0;
        /**
         * When the FR-FCFS read scan last found every queued entry's
         * bank busy, the earliest of those banks' readyAt cycles; the
         * scan cannot pick anything before it. Cleared whenever a read
         * arrives; bank readyAt values only ever move later, so the
         * bound stays a valid lower bound in between. Derived state
         * (not checkpointed, rebuilt lazily after loadState).
         */
        Cycle readSchedBlockedUntil = 0;
        /**
         * Lines of every entry in rq (reads merge by line, so entries
         * are unique per line). O(1) duplicate/merge pre-check for
         * addRead/addHermes/probeRead instead of an rq scan. Derived
         * state, rebuilt on loadState.
         */
        std::unordered_set<Addr> rqLines;
        /** Occupancy count per line in wq (writes to one line can
         * coexist). Gates the read-after-write forwarding scan. */
        std::unordered_map<Addr, unsigned> wqLines;
    };

    unsigned channelOf(Addr line) const;
    std::uint32_t bankOf(Addr line) const;
    std::uint64_t rowOf(Addr line) const;
    /** Bank access latency for the target row; updates row state. */
    Cycle access(Channel &ch, std::uint32_t bank, std::uint64_t row,
                 Cycle now);
    void scheduleReads(Channel &ch, Cycle now);
    void scheduleWrites(Channel &ch, Cycle now);
    void completeReads(Channel &ch, Cycle now);

    DramParams params_;
    std::vector<Channel> channels_;
    std::vector<MemClient *> clients_;
    DramStats stats_;
    Cycle now_ = 0;
};

} // namespace hermes
