#pragma once

/**
 * @file
 * The Hermes controller (paper §5-§6): glue between the core's load
 * pipeline, the off-chip predictor and the main-memory controller.
 *
 * Per load:
 *  1. at LQ allocation the predictor is consulted (predictLoad);
 *  2. if predicted off-chip, once the load's address is generated a
 *     Hermes request is scheduled and, after the configurable Hermes
 *     request issue latency (Hermes-O: 6 cycles, Hermes-P: 18 cycles,
 *     Table 4), enqueued directly at the memory controller;
 *  3. when the load completes, the predictor is trained with the true
 *     outcome and the confusion-matrix statistics are updated.
 *
 * The controller also supports a predictor-only mode (issue disabled)
 * used by the accuracy/coverage experiments (Fig. 9-11, 21).
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>

#include "cache/mem_iface.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** Hermes configuration. */
struct HermesParams
{
    /** Issue speculative requests (false = predictor-only mode). */
    bool issueEnabled = false;
    /** Hermes request issue latency in cycles (§6.2.1, Fig. 17c). */
    Cycle issueLatency = 6;
};

/** Hermes bookkeeping beyond the DRAM-side counters. */
struct HermesStats
{
    PredictorStats pred;
    std::uint64_t predictedOffChip = 0;
    std::uint64_t requestsScheduled = 0; ///< Hermes requests sent to MC
    std::uint64_t loadsServedByHermes = 0;
};

/** Per-core Hermes controller. */
class HermesController
{
  public:
    HermesController(HermesParams params, OffChipPredictor *predictor,
                     DramController *dram);

    /**
     * Consult the predictor at LQ allocation (no-op without one).
     * @return true iff the load is predicted to go off-chip.
     */
    bool predictLoad(Addr pc, Addr vaddr, PredMeta &meta);

    /**
     * The load's address has been generated and the load was issued to
     * the L1. Schedules the Hermes request if predicted off-chip.
     */
    void onLoadIssued(const MemRequest &req, const PredMeta &meta,
                      Cycle now);

    /** Drain due Hermes requests into the memory controller. Inline
     * fast path: this runs every core cycle and is almost always a
     * no-op. */
    void
    tick(Cycle now)
    {
        // pending_ is issueAt-ordered (fixed issue latency, monotone
        // enqueue times), so the front gates the whole drain.
        if (!pending_.empty() && pending_.front().issueAt <= now)
            drainPending(now);
    }

    /**
     * Event-horizon contract (docs/performance.md): when the oldest
     * pending Hermes request becomes due. Requests are appended with a
     * monotone clock and drained FIFO, so the front deadline is the
     * minimum. Never less than @p now + 1.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (pending_.empty())
            return kNoEventCycle;
        return std::max(pending_.front().issueAt, now + 1);
    }

    /** Train + account when the load returns to the core. */
    void onLoadComplete(Addr pc, Addr vaddr, const PredMeta &meta,
                        bool went_off_chip, bool served_by_hermes);

    OffChipPredictor *predictor() { return predictor_; }
    const HermesParams &params() const { return params_; }
    const HermesStats &stats() const { return stats_; }
    void clearStats() { stats_ = HermesStats{}; }

    /**
     * Gate speculative issue at a phase boundary (hermes.warmup_issue):
     * with issue off the predictor still trains, matching
     * predictor-only mode during warmup.
     */
    void setIssueEnabled(bool enabled) { params_.issueEnabled = enabled; }

    /** Warmup checkpoint hooks (predictor state is saved separately). */
    void
    saveState(StateWriter &w) const
    {
        w.section("HRMC");
        w.u64(pending_.size());
        for (const PendingIssue &p : pending_) {
            saveMemRequest(w, p.req);
            w.u64(p.issueAt);
        }
    }

    void
    loadState(StateReader &r)
    {
        r.section("HRMC");
        pending_.clear();
        const std::size_t n = r.count(1u << 20);
        for (std::size_t i = 0; i < n; ++i) {
            PendingIssue p;
            loadMemRequest(r, p.req);
            p.issueAt = r.u64();
            pending_.push_back(p);
        }
    }

  private:
    struct PendingIssue
    {
        MemRequest req;
        Cycle issueAt;
    };

    void drainPending(Cycle now);

    HermesParams params_;
    OffChipPredictor *predictor_;
    DramController *dram_;
    std::deque<PendingIssue> pending_;
    HermesStats stats_;
};

} // namespace hermes
