#include "hermes/hermes.hh"

namespace hermes
{

HermesController::HermesController(HermesParams params,
                                   OffChipPredictor *predictor,
                                   DramController *dram)
    : params_(params), predictor_(predictor), dram_(dram)
{
}

bool
HermesController::predictLoad(Addr pc, Addr vaddr, PredMeta &meta)
{
    if (predictor_ == nullptr) {
        meta = PredMeta{};
        return false;
    }
    const bool off_chip = predictor_->predict(pc, vaddr, meta);
    if (off_chip)
        ++stats_.predictedOffChip;
    return off_chip;
}

void
HermesController::onLoadIssued(const MemRequest &req, const PredMeta &meta,
                               Cycle now)
{
    if (!params_.issueEnabled || !meta.valid || !meta.predictedOffChip)
        return;
    MemRequest hreq = req;
    hreq.type = AccessType::Hermes;
    pending_.push_back(PendingIssue{hreq, now + params_.issueLatency});
}

void
HermesController::drainPending(Cycle now)
{
    while (!pending_.empty() && pending_.front().issueAt <= now) {
        const MemRequest req = pending_.front().req;
        pending_.pop_front();
        ++stats_.requestsScheduled;
        if (dram_ != nullptr)
            dram_->addHermes(req);
    }
}

void
HermesController::onLoadComplete(Addr pc, Addr vaddr, const PredMeta &meta,
                                 bool went_off_chip, bool served_by_hermes)
{
    if (!meta.valid)
        return;
    if (meta.predictedOffChip && went_off_chip)
        ++stats_.pred.truePositives;
    else if (meta.predictedOffChip && !went_off_chip)
        ++stats_.pred.falsePositives;
    else if (!meta.predictedOffChip && went_off_chip)
        ++stats_.pred.falseNegatives;
    else
        ++stats_.pred.trueNegatives;
    if (served_by_hermes)
        ++stats_.loadsServedByHermes;
    if (predictor_ != nullptr)
        predictor_->train(pc, vaddr, meta, went_off_chip);
}

} // namespace hermes
