#pragma once

/**
 * @file
 * MLOP: Multi-Lookahead Offset Prefetching (Shakerinava et al., DPC-3
 * 2019). Candidate offsets are scored against an access map of
 * recently-touched lines; instead of a single best offset (BOP), MLOP
 * maintains one best offset per lookahead level, prefetching several
 * offsets at once. This implementation keeps the structure of the
 * original — per-zone access maps, an evaluation round over candidate
 * offsets, per-level selection — with a simplified timing of rounds.
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** MLOP parameters. */
struct MlopParams
{
    std::uint32_t mapEntries = 128; ///< Tracked 4KB zones
    int maxOffset = 31;             ///< Candidate offsets in [-max, max]
    unsigned levels = 3;            ///< Lookahead levels = live offsets
    unsigned roundLength = 256;     ///< Accesses per evaluation round
    unsigned scoreThreshold = 24;   ///< Min score to activate an offset
};

/** Multi-lookahead offset prefetcher. */
class Mlop : public Prefetcher
{
  public:
    explicit Mlop(MlopParams params = MlopParams{});

    const char *name() const override { return "mlop"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

    /** Currently active offsets (testing hook). */
    const std::vector<int> &activeOffsets() const { return active_; }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("MLOP");
        w.u64(zones_.size());
        for (const Zone &z : zones_) {
            w.u64(z.zone);
            w.u64(z.bitmap);
            w.u64(z.lastUse);
            w.b(z.valid);
        }
        w.u64(scores_.size());
        for (std::uint32_t v : scores_)
            w.u32(v);
        w.u64(active_.size());
        for (int v : active_)
            w.i32(v);
        w.u32(accessesThisRound_);
        w.u64(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("MLOP");
        if (r.u64() != zones_.size())
            throw StateError("mlop zone table size mismatch");
        for (Zone &z : zones_) {
            z.zone = r.u64();
            z.bitmap = r.u64();
            z.lastUse = r.u64();
            z.valid = r.b();
        }
        if (r.u64() != scores_.size())
            throw StateError("mlop score table size mismatch");
        for (std::uint32_t &v : scores_)
            v = r.u32();
        active_.assign(r.count(1u << 16), 0);
        for (int &v : active_)
            v = r.i32();
        accessesThisRound_ = r.u32();
        clock_ = r.u64();
    }

  private:
    struct Zone
    {
        Addr zone = 0;              ///< 4KB-aligned zone number
        std::uint64_t bitmap = 0;   ///< Accessed lines in the zone
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Was (line) recently accessed according to the maps? */
    bool wasAccessed(Addr line) const;
    Zone &zoneFor(Addr line);
    void finishRound();

    MlopParams params_;
    std::vector<Zone> zones_;
    std::vector<int> candidateOffsets_;
    std::vector<std::uint32_t> scores_;
    std::vector<int> active_;
    unsigned accessesThisRound_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
