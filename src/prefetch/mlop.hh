#pragma once

/**
 * @file
 * MLOP: Multi-Lookahead Offset Prefetching (Shakerinava et al., DPC-3
 * 2019). Candidate offsets are scored against an access map of
 * recently-touched lines; instead of a single best offset (BOP), MLOP
 * maintains one best offset per lookahead level, prefetching several
 * offsets at once. This implementation keeps the structure of the
 * original — per-zone access maps, an evaluation round over candidate
 * offsets, per-level selection — with a simplified timing of rounds.
 */

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** MLOP parameters. */
struct MlopParams
{
    std::uint32_t mapEntries = 128; ///< Tracked 4KB zones
    int maxOffset = 31;             ///< Candidate offsets in [-max, max]
    unsigned levels = 3;            ///< Lookahead levels = live offsets
    unsigned roundLength = 256;     ///< Accesses per evaluation round
    unsigned scoreThreshold = 24;   ///< Min score to activate an offset
};

/** Multi-lookahead offset prefetcher. */
class Mlop : public Prefetcher
{
  public:
    explicit Mlop(MlopParams params = MlopParams{});

    const char *name() const override { return "mlop"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

    /** Currently active offsets (testing hook). */
    const std::vector<int> &activeOffsets() const { return active_; }

  private:
    struct Zone
    {
        Addr zone = 0;              ///< 4KB-aligned zone number
        std::uint64_t bitmap = 0;   ///< Accessed lines in the zone
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Was (line) recently accessed according to the maps? */
    bool wasAccessed(Addr line) const;
    Zone &zoneFor(Addr line);
    void finishRound();

    MlopParams params_;
    std::vector<Zone> zones_;
    std::vector<int> candidateOffsets_;
    std::vector<std::uint32_t> scores_;
    std::vector<int> active_;
    unsigned accessesThisRound_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
