#include "prefetch/bingo.hh"

#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

Bingo::Bingo(BingoParams params)
    : params_(params), accum_(params.accumEntries),
      history_(static_cast<std::size_t>(params.historySets) *
               params.historyWays)
{
}

unsigned
Bingo::offsetInRegion(Addr addr) const
{
    return static_cast<unsigned>((addr / kBlockSize) %
                                 linesPerRegion());
}

std::uint64_t
Bingo::keyAddr(Addr pc, Addr region, unsigned offset) const
{
    return mix64((pc << 22) ^ (region << 5) ^ offset);
}

std::uint32_t
Bingo::keyOffset(Addr pc, unsigned offset) const
{
    return static_cast<std::uint32_t>(
        mix64((pc << 6) ^ offset) & 0xFFFFFFFFu);
}

void
Bingo::commitToHistory(const AccumEntry &e)
{
    // Only remember regions with at least two accessed lines; a single
    // touch carries no spatial pattern.
    if (__builtin_popcountll(e.footprint) < 2)
        return;
    const std::uint64_t ka = keyAddr(e.triggerPc, e.region,
                                     e.triggerOffset);
    // Index by the PC+Offset key so the precise (PC+Address) and
    // fallback (PC+Offset) lookups probe the same set.
    const std::uint32_t set = keyOffset(e.triggerPc, e.triggerOffset) &
                              (params_.historySets - 1);
    const std::size_t base =
        static_cast<std::size_t>(set) * params_.historyWays;
    HistEntry *victim = &history_[base];
    for (unsigned w = 0; w < params_.historyWays; ++w) {
        HistEntry &h = history_[base + w];
        if (h.valid && h.keyAddr == ka) {
            h.footprint = e.footprint;
            h.lastUse = ++clock_;
            return;
        }
        if (!h.valid || h.lastUse < victim->lastUse)
            victim = &h;
    }
    victim->valid = true;
    victim->keyAddr = ka;
    victim->keyOffset = keyOffset(e.triggerPc, e.triggerOffset);
    victim->footprint = e.footprint;
    victim->lastUse = ++clock_;
}

std::uint64_t
Bingo::lookupHistory(Addr pc, Addr region, unsigned offset)
{
    const std::uint64_t ka = keyAddr(pc, region, offset);
    const std::uint32_t ko = keyOffset(pc, offset);
    const std::uint32_t set = ko & (params_.historySets - 1);
    const std::size_t base =
        static_cast<std::size_t>(set) * params_.historyWays;

    // Precise PC+Address match first.
    for (unsigned w = 0; w < params_.historyWays; ++w) {
        HistEntry &h = history_[base + w];
        if (h.valid && h.keyAddr == ka) {
            h.lastUse = ++clock_;
            return h.footprint;
        }
    }
    // Fallback: PC+Offset match (generalises across regions).
    for (unsigned w = 0; w < params_.historyWays; ++w) {
        HistEntry &h = history_[base + w];
        if (h.valid && h.keyOffset == ko) {
            h.lastUse = ++clock_;
            return h.footprint;
        }
    }
    return 0;
}

void
Bingo::onAccess(Addr addr, Addr pc, bool hit, std::vector<Addr> &out_lines)
{
    (void)hit;
    const Addr region = regionOf(addr);
    const unsigned offset = offsetInRegion(addr);
    ++clock_;

    AccumEntry *lru = &accum_.front();
    for (auto &e : accum_) {
        if (e.valid && e.region == region) {
            e.footprint |= 1ull << offset;
            e.lastUse = clock_;
            return; // Region already being tracked: just accumulate.
        }
        if (!e.valid || e.lastUse < lru->lastUse)
            lru = &e;
    }

    // New region generation: commit the evicted one, predict for this
    // trigger access and start accumulating.
    if (lru->valid)
        commitToHistory(*lru);
    *lru = AccumEntry{};
    lru->valid = true;
    lru->region = region;
    lru->triggerPc = pc;
    lru->triggerOffset = offset;
    lru->footprint = 1ull << offset;
    lru->lastUse = clock_;

    const std::uint64_t predicted = lookupHistory(pc, region, offset);
    if (predicted == 0)
        return;
    const Addr region_line = region * (params_.regionBytes / kBlockSize);
    unsigned emitted = 0;
    for (unsigned o = 0;
         o < linesPerRegion() && emitted < params_.maxPrefetchPerTrigger;
         ++o) {
        if (o == offset || !(predicted & (1ull << o)))
            continue;
        out_lines.push_back(region_line + o);
        ++emitted;
    }
}

std::uint64_t
Bingo::storageBits() const
{
    // Accumulation: region tag (37) + trigger pc hash (16) + offset (5)
    // + footprint (32 for 2KB regions).
    const std::uint64_t accum_bits =
        static_cast<std::uint64_t>(accum_.size()) * (37 + 16 + 5 + 32);
    // History: two keys (48 + 32) + footprint (32).
    const std::uint64_t hist_bits =
        static_cast<std::uint64_t>(history_.size()) * (48 + 32 + 32);
    return accum_bits + hist_bits;
}

namespace
{

ModelDef
bingoModelDef()
{
    ModelDef d;
    d.name = "bingo";
    d.kind = ModelKind::Prefetcher;
    d.doc = "Bingo spatial footprint prefetcher (Table 6)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &/*ctx*/) {
        return std::make_unique<Bingo>();
    };
    return d;
}

const ModelRegistrar bingoModelDefRegistrar(bingoModelDef());

} // namespace

} // namespace hermes
