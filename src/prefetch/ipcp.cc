/**
 * @file
 * "ipcp": an IPCP-class per-IP stride prefetcher (after Pakalapati &
 * Panda, ISCA'20), landed entirely through the model registry — this
 * file is the whole model (no enum, no SystemConfig field, no System
 * wiring).
 *
 * A tagged IP table learns, per load PC, the line stride between that
 * PC's successive accesses; once the stride repeats past a confidence
 * threshold the prefetcher runs ahead of the PC by a configurable
 * degree, staying inside the 4KB page like the simulator's other
 * spatial prefetchers.
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "prefetch/prefetcher.hh"
#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

class Ipcp final : public Prefetcher
{
  public:
    explicit Ipcp(const ModelContext &ctx)
        : degree_(static_cast<unsigned>(ctx.knobInt("degree"))),
          confThreshold_(
              static_cast<int>(ctx.knobInt("conf_threshold"))),
          mask_(static_cast<std::uint32_t>(ctx.knobInt("entries")) - 1),
          table_(static_cast<std::size_t>(ctx.knobInt("entries")))
    {
    }

    const char *name() const override { return "ipcp"; }

    void
    onAccess(Addr addr, Addr pc, bool hit,
             std::vector<Addr> &out_lines) override
    {
        (void)hit;
        const Addr line = lineAddr(addr);
        const std::uint16_t tag =
            static_cast<std::uint16_t>((pc >> 2) ^ (pc >> 18));
        Entry &e = table_[static_cast<std::uint32_t>(pc >> 2) & mask_];

        if (!e.valid || e.tag != tag) {
            e = Entry{};
            e.valid = true;
            e.tag = tag;
            e.lastLine = line;
            return;
        }

        const std::int64_t stride =
            static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(e.lastLine);
        e.lastLine = line;
        if (stride == 0)
            return;
        if (stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        if (e.confidence < confThreshold_)
            return;

        const int offset = static_cast<int>(lineOffsetInPage(addr));
        for (unsigned d = 1; d <= degree_; ++d) {
            const std::int64_t off =
                offset + stride * static_cast<std::int64_t>(d);
            if (off < 0 || off >= static_cast<int>(kBlocksPerPage))
                break;
            out_lines.push_back(line + stride *
                                           static_cast<std::int64_t>(d));
        }
    }

    std::uint64_t
    storageBits() const override
    {
        // tag (16) + last line (36) + stride (7) + confidence (2).
        return static_cast<std::uint64_t>(table_.size()) * 61;
    }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("IPCP");
        w.u64(table_.size());
        for (const Entry &e : table_) {
            w.b(e.valid);
            w.u16(e.tag);
            w.u64(e.lastLine);
            w.i64(e.stride);
            w.i32(e.confidence);
        }
    }

    void
    loadState(StateReader &r) override
    {
        r.section("IPCP");
        if (r.u64() != table_.size())
            throw StateError("ipcp table size mismatch");
        for (Entry &e : table_) {
            e.valid = r.b();
            e.tag = r.u16();
            e.lastLine = r.u64();
            e.stride = r.i64();
            e.confidence = r.i32();
        }
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        int confidence = 0;
    };

    unsigned degree_;
    int confThreshold_;
    std::uint32_t mask_;
    std::vector<Entry> table_;
};

ModelDef
ipcpModelDef()
{
    ModelDef d;
    d.name = "ipcp";
    d.kind = ModelKind::Prefetcher;
    d.doc = "per-IP stride classifier prefetcher (IPCP-class, "
            "ISCA'20)";
    d.knobs = {
        {"entries", ModelKnob::Type::Int, "1024", 16, 65536, true,
         "IP table entries"},
        {"degree", ModelKnob::Type::Int, "3", 1, 16, false,
         "prefetches issued per confident trigger"},
        {"conf_threshold", ModelKnob::Type::Int, "2", 1, 3, false,
         "stride repeats before prefetching"},
    };
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &ctx) {
        return std::make_unique<Ipcp>(ctx);
    };
    return d;
}

const ModelRegistrar ipcpRegistrar(ipcpModelDef());

} // namespace

} // namespace hermes
