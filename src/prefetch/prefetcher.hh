#pragma once

/**
 * @file
 * Hardware data-prefetcher interface. Prefetchers sit at the LLC
 * (matching the paper's configuration, Table 4): the cache invokes the
 * prefetcher on every demand access and feeds back fill/usefulness
 * events so learning prefetchers (SPP+PPF, Pythia) can assign credit.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hermes
{

class StateReader;
class StateWriter;

/** Aggregate prefetcher statistics. */
struct PrefetcherStats
{
    std::uint64_t issued = 0;  ///< Prefetch lines handed to the cache
    std::uint64_t useful = 0;  ///< Prefetched lines later hit by demand
    std::uint64_t useless = 0; ///< Prefetched lines evicted untouched
};

/**
 * A hardware prefetcher attached to one cache. Addresses exchanged with
 * the prefetcher are full byte addresses; prefetch candidates are
 * returned as cache-line addresses.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual const char *name() const = 0;

    /**
     * A demand access (Load/Rfo) was looked up in the cache.
     *
     * @param addr byte address of the access
     * @param pc PC of the triggering instruction
     * @param hit whether the lookup hit
     * @param out_lines line addresses the prefetcher wants fetched
     */
    virtual void onAccess(Addr addr, Addr pc, bool hit,
                          std::vector<Addr> &out_lines) = 0;

    /** A prefetched line was filled into the cache. */
    virtual void onPrefetchFill(Addr line) { (void)line; }

    /** A demand access hit a line this prefetcher brought in. */
    virtual void onPrefetchUseful(Addr line, Addr pc)
    {
        (void)line;
        (void)pc;
    }

    /**
     * A demand access merged into this prefetcher's still-in-flight
     * fetch: accurate but late. Defaults to the useful feedback.
     */
    virtual void onPrefetchLate(Addr line, Addr pc)
    {
        onPrefetchUseful(line, pc);
    }

    /** A prefetched line was evicted without ever being used. */
    virtual void onPrefetchUseless(Addr line) { (void)line; }

    /** Metadata storage in bits (Table 6 accounting). */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Warmup-checkpoint support (sim/simulator.hh). Stats are not
     * serialized: checkpoints are taken at the warmup/measure seam,
     * right after every statistic has been cleared. A prefetcher that
     * does not override these stays non-checkpointable and disables
     * checkpointing for runs that select it.
     */
    virtual bool checkpointable() const { return false; }
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}

    PrefetcherStats &stats() { return stats_; }
    const PrefetcherStats &stats() const { return stats_; }

  protected:
    PrefetcherStats stats_;
};

/** Known prefetcher kinds (Table 6 plus a simple streamer baseline). */
enum class PrefetcherKind : std::uint8_t
{
    None,
    Streamer,
    Spp,
    Bingo,
    Mlop,
    Sms,
    Pythia,
};

/** Instantiate a prefetcher; returns nullptr for None. */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind,
                                           std::uint64_t seed = 1);

/** Parse a prefetcher name ("none", "streamer", "spp", ...). */
PrefetcherKind prefetcherKindFromString(const std::string &name);

/** Printable name for a kind. */
const char *prefetcherKindName(PrefetcherKind kind);

} // namespace hermes
