#pragma once

/**
 * @file
 * Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19): learns the
 * footprints of 2KB regions and replays them when a region is
 * re-triggered, using a "PC+Address" event for high precision with a
 * "PC+Offset" fallback for generalisation — both stored in one history
 * table as in the original design (Table 6 budget: 46KB).
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Bingo parameters. */
struct BingoParams
{
    unsigned regionBytes = 2048;
    std::uint32_t accumEntries = 64;
    std::uint32_t historySets = 512;
    unsigned historyWays = 8;
    unsigned maxPrefetchPerTrigger = 16;
};

/** Footprint-replay spatial prefetcher. */
class Bingo : public Prefetcher
{
  public:
    explicit Bingo(BingoParams params = BingoParams{});

    const char *name() const override { return "bingo"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("BNGO");
        w.u64(accum_.size());
        for (const AccumEntry &e : accum_) {
            w.u64(e.region);
            w.u64(e.triggerPc);
            w.u32(e.triggerOffset);
            w.u64(e.footprint);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(history_.size());
        for (const HistEntry &e : history_) {
            w.u64(e.keyAddr);
            w.u32(e.keyOffset);
            w.u64(e.footprint);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("BNGO");
        if (r.u64() != accum_.size())
            throw StateError("bingo accumulation table size mismatch");
        for (AccumEntry &e : accum_) {
            e.region = r.u64();
            e.triggerPc = r.u64();
            e.triggerOffset = r.u32();
            e.footprint = r.u64();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        if (r.u64() != history_.size())
            throw StateError("bingo history table size mismatch");
        for (HistEntry &e : history_) {
            e.keyAddr = r.u64();
            e.keyOffset = r.u32();
            e.footprint = r.u64();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        clock_ = r.u64();
    }

  private:
    struct AccumEntry
    {
        Addr region = 0;
        Addr triggerPc = 0;
        unsigned triggerOffset = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct HistEntry
    {
        std::uint64_t keyAddr = 0;   ///< PC+Address key
        std::uint32_t keyOffset = 0; ///< PC+Offset key
        std::uint64_t footprint = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned linesPerRegion() const { return params_.regionBytes / kBlockSize; }
    Addr regionOf(Addr addr) const { return addr / params_.regionBytes; }
    unsigned offsetInRegion(Addr addr) const;
    std::uint64_t keyAddr(Addr pc, Addr region, unsigned offset) const;
    std::uint32_t keyOffset(Addr pc, unsigned offset) const;
    void commitToHistory(const AccumEntry &e);
    /** Predict footprint for a trigger; 0 when unknown. */
    std::uint64_t lookupHistory(Addr pc, Addr region, unsigned offset);

    BingoParams params_;
    std::vector<AccumEntry> accum_;
    std::vector<HistEntry> history_;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
