#include "prefetch/streamer.hh"

#include "sim/model_registry.hh"

namespace hermes
{

Streamer::Streamer(StreamerParams params)
    : params_(params), table_(params.entries)
{
}

void
Streamer::onAccess(Addr addr, Addr pc, bool hit,
                   std::vector<Addr> &out_lines)
{
    (void)pc;
    (void)hit;
    const Addr page = pageNumber(addr);
    const int offset = static_cast<int>(lineOffsetInPage(addr));
    ++clock_;

    Entry *e = nullptr;
    Entry *lru = &table_.front();
    for (auto &cand : table_) {
        if (cand.valid && cand.page == page) {
            e = &cand;
            break;
        }
        if (!cand.valid || cand.lastUse < lru->lastUse)
            lru = &cand;
    }
    if (e == nullptr) {
        *lru = Entry{};
        lru->valid = true;
        lru->page = page;
        lru->lastOffset = offset;
        lru->lastUse = clock_;
        return;
    }
    e->lastUse = clock_;
    const int delta = offset - e->lastOffset;
    e->lastOffset = offset;
    if (delta == 0)
        return;
    const int dir = delta > 0 ? 1 : -1;
    if (dir == e->direction) {
        if (e->confidence < 7)
            ++e->confidence;
    } else {
        e->direction = dir;
        e->confidence = 1;
    }
    if (e->confidence < params_.confidenceThreshold)
        return;
    const Addr base_line = lineAddr(addr);
    for (unsigned d = 1; d <= params_.degree; ++d) {
        const std::int64_t off = offset + dir * static_cast<int>(d);
        if (off < 0 || off >= static_cast<int>(kBlocksPerPage))
            break;
        out_lines.push_back(base_line + dir * static_cast<std::int64_t>(d));
    }
}

std::uint64_t
Streamer::storageBits() const
{
    // page tag (36) + offset (6) + direction (2) + confidence (3)
    return static_cast<std::uint64_t>(table_.size()) * 47;
}

namespace
{

ModelDef
streamerModelDef()
{
    ModelDef d;
    d.name = "streamer";
    d.kind = ModelKind::Prefetcher;
    d.doc = "per-page stream prefetcher with direction confidence "
            "(sanity baseline)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &/*ctx*/) {
        return std::make_unique<Streamer>();
    };
    return d;
}

const ModelRegistrar streamerModelDefRegistrar(streamerModelDef());

} // namespace

} // namespace hermes
