#pragma once

/**
 * @file
 * SMS: Spatial Memory Streaming (Somogyi et al., ISCA'06). Spatial
 * generations over 2KB regions are accumulated in an active generation
 * table; when a generation ends (its table entry is replaced), the
 * footprint is stored in a pattern history table keyed by the trigger's
 * (PC, region offset). A later trigger with the same signature streams
 * the recorded footprint (Table 6 budget: 20KB).
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** SMS parameters. */
struct SmsParams
{
    unsigned regionBytes = 2048;
    std::uint32_t agtEntries = 64;
    std::uint32_t phtSets = 256;
    unsigned phtWays = 8;
    unsigned maxPrefetchPerTrigger = 16;
};

/** Spatial memory streaming prefetcher. */
class Sms : public Prefetcher
{
  public:
    explicit Sms(SmsParams params = SmsParams{});

    const char *name() const override { return "sms"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("SMSP");
        w.u64(agt_.size());
        for (const AgtEntry &e : agt_) {
            w.u64(e.region);
            w.u32(e.signature);
            w.u64(e.footprint);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(pht_.size());
        for (const PhtEntry &e : pht_) {
            w.u32(e.signature);
            w.u64(e.footprint);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("SMSP");
        if (r.u64() != agt_.size())
            throw StateError("sms active generation table size mismatch");
        for (AgtEntry &e : agt_) {
            e.region = r.u64();
            e.signature = r.u32();
            e.footprint = r.u64();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        if (r.u64() != pht_.size())
            throw StateError("sms pattern history table size mismatch");
        for (PhtEntry &e : pht_) {
            e.signature = r.u32();
            e.footprint = r.u64();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        clock_ = r.u64();
    }

  private:
    struct AgtEntry
    {
        Addr region = 0;
        std::uint32_t signature = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct PhtEntry
    {
        std::uint32_t signature = 0;
        std::uint64_t footprint = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned linesPerRegion() const { return params_.regionBytes / kBlockSize; }
    std::uint32_t signature(Addr pc, unsigned offset) const;
    void commit(const AgtEntry &e);

    SmsParams params_;
    std::vector<AgtEntry> agt_;
    std::vector<PhtEntry> pht_;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
