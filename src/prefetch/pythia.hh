#pragma once

/**
 * @file
 * Pythia: the reinforcement-learning prefetching framework of Bera et
 * al. (MICRO'21), the paper's baseline prefetcher (Table 4). Pythia
 * formulates prefetching as a contextual decision: a *state* is a
 * vector of program features, *actions* are prefetch offsets, and a
 * *reward* scores the usefulness of the prefetch after the fact.
 *
 * This implementation keeps Pythia's architecture — a QVStore holding
 * per-feature Q-value tables (hashed like a perceptron), an evaluation
 * queue (EQ) that defers reward assignment until the outcome is known,
 * epsilon-greedy exploration — with one documented simplification: the
 * temporal-difference bootstrap term uses a one-step lookup with a
 * small discount rather than the full SARSA pipeline.
 *
 * Features (the two-feature configuration the Pythia paper selects):
 *   phi1 = PC (+) last delta, phi2 = sequence of last-4 offsets.
 * Storage budget follows Table 6 (25.5KB).
 */

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/addr_index.hh"
#include "common/rng.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Pythia parameters. */
struct PythiaParams
{
    std::uint32_t tableEntries = 1024; ///< Per feature
    double alpha = 0.25;   ///< Learning rate
    double gamma = 0.0;    ///< Discount for the (optional) bootstrap term
    double epsilon = 0.002; ///< Exploration probability
    int rewardAccurate = 20;      ///< Accurate and timely (R_AT)
    int rewardAccurateLate = 12;  ///< Accurate but late (R_AL)
    int rewardInaccurate = -14;
    int rewardNoPrefetch = -2;
    std::uint32_t eqSize = 256;
    std::uint64_t seed = 7;
};

/** RL-based prefetcher. */
class Pythia : public Prefetcher
{
  public:
    explicit Pythia(PythiaParams params = PythiaParams{});

    const char *name() const override { return "pythia"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    void onPrefetchUseful(Addr line, Addr pc) override;
    void onPrefetchLate(Addr line, Addr pc) override;
    std::uint64_t storageBits() const override;

    /** The action (offset) set; index 0 is "no prefetch". */
    static const std::array<int, 16> kActions;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("PYTH");
        const Rng::State rs = rng_.state();
        w.u64(rs.s0);
        w.u64(rs.s1);
        w.u64(table1_.size());
        for (const auto &row : table1_)
            for (float q : row)
                w.f32(q);
        w.u64(table2_.size());
        for (const auto &row : table2_)
            for (float q : row)
                w.f32(q);
        w.u64(eq_.size());
        for (const EqEntry &e : eq_) {
            w.u64(e.line);
            w.u32(e.phi1);
            w.u32(e.phi2);
            w.u32(e.action);
            w.b(e.rewarded);
        }
        for (const PageCtx &p : pages_) {
            w.u64(p.page);
            w.i32(p.lastOffset);
            w.u64(p.lastUse);
        }
        w.u32(pagesInvalidLeft_);
        w.u64(pageClock_);
        w.u64(lastLine_);
        for (std::uint8_t o : lastOffsets_)
            w.u8(o);
        w.u32(lastPhi1_);
        w.u32(lastPhi2_);
        w.b(havePrev_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("PYTH");
        Rng::State rs;
        rs.s0 = r.u64();
        rs.s1 = r.u64();
        rng_.setState(rs);
        if (r.u64() != table1_.size())
            throw StateError("pythia qvstore table1 size mismatch");
        for (auto &row : table1_)
            for (float &q : row)
                q = r.f32();
        if (r.u64() != table2_.size())
            throw StateError("pythia qvstore table2 size mismatch");
        for (auto &row : table2_)
            for (float &q : row)
                q = r.f32();
        eq_.clear();
        const std::size_t nEq = r.count(1u << 20);
        for (std::size_t i = 0; i < nEq; ++i) {
            EqEntry e;
            e.line = r.u64();
            e.phi1 = r.u32();
            e.phi2 = r.u32();
            e.action = r.u32();
            e.rewarded = r.b();
            eq_.push_back(e);
        }
        for (PageCtx &p : pages_) {
            p.page = r.u64();
            p.lastOffset = r.i32();
            p.lastUse = r.u64();
        }
        pagesInvalidLeft_ = r.u32();
        if (pagesInvalidLeft_ > kPageCtxEntries)
            throw StateError("pythia page context fill count out of range");
        // The index is derived state: rebuild it over the valid slots,
        // which fill from the highest index down (see pagesInvalidLeft_).
        pagesIndex_.clear();
        for (unsigned i = pagesInvalidLeft_; i < kPageCtxEntries; ++i)
            pagesIndex_.insert(pages_[i].page, i);
        pageClock_ = r.u64();
        lastLine_ = r.u64();
        for (std::uint8_t &o : lastOffsets_)
            o = r.u8();
        lastPhi1_ = r.u32();
        lastPhi2_ = r.u32();
        havePrev_ = r.b();
    }

  private:
    struct EqEntry
    {
        Addr line = 0;      ///< Prefetched line (0 for no-prefetch)
        std::uint32_t phi1 = 0;
        std::uint32_t phi2 = 0;
        unsigned action = 0;
        bool rewarded = false;
    };

    double qValue(std::uint32_t phi1, std::uint32_t phi2,
                  unsigned action) const;
    void updateQ(std::uint32_t phi1, std::uint32_t phi2, unsigned action,
                 double target);
    unsigned selectAction(std::uint32_t phi1, std::uint32_t phi2);
    void assignReward(EqEntry &e, int reward);
    void retireEqOverflow();

    PythiaParams params_;
    Rng rng_;
    /** QVStore: per-feature tables of Q-values, one row per action. */
    std::vector<std::array<float, 16>> table1_;
    std::vector<std::array<float, 16>> table2_;
    std::deque<EqEntry> eq_;

    struct PageCtx
    {
        Addr page = 0;
        int lastOffset = 0;
        std::uint64_t lastUse = 0;
    };

    static constexpr unsigned kPageCtxEntries = 64;

    /** Page-local last offset, so interleaved streams keep clean
     * deltas (Pythia derives its delta feature from page context). */
    int pageLocalDelta(Addr line);

    std::vector<PageCtx> pages_ = std::vector<PageCtx>(kPageCtxEntries);
    /** page -> pages_ slot; O(1) hit path for the per-access lookup. */
    AddrIndex pagesIndex_{kPageCtxEntries};
    /** Invalid slots left; they fill from the highest index down,
     * matching the scan-based allocation order they replace. */
    std::uint32_t pagesInvalidLeft_ = kPageCtxEntries;
    std::uint64_t pageClock_ = 0;
    Addr lastLine_ = 0;
    std::array<std::uint8_t, 4> lastOffsets_{};
    std::uint32_t lastPhi1_ = 0;
    std::uint32_t lastPhi2_ = 0;
    bool havePrev_ = false;
};

} // namespace hermes
