#pragma once

/**
 * @file
 * Pythia: the reinforcement-learning prefetching framework of Bera et
 * al. (MICRO'21), the paper's baseline prefetcher (Table 4). Pythia
 * formulates prefetching as a contextual decision: a *state* is a
 * vector of program features, *actions* are prefetch offsets, and a
 * *reward* scores the usefulness of the prefetch after the fact.
 *
 * This implementation keeps Pythia's architecture — a QVStore holding
 * per-feature Q-value tables (hashed like a perceptron), an evaluation
 * queue (EQ) that defers reward assignment until the outcome is known,
 * epsilon-greedy exploration — with one documented simplification: the
 * temporal-difference bootstrap term uses a one-step lookup with a
 * small discount rather than the full SARSA pipeline.
 *
 * Features (the two-feature configuration the Pythia paper selects):
 *   phi1 = PC (+) last delta, phi2 = sequence of last-4 offsets.
 * Storage budget follows Table 6 (25.5KB).
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/addr_index.hh"
#include "common/rng.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Pythia parameters. */
struct PythiaParams
{
    std::uint32_t tableEntries = 1024; ///< Per feature
    double alpha = 0.25;   ///< Learning rate
    double gamma = 0.0;    ///< Discount for the (optional) bootstrap term
    double epsilon = 0.002; ///< Exploration probability
    int rewardAccurate = 20;      ///< Accurate and timely (R_AT)
    int rewardAccurateLate = 12;  ///< Accurate but late (R_AL)
    int rewardInaccurate = -14;
    int rewardNoPrefetch = -2;
    std::uint32_t eqSize = 256;
    std::uint64_t seed = 7;
};

/** RL-based prefetcher. */
class Pythia : public Prefetcher
{
  public:
    explicit Pythia(PythiaParams params = PythiaParams{});

    const char *name() const override { return "pythia"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    void onPrefetchUseful(Addr line, Addr pc) override;
    void onPrefetchLate(Addr line, Addr pc) override;
    std::uint64_t storageBits() const override;

    /** The action (offset) set; index 0 is "no prefetch". */
    static const std::array<int, 16> kActions;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("PYTH");
        const Rng::State rs = rng_.state();
        w.u64(rs.s0);
        w.u64(rs.s1);
        w.u64(table1_.size());
        for (const auto &row : table1_)
            for (float q : row)
                w.f32(q);
        w.u64(table2_.size());
        for (const auto &row : table2_)
            for (float q : row)
                w.f32(q);
        w.u64(eq_.size());
        for (const EqEntry &e : eq_) {
            w.u64(e.line);
            w.u32(e.phi1);
            w.u32(e.phi2);
            w.u32(e.action);
            w.b(e.rewarded);
        }
        for (const PageCtx &p : pages_) {
            w.u64(p.page);
            w.i32(p.lastOffset);
            w.u64(p.lastUse);
        }
        w.u32(pagesInvalidLeft_);
        w.u64(pageClock_);
        w.u64(lastLine_);
        for (std::uint8_t o : lastOffsets_)
            w.u8(o);
        w.u32(lastPhi1_);
        w.u32(lastPhi2_);
        w.b(havePrev_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("PYTH");
        Rng::State rs;
        rs.s0 = r.u64();
        rs.s1 = r.u64();
        rng_.setState(rs);
        if (r.u64() != table1_.size())
            throw StateError("pythia qvstore table1 size mismatch");
        for (auto &row : table1_)
            for (float &q : row)
                q = r.f32();
        if (r.u64() != table2_.size())
            throw StateError("pythia qvstore table2 size mismatch");
        for (auto &row : table2_)
            for (float &q : row)
                q = r.f32();
        eq_.clear();
        eqByLine_.clear();
        eqBaseSeq_ = 0;
        const std::size_t nEq = r.count(1u << 20);
        for (std::size_t i = 0; i < nEq; ++i) {
            EqEntry e;
            e.line = r.u64();
            e.phi1 = r.u32();
            e.phi2 = r.u32();
            e.action = r.u32();
            e.rewarded = r.b();
            // The per-line chains are derived state (they thread the
            // unrewarded entries only); rebuild them as we go.
            if (!e.rewarded)
                eqChainLink(e, eqBaseSeq_ + eq_.size());
            eq_.push_back(e);
        }
        for (PageCtx &p : pages_) {
            p.page = r.u64();
            p.lastOffset = r.i32();
            p.lastUse = r.u64();
        }
        pagesInvalidLeft_ = r.u32();
        if (pagesInvalidLeft_ > kPageCtxEntries)
            throw StateError("pythia page context fill count out of range");
        // The index and recency list are derived state: rebuild them
        // over the valid slots, which fill from the highest index down
        // (see pagesInvalidLeft_). Appending in ascending lastUse order
        // reproduces the recency list the saved run had.
        pagesIndex_.clear();
        pagesLruHead_ = pagesLruTail_ = kLruNil;
        std::vector<std::uint32_t> byAge;
        for (unsigned i = pagesInvalidLeft_; i < kPageCtxEntries; ++i) {
            pagesIndex_.insert(pages_[i].page, i);
            byAge.push_back(i);
        }
        std::sort(byAge.begin(), byAge.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return pages_[a].lastUse < pages_[b].lastUse;
                  });
        for (std::uint32_t slot : byAge)
            pagesLruAppend(slot);
        pageClock_ = r.u64();
        lastLine_ = r.u64();
        for (std::uint8_t &o : lastOffsets_)
            o = r.u8();
        lastPhi1_ = r.u32();
        lastPhi2_ = r.u32();
        havePrev_ = r.b();
    }

  private:
    struct EqEntry
    {
        Addr line = 0;      ///< Prefetched line (0 for no-prefetch)
        std::uint32_t phi1 = 0;
        std::uint32_t phi2 = 0;
        unsigned action = 0;
        bool rewarded = false;
        /** Derived (not checkpointed): seq of the next unrewarded EQ
         * entry with the same line, kNoSeq at the chain tail. */
        std::uint64_t nextSameLine = kNoSeq;
    };

    /** Head/tail seqs of one per-line chain of unrewarded entries. */
    struct EqChain
    {
        std::uint64_t head;
        std::uint64_t tail;
    };

    static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

    double qValue(std::uint32_t phi1, std::uint32_t phi2,
                  unsigned action) const;
    void updateQ(std::uint32_t phi1, std::uint32_t phi2, unsigned action,
                 double target);
    unsigned selectAction(std::uint32_t phi1, std::uint32_t phi2);
    void assignReward(EqEntry &e, int reward);
    void retireEqOverflow();

    /** Append an entry (about to sit at `seq`) to its line's chain. */
    void eqChainLink(EqEntry &e, std::uint64_t seq);
    /** Reward the oldest unrewarded EQ entry for `line`, if any. */
    void rewardLine(Addr line, int reward);

    PythiaParams params_;
    Rng rng_;
    /** QVStore: per-feature tables of Q-values, one row per action. */
    std::vector<std::array<float, 16>> table1_;
    std::vector<std::array<float, 16>> table2_;
    std::deque<EqEntry> eq_;
    /** Seq number of eq_.front(); eq_[i] has seq eqBaseSeq_ + i. */
    std::uint64_t eqBaseSeq_ = 0;
    /**
     * line -> chain of unrewarded EQ entries with that line, oldest
     * first (threaded through EqEntry::nextSameLine). Entries leave a
     * chain only at its head — rewards always hit the oldest match and
     * overflow pops the globally oldest entry — so lookups are O(1)
     * where onPrefetchUseful/Late used to scan the whole EQ.
     */
    std::unordered_map<Addr, EqChain> eqByLine_;

    struct PageCtx
    {
        Addr page = 0;
        int lastOffset = 0;
        std::uint64_t lastUse = 0;
    };

    static constexpr unsigned kPageCtxEntries = 64;

    /** Page-local last offset, so interleaved streams keep clean
     * deltas (Pythia derives its delta feature from page context). */
    int pageLocalDelta(Addr line);

    /** Intrusive recency list over pages_ (head = LRU victim). */
    void pagesLruDetach(std::uint32_t slot);
    void pagesLruAppend(std::uint32_t slot);

    static constexpr std::uint32_t kLruNil = ~std::uint32_t{0};

    std::vector<PageCtx> pages_ = std::vector<PageCtx>(kPageCtxEntries);
    /** page -> pages_ slot; O(1) hit path for the per-access lookup. */
    AddrIndex pagesIndex_{kPageCtxEntries};
    /** Invalid slots left; they fill from the highest index down,
     * matching the scan-based allocation order they replace. */
    std::uint32_t pagesInvalidLeft_ = kPageCtxEntries;
    /**
     * Doubly-linked recency order over the valid pages_ slots. Clock
     * values are unique and increasing, so the list head is exactly
     * the min-lastUse entry the old O(n) victim scan selected; lastUse
     * stays authoritative for the checkpoint format and the list is
     * rebuilt from it on loadState.
     */
    std::array<std::uint32_t, kPageCtxEntries> pagesLruPrev_{};
    std::array<std::uint32_t, kPageCtxEntries> pagesLruNext_{};
    std::uint32_t pagesLruHead_ = kLruNil;
    std::uint32_t pagesLruTail_ = kLruNil;
    std::uint64_t pageClock_ = 0;
    Addr lastLine_ = 0;
    std::array<std::uint8_t, 4> lastOffsets_{};
    std::uint32_t lastPhi1_ = 0;
    std::uint32_t lastPhi2_ = 0;
    bool havePrev_ = false;
};

} // namespace hermes
