#include "prefetch/sms.hh"

#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

} // namespace

Sms::Sms(SmsParams params)
    : params_(params), agt_(params.agtEntries),
      pht_(static_cast<std::size_t>(params.phtSets) * params.phtWays)
{
}

std::uint32_t
Sms::signature(Addr pc, unsigned offset) const
{
    return mix32((pc << 6) ^ offset);
}

void
Sms::commit(const AgtEntry &e)
{
    if (__builtin_popcountll(e.footprint) < 2)
        return;
    const std::uint32_t set = e.signature & (params_.phtSets - 1);
    const std::size_t base =
        static_cast<std::size_t>(set) * params_.phtWays;
    PhtEntry *victim = &pht_[base];
    for (unsigned w = 0; w < params_.phtWays; ++w) {
        PhtEntry &p = pht_[base + w];
        if (p.valid && p.signature == e.signature) {
            p.footprint = e.footprint;
            p.lastUse = ++clock_;
            return;
        }
        if (!p.valid || p.lastUse < victim->lastUse)
            victim = &p;
    }
    victim->valid = true;
    victim->signature = e.signature;
    victim->footprint = e.footprint;
    victim->lastUse = ++clock_;
}

void
Sms::onAccess(Addr addr, Addr pc, bool hit, std::vector<Addr> &out_lines)
{
    (void)hit;
    const Addr region = addr / params_.regionBytes;
    const unsigned offset = static_cast<unsigned>(
        (addr / kBlockSize) % linesPerRegion());
    ++clock_;

    AgtEntry *lru = &agt_.front();
    for (auto &e : agt_) {
        if (e.valid && e.region == region) {
            e.footprint |= 1ull << offset;
            e.lastUse = clock_;
            return;
        }
        if (!e.valid || e.lastUse < lru->lastUse)
            lru = &e;
    }

    // Generation start: end the evicted generation, predict, accumulate.
    if (lru->valid)
        commit(*lru);
    const std::uint32_t sig = signature(pc, offset);
    *lru = AgtEntry{};
    lru->valid = true;
    lru->region = region;
    lru->signature = sig;
    lru->footprint = 1ull << offset;
    lru->lastUse = clock_;

    const std::uint32_t set = sig & (params_.phtSets - 1);
    const std::size_t base =
        static_cast<std::size_t>(set) * params_.phtWays;
    for (unsigned w = 0; w < params_.phtWays; ++w) {
        PhtEntry &p = pht_[base + w];
        if (!p.valid || p.signature != sig)
            continue;
        p.lastUse = clock_;
        const Addr region_line = region * linesPerRegion();
        unsigned emitted = 0;
        for (unsigned o = 0; o < linesPerRegion() &&
                             emitted < params_.maxPrefetchPerTrigger;
             ++o) {
            if (o == offset || !(p.footprint & (1ull << o)))
                continue;
            out_lines.push_back(region_line + o);
            ++emitted;
        }
        return;
    }
}

std::uint64_t
Sms::storageBits() const
{
    // AGT: region tag (37) + signature (32) + footprint (32).
    // PHT: signature (32) + footprint (32).
    return static_cast<std::uint64_t>(agt_.size()) * (37 + 32 + 32) +
           static_cast<std::uint64_t>(pht_.size()) * (32 + 32);
}

namespace
{

ModelDef
smsModelDef()
{
    ModelDef d;
    d.name = "sms";
    d.kind = ModelKind::Prefetcher;
    d.doc = "spatial memory streaming prefetcher (Table 6)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &/*ctx*/) {
        return std::make_unique<Sms>();
    };
    return d;
}

const ModelRegistrar smsModelDefRegistrar(smsModelDef());

} // namespace

} // namespace hermes
