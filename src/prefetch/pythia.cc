#include "prefetch/pythia.hh"

#include <algorithm>

#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

} // namespace

const std::array<int, 16> Pythia::kActions = {
    0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, -1, -2, -3, -6,
};

Pythia::Pythia(PythiaParams params)
    : params_(params), rng_(params.seed),
      table1_(params.tableEntries), table2_(params.tableEntries)
{
    for (auto &row : table1_)
        row.fill(0.0f);
    for (auto &row : table2_)
        row.fill(0.0f);
}

double
Pythia::qValue(std::uint32_t phi1, std::uint32_t phi2,
               unsigned action) const
{
    return 0.5 * (table1_[phi1][action] + table2_[phi2][action]);
}

void
Pythia::updateQ(std::uint32_t phi1, std::uint32_t phi2, unsigned action,
                double target)
{
    const double q = qValue(phi1, phi2, action);
    const double delta = params_.alpha * (target - q);
    table1_[phi1][action] += static_cast<float>(delta);
    table2_[phi2][action] += static_cast<float>(delta);
}

unsigned
Pythia::selectAction(std::uint32_t phi1, std::uint32_t phi2)
{
    if (rng_.chance(params_.epsilon))
        return static_cast<unsigned>(rng_.below(kActions.size()));
    // Argmax over the raw per-action float sums: qValue only halves
    // the sum (an exact, monotone scaling), so the winner — and the
    // tie-breaking toward the lower action index — is unchanged while
    // the rows are indexed once instead of per action.
    const auto &r1 = table1_[phi1];
    const auto &r2 = table2_[phi2];
    unsigned best = 0;
    float best_s = r1[0] + r2[0];
    for (unsigned a = 1; a < kActions.size(); ++a) {
        const float s = r1[a] + r2[a];
        if (s > best_s) {
            best_s = s;
            best = a;
        }
    }
    return best;
}

void
Pythia::assignReward(EqEntry &e, int reward)
{
    if (e.rewarded)
        return;
    e.rewarded = true;
    // One-step bootstrap: the value of the greedy action in the most
    // recent state stands in for the successor state's value. With the
    // default gamma = 0 the term is identically zero, so the 16-action
    // max is skipped entirely on that (hot) configuration.
    double bootstrap = 0.0;
    if (havePrev_ && params_.gamma != 0.0) {
        double best = qValue(lastPhi1_, lastPhi2_, 0);
        for (unsigned a = 1; a < kActions.size(); ++a)
            best = std::max(best, qValue(lastPhi1_, lastPhi2_, a));
        bootstrap = params_.gamma * best;
    }
    updateQ(e.phi1, e.phi2, e.action, reward + bootstrap);
}

void
Pythia::eqChainLink(EqEntry &e, std::uint64_t seq)
{
    e.nextSameLine = kNoSeq;
    const auto [it, fresh] = eqByLine_.try_emplace(e.line, EqChain{seq, seq});
    if (!fresh) {
        eq_[it->second.tail - eqBaseSeq_].nextSameLine = seq;
        it->second.tail = seq;
    }
}

void
Pythia::rewardLine(Addr line, int reward)
{
    const auto it = eqByLine_.find(line);
    if (it == eqByLine_.end())
        return;
    // The chain head is the oldest unrewarded entry for this line —
    // exactly the entry a front-to-back EQ scan would find.
    EqEntry &e = eq_[it->second.head - eqBaseSeq_];
    if (e.nextSameLine == kNoSeq)
        eqByLine_.erase(it);
    else
        it->second.head = e.nextSameLine;
    assignReward(e, reward);
}

void
Pythia::retireEqOverflow()
{
    while (eq_.size() > params_.eqSize) {
        EqEntry &e = eq_.front();
        if (!e.rewarded) {
            const int reward = kActions[e.action] == 0
                                   ? params_.rewardNoPrefetch
                                   : params_.rewardInaccurate;
            assignReward(e, reward);
            // Unrewarded entries are chain heads (they are the oldest
            // EQ entry overall); unlink before the seq goes stale.
            const auto it = eqByLine_.find(e.line);
            if (e.nextSameLine == kNoSeq)
                eqByLine_.erase(it);
            else
                it->second.head = e.nextSameLine;
        }
        eq_.pop_front();
        ++eqBaseSeq_;
    }
}

void
Pythia::pagesLruDetach(std::uint32_t slot)
{
    const std::uint32_t prev = pagesLruPrev_[slot];
    const std::uint32_t next = pagesLruNext_[slot];
    if (prev != kLruNil)
        pagesLruNext_[prev] = next;
    else
        pagesLruHead_ = next;
    if (next != kLruNil)
        pagesLruPrev_[next] = prev;
    else
        pagesLruTail_ = prev;
}

void
Pythia::pagesLruAppend(std::uint32_t slot)
{
    pagesLruPrev_[slot] = pagesLruTail_;
    pagesLruNext_[slot] = kLruNil;
    if (pagesLruTail_ != kLruNil)
        pagesLruNext_[pagesLruTail_] = slot;
    else
        pagesLruHead_ = slot;
    pagesLruTail_ = slot;
}

int
Pythia::pageLocalDelta(Addr line)
{
    const Addr page = line / kBlocksPerPage;
    const int offset = static_cast<int>(line % kBlocksPerPage);
    ++pageClock_;

    // O(1) hit path through the page index (this runs per LLC access).
    const std::uint32_t slot = pagesIndex_.find(page);
    if (slot != AddrIndex::kNotFound) {
        PageCtx &p = pages_[slot];
        const int delta = offset - p.lastOffset;
        p.lastOffset = offset;
        p.lastUse = pageClock_;
        pagesLruDetach(slot);
        pagesLruAppend(slot);
        return delta;
    }

    // Miss: fill invalid slots from the highest index down first, else
    // evict the recency-list head — the least recently used entry
    // (unique clock values, so the O(n) min-lastUse scan this replaces
    // had no ties and picked exactly this slot).
    std::uint32_t victim;
    if (pagesInvalidLeft_ > 0) {
        victim = --pagesInvalidLeft_;
    } else {
        victim = pagesLruHead_;
        pagesLruDetach(victim);
        pagesIndex_.erase(pages_[victim].page);
    }
    PageCtx &p = pages_[victim];
    p = PageCtx{};
    p.page = page;
    p.lastOffset = offset;
    p.lastUse = pageClock_;
    pagesIndex_.insert(page, victim);
    pagesLruAppend(victim);
    return 0;
}

void
Pythia::onAccess(Addr addr, Addr pc, bool hit, std::vector<Addr> &out_lines)
{
    (void)hit;
    const Addr line = lineAddr(addr);
    const int delta = pageLocalDelta(line);

    // State features (hashed-perceptron style).
    const std::uint32_t phi1 =
        mix32((pc << 7) ^ static_cast<std::uint64_t>(delta + 64)) &
        (params_.tableEntries - 1);
    const std::uint64_t offset_sig =
        (static_cast<std::uint64_t>(lastOffsets_[0]) << 18) ^
        (static_cast<std::uint64_t>(lastOffsets_[1]) << 12) ^
        (static_cast<std::uint64_t>(lastOffsets_[2]) << 6) ^
        lastOffsets_[3];
    const std::uint32_t phi2 =
        mix32(offset_sig * 0x9E3779B9ull) & (params_.tableEntries - 1);

    const unsigned action = selectAction(phi1, phi2);
    const int offset = kActions[action];

    EqEntry e;
    e.phi1 = phi1;
    e.phi2 = phi2;
    e.action = action;
    if (offset != 0) {
        const std::int64_t target = static_cast<std::int64_t>(line) + offset;
        // Stay within the page, like Pythia's address space scope.
        if (target >= 0 && static_cast<Addr>(target) / kBlocksPerPage ==
                               line / kBlocksPerPage) {
            e.line = static_cast<Addr>(target);
            out_lines.push_back(e.line);
        }
    }
    eqChainLink(e, eqBaseSeq_ + eq_.size());
    eq_.push_back(e);
    retireEqOverflow();

    // Advance program-context state.
    lastPhi1_ = phi1;
    lastPhi2_ = phi2;
    lastLine_ = line;
    havePrev_ = true;
    lastOffsets_[3] = lastOffsets_[2];
    lastOffsets_[2] = lastOffsets_[1];
    lastOffsets_[1] = lastOffsets_[0];
    lastOffsets_[0] = static_cast<std::uint8_t>(lineOffsetInPage(addr));
}

void
Pythia::onPrefetchUseful(Addr line, Addr pc)
{
    (void)pc;
    rewardLine(line, params_.rewardAccurate);
}

void
Pythia::onPrefetchLate(Addr line, Addr pc)
{
    (void)pc;
    // Accurate-but-late earns less than timely (R_AL < R_AT), steering
    // the policy toward longer prefetch distances.
    rewardLine(line, params_.rewardAccurateLate);
}

std::uint64_t
Pythia::storageBits() const
{
    // QVStore: two tables x entries x actions x 6-bit quantised Q
    // values (floats here are an implementation convenience), plus the
    // EQ (line tag 40b + features 20b + action 4b).
    return 2ull * params_.tableEntries * kActions.size() * 6 +
           static_cast<std::uint64_t>(params_.eqSize) * 64;
}

namespace
{

ModelDef
pythiaModelDef()
{
    ModelDef d;
    d.name = "pythia";
    d.kind = ModelKind::Prefetcher;
    d.doc = "reinforcement-learning prefetcher (Bera et al., the "
            "paper's baseline, Table 4)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &ctx) {
        PythiaParams p;
        p.seed = ctx.seed;
        return std::make_unique<Pythia>(p);
    };
    return d;
}

const ModelRegistrar pythiaModelDefRegistrar(pythiaModelDef());

} // namespace

} // namespace hermes
