#pragma once

/**
 * @file
 * Simple per-page stream prefetcher: detects a monotonic direction
 * within a 4KB page and runs ahead by a configurable degree. Used as a
 * sanity baseline and in unit tests; not part of the paper's Table 6
 * set.
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Stream prefetcher parameters. */
struct StreamerParams
{
    std::uint32_t entries = 64;
    unsigned degree = 8;
    unsigned confidenceThreshold = 2;
};

/** Per-page stream detector. */
class Streamer : public Prefetcher
{
  public:
    explicit Streamer(StreamerParams params = StreamerParams{});

    const char *name() const override { return "streamer"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("STRM");
        w.u64(table_.size());
        for (const Entry &e : table_) {
            w.u64(e.page);
            w.i32(e.lastOffset);
            w.i32(e.direction);
            w.u32(e.confidence);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("STRM");
        if (r.u64() != table_.size())
            throw StateError("streamer table size mismatch");
        for (Entry &e : table_) {
            e.page = r.u64();
            e.lastOffset = r.i32();
            e.direction = r.i32();
            e.confidence = r.u32();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        clock_ = r.u64();
    }

  private:
    struct Entry
    {
        Addr page = 0;
        int lastOffset = 0;
        int direction = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    StreamerParams params_;
    std::vector<Entry> table_;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
