#pragma once

/**
 * @file
 * Simple per-page stream prefetcher: detects a monotonic direction
 * within a 4KB page and runs ahead by a configurable degree. Used as a
 * sanity baseline and in unit tests; not part of the paper's Table 6
 * set.
 */

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Stream prefetcher parameters. */
struct StreamerParams
{
    std::uint32_t entries = 64;
    unsigned degree = 8;
    unsigned confidenceThreshold = 2;
};

/** Per-page stream detector. */
class Streamer : public Prefetcher
{
  public:
    explicit Streamer(StreamerParams params = StreamerParams{});

    const char *name() const override { return "streamer"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    std::uint64_t storageBits() const override;

  private:
    struct Entry
    {
        Addr page = 0;
        int lastOffset = 0;
        int direction = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    StreamerParams params_;
    std::vector<Entry> table_;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
