#include <stdexcept>

#include "prefetch/prefetcher.hh"
#include "sim/model_registry.hh"

namespace hermes
{

// The "no prefetcher" baseline registers here so every value of the
// "prefetcher" parameter resolves through the model registry.
namespace
{

ModelDef
nonePrefetcherDef()
{
    ModelDef d;
    d.name = "none";
    d.kind = ModelKind::Prefetcher;
    d.doc = "no LLC hardware prefetcher (baseline)";
    d.makePrefetcher = [](const ModelContext &) {
        return std::unique_ptr<Prefetcher>();
    };
    return d;
}

const ModelRegistrar noneRegistrar(nonePrefetcherDef());

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed)
{
    // Thin shim over the model registry: the enum names resolve to the
    // same registered factories the string path uses.
    ModelContext ctx;
    ctx.seed = seed;
    return ModelRegistry::instance().makePrefetcher(
        prefetcherKindName(kind), std::move(ctx));
}

PrefetcherKind
prefetcherKindFromString(const std::string &name)
{
    if (name == "none")
        return PrefetcherKind::None;
    if (name == "streamer")
        return PrefetcherKind::Streamer;
    if (name == "spp")
        return PrefetcherKind::Spp;
    if (name == "bingo")
        return PrefetcherKind::Bingo;
    if (name == "mlop")
        return PrefetcherKind::Mlop;
    if (name == "sms")
        return PrefetcherKind::Sms;
    if (name == "pythia")
        return PrefetcherKind::Pythia;
    throw std::invalid_argument("unknown prefetcher: " + name);
}

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return "none";
      case PrefetcherKind::Streamer:
        return "streamer";
      case PrefetcherKind::Spp:
        return "spp";
      case PrefetcherKind::Bingo:
        return "bingo";
      case PrefetcherKind::Mlop:
        return "mlop";
      case PrefetcherKind::Sms:
        return "sms";
      case PrefetcherKind::Pythia:
        return "pythia";
    }
    return "?";
}

} // namespace hermes
