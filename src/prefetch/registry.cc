#include <stdexcept>

#include "prefetch/bingo.hh"
#include "prefetch/mlop.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp.hh"
#include "prefetch/streamer.hh"

namespace hermes
{

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed)
{
    switch (kind) {
      case PrefetcherKind::None:
        return nullptr;
      case PrefetcherKind::Streamer:
        return std::make_unique<Streamer>();
      case PrefetcherKind::Spp:
        return std::make_unique<Spp>();
      case PrefetcherKind::Bingo:
        return std::make_unique<Bingo>();
      case PrefetcherKind::Mlop:
        return std::make_unique<Mlop>();
      case PrefetcherKind::Sms:
        return std::make_unique<Sms>();
      case PrefetcherKind::Pythia: {
        PythiaParams p;
        p.seed = seed;
        return std::make_unique<Pythia>(p);
      }
    }
    throw std::invalid_argument("unknown prefetcher kind");
}

PrefetcherKind
prefetcherKindFromString(const std::string &name)
{
    if (name == "none")
        return PrefetcherKind::None;
    if (name == "streamer")
        return PrefetcherKind::Streamer;
    if (name == "spp")
        return PrefetcherKind::Spp;
    if (name == "bingo")
        return PrefetcherKind::Bingo;
    if (name == "mlop")
        return PrefetcherKind::Mlop;
    if (name == "sms")
        return PrefetcherKind::Sms;
    if (name == "pythia")
        return PrefetcherKind::Pythia;
    throw std::invalid_argument("unknown prefetcher: " + name);
}

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return "none";
      case PrefetcherKind::Streamer:
        return "streamer";
      case PrefetcherKind::Spp:
        return "spp";
      case PrefetcherKind::Bingo:
        return "bingo";
      case PrefetcherKind::Mlop:
        return "mlop";
      case PrefetcherKind::Sms:
        return "sms";
      case PrefetcherKind::Pythia:
        return "pythia";
    }
    return "?";
}

} // namespace hermes
