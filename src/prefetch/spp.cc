#include "prefetch/spp.hh"

#include <algorithm>

#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

constexpr int kPpfWeightMax = 31;
constexpr int kPpfWeightMin = -32;

} // namespace

Spp::Spp(SppParams params)
    : params_(params), st_(params.stEntries), pt_(params.ptEntries)
{
    for (auto &t : ppf_)
        t.assign(params_.ppfTableSize, 0);
}

std::uint16_t
Spp::advanceSignature(std::uint16_t sig, int delta)
{
    const unsigned d = static_cast<unsigned>(delta & 0x3F);
    return static_cast<std::uint16_t>(((sig << 3) ^ d) & 0xFFF);
}

Spp::StEntry *
Spp::lookupSt(Addr page)
{
    StEntry *lru = &st_.front();
    for (auto &e : st_) {
        if (e.valid && e.pageTag == page)
            return &e;
        if (!e.valid || e.lastUse < lru->lastUse)
            lru = &e;
    }
    *lru = StEntry{};
    lru->pageTag = page;
    return lru;
}

void
Spp::trainPt(std::uint16_t sig, int delta)
{
    PtEntry &e = pt_[sig % params_.ptEntries];
    if (e.sigCount < 15)
        ++e.sigCount;
    for (auto &slot : e.slots) {
        if (slot.confidence > 0 && slot.delta == delta) {
            if (slot.confidence < 15)
                ++slot.confidence;
            return;
        }
    }
    // Allocate the weakest slot for the new delta.
    auto *victim = &e.slots[0];
    for (auto &slot : e.slots)
        if (slot.confidence < victim->confidence)
            victim = &slot;
    victim->delta = static_cast<std::int8_t>(delta);
    victim->confidence = 1;
}

int
Spp::ppfSum(Addr pc, std::uint16_t sig, int delta, PpfRecord &rec) const
{
    rec.idx[0] = mix32(pc) & (params_.ppfTableSize - 1);
    rec.idx[1] = mix32(sig * 0x9E3779B9ull) & (params_.ppfTableSize - 1);
    rec.idx[2] = mix32((pc << 6) ^ static_cast<std::uint64_t>(delta + 64)) &
                 (params_.ppfTableSize - 1);
    return ppf_[0][rec.idx[0]] + ppf_[1][rec.idx[1]] + ppf_[2][rec.idx[2]];
}

void
Spp::onAccess(Addr addr, Addr pc, bool hit, std::vector<Addr> &out_lines)
{
    (void)hit;
    ++clock_;
    const Addr page = pageNumber(addr);
    const int offset = static_cast<int>(lineOffsetInPage(addr));

    StEntry *st = lookupSt(page);
    std::uint16_t sig = 0;
    if (st->valid) {
        const int delta = offset - st->lastOffset;
        if (delta != 0) {
            trainPt(st->signature, delta);
            sig = advanceSignature(st->signature, delta);
        } else {
            sig = st->signature;
        }
    }
    st->valid = true;
    st->lastOffset = offset;
    st->signature = sig;
    st->lastUse = clock_;

    // Lookahead down the highest-confidence delta path.
    double path_conf = 1.0;
    std::uint16_t cur_sig = sig;
    int cur_offset = offset;
    for (unsigned depth = 0; depth < params_.maxLookahead; ++depth) {
        const PtEntry &e = pt_[cur_sig % params_.ptEntries];
        if (e.sigCount == 0)
            break;
        const PtSlot *best = nullptr;
        for (const auto &slot : e.slots)
            if (slot.confidence > 0 &&
                (best == nullptr || slot.confidence > best->confidence))
                best = &slot;
        if (best == nullptr)
            break;
        path_conf *= static_cast<double>(best->confidence) /
                     static_cast<double>(e.sigCount);
        if (path_conf < params_.lookaheadThreshold)
            break;
        cur_offset += best->delta;
        if (cur_offset < 0 ||
            cur_offset >= static_cast<int>(kBlocksPerPage))
            break;
        const Addr line = (page << (kLogPageSize - kLogBlockSize)) +
                          static_cast<Addr>(cur_offset);

        if (params_.usePerceptronFilter) {
            PpfRecord rec{};
            const int sum = ppfSum(pc, cur_sig, best->delta, rec);
            if (sum < params_.ppfThreshold) {
                cur_sig = advanceSignature(cur_sig, best->delta);
                continue; // filtered out; keep walking the path
            }
            if (inflight_.size() < 4096)
                inflight_.emplace(line, rec);
        }
        out_lines.push_back(line);
        cur_sig = advanceSignature(cur_sig, best->delta);
    }
}

void
Spp::onPrefetchUseful(Addr line, Addr pc)
{
    (void)pc;
    auto it = inflight_.find(line);
    if (it == inflight_.end())
        return;
    for (unsigned t = 0; t < 3; ++t) {
        std::int8_t &w = ppf_[t][it->second.idx[t]];
        w = static_cast<std::int8_t>(std::min<int>(w + 1, kPpfWeightMax));
    }
    inflight_.erase(it);
}

void
Spp::onPrefetchUseless(Addr line)
{
    auto it = inflight_.find(line);
    if (it == inflight_.end())
        return;
    for (unsigned t = 0; t < 3; ++t) {
        std::int8_t &w = ppf_[t][it->second.idx[t]];
        w = static_cast<std::int8_t>(std::max<int>(w - 1, kPpfWeightMin));
    }
    inflight_.erase(it);
}

std::uint64_t
Spp::storageBits() const
{
    std::uint64_t bits = 0;
    // ST: page tag (36) + offset (6) + signature (12)
    bits += static_cast<std::uint64_t>(st_.size()) * 54;
    // PT: 4 x (delta 7 + confidence 4) + sig count 4
    bits += static_cast<std::uint64_t>(pt_.size()) * (4 * 11 + 4);
    // PPF tables (6-bit weights) + in-flight tracking budget
    bits += 3ull * params_.ppfTableSize * 6;
    bits += 4096ull * 30;
    return bits;
}

namespace
{

ModelDef
sppModelDef()
{
    ModelDef d;
    d.name = "spp";
    d.kind = ModelKind::Prefetcher;
    d.doc = "signature path prefetcher with perceptron filter "
            "(SPP+PPF, Table 6)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &/*ctx*/) {
        return std::make_unique<Spp>();
    };
    return d;
}

const ModelRegistrar sppModelDefRegistrar(sppModelDef());

} // namespace

} // namespace hermes
