#include "prefetch/mlop.hh"

#include <algorithm>

#include "sim/model_registry.hh"

namespace hermes
{

Mlop::Mlop(MlopParams params) : params_(params), zones_(params.mapEntries)
{
    for (int o = -params_.maxOffset; o <= params_.maxOffset; ++o)
        if (o != 0)
            candidateOffsets_.push_back(o);
    scores_.assign(candidateOffsets_.size(), 0);
}

Mlop::Zone &
Mlop::zoneFor(Addr line)
{
    const Addr zone = line / kBlocksPerPage;
    Zone *lru = &zones_.front();
    for (auto &z : zones_) {
        if (z.valid && z.zone == zone)
            return z;
        if (!z.valid || z.lastUse < lru->lastUse)
            lru = &z;
    }
    *lru = Zone{};
    lru->valid = true;
    lru->zone = zone;
    return *lru;
}

bool
Mlop::wasAccessed(Addr line) const
{
    const Addr zone = line / kBlocksPerPage;
    const unsigned off = static_cast<unsigned>(line % kBlocksPerPage);
    for (const auto &z : zones_)
        if (z.valid && z.zone == zone)
            return (z.bitmap >> off) & 1;
    return false;
}

void
Mlop::finishRound()
{
    // Pick the top `levels` offsets whose score passes the threshold;
    // these act as the per-lookahead-level best offsets.
    std::vector<std::size_t> order(candidateOffsets_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](auto a, auto b) {
        if (scores_[a] != scores_[b])
            return scores_[a] > scores_[b];
        // Tie-break toward the smallest magnitude: shorter offsets
        // cover the earliest lookahead level.
        return std::abs(candidateOffsets_[a]) <
               std::abs(candidateOffsets_[b]);
    });
    active_.clear();
    for (std::size_t i = 0; i < order.size() && active_.size() <
                                                    params_.levels;
         ++i) {
        if (scores_[order[i]] >= params_.scoreThreshold)
            active_.push_back(candidateOffsets_[order[i]]);
    }
    std::fill(scores_.begin(), scores_.end(), 0);
    // Age the access maps: each round scores against recent history
    // only, like MLOP's per-generation access maps.
    for (auto &z : zones_)
        z.valid = false;
    accessesThisRound_ = 0;
}

void
Mlop::onAccess(Addr addr, Addr pc, bool hit, std::vector<Addr> &out_lines)
{
    (void)pc;
    (void)hit;
    const Addr line = lineAddr(addr);
    ++clock_;

    // Score candidates: offset o earns a point when line - o was
    // recently accessed, i.e. prefetching (X + o) on access X would
    // have covered the current access.
    for (std::size_t i = 0; i < candidateOffsets_.size(); ++i) {
        const std::int64_t prev =
            static_cast<std::int64_t>(line) - candidateOffsets_[i];
        if (prev >= 0 && wasAccessed(static_cast<Addr>(prev)))
            ++scores_[i];
    }

    Zone &z = zoneFor(line);
    z.bitmap |= 1ull << (line % kBlocksPerPage);
    z.lastUse = clock_;

    if (++accessesThisRound_ >= params_.roundLength)
        finishRound();

    for (int o : active_) {
        const std::int64_t target = static_cast<std::int64_t>(line) + o;
        if (target < 0)
            continue;
        // Stay within the 4KB zone like the original (page-local).
        if (static_cast<Addr>(target) / kBlocksPerPage !=
            line / kBlocksPerPage)
            continue;
        out_lines.push_back(static_cast<Addr>(target));
    }
}

std::uint64_t
Mlop::storageBits() const
{
    // Zone maps: tag (36) + bitmap (64). Scores: 16b per candidate.
    return static_cast<std::uint64_t>(zones_.size()) * 100 +
           static_cast<std::uint64_t>(scores_.size()) * 16;
}

namespace
{

ModelDef
mlopModelDef()
{
    ModelDef d;
    d.name = "mlop";
    d.kind = ModelKind::Prefetcher;
    d.doc = "multi-lookahead offset prefetcher (Table 6)";
    d.counters = prefetcherCounterKeys();
    d.makePrefetcher = [](const ModelContext &/*ctx*/) {
        return std::make_unique<Mlop>();
    };
    return d;
}

const ModelRegistrar mlopModelDefRegistrar(mlopModelDef());

} // namespace

} // namespace hermes
