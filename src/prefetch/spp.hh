#pragma once

/**
 * @file
 * SPP: the Signature Path Prefetcher (Kim et al., MICRO'16) with the
 * perceptron prefetch filter of Bhatia et al. (ISCA'19), matching the
 * paper's "SPP (with perceptron filter)" configuration (Table 6,
 * 39.3KB).
 *
 * Structures:
 *  - Signature Table (ST): per-page last offset + 12-bit compressed
 *    delta-history signature;
 *  - Pattern Table (PT): signature -> up to 4 {delta, confidence}
 *    candidates plus a signature occurrence count;
 *  - lookahead: follow the highest-confidence delta path, multiplying
 *    path confidence until it falls below a threshold;
 *  - PPF: a small hashed perceptron over (PC, signature, delta) that
 *    vetoes low-quality candidate prefetches and is trained by
 *    useful/useless feedback from the cache.
 */

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** SPP + PPF parameters. */
struct SppParams
{
    std::uint32_t stEntries = 256;
    std::uint32_t ptEntries = 2048;
    unsigned ptWays = 4;           ///< Delta candidates per signature
    double lookaheadThreshold = 0.30;
    unsigned maxLookahead = 12;
    bool usePerceptronFilter = true;
    int ppfThreshold = 0;          ///< Accept when sum >= threshold
    std::uint32_t ppfTableSize = 1024;
};

/** Signature Path Prefetcher with perceptron filter. */
class Spp : public Prefetcher
{
  public:
    explicit Spp(SppParams params = SppParams{});

    const char *name() const override { return "spp"; }
    void onAccess(Addr addr, Addr pc, bool hit,
                  std::vector<Addr> &out_lines) override;
    void onPrefetchUseful(Addr line, Addr pc) override;
    void onPrefetchUseless(Addr line) override;
    std::uint64_t storageBits() const override;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("SPPF");
        w.u64(st_.size());
        for (const StEntry &e : st_) {
            w.u64(e.pageTag);
            w.i32(e.lastOffset);
            w.u16(e.signature);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        w.u64(pt_.size());
        for (const PtEntry &e : pt_) {
            for (const PtSlot &s : e.slots) {
                w.i8(s.delta);
                w.u8(s.confidence);
            }
            w.u8(e.sigCount);
        }
        for (const auto &table : ppf_) {
            w.u64(table.size());
            for (std::int8_t v : table)
                w.i8(v);
        }
        // Hash-map iteration order is unspecified: emit sorted by line
        // so the byte stream is deterministic.
        std::vector<Addr> lines;
        lines.reserve(inflight_.size());
        for (const auto &kv : inflight_)
            lines.push_back(kv.first);
        std::sort(lines.begin(), lines.end());
        w.u64(lines.size());
        for (Addr line : lines) {
            const PpfRecord &rec = inflight_.at(line);
            w.u64(line);
            for (std::uint32_t idx : rec.idx)
                w.u32(idx);
        }
        w.u64(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("SPPF");
        if (r.u64() != st_.size())
            throw StateError("spp signature table size mismatch");
        for (StEntry &e : st_) {
            e.pageTag = r.u64();
            e.lastOffset = r.i32();
            e.signature = r.u16();
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        if (r.u64() != pt_.size())
            throw StateError("spp pattern table size mismatch");
        for (PtEntry &e : pt_) {
            for (PtSlot &s : e.slots) {
                s.delta = r.i8();
                s.confidence = r.u8();
            }
            e.sigCount = r.u8();
        }
        for (auto &table : ppf_) {
            if (r.u64() != table.size())
                throw StateError("spp ppf table size mismatch");
            for (std::int8_t &v : table)
                v = r.i8();
        }
        inflight_.clear();
        const std::size_t n = r.count(1u << 24);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr line = r.u64();
            PpfRecord rec;
            for (std::uint32_t &idx : rec.idx)
                idx = r.u32();
            inflight_.emplace(line, rec);
        }
        clock_ = r.u64();
    }

  private:
    struct StEntry
    {
        Addr pageTag = 0;
        int lastOffset = 0;
        std::uint16_t signature = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct PtSlot
    {
        std::int8_t delta = 0;
        std::uint8_t confidence = 0;
    };

    struct PtEntry
    {
        PtSlot slots[4];
        std::uint8_t sigCount = 0;
    };

    /** PPF bookkeeping for an in-flight prefetch. */
    struct PpfRecord
    {
        std::uint32_t idx[3];
    };

    static std::uint16_t advanceSignature(std::uint16_t sig, int delta);
    StEntry *lookupSt(Addr page);
    void trainPt(std::uint16_t sig, int delta);
    int ppfSum(Addr pc, std::uint16_t sig, int delta,
               PpfRecord &rec) const;

    SppParams params_;
    std::vector<StEntry> st_;
    std::vector<PtEntry> pt_;
    std::vector<std::int8_t> ppf_[3];
    /** In-flight prefetched line -> PPF indices (for feedback). */
    std::unordered_map<Addr, PpfRecord> inflight_;
    std::uint64_t clock_ = 0;
};

} // namespace hermes
