#include "cache/cache.hh"

#include <cassert>

namespace hermes
{

Cache::Cache(CacheParams params)
    : params_(std::move(params)),
      repl_(makeReplacement(params_.repl, params_.sets, params_.ways)),
      lines_(static_cast<std::size_t>(params_.sets) * params_.ways),
      mshrs_(params_.mshrs)
{
    assert((params_.sets & (params_.sets - 1)) == 0 &&
           "set count must be a power of two");
}

void
Cache::setUpper(int core_id, MemClient *upper)
{
    if (uppers_.size() <= static_cast<std::size_t>(core_id))
        uppers_.resize(core_id + 1, nullptr);
    uppers_[core_id] = upper;
}

Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * params_.ways + way];
}

const Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    return lines_[static_cast<std::size_t>(set) * params_.ways + way];
}

std::uint32_t
Cache::setIndex(Addr line) const
{
    return static_cast<std::uint32_t>(line & (params_.sets - 1));
}

std::uint32_t
Cache::findWay(std::uint32_t set, Addr line) const
{
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        const Line &l = lineAt(set, w);
        if (l.valid && l.line == line)
            return w;
    }
    return params_.ways;
}

Cache::Mshr *
Cache::findMshr(Addr line)
{
    if (usedMshrs_ == 0)
        return nullptr;
    for (auto &m : mshrs_)
        if (m.valid && m.line == line)
            return &m;
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr()
{
    if (usedMshrs_ >= params_.mshrs)
        return nullptr;
    for (auto &m : mshrs_)
        if (!m.valid)
            return &m;
    return nullptr;
}

unsigned
Cache::freeMshrCount() const
{
    return params_.mshrs - usedMshrs_;
}

bool
Cache::addRead(const MemRequest &req)
{
    if (rq_.size() >= params_.rqSize) {
        ++stats_.rqRejects;
        return false;
    }
    rq_.push_back(QueueEntry{req, now_ + params_.latency});
    return true;
}

bool
Cache::addWrite(const MemRequest &req)
{
    // Soft-bounded: writes are always accepted (see file comment).
    wq_.push_back(QueueEntry{req, now_ + params_.latency});
    return true;
}

void
Cache::tick(Cycle now)
{
    now_ = now;
    retryUnsentMshrs();
    processWrites(now);
    processReads(now);
    processPrefetches(now);
}

void
Cache::retryUnsentMshrs()
{
    if (unsentMshrs_ == 0)
        return;
    for (auto &m : mshrs_) {
        if (m.valid && !m.sentToLower && lower_ != nullptr &&
            lower_->addRead(m.fetchReq)) {
            m.sentToLower = true;
            --unsentMshrs_;
        }
    }
}

void
Cache::processWrites(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !wq_.empty() && wq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = wq_.front().req;
        wq_.pop_front();
        ++stats_.writebackLookups;
        const std::uint32_t set = setIndex(req.line());
        const std::uint32_t way = findWay(set, req.line());
        if (way < params_.ways) {
            ++stats_.writebackHits;
            lineAt(set, way).dirty = true;
            repl_->onHit(set, way, req.pc, req.type);
            continue;
        }
        if (req.type == AccessType::Writeback) {
            // Dirty eviction from the level above: install the line
            // here directly (no fetch), standard ChampSim behaviour.
            installLine(req.line(), req.pc, req.type, true, false);
            continue;
        }
        // Store (RFO) miss: write-allocate by fetching the line.
        if (Mshr *m = findMshr(req.line())) {
            m->fillDirty = true;
            ++stats_.mshrMerges;
            continue;
        }
        Mshr *m = allocMshr();
        if (m == nullptr) {
            // No MSHR: retry next cycle.
            wq_.push_front(QueueEntry{req, now});
            break;
        }
        *m = Mshr{};
        m->valid = true;
        ++usedMshrs_;
        m->line = req.line();
        m->fetchReq = req;
        m->fetchReq.type = AccessType::Rfo;
        m->fillDirty = true;
        m->sentToLower = lower_ != nullptr && lower_->addRead(m->fetchReq);
        if (!m->sentToLower)
            ++unsentMshrs_;
    }
}

void
Cache::processReads(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !rq_.empty() && rq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = rq_.front().req;
        const std::uint32_t set = setIndex(req.line());
        const std::uint32_t way = findWay(set, req.line());
        const bool hit = way < params_.ways;

        if (hit) {
            rq_.pop_front();
            if (req.type == AccessType::Load)
                ++stats_.loadLookups, ++stats_.loadHits;
            else
                ++stats_.rfoLookups, ++stats_.rfoHits;
            handleReadHit(req, set, way);
            invokePrefetcher(req, true);
            continue;
        }
        if (!handleReadMiss(req))
            break; // MSHRs exhausted: head-of-line retries next cycle.
        rq_.pop_front();
        if (req.type == AccessType::Load)
            ++stats_.loadLookups;
        else
            ++stats_.rfoLookups;
        invokePrefetcher(req, false);
    }
}

void
Cache::handleReadHit(const MemRequest &req, std::uint32_t set,
                     std::uint32_t way)
{
    Line &l = lineAt(set, way);
    repl_->onHit(set, way, req.pc, req.type);
    if (l.prefetched) {
        l.prefetched = false;
        ++stats_.usefulPrefetches;
        if (prefetcher_ != nullptr) {
            ++prefetcher_->stats().useful;
            prefetcher_->onPrefetchUseful(l.line, req.pc);
        }
    }
    MemRequest resp = req;
    resp.servedFrom = params_.level;
    respondUpward(resp, resp);
}

bool
Cache::handleReadMiss(const MemRequest &req)
{
    if (Mshr *m = findMshr(req.line())) {
        ++stats_.mshrMerges;
        if (m->originPrefetch && !m->demandMerged) {
            ++stats_.mshrLatePrefetchHits;
            // Late prefetch: the demand caught it in flight. Useful
            // but tardy feedback for learning prefetchers.
            if (prefetcher_ != nullptr)
                prefetcher_->onPrefetchLate(m->line, req.pc);
        }
        m->demandMerged = true;
        if (req.type == AccessType::Rfo)
            m->fillDirty = true;
        m->waiters.push_back(req);
        return true;
    }
    Mshr *m = allocMshr();
    if (m == nullptr)
        return false;
    *m = Mshr{};
    m->valid = true;
    ++usedMshrs_;
    m->line = req.line();
    m->fetchReq = req;
    m->waiters.push_back(req);
    if (req.type == AccessType::Rfo)
        m->fillDirty = true;
    m->sentToLower = lower_ != nullptr && lower_->addRead(m->fetchReq);
    if (!m->sentToLower)
        ++unsentMshrs_;
    return true;
}

void
Cache::processPrefetches(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !pq_.empty() && pq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = pq_.front().req;
        ++stats_.prefetchLookups;
        const std::uint32_t set = setIndex(req.line());
        if (findWay(set, req.line()) < params_.ways ||
            findMshr(req.line()) != nullptr) {
            ++stats_.prefetchDropped;
            pq_.pop_front();
            continue;
        }
        Mshr *m = allocMshr();
        if (m == nullptr)
            break; // Prefetches wait for a free MSHR.
        // Keep at least a couple of MSHRs for demand traffic.
        if (freeMshrCount() <= 2) {
            ++stats_.prefetchDropped;
            pq_.pop_front();
            continue;
        }
        pq_.pop_front();
        *m = Mshr{};
        m->valid = true;
        ++usedMshrs_;
        m->line = req.line();
        m->fetchReq = req;
        m->originPrefetch = true;
        m->sentToLower = lower_ != nullptr && lower_->addRead(m->fetchReq);
        if (!m->sentToLower)
            ++unsentMshrs_;
        ++stats_.prefetchIssued;
        if (prefetcher_ != nullptr)
            ++prefetcher_->stats().issued;
    }
}

void
Cache::invokePrefetcher(const MemRequest &req, bool hit)
{
    if (prefetcher_ == nullptr)
        return;
    if (req.type != AccessType::Load && req.type != AccessType::Rfo)
        return;
    std::vector<Addr> candidates;
    prefetcher_->onAccess(req.address, req.pc, hit, candidates);
    for (Addr line : candidates) {
        if (pq_.size() >= params_.pqSize)
            break;
        MemRequest pf;
        pf.address = line << kLogBlockSize;
        pf.pc = req.pc;
        pf.coreId = req.coreId;
        pf.type = AccessType::Prefetch;
        pf.cycleCreated = now_;
        pq_.push_back(QueueEntry{pf, now_ + 1});
    }
}

void
Cache::installLine(Addr line, Addr pc, AccessType type, bool dirty,
                   bool prefetched)
{
    const std::uint32_t set = setIndex(line);
    std::uint32_t way = params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!lineAt(set, w).valid) {
            way = w;
            break;
        }
    }
    if (way == params_.ways) {
        way = repl_->victim(set);
        Line &victim = lineAt(set, way);
        ++stats_.evictions;
        if (victim.prefetched) {
            ++stats_.uselessPrefetches;
            if (prefetcher_ != nullptr) {
                ++prefetcher_->stats().useless;
                prefetcher_->onPrefetchUseless(victim.line);
            }
        }
        repl_->onEvict(set, way);
        if (onEviction)
            onEviction(victim.line);
        if (victim.dirty) {
            ++stats_.dirtyEvictions;
            if (lower_ != nullptr) {
                MemRequest wb;
                wb.address = victim.line << kLogBlockSize;
                wb.type = AccessType::Writeback;
                wb.cycleCreated = now_;
                lower_->addWrite(wb);
            }
        }
    }
    Line &l = lineAt(set, way);
    l.line = line;
    l.valid = true;
    l.dirty = dirty;
    l.prefetched = prefetched;
    repl_->onInsert(set, way, pc, type);
}

void
Cache::respondUpward(MemRequest waiter, const MemRequest &fill)
{
    waiter.servedFrom = fill.servedFrom;
    waiter.cycleMcArrive = fill.cycleMcArrive;
    waiter.servedByHermes = fill.servedByHermes;
    const auto idx = static_cast<std::size_t>(waiter.coreId);
    MemClient *upper =
        idx < uppers_.size() ? uppers_[idx] : nullptr;
    if (upper != nullptr)
        upper->returnData(waiter);
}

void
Cache::returnData(const MemRequest &req)
{
    Mshr *m = findMshr(req.line());
    assert(m != nullptr && "fill without a matching MSHR");

    ++stats_.fills;
    const bool prefetched = m->originPrefetch && !m->demandMerged;
    if (m->originPrefetch) {
        ++stats_.prefetchFills;
        if (prefetcher_ != nullptr)
            prefetcher_->onPrefetchFill(req.line());
    }
    installLine(req.line(), m->fetchReq.pc, m->fetchReq.type,
                m->fillDirty, prefetched);
    if (onFillFromDram && req.servedFrom == MemLevel::Dram)
        onFillFromDram(req.line());

    for (const MemRequest &w : m->waiters)
        respondUpward(w, req);
    if (!m->sentToLower && unsentMshrs_ > 0)
        --unsentMshrs_;
    m->valid = false;
    --usedMshrs_;
    m->waiters.clear();
}

bool
Cache::probe(Addr line) const
{
    const std::uint32_t set = setIndex(line);
    return findWay(set, line) < params_.ways;
}

bool
Cache::probeMshr(Addr line) const
{
    for (const auto &m : mshrs_)
        if (m.valid && m.line == line)
            return true;
    return false;
}

} // namespace hermes
