#include "cache/cache.hh"

#include <cassert>

namespace hermes
{

namespace
{

inline unsigned
lowestSetBit(std::uint64_t word)
{
    return static_cast<unsigned>(__builtin_ctzll(word));
}

} // namespace

Cache::Cache(CacheParams params)
    : params_(std::move(params)),
      repl_(params_.replFactory
                ? params_.replFactory(params_.sets, params_.ways)
                : makeReplacement(params_.repl, params_.sets,
                                  params_.ways)),
      customRepl_(static_cast<bool>(params_.replFactory)),
      tags_(static_cast<std::size_t>(params_.sets) * params_.ways,
            kInvalidTag),
      lineFlags_(static_cast<std::size_t>(params_.sets) * params_.ways, 0),
      setFill_(params_.sets, 0),
      mshrs_(params_.mshrs),
      mshrIndex_(params_.mshrs),
      freeMask_((params_.mshrs + 63) / 64, 0),
      unsentMask_((params_.mshrs + 63) / 64, 0),
      rq_(params_.rqSize),
      wq_(64),
      pq_(params_.pqSize)
{
    assert((params_.sets & (params_.sets - 1)) == 0 &&
           "set count must be a power of two");
    for (std::uint32_t s = 0; s < params_.mshrs; ++s)
        freeMask_[s / 64] |= 1ull << (s % 64);
}

void
Cache::setUpper(int core_id, MemClient *upper)
{
    if (uppers_.size() <= static_cast<std::size_t>(core_id))
        uppers_.resize(core_id + 1, nullptr);
    uppers_[core_id] = upper;
}

std::uint32_t
Cache::setIndex(Addr line) const
{
    return static_cast<std::uint32_t>(line & (params_.sets - 1));
}

std::uint32_t
Cache::findWay(std::uint32_t set, Addr line) const
{
    const Addr *tags =
        tags_.data() + static_cast<std::size_t>(set) * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        if (tags[w] == line)
            return w;
    return params_.ways;
}

std::uint32_t
Cache::findMshrSlot(Addr line) const
{
    if (usedMshrs_ == 0)
        return AddrIndex::kNotFound;
    return mshrIndex_.find(line);
}

std::uint32_t
Cache::allocMshrSlot(Addr line)
{
    if (usedMshrs_ >= params_.mshrs)
        return AddrIndex::kNotFound;
    for (std::size_t w = 0; w < freeMask_.size(); ++w) {
        if (freeMask_[w] == 0)
            continue;
        const std::uint32_t slot =
            static_cast<std::uint32_t>(w * 64 + lowestSetBit(freeMask_[w]));
        freeMask_[w] &= freeMask_[w] - 1; // clear lowest set bit
        ++usedMshrs_;
        mshrIndex_.insert(line, slot);
        Mshr &m = mshrs_[slot];
        m.sentToLower = false;
        m.fillDirty = false;
        m.originPrefetch = false;
        m.demandMerged = false;
        m.line = line;
        m.waiters.clear();
        return slot;
    }
    return AddrIndex::kNotFound; // unreachable: usedMshrs_ is accurate
}

void
Cache::releaseMshr(std::uint32_t slot)
{
    Mshr &m = mshrs_[slot];
    mshrIndex_.erase(m.line);
    m.waiters.clear();
    const std::uint64_t bit = 1ull << (slot % 64);
    if ((unsentMask_[slot / 64] & bit) != 0) {
        unsentMask_[slot / 64] &= ~bit;
        --unsentMshrs_;
    }
    freeMask_[slot / 64] |= bit;
    --usedMshrs_;
}

unsigned
Cache::freeMshrCount() const
{
    return params_.mshrs - usedMshrs_;
}

void
Cache::markUnsent(std::uint32_t slot)
{
    unsentMask_[slot / 64] |= 1ull << (slot % 64);
    ++unsentMshrs_;
}

void
Cache::forwardFetch(Mshr &m, std::uint32_t slot)
{
    m.sentToLower = lower_ != nullptr && lower_->addRead(m.fetchReq);
    if (!m.sentToLower)
        markUnsent(slot);
}

void
Cache::replOnHit(std::uint32_t set, std::uint32_t way, Addr pc,
                 AccessType type)
{
    ReplacementPolicy *p = repl_.get();
    if (customRepl_) {
        p->onHit(set, way, pc, type);
        return;
    }
    switch (params_.repl) {
      case ReplKind::Lru:
        static_cast<LruPolicy *>(p)->LruPolicy::onHit(set, way, pc, type);
        break;
      case ReplKind::Srrip:
        static_cast<SrripPolicy *>(p)->SrripPolicy::onHit(set, way, pc,
                                                          type);
        break;
      case ReplKind::Ship:
        static_cast<ShipPolicy *>(p)->ShipPolicy::onHit(set, way, pc,
                                                        type);
        break;
    }
}

void
Cache::replOnInsert(std::uint32_t set, std::uint32_t way, Addr pc,
                    AccessType type)
{
    ReplacementPolicy *p = repl_.get();
    if (customRepl_) {
        p->onInsert(set, way, pc, type);
        return;
    }
    switch (params_.repl) {
      case ReplKind::Lru:
        static_cast<LruPolicy *>(p)->LruPolicy::onInsert(set, way, pc,
                                                         type);
        break;
      case ReplKind::Srrip:
        static_cast<SrripPolicy *>(p)->SrripPolicy::onInsert(set, way, pc,
                                                             type);
        break;
      case ReplKind::Ship:
        static_cast<ShipPolicy *>(p)->ShipPolicy::onInsert(set, way, pc,
                                                           type);
        break;
    }
}

void
Cache::replOnEvict(std::uint32_t set, std::uint32_t way)
{
    ReplacementPolicy *p = repl_.get();
    if (customRepl_) {
        p->onEvict(set, way);
        return;
    }
    switch (params_.repl) {
      case ReplKind::Lru:
        static_cast<LruPolicy *>(p)->LruPolicy::onEvict(set, way);
        break;
      case ReplKind::Srrip:
        static_cast<SrripPolicy *>(p)->SrripPolicy::onEvict(set, way);
        break;
      case ReplKind::Ship:
        static_cast<ShipPolicy *>(p)->ShipPolicy::onEvict(set, way);
        break;
    }
}

std::uint32_t
Cache::replVictim(std::uint32_t set)
{
    ReplacementPolicy *p = repl_.get();
    if (customRepl_)
        return p->victim(set);
    switch (params_.repl) {
      case ReplKind::Lru:
        return static_cast<LruPolicy *>(p)->LruPolicy::victim(set);
      case ReplKind::Srrip:
        return static_cast<SrripPolicy *>(p)->SrripPolicy::victim(set);
      case ReplKind::Ship:
        return static_cast<ShipPolicy *>(p)->ShipPolicy::victim(set);
    }
    return 0; // unreachable
}

bool
Cache::addRead(const MemRequest &req)
{
    if (rq_.size() >= params_.rqSize) {
        ++stats_.rqRejects;
        return false;
    }
    rq_.push_back(QueueEntry{req, now_ + params_.latency});
    return true;
}

bool
Cache::addWrite(const MemRequest &req)
{
    // Soft-bounded: writes are always accepted (see file comment).
    wq_.push_back(QueueEntry{req, now_ + params_.latency});
    return true;
}

void
Cache::retryUnsentMshrs()
{
    if (lower_ == nullptr)
        return;
    for (std::size_t w = 0; w < unsentMask_.size(); ++w) {
        std::uint64_t pending = unsentMask_[w];
        while (pending != 0) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(w * 64 + lowestSetBit(pending));
            const std::uint64_t bit = pending & (~pending + 1);
            pending &= pending - 1;
            Mshr &m = mshrs_[slot];
            if (lower_->addRead(m.fetchReq) &&
                (unsentMask_[w] & bit) != 0) {
                // The mask re-check guards against addRead answering
                // synchronously (DRAM write-queue forwarding re-enters
                // returnData): the nested call already released this
                // MSHR and its unsent bit, so no further bookkeeping.
                m.sentToLower = true;
                unsentMask_[w] &= ~bit;
                --unsentMshrs_;
            }
        }
    }
}

void
Cache::processWrites(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !wq_.empty() && wq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = wq_.front().req;
        wq_.pop_front();
        ++stats_.writebackLookups;
        const std::uint32_t set = setIndex(req.line());
        const std::uint32_t way = findWay(set, req.line());
        if (way < params_.ways) {
            ++stats_.writebackHits;
            lineFlags_[static_cast<std::size_t>(set) * params_.ways +
                       way] |= kDirty;
            replOnHit(set, way, req.pc, req.type);
            continue;
        }
        if (req.type == AccessType::Writeback) {
            // Dirty eviction from the level above: install the line
            // here directly (no fetch), standard ChampSim behaviour.
            installLine(req.line(), req.pc, req.type, true, false);
            continue;
        }
        // Store (RFO) miss: write-allocate by fetching the line.
        if (const std::uint32_t slot = findMshrSlot(req.line());
            slot != AddrIndex::kNotFound) {
            mshrs_[slot].fillDirty = true;
            ++stats_.mshrMerges;
            continue;
        }
        const std::uint32_t slot = allocMshrSlot(req.line());
        if (slot == AddrIndex::kNotFound) {
            // No MSHR: retry next cycle.
            wq_.push_front(QueueEntry{req, now});
            break;
        }
        Mshr &m = mshrs_[slot];
        m.fetchReq = req;
        m.fetchReq.type = AccessType::Rfo;
        m.fillDirty = true;
        forwardFetch(m, slot);
    }
}

void
Cache::processReads(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !rq_.empty() && rq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = rq_.front().req;
        const std::uint32_t set = setIndex(req.line());
        const std::uint32_t way = findWay(set, req.line());
        const bool hit = way < params_.ways;

        if (hit) {
            rq_.pop_front();
            if (req.type == AccessType::Load)
                ++stats_.loadLookups, ++stats_.loadHits;
            else
                ++stats_.rfoLookups, ++stats_.rfoHits;
            handleReadHit(req, set, way);
            invokePrefetcher(req, true);
            continue;
        }
        if (!handleReadMiss(req))
            break; // MSHRs exhausted: head-of-line retries next cycle.
        rq_.pop_front();
        if (req.type == AccessType::Load)
            ++stats_.loadLookups;
        else
            ++stats_.rfoLookups;
        invokePrefetcher(req, false);
    }
}

void
Cache::handleReadHit(const MemRequest &req, std::uint32_t set,
                     std::uint32_t way)
{
    const std::size_t i =
        static_cast<std::size_t>(set) * params_.ways + way;
    replOnHit(set, way, req.pc, req.type);
    if ((lineFlags_[i] & kPrefetched) != 0) {
        lineFlags_[i] &= static_cast<std::uint8_t>(~kPrefetched);
        ++stats_.usefulPrefetches;
        if (prefetcher_ != nullptr) {
            ++prefetcher_->stats().useful;
            prefetcher_->onPrefetchUseful(tags_[i], req.pc);
        }
    }
    MemRequest resp = req;
    resp.servedFrom = params_.level;
    respondUpward(resp, resp);
}

bool
Cache::handleReadMiss(const MemRequest &req)
{
    if (const std::uint32_t slot = findMshrSlot(req.line());
        slot != AddrIndex::kNotFound) {
        Mshr &m = mshrs_[slot];
        ++stats_.mshrMerges;
        if (m.originPrefetch && !m.demandMerged) {
            ++stats_.mshrLatePrefetchHits;
            // Late prefetch: the demand caught it in flight. Useful
            // but tardy feedback for learning prefetchers.
            if (prefetcher_ != nullptr)
                prefetcher_->onPrefetchLate(m.line, req.pc);
        }
        m.demandMerged = true;
        if (req.type == AccessType::Rfo)
            m.fillDirty = true;
        m.waiters.push_back(req);
        return true;
    }
    const std::uint32_t slot = allocMshrSlot(req.line());
    if (slot == AddrIndex::kNotFound)
        return false;
    Mshr &m = mshrs_[slot];
    m.fetchReq = req;
    m.waiters.push_back(req);
    if (req.type == AccessType::Rfo)
        m.fillDirty = true;
    forwardFetch(m, slot);
    return true;
}

void
Cache::processPrefetches(Cycle now)
{
    for (std::uint32_t budget = params_.lookupsPerCycle;
         budget > 0 && !pq_.empty() && pq_.front().readyAt <= now;
         --budget) {
        const MemRequest req = pq_.front().req;
        ++stats_.prefetchLookups;
        const std::uint32_t set = setIndex(req.line());
        if (findWay(set, req.line()) < params_.ways ||
            findMshrSlot(req.line()) != AddrIndex::kNotFound) {
            ++stats_.prefetchDropped;
            pq_.pop_front();
            continue;
        }
        if (usedMshrs_ >= params_.mshrs)
            break; // Prefetches wait for a free MSHR.
        // Keep at least a couple of MSHRs for demand traffic.
        if (freeMshrCount() <= 2) {
            ++stats_.prefetchDropped;
            pq_.pop_front();
            continue;
        }
        pq_.pop_front();
        const std::uint32_t slot = allocMshrSlot(req.line());
        Mshr &m = mshrs_[slot];
        m.fetchReq = req;
        m.originPrefetch = true;
        forwardFetch(m, slot);
        ++stats_.prefetchIssued;
        if (prefetcher_ != nullptr)
            ++prefetcher_->stats().issued;
    }
}

void
Cache::invokePrefetcher(const MemRequest &req, bool hit)
{
    if (prefetcher_ == nullptr)
        return;
    if (req.type != AccessType::Load && req.type != AccessType::Rfo)
        return;
    pfCandidates_.clear();
    prefetcher_->onAccess(req.address, req.pc, hit, pfCandidates_);
    for (Addr line : pfCandidates_) {
        if (pq_.size() >= params_.pqSize)
            break;
        MemRequest pf;
        pf.address = line << kLogBlockSize;
        pf.pc = req.pc;
        pf.coreId = req.coreId;
        pf.type = AccessType::Prefetch;
        pf.cycleCreated = now_;
        pq_.push_back(QueueEntry{pf, now_ + 1});
    }
}

void
Cache::installLine(Addr line, Addr pc, AccessType type, bool dirty,
                   bool prefetched)
{
    const std::uint32_t set = setIndex(line);
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;
    std::uint32_t way = params_.ways;
    if (setFill_[set] < params_.ways) {
        // Cold set: take the lowest invalid way (guaranteed to exist).
        way = 0;
        while (tags_[base + way] != kInvalidTag)
            ++way;
        ++setFill_[set];
    }
    if (way == params_.ways) {
        way = replVictim(set);
        const Addr victim_line = tags_[base + way];
        const std::uint8_t victim_flags = lineFlags_[base + way];
        ++stats_.evictions;
        if ((victim_flags & kPrefetched) != 0) {
            ++stats_.uselessPrefetches;
            if (prefetcher_ != nullptr) {
                ++prefetcher_->stats().useless;
                prefetcher_->onPrefetchUseless(victim_line);
            }
        }
        replOnEvict(set, way);
        if (onEviction)
            onEviction(victim_line);
        if ((victim_flags & kDirty) != 0) {
            ++stats_.dirtyEvictions;
            if (lower_ != nullptr) {
                MemRequest wb;
                wb.address = victim_line << kLogBlockSize;
                wb.type = AccessType::Writeback;
                wb.cycleCreated = now_;
                lower_->addWrite(wb);
            }
        }
    }
    tags_[base + way] = line;
    lineFlags_[base + way] =
        static_cast<std::uint8_t>((dirty ? kDirty : 0) |
                                  (prefetched ? kPrefetched : 0));
    replOnInsert(set, way, pc, type);
}

void
Cache::respondUpward(MemRequest waiter, const MemRequest &fill)
{
    waiter.servedFrom = fill.servedFrom;
    waiter.cycleMcArrive = fill.cycleMcArrive;
    waiter.servedByHermes = fill.servedByHermes;
    const auto idx = static_cast<std::size_t>(waiter.coreId);
    MemClient *upper =
        idx < uppers_.size() ? uppers_[idx] : nullptr;
    if (upper != nullptr)
        upper->returnData(waiter);
}

void
Cache::returnData(const MemRequest &req)
{
    const std::uint32_t slot = findMshrSlot(req.line());
    assert(slot != AddrIndex::kNotFound &&
           "fill without a matching MSHR");
    Mshr &m = mshrs_[slot];

    ++stats_.fills;
    const bool prefetched = m.originPrefetch && !m.demandMerged;
    if (m.originPrefetch) {
        ++stats_.prefetchFills;
        if (prefetcher_ != nullptr)
            prefetcher_->onPrefetchFill(req.line());
    }
    installLine(req.line(), m.fetchReq.pc, m.fetchReq.type, m.fillDirty,
                prefetched);
    if (onFillFromDram && req.servedFrom == MemLevel::Dram)
        onFillFromDram(req.line());

    for (const MemRequest &w : m.waiters)
        respondUpward(w, req);
    releaseMshr(slot);
}

bool
Cache::probe(Addr line) const
{
    const std::uint32_t set = setIndex(line);
    return findWay(set, line) < params_.ways;
}

bool
Cache::probeMshr(Addr line) const
{
    return findMshrSlot(line) != AddrIndex::kNotFound;
}

void
Cache::saveRing(StateWriter &w, const Ring<QueueEntry> &ring)
{
    w.u64(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
        saveMemRequest(w, ring.at(i).req);
        w.u64(ring.at(i).readyAt);
    }
}

void
Cache::loadRing(StateReader &r, Ring<QueueEntry> &ring)
{
    ring.clear();
    const std::size_t n = r.count(1u << 20);
    for (std::size_t i = 0; i < n; ++i) {
        QueueEntry e;
        loadMemRequest(r, e.req);
        e.readyAt = r.u64();
        ring.push_back(e);
    }
}

void
Cache::saveState(StateWriter &w) const
{
    w.section("CACH");
    // Identity guard: a checkpoint for a differently-shaped cache must
    // fail here, not corrupt state downstream.
    w.str(params_.name);
    w.u64(tags_.size());
    for (Addr t : tags_)
        w.u64(t);
    for (std::uint8_t f : lineFlags_)
        w.u8(f);
    w.u64(mshrs_.size());
    for (const Mshr &m : mshrs_) {
        w.b(m.sentToLower);
        w.b(m.fillDirty);
        w.b(m.originPrefetch);
        w.b(m.demandMerged);
        w.u64(m.line);
        saveMemRequest(w, m.fetchReq);
        w.u64(m.waiters.size());
        for (const MemRequest &req : m.waiters)
            saveMemRequest(w, req);
    }
    w.u64(freeMask_.size());
    for (std::uint64_t mask : freeMask_)
        w.u64(mask);
    for (std::uint64_t mask : unsentMask_)
        w.u64(mask);
    w.u32(usedMshrs_);
    w.u32(unsentMshrs_);
    saveRing(w, rq_);
    saveRing(w, wq_);
    saveRing(w, pq_);
    w.u64(now_);
    repl_->saveState(w);
}

void
Cache::loadState(StateReader &r)
{
    r.section("CACH");
    if (r.str() != params_.name)
        throw StateError("cache name mismatch");
    if (r.u64() != tags_.size())
        throw StateError("cache tag array size mismatch");
    for (Addr &t : tags_)
        t = r.u64();
    for (std::uint8_t &f : lineFlags_)
        f = r.u8();
    // setFill_ is derived from the tag array: recount valid ways.
    std::fill(setFill_.begin(), setFill_.end(), 0u);
    for (std::uint32_t s = 0; s < params_.sets; ++s) {
        const std::size_t b = static_cast<std::size_t>(s) * params_.ways;
        for (std::uint32_t w = 0; w < params_.ways; ++w)
            if (tags_[b + w] != kInvalidTag)
                ++setFill_[s];
    }
    if (r.u64() != mshrs_.size())
        throw StateError("cache mshr file size mismatch");
    for (Mshr &m : mshrs_) {
        m.sentToLower = r.b();
        m.fillDirty = r.b();
        m.originPrefetch = r.b();
        m.demandMerged = r.b();
        m.line = r.u64();
        loadMemRequest(r, m.fetchReq);
        m.waiters.clear();
        const std::size_t nw = r.count(1u << 16);
        m.waiters.resize(nw);
        for (MemRequest &req : m.waiters)
            loadMemRequest(r, req);
    }
    if (r.u64() != freeMask_.size())
        throw StateError("cache mshr mask size mismatch");
    for (std::uint64_t &mask : freeMask_)
        mask = r.u64();
    for (std::uint64_t &mask : unsentMask_)
        mask = r.u64();
    usedMshrs_ = r.u32();
    unsentMshrs_ = r.u32();
    loadRing(r, rq_);
    loadRing(r, wq_);
    loadRing(r, pq_);
    now_ = r.u64();
    repl_->loadState(r);
    // The line->slot index is derived: rebuild it over occupied slots.
    mshrIndex_.clear();
    for (std::uint32_t slot = 0; slot < mshrs_.size(); ++slot) {
        const bool free =
            (freeMask_[slot >> 6] >> (slot & 63)) & 1u;
        if (!free)
            mshrIndex_.insert(mshrs_[slot].line, slot);
    }
}

} // namespace hermes
