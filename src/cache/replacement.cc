#include "cache/replacement.hh"

#include <cassert>
#include <stdexcept>

#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

ModelDef
replDef(const char *name, const char *doc,
        std::unique_ptr<ReplacementPolicy> (*make)(std::uint32_t,
                                                   std::uint32_t))
{
    ModelDef d;
    d.name = name;
    d.kind = ModelKind::Replacement;
    d.doc = doc;
    d.counters = replacementCounterKeys();
    d.makeReplacement = [make](const ModelContext &ctx) {
        return make(ctx.sets, ctx.ways);
    };
    return d;
}

const ModelRegistrar lruRegistrar(replDef(
    "lru", "least-recently-used (L1/L2 default)",
    [](std::uint32_t sets,
       std::uint32_t ways) -> std::unique_ptr<ReplacementPolicy> {
        return std::make_unique<LruPolicy>(sets, ways);
    }));

const ModelRegistrar srripRegistrar(replDef(
    "srrip", "static re-reference interval prediction (2-bit RRPV)",
    [](std::uint32_t sets,
       std::uint32_t ways) -> std::unique_ptr<ReplacementPolicy> {
        return std::make_unique<SrripPolicy>(sets, ways);
    }));

const ModelRegistrar shipRegistrar(replDef(
    "ship", "signature-based hit prediction (the paper's LLC policy, "
            "Table 4)",
    [](std::uint32_t sets,
       std::uint32_t ways) -> std::unique_ptr<ReplacementPolicy> {
        return std::make_unique<ShipPolicy>(sets, ways);
    }));

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint32_t sets, std::uint32_t ways)
{
    assert(sets > 0 && ways > 0);
    // Thin shim over the model registry: the enum names resolve to the
    // same registered factories the string path uses.
    ModelContext ctx;
    ctx.sets = sets;
    ctx.ways = ways;
    return ModelRegistry::instance().makeReplacement(replKindName(kind),
                                                     std::move(ctx));
}

ReplKind
replKindFromString(const std::string &name)
{
    if (name == "lru")
        return ReplKind::Lru;
    if (name == "srrip")
        return ReplKind::Srrip;
    if (name == "ship")
        return ReplKind::Ship;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::Lru:
        return "lru";
      case ReplKind::Srrip:
        return "srrip";
      case ReplKind::Ship:
        return "ship";
    }
    return "?";
}

} // namespace hermes
