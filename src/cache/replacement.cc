#include "cache/replacement.hh"

#include <cassert>
#include <stdexcept>

namespace hermes
{

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint32_t sets, std::uint32_t ways)
{
    assert(sets > 0 && ways > 0);
    switch (kind) {
      case ReplKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::Srrip:
        return std::make_unique<SrripPolicy>(sets, ways);
      case ReplKind::Ship:
        return std::make_unique<ShipPolicy>(sets, ways);
    }
    throw std::invalid_argument("unknown replacement kind");
}

ReplKind
replKindFromString(const std::string &name)
{
    if (name == "lru")
        return ReplKind::Lru;
    if (name == "srrip")
        return ReplKind::Srrip;
    if (name == "ship")
        return ReplKind::Ship;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::Lru:
        return "lru";
      case ReplKind::Srrip:
        return "srrip";
      case ReplKind::Ship:
        return "ship";
    }
    return "?";
}

} // namespace hermes
