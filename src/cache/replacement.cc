#include "cache/replacement.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hermes
{

namespace
{

/** Classic least-recently-used via per-line access timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
    {
    }

    const char *name() const override { return "lru"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        std::uint32_t victim_way = 0;
        std::uint64_t oldest = stamp_[base];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (stamp_[base + w] < oldest) {
                oldest = stamp_[base + w];
                victim_way = w;
            }
        }
        return victim_way;
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        // A real LRU stack needs log2(ways) bits per line.
        std::uint32_t bits = 0;
        while ((1u << bits) < ways_)
            ++bits;
        return static_cast<std::uint64_t>(stamp_.size()) * bits;
    }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
    }

    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

/** Static re-reference interval prediction (2-bit RRPV). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    SrripPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
    {
    }

    const char *name() const override { return "srrip"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (;;) {
            for (std::uint32_t w = 0; w < ways_; ++w)
                if (rrpv_[base + w] == kMaxRrpv)
                    return w;
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++rrpv_[base + w];
        }
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(rrpv_.size()) * 2;
    }

  protected:
    static constexpr std::uint8_t kMaxRrpv = 3;

    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * SHiP (signature-based hit predictor, Wu et al. MICRO'11): RRIP
 * insertion steered by a PC-signature reuse table (SHCT). Lines that
 * historically see no reuse are inserted at distant RRPV.
 */
class ShipPolicy : public SrripPolicy
{
  public:
    ShipPolicy(std::uint32_t sets, std::uint32_t ways)
        : SrripPolicy(sets, ways),
          sig_(static_cast<std::size_t>(sets) * ways, 0),
          reused_(static_cast<std::size_t>(sets) * ways, false),
          shct_(kShctSize, 1)
    {
    }

    const char *name() const override { return "ship"; }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
             AccessType type) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        sig_[i] = signature(pc);
        reused_[i] = false;
        // Prefetch fills and PCs with a no-reuse history go in at the
        // most distant re-reference interval.
        const bool distant =
            type == AccessType::Prefetch || shct_[sig_[i]] == 0;
        rrpv_[i] = distant ? kMaxRrpv : kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        rrpv_[i] = 0;
        if (!reused_[i]) {
            reused_[i] = true;
            if (shct_[sig_[i]] < kShctMax)
                ++shct_[sig_[i]];
        }
    }

    void
    onEvict(std::uint32_t set, std::uint32_t way) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        if (!reused_[i] && shct_[sig_[i]] > 0)
            --shct_[sig_[i]];
    }

    std::uint64_t
    storageBits() const override
    {
        return SrripPolicy::storageBits() +
               static_cast<std::uint64_t>(sig_.size()) * 14 + // signature
               static_cast<std::uint64_t>(reused_.size()) +   // outcome bit
               static_cast<std::uint64_t>(shct_.size()) * 2;  // SHCT
    }

  private:
    static constexpr std::uint32_t kShctSize = 16384;
    static constexpr std::uint8_t kShctMax = 3;

    static std::uint16_t
    signature(Addr pc)
    {
        return static_cast<std::uint16_t>(((pc >> 2) ^ (pc >> 16)) &
                                          (kShctSize - 1));
    }

    std::vector<std::uint16_t> sig_;
    std::vector<bool> reused_;
    std::vector<std::uint8_t> shct_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint32_t sets, std::uint32_t ways)
{
    assert(sets > 0 && ways > 0);
    switch (kind) {
      case ReplKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::Srrip:
        return std::make_unique<SrripPolicy>(sets, ways);
      case ReplKind::Ship:
        return std::make_unique<ShipPolicy>(sets, ways);
    }
    throw std::invalid_argument("unknown replacement kind");
}

ReplKind
replKindFromString(const std::string &name)
{
    if (name == "lru")
        return ReplKind::Lru;
    if (name == "srrip")
        return ReplKind::Srrip;
    if (name == "ship")
        return ReplKind::Ship;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

} // namespace hermes
