#pragma once

/**
 * @file
 * Set-associative, write-back, write-allocate cache with MSHRs, modelled
 * in the style of ChampSim: per-cache read/write/prefetch queues, a
 * fixed tag-lookup latency, miss forwarding to the next-lower level and
 * fill propagation back up. The LLC additionally hosts the hardware
 * prefetcher and exposes fill/eviction hooks used by the TTP off-chip
 * predictor and by the power model.
 *
 * Latencies are *incremental*: with L1=5, L2=10, LLC=40 a demand load
 * that hits the LLC observes the paper's 55-cycle round trip (Table 4).
 *
 * Simplification (documented in DESIGN.md): write queues accept
 * unconditionally (soft-bounded) to avoid writeback-deadlock plumbing;
 * an overflow statistic records pressure instead.
 *
 * Hot-path layout (this cache is looked up for every simulated memory
 * access, so the data structures are shaped for throughput):
 *  - tags live in one contiguous per-set array scanned directly (an
 *    invalid way holds a sentinel tag that cannot match); per-line
 *    dirty/prefetched bits sit in a parallel flags array touched only
 *    on hits and fills;
 *  - in-flight misses are found through an open-addressed line->MSHR
 *    index (AddrIndex) instead of a linear MSHR scan; free and unsent
 *    MSHR slots are tracked in bitmasks so allocation and retry visit
 *    only live slots, in slot order;
 *  - the request queues are power-of-two ring buffers (Ring<>);
 *  - replacement callbacks are devirtualized by dispatching on
 *    ReplKind to the sealed policy classes;
 *  - tick() returns immediately when all queues are empty and no MSHR
 *    is waiting to be forwarded, which is the common case for upper
 *    levels in low-MPKI phases.
 */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/mem_iface.hh"
#include "cache/replacement.hh"
#include "common/addr_index.hh"
#include "common/ring.hh"
#include "common/types.hh"
#include "prefetch/prefetcher.hh"

namespace hermes
{

/** Geometry, timing and queueing parameters of one cache. */
struct CacheParams
{
    std::string name = "cache";
    MemLevel level = MemLevel::L1;
    std::uint32_t sets = 64;
    std::uint32_t ways = 12;
    /** Incremental tag+data lookup latency in core cycles. */
    Cycle latency = 5;
    std::uint32_t mshrs = 16;
    std::uint32_t rqSize = 32;
    std::uint32_t pqSize = 32;
    /** Max tag lookups per cycle per queue class. */
    std::uint32_t lookupsPerCycle = 4;
    ReplKind repl = ReplKind::Lru;
    /**
     * Registry-model override: when set, the cache builds its policy
     * through this factory (sets, ways) and dispatches virtually
     * instead of through the sealed ReplKind classes. Populated by
     * System for registry-selected policies so cache/ never depends on
     * sim/.
     */
    std::function<std::unique_ptr<ReplacementPolicy>(std::uint32_t,
                                                     std::uint32_t)>
        replFactory;

    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(sets) * ways * kBlockSize;
    }
};

/** Per-cache counters. */
struct CacheStats
{
    std::uint64_t loadLookups = 0;
    std::uint64_t loadHits = 0;
    std::uint64_t rfoLookups = 0;
    std::uint64_t rfoHits = 0;
    std::uint64_t writebackLookups = 0;
    std::uint64_t writebackHits = 0;
    std::uint64_t prefetchLookups = 0; ///< Own-prefetch candidates probed
    std::uint64_t prefetchDropped = 0; ///< Candidates already present
    std::uint64_t prefetchIssued = 0;  ///< Forwarded to the lower level
    std::uint64_t mshrMerges = 0;
    std::uint64_t mshrLatePrefetchHits = 0; ///< Demand merged into pf MSHR
    std::uint64_t fills = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t usefulPrefetches = 0;
    std::uint64_t uselessPrefetches = 0;
    std::uint64_t rqRejects = 0;

    std::uint64_t demandLookups() const { return loadLookups + rfoLookups; }
    std::uint64_t demandHits() const { return loadHits + rfoHits; }
    std::uint64_t
    demandMisses() const
    {
        return demandLookups() - demandHits();
    }
};

/**
 * One cache level. Implements MemDevice (requests from above) and
 * MemClient (fills from below).
 */
class Cache final : public MemDevice, public MemClient
{
  public:
    explicit Cache(CacheParams params);

    /** Wire the next-lower memory device (cache or DRAM controller). */
    void setLower(MemDevice *lower) { lower_ = lower; }

    /**
     * Wire the response receiver for requests from @p core_id. Private
     * caches use core_id 0; the shared LLC registers one per core.
     */
    void setUpper(int core_id, MemClient *upper);

    /** Attach the hardware prefetcher (LLC only; non-owning). */
    void setPrefetcher(Prefetcher *pf) { prefetcher_ = pf; }

    // MemDevice
    bool addRead(const MemRequest &req) override;
    bool addWrite(const MemRequest &req) override;

    /** Advance one cycle. Inline: ticked every core cycle, and for
     * upper levels in low-MPKI phases every queue is usually empty. */
    void
    tick(Cycle now) override
    {
        now_ = now;
        if (unsentMshrs_ != 0)
            retryUnsentMshrs();
        // Each sweep is a pure no-op until its queue front's deadline
        // (the earliest in the queue — see nextEventCycle) arrives, so
        // gate the out-of-line calls on it.
        if (!wq_.empty() && wq_.front().readyAt <= now)
            processWrites(now);
        if (!rq_.empty() && rq_.front().readyAt <= now)
            processReads(now);
        if (!pq_.empty() && pq_.front().readyAt <= now)
            processPrefetches(now);
    }

    /**
     * Event-horizon contract (docs/performance.md): a lower bound on
     * the next cycle at which ticking this cache could process work it
     * already holds. Ring queues keep their earliest deadline at the
     * front (appends carry now + latency with a monotone clock; retry
     * push-fronts carry now), so only the three fronts are inspected.
     * Fills arriving from below create new work but are themselves
     * events of the lower level's horizon. Never less than @p now + 1.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (unsentMshrs_ != 0)
            return now + 1; // forward retries run every cycle
        Cycle horizon = kNoEventCycle;
        if (!wq_.empty())
            horizon = std::min(horizon,
                               std::max(wq_.front().readyAt, now + 1));
        if (!rq_.empty())
            horizon = std::min(horizon,
                               std::max(rq_.front().readyAt, now + 1));
        if (!pq_.empty())
            horizon = std::min(horizon,
                               std::max(pq_.front().readyAt, now + 1));
        return horizon;
    }

    /** Emulate an event-free span ending at @p now: such ticks only
     * advance the cache clock (used to stamp enqueues from above). */
    void skipTo(Cycle now) { now_ = now; }

    // MemClient (fill from the lower level)
    void returnData(const MemRequest &req) override;

    /** True if @p line is resident (no state change). */
    bool probe(Addr line) const;
    /** True if a miss to @p line is outstanding. */
    bool probeMshr(Addr line) const;

    const CacheParams &params() const { return params_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    /** Replacement-metadata bits (storage report). */
    std::uint64_t replStorageBits() const { return repl_->storageBits(); }

    /**
     * Warmup checkpoint hooks. The cache is checkpointable iff its
     * replacement policy opted in (registry policies that don't are a
     * clean "no checkpoint", never a wrong one).
     */
    bool checkpointable() const { return repl_->checkpointable(); }
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

    /** LLC hook: a line was filled from DRAM into the hierarchy. */
    std::function<void(Addr line)> onFillFromDram;
    /** LLC hook: a valid line was evicted. */
    std::function<void(Addr line)> onEviction;

  private:
    /** Sentinel tag marking an invalid way (no real line address —
     * byte addresses shifted down by kLogBlockSize never reach it). */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /** Per-line metadata bits (parallel to tags_). */
    enum LineFlag : std::uint8_t
    {
        kDirty = 1u << 0,
        kPrefetched = 1u << 1,
    };

    struct Mshr
    {
        bool sentToLower = false;
        bool fillDirty = false;      ///< Install dirty (RFO/store)
        bool originPrefetch = false; ///< Allocated by this cache's pf
        bool demandMerged = false;   ///< A demand joined after allocation
        Addr line = 0;
        MemRequest fetchReq;             ///< Request forwarded down
        std::vector<MemRequest> waiters; ///< Reads to answer upward
    };

    struct QueueEntry
    {
        MemRequest req;
        Cycle readyAt = 0;
    };

    static void saveRing(StateWriter &w, const Ring<QueueEntry> &ring);
    static void loadRing(StateReader &r, Ring<QueueEntry> &ring);

    std::uint32_t setIndex(Addr line) const;
    /** Find way of a resident line; returns ways on miss. */
    std::uint32_t findWay(std::uint32_t set, Addr line) const;
    /** MSHR slot for @p line, or AddrIndex::kNotFound. */
    std::uint32_t findMshrSlot(Addr line) const;
    /** Lowest free MSHR slot, or kNotFound when exhausted. */
    std::uint32_t allocMshrSlot(Addr line);
    void releaseMshr(std::uint32_t slot);
    unsigned freeMshrCount() const;
    void markUnsent(std::uint32_t slot);
    void forwardFetch(Mshr &m, std::uint32_t slot);

    // Devirtualized replacement dispatch (sealed policy classes).
    void replOnHit(std::uint32_t set, std::uint32_t way, Addr pc,
                   AccessType type);
    void replOnInsert(std::uint32_t set, std::uint32_t way, Addr pc,
                      AccessType type);
    void replOnEvict(std::uint32_t set, std::uint32_t way);
    std::uint32_t replVictim(std::uint32_t set);

    void processReads(Cycle now);
    void processWrites(Cycle now);
    void processPrefetches(Cycle now);
    void retryUnsentMshrs();
    void handleReadHit(const MemRequest &req, std::uint32_t set,
                       std::uint32_t way);
    /** @return true if the miss was absorbed (MSHR merge or new). */
    bool handleReadMiss(const MemRequest &req);
    /** Install a fill; evicts (and writes back) a victim if needed. */
    void installLine(Addr line, Addr pc, AccessType type, bool dirty,
                     bool prefetched);
    void respondUpward(MemRequest waiter, const MemRequest &fill);
    void invokePrefetcher(const MemRequest &req, bool hit);

    CacheParams params_;
    std::unique_ptr<ReplacementPolicy> repl_;
    /** Policy came from params_.replFactory: dispatch virtually. */
    bool customRepl_ = false;

    // Flat tag/metadata store: tags_[set*ways + way].
    std::vector<Addr> tags_;
    std::vector<std::uint8_t> lineFlags_;
    /** Valid ways per set. Lines are never invalidated after install,
     * so a full set stays full: installLine skips the invalid-way scan
     * entirely in steady state. Derived from tags_ (rebuilt in
     * loadState), never checkpointed. */
    std::vector<std::uint32_t> setFill_;

    // MSHR file + open-addressed line index + slot bitmasks.
    std::vector<Mshr> mshrs_;
    AddrIndex mshrIndex_;
    std::vector<std::uint64_t> freeMask_;   ///< bit set = slot free
    std::vector<std::uint64_t> unsentMask_; ///< bit set = not yet sent
    unsigned usedMshrs_ = 0;
    unsigned unsentMshrs_ = 0;

    Ring<QueueEntry> rq_;
    Ring<QueueEntry> wq_;
    Ring<QueueEntry> pq_;
    std::vector<MemClient *> uppers_;
    MemDevice *lower_ = nullptr;
    Prefetcher *prefetcher_ = nullptr;
    /** Reused candidate buffer: no per-access heap allocation. */
    std::vector<Addr> pfCandidates_;
    CacheStats stats_;
    Cycle now_ = 0;
};

} // namespace hermes
