#pragma once

/**
 * @file
 * Cache replacement policies: LRU (L1/L2), SRRIP, and SHiP (the paper's
 * LLC policy, Table 4). Policies are separate from the cache so tests
 * can exercise them in isolation and caches can swap them by config.
 *
 * The concrete classes are declared here (not hidden behind the
 * factory) and marked final so the cache can devirtualize the
 * per-access policy callbacks: it dispatches once on ReplKind and then
 * calls the sealed class directly, which the compiler turns into plain
 * (inlineable) calls on the L1/L2/LLC hit path.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/mem_iface.hh"
#include "common/types.hh"

namespace hermes
{

/** Replacement policy selector. */
enum class ReplKind : std::uint8_t
{
    Lru,
    Srrip,
    Ship,
};

/** Parse a policy name ("lru", "srrip", "ship"); throws on unknown. */
ReplKind replKindFromString(const std::string &name);

/** Printable name for a kind. */
const char *replKindName(ReplKind kind);

/**
 * Replacement policy interface. The cache informs the policy of every
 * insertion, hit and eviction; the policy picks victims. Way indices
 * are cache-relative; invalid ways are preferred automatically by the
 * cache itself, so victim() is only consulted when the set is full.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual const char *name() const = 0;

    /** Pick a victim way in a full set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** A line was inserted into (set, way). */
    virtual void onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
                          AccessType type) = 0;

    /** A demand access hit (set, way). */
    virtual void onHit(std::uint32_t set, std::uint32_t way, Addr pc,
                       AccessType type) = 0;

    /** The line at (set, way) is being evicted. */
    virtual void onEvict(std::uint32_t set, std::uint32_t way) = 0;

    /** Metadata storage in bits (for the storage report). */
    virtual std::uint64_t storageBits() const = 0;
};

/** Classic least-recently-used via per-line access timestamps. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
    {
    }

    const char *name() const override { return "lru"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        std::uint32_t victim_way = 0;
        std::uint64_t oldest = stamp_[base];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (stamp_[base + w] < oldest) {
                oldest = stamp_[base + w];
                victim_way = w;
            }
        }
        return victim_way;
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        // A real LRU stack needs log2(ways) bits per line.
        std::uint32_t bits = 0;
        while ((1u << bits) < ways_)
            ++bits;
        return static_cast<std::uint64_t>(stamp_.size()) * bits;
    }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
    }

    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

/** Static re-reference interval prediction (2-bit RRPV). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    SrripPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways),
          rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
    {
    }

    const char *name() const override { return "srrip"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (;;) {
            for (std::uint32_t w = 0; w < ways_; ++w)
                if (rrpv_[base + w] == kMaxRrpv)
                    return w;
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++rrpv_[base + w];
        }
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(rrpv_.size()) * 2;
    }

  protected:
    static constexpr std::uint8_t kMaxRrpv = 3;

    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * SHiP (signature-based hit predictor, Wu et al. MICRO'11): RRIP
 * insertion steered by a PC-signature reuse table (SHCT). Lines that
 * historically see no reuse are inserted at distant RRPV.
 */
class ShipPolicy final : public SrripPolicy
{
  public:
    ShipPolicy(std::uint32_t sets, std::uint32_t ways)
        : SrripPolicy(sets, ways),
          sig_(static_cast<std::size_t>(sets) * ways, 0),
          reused_(static_cast<std::size_t>(sets) * ways, false),
          shct_(kShctSize, 1)
    {
    }

    const char *name() const override { return "ship"; }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
             AccessType type) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        sig_[i] = signature(pc);
        reused_[i] = false;
        // Prefetch fills and PCs with a no-reuse history go in at the
        // most distant re-reference interval.
        const bool distant =
            type == AccessType::Prefetch || shct_[sig_[i]] == 0;
        rrpv_[i] = distant ? kMaxRrpv : kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        rrpv_[i] = 0;
        if (!reused_[i]) {
            reused_[i] = true;
            if (shct_[sig_[i]] < kShctMax)
                ++shct_[sig_[i]];
        }
    }

    void
    onEvict(std::uint32_t set, std::uint32_t way) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        if (!reused_[i] && shct_[sig_[i]] > 0)
            --shct_[sig_[i]];
    }

    std::uint64_t
    storageBits() const override
    {
        return SrripPolicy::storageBits() +
               static_cast<std::uint64_t>(sig_.size()) * 14 + // signature
               static_cast<std::uint64_t>(reused_.size()) +   // outcome bit
               static_cast<std::uint64_t>(shct_.size()) * 2;  // SHCT
    }

  private:
    static constexpr std::uint32_t kShctSize = 16384;
    static constexpr std::uint8_t kShctMax = 3;

    static std::uint16_t
    signature(Addr pc)
    {
        return static_cast<std::uint16_t>(((pc >> 2) ^ (pc >> 16)) &
                                          (kShctSize - 1));
    }

    std::vector<std::uint16_t> sig_;
    std::vector<bool> reused_;
    std::vector<std::uint8_t> shct_;
};

/** Instantiate a policy for a sets x ways geometry. */
std::unique_ptr<ReplacementPolicy> makeReplacement(ReplKind kind,
                                                   std::uint32_t sets,
                                                   std::uint32_t ways);

} // namespace hermes
