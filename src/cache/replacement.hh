#pragma once

/**
 * @file
 * Cache replacement policies: LRU (L1/L2), SRRIP, and SHiP (the paper's
 * LLC policy, Table 4). Policies are separate from the cache so tests
 * can exercise them in isolation and caches can swap them by config.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/mem_iface.hh"
#include "common/types.hh"

namespace hermes
{

/** Replacement policy selector. */
enum class ReplKind : std::uint8_t
{
    Lru,
    Srrip,
    Ship,
};

/**
 * Replacement policy interface. The cache informs the policy of every
 * insertion, hit and eviction; the policy picks victims. Way indices
 * are cache-relative; invalid ways are preferred automatically by the
 * cache itself, so victim() is only consulted when the set is full.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual const char *name() const = 0;

    /** Pick a victim way in a full set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** A line was inserted into (set, way). */
    virtual void onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
                          AccessType type) = 0;

    /** A demand access hit (set, way). */
    virtual void onHit(std::uint32_t set, std::uint32_t way, Addr pc,
                       AccessType type) = 0;

    /** The line at (set, way) is being evicted. */
    virtual void onEvict(std::uint32_t set, std::uint32_t way) = 0;

    /** Metadata storage in bits (for the storage report). */
    virtual std::uint64_t storageBits() const = 0;
};

/** Instantiate a policy for a sets x ways geometry. */
std::unique_ptr<ReplacementPolicy> makeReplacement(ReplKind kind,
                                                   std::uint32_t sets,
                                                   std::uint32_t ways);

/** Parse a policy name ("lru", "srrip", "ship"). */
ReplKind replKindFromString(const std::string &name);

} // namespace hermes
