#pragma once

/**
 * @file
 * Cache replacement policies: LRU (L1/L2), SRRIP, and SHiP (the paper's
 * LLC policy, Table 4). Policies are separate from the cache so tests
 * can exercise them in isolation and caches can swap them by config.
 *
 * The concrete classes are declared here (not hidden behind the
 * factory) and marked final so the cache can devirtualize the
 * per-access policy callbacks: it dispatches once on ReplKind and then
 * calls the sealed class directly, which the compiler turns into plain
 * (inlineable) calls on the L1/L2/LLC hit path.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/mem_iface.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace hermes
{

/** Replacement policy selector. */
enum class ReplKind : std::uint8_t
{
    Lru,
    Srrip,
    Ship,
};

/** Parse a policy name ("lru", "srrip", "ship"); throws on unknown. */
ReplKind replKindFromString(const std::string &name);

/** Printable name for a kind. */
const char *replKindName(ReplKind kind);

/**
 * Replacement policy interface. The cache informs the policy of every
 * insertion, hit and eviction; the policy picks victims. Way indices
 * are cache-relative; invalid ways are preferred automatically by the
 * cache itself, so victim() is only consulted when the set is full.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual const char *name() const = 0;

    /** Pick a victim way in a full set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** A line was inserted into (set, way). */
    virtual void onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
                          AccessType type) = 0;

    /** A demand access hit (set, way). */
    virtual void onHit(std::uint32_t set, std::uint32_t way, Addr pc,
                       AccessType type) = 0;

    /** The line at (set, way) is being evicted. */
    virtual void onEvict(std::uint32_t set, std::uint32_t way) = 0;

    /** Metadata storage in bits (for the storage report). */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Warmup checkpoint hooks. A policy that does not opt in simply
     * disables checkpointing for its cache (never a wrong checkpoint).
     */
    virtual bool checkpointable() const { return false; }
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}
};

/** Classic least-recently-used via per-line access timestamps. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0)
    {
    }

    const char *name() const override { return "lru"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        std::uint32_t victim_way = 0;
        std::uint64_t oldest = stamp_[base];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (stamp_[base + w] < oldest) {
                oldest = stamp_[base + w];
                victim_way = w;
            }
        }
        return victim_way;
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        touch(set, way);
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        // A real LRU stack needs log2(ways) bits per line.
        std::uint32_t bits = 0;
        while ((1u << bits) < ways_)
            ++bits;
        return static_cast<std::uint64_t>(stamp_.size()) * bits;
    }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("RLRU");
        w.u64(clock_);
        w.u64(stamp_.size());
        for (std::uint64_t s : stamp_)
            w.u64(s);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("RLRU");
        clock_ = r.u64();
        if (r.u64() != stamp_.size())
            throw StateError("lru stamp array size mismatch");
        for (std::uint64_t &s : stamp_)
            s = r.u64();
    }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
    }

    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamp_;
};

/** Static re-reference interval prediction (2-bit RRPV). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    SrripPolicy(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways),
          rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
    {
    }

    const char *name() const override { return "srrip"; }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (;;) {
            for (std::uint32_t w = 0; w < ways_; ++w)
                if (rrpv_[base + w] == kMaxRrpv)
                    return w;
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++rrpv_[base + w];
        }
    }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }

    void onEvict(std::uint32_t, std::uint32_t) override {}

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(rrpv_.size()) * 2;
    }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("RSRP");
        saveRrpv(w);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("RSRP");
        loadRrpv(r);
    }

  protected:
    static constexpr std::uint8_t kMaxRrpv = 3;

    void
    saveRrpv(StateWriter &w) const
    {
        w.u64(rrpv_.size());
        for (std::uint8_t v : rrpv_)
            w.u8(v);
    }

    void
    loadRrpv(StateReader &r)
    {
        if (r.u64() != rrpv_.size())
            throw StateError("rrip rrpv array size mismatch");
        for (std::uint8_t &v : rrpv_)
            v = r.u8();
    }

    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * SHiP (signature-based hit predictor, Wu et al. MICRO'11): RRIP
 * insertion steered by a PC-signature reuse table (SHCT). Lines that
 * historically see no reuse are inserted at distant RRPV.
 */
class ShipPolicy final : public SrripPolicy
{
  public:
    ShipPolicy(std::uint32_t sets, std::uint32_t ways)
        : SrripPolicy(sets, ways),
          sig_(static_cast<std::size_t>(sets) * ways, 0),
          reused_(static_cast<std::size_t>(sets) * ways, false),
          shct_(kShctSize, 1)
    {
    }

    const char *name() const override { return "ship"; }

    void
    onInsert(std::uint32_t set, std::uint32_t way, Addr pc,
             AccessType type) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        sig_[i] = signature(pc);
        reused_[i] = false;
        // Prefetch fills and PCs with a no-reuse history go in at the
        // most distant re-reference interval.
        const bool distant =
            type == AccessType::Prefetch || shct_[sig_[i]] == 0;
        rrpv_[i] = distant ? kMaxRrpv : kMaxRrpv - 1;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way, Addr, AccessType) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        rrpv_[i] = 0;
        if (!reused_[i]) {
            reused_[i] = true;
            if (shct_[sig_[i]] < kShctMax)
                ++shct_[sig_[i]];
        }
    }

    void
    onEvict(std::uint32_t set, std::uint32_t way) override
    {
        const std::size_t i = static_cast<std::size_t>(set) * ways_ + way;
        if (!reused_[i] && shct_[sig_[i]] > 0)
            --shct_[sig_[i]];
    }

    std::uint64_t
    storageBits() const override
    {
        return SrripPolicy::storageBits() +
               static_cast<std::uint64_t>(sig_.size()) * 14 + // signature
               static_cast<std::uint64_t>(reused_.size()) +   // outcome bit
               static_cast<std::uint64_t>(shct_.size()) * 2;  // SHCT
    }

    void
    saveState(StateWriter &w) const override
    {
        w.section("RSHP");
        saveRrpv(w);
        w.u64(sig_.size());
        for (std::uint16_t s : sig_)
            w.u16(s);
        w.u64(reused_.size());
        for (std::size_t i = 0; i < reused_.size(); ++i)
            w.b(reused_[i]);
        w.u64(shct_.size());
        for (std::uint8_t c : shct_)
            w.u8(c);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("RSHP");
        loadRrpv(r);
        if (r.u64() != sig_.size())
            throw StateError("ship signature array size mismatch");
        for (std::uint16_t &s : sig_)
            s = r.u16();
        if (r.u64() != reused_.size())
            throw StateError("ship reuse-bit array size mismatch");
        for (std::size_t i = 0; i < reused_.size(); ++i)
            reused_[i] = r.b();
        if (r.u64() != shct_.size())
            throw StateError("ship shct size mismatch");
        for (std::uint8_t &c : shct_)
            c = r.u8();
    }

  private:
    static constexpr std::uint32_t kShctSize = 16384;
    static constexpr std::uint8_t kShctMax = 3;

    static std::uint16_t
    signature(Addr pc)
    {
        return static_cast<std::uint16_t>(((pc >> 2) ^ (pc >> 16)) &
                                          (kShctSize - 1));
    }

    std::vector<std::uint16_t> sig_;
    std::vector<bool> reused_;
    std::vector<std::uint8_t> shct_;
};

/** Instantiate a policy for a sets x ways geometry. */
std::unique_ptr<ReplacementPolicy> makeReplacement(ReplKind kind,
                                                   std::uint32_t sets,
                                                   std::uint32_t ways);

} // namespace hermes
