#pragma once

/**
 * @file
 * Memory-system plumbing shared by caches, the DRAM controller and the
 * core: the request record and the device/client interfaces requests
 * travel through.
 *
 * Requests flow *down* (core -> L1 -> L2 -> LLC -> DRAM) via MemDevice
 * and completed reads flow *up* via MemClient::returnData. A request is
 * a value type: each level keeps its own copy in its queues/MSHRs, and
 * the copy returned upward carries the fill provenance (servedFrom),
 * which is the ground truth for off-chip prediction training.
 */

#include <cstdint>

#include "common/state_io.hh"
#include "common/types.hh"

namespace hermes
{

/** Classes of memory requests. */
enum class AccessType : std::uint8_t
{
    Load,      ///< Demand read on behalf of a load instruction
    Rfo,       ///< Read-for-ownership on behalf of a store
    Prefetch,  ///< Prefetcher-generated read
    Writeback, ///< Dirty eviction from an upper level
    Hermes,    ///< Speculative direct-to-memory read (Hermes request)
};

/** Memory levels, used to record where a request was serviced. */
enum class MemLevel : std::uint8_t
{
    L1,
    L2,
    Llc,
    Dram,
};

/** A memory request/response record. */
struct MemRequest
{
    std::uint64_t id = 0;  ///< Unique per-request id (debug/tracking)
    Addr address = 0;      ///< Byte address
    Addr pc = 0;           ///< PC of the triggering instruction
    int coreId = 0;
    AccessType type = AccessType::Load;
    InstrId instrId = 0;   ///< Core-local sequence number (loads only)

    Cycle cycleCreated = 0;  ///< When the demand access started at L1
    Cycle cycleMcArrive = 0; ///< When the request reached the MC (if ever)

    MemLevel servedFrom = MemLevel::L1; ///< Where the data came from
    bool servedByHermes = false; ///< Completed by merging with a Hermes req

    Addr line() const { return lineAddr(address); }
};

/** Checkpoint codec for the request record (queues, MSHRs, DRAM). */
inline void
saveMemRequest(StateWriter &w, const MemRequest &req)
{
    w.u64(req.id);
    w.u64(req.address);
    w.u64(req.pc);
    w.i32(req.coreId);
    w.u8(static_cast<std::uint8_t>(req.type));
    w.u64(req.instrId);
    w.u64(req.cycleCreated);
    w.u64(req.cycleMcArrive);
    w.u8(static_cast<std::uint8_t>(req.servedFrom));
    w.b(req.servedByHermes);
}

inline void
loadMemRequest(StateReader &r, MemRequest &req)
{
    req.id = r.u64();
    req.address = r.u64();
    req.pc = r.u64();
    req.coreId = r.i32();
    req.type = static_cast<AccessType>(r.u8());
    req.instrId = r.u64();
    req.cycleCreated = r.u64();
    req.cycleMcArrive = r.u64();
    req.servedFrom = static_cast<MemLevel>(r.u8());
    req.servedByHermes = r.b();
}

/** Receiver of completed read responses (a cache above, or the core). */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** A read (Load/Rfo/Prefetch) this client issued has completed. */
    virtual void returnData(const MemRequest &req) = 0;
};

/** A memory device that accepts requests (a cache or the DRAM MC). */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /**
     * Enqueue a demand/prefetch-miss read.
     * @return false if the read queue is full (caller must retry).
     */
    virtual bool addRead(const MemRequest &req) = 0;

    /**
     * Enqueue a write (store commit at L1, or a dirty writeback).
     * Writes produce no upward response.
     * @return false if the write queue is full.
     */
    virtual bool addWrite(const MemRequest &req) = 0;

    /** Advance the device one core cycle. */
    virtual void tick(Cycle now) = 0;
};

} // namespace hermes
