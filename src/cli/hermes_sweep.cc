/**
 * @file
 * hermes_sweep: run, shard, resume and merge whole sweep grids declared
 * as strings — the fleet-scale companion to hermes_run. A scenario
 * space is a base config (key=value overrides) crossed with sweep axes
 * (--axis "llc.latency=30,40,50") and a workload list (--suite, --trace
 * or --mix); every completed point is journaled as a fingerprinted
 * JSONL record, so:
 *
 *   --shard i/N   splits one grid across N processes or machines,
 *   --resume J    skips points J already records (crash recovery),
 *   --merge       unions shard journals into the full result set,
 *
 * and the merged CSV/JSON/fingerprint is byte-identical to the same
 * sweep run unsharded in one process.
 *
 * Examples:
 *   hermes_sweep --axis "prefetcher=none,pythia" --suite quick \
 *       --journal all.jsonl --csv results.csv
 *   hermes_sweep ... --shard 1/4 --journal s1.jsonl   # one per machine
 *   hermes_sweep ... --resume s1.jsonl --resume s2.jsonl \
 *       --resume s3.jsonl --resume s4.jsonl --merge \
 *       --journal merged.jsonl --csv results.csv --fingerprint
 *
 * With --cache DIR (or HERMES_RESULT_CACHE) every completed point also
 * lands in a shared content-addressed store, and later sweeps load
 * matching points instead of simulating them. --serve turns the same
 * machinery into a long-running job server on a unix socket; --client
 * and --submit-to talk to it (see docs/result-cache.md):
 *
 *   hermes_sweep --serve /tmp/hermes.sock --cache cache/ &
 *   hermes_sweep --axis ... --suite quick \
 *       --submit-to /tmp/hermes.sock --csv results.csv
 *   hermes_sweep --client /tmp/hermes.sock --request stats
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "sim/model_registry.hh"
#include "sim/param_registry.hh"
#include "sim/report.hh"
#include "sim/stat_registry.hh"
#include "sim/warmup_cache.hh"
#include "sweep/axis.hh"
#include "sweep/journal.hh"
#include "sweep/result_cache.hh"
#include "sweep/server.hh"
#include "sweep/sweep.hh"
#include "trace/resolve.hh"
#include "trace/suite.hh"

namespace
{

using namespace hermes;

void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [key=value ...] [options]\n"
        "Run, shard, resume and merge string-declared sweep grids.\n"
        "\n"
        "scenario space (config grid x workloads):\n"
        "  key=value        base-config registry override\n"
        "                   (see --list for every key)\n"
        "  --axis SPEC      sweep axis \"key=v1,v2,...\" (repeatable;\n"
        "                   axes expand as a cartesian product)\n"
        "  --suite S        one single-core point per trace of suite S:\n"
        "                   quick|full (default quick), or a comma-\n"
        "                   separated trace-spec list\n"
        "  --trace SPEC     one workload point (repeatable; replicated\n"
        "                   across cores on multi-core configs): suite\n"
        "                   name, corpus.<gen>[:knob=value...], or\n"
        "                   file:<path> (HRMTRACE/ChampSim, .gz/.xz)\n"
        "  --mix A,B,...    one multi-core point, one trace per core\n"
        "                   (repeatable)\n"
        "  --warmup N       warmup instructions per core (default 60000)\n"
        "  --instrs N       measured instructions (default 250000)\n"
        "  --scale F        scale both budgets (env HERMES_SIM_SCALE)\n"
        "\n"
        "orchestration:\n"
        "  --shard i/N      simulate only slice i of a deterministic\n"
        "                   N-way grid partition\n"
        "  --journal FILE   record every completed point to FILE as\n"
        "                   crash-safe JSONL\n"
        "  --resume FILE    skip points already recorded in FILE\n"
        "                   (repeatable); the rest is simulated\n"
        "  --merge          union the --resume journals WITHOUT\n"
        "                   simulating; fails unless they cover the\n"
        "                   whole grid\n"
        "  --threads N      worker threads (0 = all hardware threads;\n"
        "                   env HERMES_THREADS)\n"
        "  --progress       per-point meter with points/sec and ETA\n"
        "  --no-progress\n"
        "\n"
        "result cache & server mode:\n"
        "  --cache SPEC     content-addressed result store\n"
        "                   \"DIR[,max_bytes=SIZE][,max_entries=N]\";\n"
        "                   cached points load instead of simulating\n"
        "                   (env HERMES_RESULT_CACHE)\n"
        "  --no-cache       ignore HERMES_RESULT_CACHE\n"
        "  --warmup-cache SPEC\n"
        "                   warmup checkpoint store (same SPEC syntax);\n"
        "                   points sharing a warmup identity restore the\n"
        "                   warmed state instead of re-warming — pair\n"
        "                   with hermes.warmup_issue=false to sweep\n"
        "                   hermes.issue_latency on one warmup\n"
        "                   (env HERMES_WARMUP_CACHE)\n"
        "  --no-warmup-cache\n"
        "                   ignore HERMES_WARMUP_CACHE\n"
        "  --serve SOCK     serve a job queue on unix socket SOCK\n"
        "                   (--threads workers; ctrl-C or a client\n"
        "                   \"shutdown\" request stops it)\n"
        "  --state DIR      server state directory (queue journal and\n"
        "                   the default cache; default \"SOCK.state\")\n"
        "  --submit-to SOCK run this sweep's grid through a server\n"
        "                   instead of simulating locally\n"
        "  --client SOCK    send each --request line to a server and\n"
        "                   print the responses\n"
        "  --request LINE   protocol request for --client (repeatable;\n"
        "                   e.g. \"stats\", \"ping\", \"shutdown\")\n"
        "\n"
        "output (CSV/JSON/fingerprint need a complete grid):\n"
        "  --csv FILE|-     one CSV row per grid point\n"
        "  --json FILE|-    JSON array of grid points\n"
        "  --stats LIST     CSV/JSON columns: comma-separated stat keys,\n"
        "                   per-core forms (core.0.ipc) and globs\n"
        "                   (dram.*); default: the aggregate column set\n"
        "  --fingerprint    print the 16-hex sweep fingerprint (never\n"
        "                   affected by --stats column selection)\n"
        "  --mips           per-point MIPS summary + sim_mips and\n"
        "                   host_seconds columns in the dumps\n"
        "  --list-grid      print the expanded grid and its space\n"
        "                   fingerprint, then exit\n"
        "  --list           scenario-space discovery listing\n"
        "  --list-models    registered models (predictors, prefetchers,\n"
        "                   replacement policies) with their knobs\n"
        "  --list-stats     statistics table (key, type, aggregation,\n"
        "                   fingerprint flag, description)\n"
        "  -h, --help       this message\n",
        argv0);
    std::exit(exit_code);
}

struct Options
{
    Config overrides;
    std::vector<std::string> axisSpecs;
    std::string suiteName;
    std::vector<std::string> traceNames;
    std::vector<std::string> mixSpecs;
    std::uint64_t warmup = SimBudget::sweepDefaults().warmupInstrs;
    std::uint64_t instrs = SimBudget::sweepDefaults().simInstrs;

    sweep::ShardSpec shard;
    std::string journalPath;
    std::vector<std::string> resumePaths;
    bool merge = false;
    int threads = 0;
    bool progress = false;

    std::string cacheSpec;
    bool noCache = false;
    std::string warmupCacheSpec;
    bool noWarmupCache = false;
    std::string servePath;
    std::string stateDir;
    std::string submitTo;
    std::string clientPath;
    std::vector<std::string> requests;

    std::string csvPath;
    std::string jsonPath;
    std::string statsSpec;
    bool fingerprint = false;
    bool mips = false;
    bool listGrid = false;
};

std::uint64_t
parseCountOrDie(const std::string &s, const char *argv0)
{
    const auto v = parseInt64(s);
    if (!v || *v < 0) {
        std::fprintf(stderr,
                     "error: expected a non-negative integer, got "
                     "'%s'\n",
                     s.c_str());
        usage(argv0, 2);
    }
    return static_cast<std::uint64_t>(*v);
}

Options
parseCli(int argc, char **argv)
{
    Options opt;
    opt.progress = isatty(fileno(stderr)) != 0;
    if (const char *env = std::getenv("HERMES_THREADS")) {
        const auto v = parseInt64(env);
        if (v)
            opt.threads = static_cast<int>(*v);
    }
    std::vector<std::string> cli_overrides;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(argv[0], 0);
        } else if (arg == "--list") {
            std::printf("%s", describeScenarioSpace().c_str());
            std::exit(0);
        } else if (arg == "--list-models") {
            std::printf("%s",
                        ModelRegistry::instance().describe().c_str());
            std::exit(0);
        } else if (arg == "--list-stats") {
            std::printf("%s",
                        StatRegistry::instance().describe().c_str());
            std::exit(0);
        } else if (arg == "--list-grid") {
            opt.listGrid = true;
        } else if (arg == "--axis") {
            opt.axisSpecs.push_back(value());
        } else if (arg == "--suite") {
            opt.suiteName = value();
            // Fail fast on typos/bad specs; buildGrid re-resolves.
            try {
                resolveSuite(opt.suiteName);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                usage(argv[0], 2);
            }
        } else if (arg == "--trace") {
            opt.traceNames.push_back(value());
        } else if (arg == "--mix") {
            opt.mixSpecs.push_back(value());
        } else if (arg == "--warmup") {
            opt.warmup = parseCountOrDie(value(), argv[0]);
        } else if (arg == "--instrs") {
            opt.instrs = parseCountOrDie(value(), argv[0]);
        } else if (arg == "--scale") {
            const std::string scale = value();
            const auto v = parseFiniteDouble(scale);
            if (!v || *v <= 0) {
                std::fprintf(stderr,
                             "error: --scale wants a finite positive "
                             "number, got '%s'\n",
                             scale.c_str());
                usage(argv[0], 2);
            }
            setenv("HERMES_SIM_SCALE", scale.c_str(), 1);
        } else if (arg == "--shard") {
            opt.shard = sweep::parseShardSpec(value());
        } else if (arg == "--journal") {
            opt.journalPath = value();
        } else if (arg == "--resume") {
            opt.resumePaths.push_back(value());
        } else if (arg == "--merge") {
            opt.merge = true;
        } else if (arg == "--threads") {
            const std::string s = value();
            const auto v = parseInt64(s);
            if (!v || *v < 0) {
                std::fprintf(stderr,
                             "error: --threads wants a non-negative "
                             "integer (0 = all hardware threads), got "
                             "'%s'\n",
                             s.c_str());
                usage(argv[0], 2);
            }
            opt.threads = static_cast<int>(*v);
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--no-progress") {
            opt.progress = false;
        } else if (arg == "--cache") {
            opt.cacheSpec = value();
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--warmup-cache") {
            opt.warmupCacheSpec = value();
        } else if (arg == "--no-warmup-cache") {
            opt.noWarmupCache = true;
        } else if (arg == "--serve") {
            opt.servePath = value();
        } else if (arg == "--state") {
            opt.stateDir = value();
        } else if (arg == "--submit-to") {
            opt.submitTo = value();
        } else if (arg == "--client") {
            opt.clientPath = value();
        } else if (arg == "--request") {
            opt.requests.push_back(value());
        } else if (arg == "--csv") {
            opt.csvPath = value();
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--stats") {
            opt.statsSpec = value();
        } else if (arg == "--fingerprint") {
            opt.fingerprint = true;
        } else if (arg == "--mips") {
            opt.mips = true;
        } else if (arg.find('=') != std::string::npos &&
                   arg.compare(0, 2, "--") != 0) {
            cli_overrides.push_back(arg);
        } else {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         arg.c_str());
            usage(argv[0], 2);
        }
    }

    for (const std::string &kv : cli_overrides) {
        const auto eq = kv.find('=');
        if (eq == 0 || eq == std::string::npos) {
            std::fprintf(stderr, "error: malformed override '%s'\n",
                         kv.c_str());
            usage(argv[0], 2);
        }
        opt.overrides.set(kv.substr(0, eq), kv.substr(eq + 1));
    }

    if (opt.merge && opt.resumePaths.empty()) {
        std::fprintf(stderr,
                     "error: --merge needs the shard journals as "
                     "--resume FILE arguments\n");
        usage(argv[0], 2);
    }
    if (opt.merge && opt.shard.count > 1) {
        std::fprintf(stderr,
                     "error: --merge and --shard are mutually "
                     "exclusive\n");
        usage(argv[0], 2);
    }
    const int stdout_claims = (opt.fingerprint ? 1 : 0) +
                              (opt.csvPath == "-" ? 1 : 0) +
                              (opt.jsonPath == "-" ? 1 : 0);
    if (stdout_claims > 1) {
        std::fprintf(stderr,
                     "error: only one of --fingerprint, --csv - and "
                     "--json - can claim stdout\n");
        usage(argv[0], 2);
    }
    if (opt.noCache && !opt.cacheSpec.empty()) {
        std::fprintf(stderr,
                     "error: --cache and --no-cache are mutually "
                     "exclusive\n");
        usage(argv[0], 2);
    }
    if (opt.noWarmupCache && !opt.warmupCacheSpec.empty()) {
        std::fprintf(stderr,
                     "error: --warmup-cache and --no-warmup-cache are "
                     "mutually exclusive\n");
        usage(argv[0], 2);
    }
    if (!opt.clientPath.empty() && opt.requests.empty()) {
        std::fprintf(stderr,
                     "error: --client needs at least one --request\n");
        usage(argv[0], 2);
    }
    if (!opt.requests.empty() && opt.clientPath.empty()) {
        std::fprintf(stderr, "error: --request needs --client SOCK\n");
        usage(argv[0], 2);
    }
    if (!opt.servePath.empty() &&
        (opt.merge || opt.shard.count > 1 || !opt.submitTo.empty() ||
         !opt.clientPath.empty() || !opt.resumePaths.empty())) {
        std::fprintf(stderr,
                     "error: --serve is a standalone mode (no "
                     "--merge/--shard/--resume/--submit-to/--client)"
                     "\n");
        usage(argv[0], 2);
    }
    if (!opt.submitTo.empty() &&
        (opt.merge || opt.shard.count > 1 || !opt.resumePaths.empty())) {
        std::fprintf(stderr,
                     "error: --submit-to runs the whole grid through "
                     "the server (no --merge/--shard/--resume)\n");
        usage(argv[0], 2);
    }
    if (!opt.stateDir.empty() && opt.servePath.empty()) {
        std::fprintf(stderr, "error: --state needs --serve SOCK\n");
        usage(argv[0], 2);
    }
    return opt;
}

/**
 * Resolve the result cache from --cache, falling back to the
 * HERMES_RESULT_CACHE environment unless --no-cache. Returns nullptr
 * when neither names a store.
 */
std::unique_ptr<sweep::ResultCache>
openCache(const Options &opt)
{
    std::string spec = opt.cacheSpec;
    if (spec.empty() && !opt.noCache)
        if (const char *env = std::getenv("HERMES_RESULT_CACHE"))
            spec = env;
    if (spec.empty())
        return nullptr;
    return std::make_unique<sweep::ResultCache>(
        sweep::parseResultCacheSpec(spec));
}

/** The warmup-checkpoint analogue (--warmup-cache, HERMES_WARMUP_CACHE). */
std::unique_ptr<WarmupCache>
openWarmupCache(const Options &opt)
{
    std::string spec = opt.warmupCacheSpec;
    if (spec.empty() && !opt.noWarmupCache)
        if (const char *env = std::getenv("HERMES_WARMUP_CACHE"))
            spec = env;
    if (spec.empty())
        return nullptr;
    return std::make_unique<WarmupCache>(parseWarmupCacheSpec(spec));
}

/**
 * Expand (base overrides x axes) x workloads into the grid. The grid
 * order — workloads fastest, axes as declared — is part of the space
 * fingerprint, so shards and resumes of the same command line always
 * agree on which index is which.
 */
std::vector<sweep::GridPoint>
buildGrid(Options &opt)
{
    // One workload entry: a label plus one-or-many traces.
    struct WorkloadEntry
    {
        std::string label;
        std::vector<TraceSpec> traces;
    };
    std::vector<WorkloadEntry> workloads;

    for (const std::string &name : opt.traceNames)
        workloads.push_back({name, {resolveTrace(name)}});
    for (std::size_t m = 0; m < opt.mixSpecs.size(); ++m) {
        WorkloadEntry e;
        std::string joined;
        for (const std::string &name :
             sweep::splitCommaList(opt.mixSpecs[m], "--mix list")) {
            e.traces.push_back(resolveTrace(name));
            joined += (joined.empty() ? "" : "+") + name;
        }
        e.label = "mix" + std::to_string(m) + "." + joined;
        workloads.push_back(std::move(e));
    }
    if (workloads.empty()) {
        const std::string name =
            opt.suiteName.empty() ? "quick" : opt.suiteName;
        for (const TraceSpec &t : resolveSuite(name))
            workloads.push_back({t.name(), {t}});
    } else if (!opt.suiteName.empty()) {
        throw std::invalid_argument(
            "--suite cannot be combined with --trace/--mix");
    }

    // A mix with M traces implies an M-core system unless pinned.
    if (!opt.overrides.contains("system.cores") &&
        !opt.mixSpecs.empty()) {
        std::size_t cores = 0;
        for (const WorkloadEntry &w : workloads)
            cores = std::max(cores, w.traces.size());
        opt.overrides.set("system.cores", std::to_string(cores));
    }

    const SystemConfig base = SystemConfig::fromConfig(opt.overrides);
    const auto configs = sweep::expandGrid(base, opt.axisSpecs);
    const SimBudget budget =
        SimBudget::fromEnv(opt.warmup, opt.instrs);

    std::vector<sweep::GridPoint> grid;
    grid.reserve(configs.size() * workloads.size());
    for (const sweep::ConfigPoint &cfg : configs) {
        const int cores = cfg.config.numCores;
        for (const WorkloadEntry &w : workloads) {
            sweep::GridPoint p;
            p.label = cfg.label.empty() ? w.label
                                        : cfg.label + "/" + w.label;
            p.config = cfg.config;
            if (w.traces.size() == 1 && cores > 1)
                p.traces.assign(static_cast<std::size_t>(cores),
                                w.traces[0]);
            else
                p.traces = w.traces;
            if (static_cast<int>(p.traces.size()) != cores &&
                !(p.traces.size() == 1 && cores == 1))
                throw std::invalid_argument(
                    "workload '" + w.label + "' has " +
                    std::to_string(w.traces.size()) +
                    " traces but config '" + p.label + "' wants " +
                    std::to_string(cores) + " cores");
            p.budget = budget;
            grid.push_back(std::move(p));
        }
    }
    if (grid.empty())
        throw std::invalid_argument("the scenario space is empty");
    return grid;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseCli(argc, argv);
    try {
        // Client mode: protocol round trips only, no grid involved.
        if (!opt.clientPath.empty()) {
            for (const std::string &req : opt.requests)
                std::printf(
                    "%s\n",
                    sweep::serverRequest(opt.clientPath, req).c_str());
            return 0;
        }

        std::unique_ptr<sweep::ResultCache> cache = openCache(opt);
        std::unique_ptr<WarmupCache> warmupCache = openWarmupCache(opt);

        // Server mode: hold a job queue open until a client asks it to
        // shut down. Results persist in the cache; pending submissions
        // persist in <state>/queue.log, so a killed server resumes.
        if (!opt.servePath.empty()) {
            const std::string state = opt.stateDir.empty()
                                          ? opt.servePath + ".state"
                                          : opt.stateDir;
            if (!cache)
                cache = std::make_unique<sweep::ResultCache>(
                    sweep::ResultCacheConfig{state + "/cache", 0, 0});
            sweep::ServeOptions sopts;
            sopts.socketPath = opt.servePath;
            sopts.stateDir = state;
            sopts.workers =
                opt.threads > 0
                    ? opt.threads
                    : static_cast<int>(
                          std::thread::hardware_concurrency());
            if (sopts.workers < 1)
                sopts.workers = 1;
            sopts.cache = cache.get();
            sweep::SweepServer server(sopts);
            server.start();
            const sweep::ServerStats boot = server.statsSnapshot();
            std::fprintf(stderr,
                         "serve: listening on %s (%d workers, cache "
                         "%s, %zu jobs restored)\n",
                         opt.servePath.c_str(), sopts.workers,
                         cache->dir().c_str(), boot.restored);
            server.waitForShutdown();
            server.stop();
            const sweep::ServerStats st = server.statsSnapshot();
            std::fprintf(stderr,
                         "serve: done (%zu submitted, %zu completed, "
                         "%zu failed, %zu cache hits)\n",
                         st.submitted, st.completed, st.failed,
                         st.cacheHits);
            return 0;
        }

        const std::vector<sweep::GridPoint> grid = buildGrid(opt);

        // Validate the column selection before any simulation runs: a
        // typo'd --stats must not cost a whole sweep. Selection shapes
        // the dumps only; the sweep fingerprint always hashes the full
        // statistics set.
        std::vector<StatColumn> columns =
            opt.statsSpec.empty() ? defaultStatColumns(opt.mips)
                                  : selectStatColumns(opt.statsSpec);
        if (!opt.statsSpec.empty() && opt.mips)
            appendHostPerfColumns(columns);

        if (opt.listGrid) {
            std::printf("grid: %zu points, space %s\n", grid.size(),
                        fingerprintHex(sweep::spaceFingerprint(grid))
                            .c_str());
            for (std::size_t i = 0; i < grid.size(); ++i)
                std::printf("%4zu  %s\n", i, grid[i].label.c_str());
            return 0;
        }

        // Union every --resume journal into one validated segment.
        std::unique_ptr<sweep::JournalSegment> resume;
        for (const std::string &path : opt.resumePaths) {
            bool truncated = false;
            auto segments = sweep::readJournal(path, &truncated);
            if (truncated)
                std::fprintf(stderr,
                             "note: %s has a truncated final record "
                             "(crash mid-append); it will be "
                             "re-simulated\n",
                             path.c_str());
            if (segments.size() != 1)
                throw std::runtime_error(
                    path + " holds " +
                    std::to_string(segments.size()) +
                    " grid segments (a fig-driver journal?); "
                    "hermes_sweep drives single-grid journals");
            sweep::validateSegment(segments[0], grid);
            if (!resume) {
                resume = std::make_unique<sweep::JournalSegment>(
                    std::move(segments[0]));
            } else {
                auto merged = sweep::mergeSegments(
                    {{*resume}, {std::move(segments[0])}});
                *resume = std::move(merged[0]);
            }
        }

        std::unique_ptr<sweep::JournalWriter> writer;
        if (!opt.journalPath.empty())
            writer = std::make_unique<sweep::JournalWriter>(
                opt.journalPath);

        sweep::OrchestratedRun run;
        if (opt.merge) {
            // Union only; simulate nothing. The union must cover the
            // grid — that is the whole point of the merge gate.
            const std::size_t n = grid.size();
            run.results.resize(n);
            run.present.assign(n, false);
            for (std::size_t i = 0; i < n; ++i) {
                run.results[i].index = i;
                run.results[i].label = grid[i].label;
            }
            if (writer)
                writer->beginGrid(grid);
            for (const sweep::JournalRecord &rec : resume->records) {
                run.results[rec.index] = rec.result;
                run.present[rec.index] = true;
                ++run.resumed;
                if (writer)
                    writer->append(rec.result);
            }
            if (!run.complete()) {
                std::string missing;
                std::size_t shown = 0;
                for (std::size_t i = 0; i < n && shown < 5; ++i)
                    if (!run.present[i]) {
                        missing += "\n  " + grid[i].label;
                        ++shown;
                    }
                throw std::runtime_error(
                    "merge incomplete: " +
                    std::to_string(run.missing()) + " of " +
                    std::to_string(n) +
                    " points missing, e.g.:" + missing);
            }
        } else if (!opt.submitTo.empty()) {
            // Run the grid through a serving hermes_sweep: submit
            // everything (the server dedups by fingerprint and answers
            // warm points from its cache), then collect in grid order.
            const std::size_t n = grid.size();
            run.results.resize(n);
            run.present.assign(n, false);
            if (writer)
                writer->beginGrid(grid);
            std::vector<std::string> fps(n);
            for (std::size_t i = 0; i < n; ++i) {
                fps[i] =
                    fingerprintHex(sweep::pointFingerprint(grid[i]));
                const std::string resp = sweep::serverRequest(
                    opt.submitTo,
                    "submit " + sweep::specFromPoint(grid[i]));
                if (resp.compare(0, 3, "ok ") != 0)
                    throw std::runtime_error("submit of '" +
                                             grid[i].label +
                                             "' failed: " + resp);
                // The server echoes the fingerprint it derived from
                // the spec; a mismatch means the two binaries disagree
                // on point identity (codec drift) and every poll would
                // chase the wrong job.
                if (resp.compare(3, 16, fps[i]) != 0)
                    throw std::runtime_error(
                        "server disagrees on the identity of '" +
                        grid[i].label + "' (local " + fps[i] +
                        ", server: " + resp.substr(3) +
                        "); mixed hermes versions?");
            }
            for (std::size_t i = 0; i < n; ++i) {
                std::string resp = sweep::serverRequest(
                    opt.submitTo, "wait " + fps[i]);
                if (resp != "ok " + fps[i] + " done")
                    throw std::runtime_error(
                        "point '" + grid[i].label +
                        "' did not complete: " + resp);
                resp = sweep::serverRequest(opt.submitTo,
                                            "result " + fps[i]);
                if (resp.compare(0, 3, "ok ") != 0)
                    throw std::runtime_error("cannot fetch '" +
                                             grid[i].label +
                                             "': " + resp);
                sweep::JournalRecord rec =
                    sweep::decodeJournalRecord(resp.substr(3));
                if (rec.pointFp != sweep::pointFingerprint(grid[i]) ||
                    rec.result.label != grid[i].label)
                    throw std::runtime_error(
                        "server returned a record for the wrong "
                        "point ('" +
                        rec.result.label + "' vs '" + grid[i].label +
                        "')");
                rec.result.index = i;
                run.results[i] = std::move(rec.result);
                run.present[i] = true;
                ++run.cached;
                if (writer)
                    writer->append(run.results[i]);
                if (cache)
                    cache->store(grid[i], run.results[i]);
            }
        } else {
            sweep::SweepOptions eopts;
            eopts.threads = opt.threads;
            if (opt.progress) {
                auto meter = std::make_shared<sweep::ProgressMeter>();
                eopts.onProgress =
                    [meter](std::size_t done, std::size_t total,
                            const sweep::PointResult &r) {
                        std::fprintf(
                            stderr, "\r%s",
                            meter->line(done, total, r.label).c_str());
                        if (done == total)
                            std::fprintf(stderr, "\n");
                    };
            }
            eopts.warmupCache = warmupCache.get();
            sweep::OrchestrateOptions oopts;
            oopts.shard = opt.shard;
            oopts.resume = resume.get();
            oopts.journal = writer.get();
            oopts.cache = cache.get();
            run = sweep::runJournaled(eopts, grid, oopts);
        }

        const bool complete = run.complete();
        std::fprintf(stderr,
                     "sweep: %zu points (%zu simulated, %zu cached, "
                     "%zu resumed, %zu other-shard), %s\n",
                     grid.size(), run.simulated, run.cached,
                     run.resumed, run.otherShard,
                     complete
                         ? ("fingerprint " +
                            fingerprintHex(
                                sweep::sweepFingerprint(run.results)))
                               .c_str()
                         : (std::to_string(run.missing()) +
                            " points missing")
                               .c_str());
        if (warmupCache) {
            const WarmupCacheStats &wc = warmupCache->stats();
            std::fprintf(stderr,
                         "warmup-cache: %zu warmed, %zu restored "
                         "(%zu stored, %zu rejected, %zu evicted)\n",
                         wc.misses, wc.hits, wc.stores, wc.rejected,
                         wc.evicted);
        }

        if (opt.mips) {
            std::uint64_t instrs = 0;
            double seconds = 0;
            for (const auto &r : run.results) {
                if (r.stats.hostPerf.instrs == 0)
                    continue;
                std::fprintf(stderr, "mips %-48s %8.2f\n",
                             r.label.c_str(), r.stats.hostPerf.mips());
                instrs += r.stats.hostPerf.instrs;
                seconds += r.stats.hostPerf.seconds;
            }
            if (seconds > 0)
                std::fprintf(stderr,
                             "mips TOTAL %llu instrs / %.3f "
                             "run-seconds = %.2f MIPS\n",
                             static_cast<unsigned long long>(instrs),
                             seconds,
                             static_cast<double>(instrs) / seconds /
                                 1e6);
        }

        bool dumps_ok = true;
        if (complete) {
            if (opt.fingerprint)
                std::printf("%s\n",
                            fingerprintHex(
                                sweep::sweepFingerprint(run.results))
                                .c_str());
            if (!opt.csvPath.empty())
                dumps_ok &= writeTextFile(
                    opt.csvPath, sweep::toCsv(run.results, columns));
            if (!opt.jsonPath.empty())
                dumps_ok &= writeTextFile(
                    opt.jsonPath,
                    sweep::toJson(run.results, columns) + "\n");
        } else if (opt.fingerprint || !opt.csvPath.empty() ||
                   !opt.jsonPath.empty()) {
            // An explicitly requested output that cannot be produced
            // must fail loudly: scripts capture stdout and would
            // otherwise compare empty strings successfully.
            std::fprintf(stderr,
                         "error: grid incomplete, cannot produce "
                         "--csv/--json/--fingerprint (merge the shard "
                         "journals first)\n");
            dumps_ok = false;
        }
        return dumps_ok ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
