/**
 * @file
 * hermes_trace: the trace-ecosystem Swiss-army tool. Captures corpus
 * or suite workloads to on-disk traces, converts between HRMTRACE and
 * ChampSim (compressed or not) as a stream, and inspects or summarizes
 * existing trace files — all through the same bounded-memory reader
 * the simulator replays with, so anything this tool accepts, a
 * simulation accepts too.
 *
 * Examples:
 *   hermes_trace synthesize --trace corpus.chase:footprint_mb=256 \
 *                --out chase.hrm.xz --count 2000000
 *   hermes_trace convert mcf.champsimtrace.xz mcf.hrm
 *   hermes_trace inspect chase.hrm.xz --head 8
 *   hermes_trace stats mcf.champsimtrace.xz
 *   hermes_trace corpus
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "trace/corpus.hh"
#include "trace/resolve.hh"
#include "trace/trace_file.hh"
#include "trace/trace_reader.hh"

namespace
{

using namespace hermes;

void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s <command> [args]\n"
        "Create, convert and inspect on-disk traces.\n"
        "\n"
        "commands:\n"
        "  synthesize --trace SPEC --out FILE [--count N]\n"
        "             [--seed-offset K]\n"
        "      capture a workload (suite trace name or\n"
        "      corpus.<generator>[:knob=value...]) to FILE; format and\n"
        "      compression follow the file name (.hrm vs .champsim/\n"
        "      .champsimtrace/.trace, plus .gz/.xz; default count\n"
        "      1000000). --seed-offset captures the workload replica a\n"
        "      multi-core mix would hand to core K.\n"
        "  convert IN OUT\n"
        "      re-encode IN (HRMTRACE or ChampSim, compression\n"
        "      detected by magic) as OUT (format/compression from the\n"
        "      file name); streams with bounded memory, reports any\n"
        "      dependences the output format cannot represent\n"
        "  inspect FILE [--head N]\n"
        "      print header metadata (and the first N instructions)\n"
        "  stats FILE\n"
        "      stream the whole trace once: instruction mix, branch\n"
        "      taken rate, load-dependence profile, 64B-line and\n"
        "      4KB-page footprint\n"
        "  corpus\n"
        "      list the corpus generators and their knobs\n"
        "  -h, --help\n"
        "      this message\n",
        argv0);
    std::exit(exit_code);
}

std::uint64_t
parseCount(const std::string &s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == nullptr || *end != '\0')
        throw std::invalid_argument("expected a number, got '" + s + "'");
    return v;
}

const char *
kindName(InstrKind k)
{
    switch (k) {
      case InstrKind::Alu:
        return "alu";
      case InstrKind::Load:
        return "load";
      case InstrKind::Store:
        return "store";
      case InstrKind::Branch:
        return "branch";
    }
    return "?";
}

/** Open a reader and (for headerless ChampSim) fall back to the file
 * name for identity, mirroring FileWorkload. */
struct OpenedTrace
{
    std::unique_ptr<TraceReader> reader;
    std::string name;
    std::string category;
};

OpenedTrace
openTrace(const std::string &path)
{
    OpenedTrace t;
    t.reader = std::make_unique<TraceReader>(openByteSource(path),
                                             formatForPath(path));
    const TraceMeta &meta = t.reader->meta();
    t.name = meta.name.empty()
                 ? path.substr(path.find_last_of('/') + 1)
                 : meta.name;
    t.category = meta.category.empty() ? "CHAMPSIM" : meta.category;
    return t;
}

int
cmdSynthesize(const std::vector<std::string> &args, const char *argv0)
{
    std::string spec;
    std::string out;
    std::uint64_t count = 1'000'000;
    std::uint64_t seed_offset = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                usage(argv0, 2);
            return args[++i];
        };
        if (args[i] == "--trace")
            spec = value();
        else if (args[i] == "--out")
            out = value();
        else if (args[i] == "--count")
            count = parseCount(value());
        else if (args[i] == "--seed-offset")
            seed_offset = parseCount(value());
        else
            usage(argv0, 2);
    }
    if (spec.empty() || out.empty() || count == 0)
        usage(argv0, 2);

    const TraceSpec trace = resolveTrace(spec);
    std::unique_ptr<Workload> workload = trace.make();
    if (seed_offset > 0)
        workload = workload->clone(seed_offset);
    const std::uint64_t dropped =
        writeTraceFile(out, *workload, count, trace.name(),
                       trace.category());
    std::printf("wrote %" PRIu64 " instructions of %s to %s (%s, %s)\n",
                count, trace.name().c_str(), out.c_str(),
                traceFormatName(formatForPath(out)),
                compressionName(compressionForPath(out)));
    if (dropped > 0)
        std::fprintf(stderr,
                     "note: %" PRIu64 " dependences/operands not "
                     "representable in this format were dropped\n",
                     dropped);
    return 0;
}

int
cmdConvert(const std::vector<std::string> &args, const char *argv0)
{
    if (args.size() != 2)
        usage(argv0, 2);
    const std::string &in = args[0];
    const std::string &out = args[1];

    OpenedTrace t = openTrace(in);
    // HRMTRACE headers promise the record count up front; headerless
    // ChampSim needs a validating prescan (records expand 1:N).
    std::uint64_t count = t.reader->meta().recordCount;
    if (count == 0) {
        TraceInstr instr;
        while (t.reader->next(instr))
            ++count;
        if (count == 0)
            throw std::runtime_error("empty champsim trace: " + in);
        t.reader->rewind();
    }

    auto writer =
        openTraceWriter(out, formatForPath(out), compressionForPath(out),
                        count, t.name, t.category);
    TraceInstr instr;
    std::uint64_t written = 0;
    while (t.reader->next(instr)) {
        writer->append(instr);
        ++written;
    }
    if (written != count)
        throw std::runtime_error("trace shrank mid-convert: " + in);
    writer->finish();
    std::printf("converted %" PRIu64 " instructions: %s -> %s (%s, %s)\n",
                count, in.c_str(), out.c_str(),
                traceFormatName(formatForPath(out)),
                compressionName(compressionForPath(out)));
    if (writer->droppedDeps() > 0)
        std::fprintf(stderr,
                     "note: %" PRIu64 " dependences/operands not "
                     "representable in this format were dropped\n",
                     writer->droppedDeps());
    return 0;
}

int
cmdInspect(const std::vector<std::string> &args, const char *argv0)
{
    std::string path;
    std::uint64_t head = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--head") {
            if (i + 1 >= args.size())
                usage(argv0, 2);
            head = parseCount(args[++i]);
        } else if (path.empty()) {
            path = args[i];
        } else {
            usage(argv0, 2);
        }
    }
    if (path.empty())
        usage(argv0, 2);

    OpenedTrace t = openTrace(path);
    const TraceMeta &meta = t.reader->meta();
    std::printf("path:        %s\n", path.c_str());
    std::printf("format:      %s\n", traceFormatName(meta.format));
    std::printf("compression: %s\n", compressionName(meta.compression));
    std::printf("name:        %s\n", t.name.c_str());
    std::printf("category:    %s\n", t.category.c_str());
    if (meta.recordCount > 0)
        std::printf("records:     %" PRIu64 "\n", meta.recordCount);
    else
        std::printf("records:     unknown until scanned (champsim; see "
                    "'stats')\n");

    if (head > 0) {
        std::printf("%8s  %-6s  %-18s  %-18s  %5s  %s\n", "#", "kind",
                    "pc", "vaddr", "dep", "taken");
        TraceInstr instr;
        for (std::uint64_t i = 0; i < head && t.reader->next(instr);
             ++i)
            std::printf("%8" PRIu64 "  %-6s  0x%016" PRIx64
                        "  0x%016" PRIx64 "  %5u  %s\n",
                        i, kindName(instr.kind),
                        static_cast<std::uint64_t>(instr.pc),
                        static_cast<std::uint64_t>(instr.vaddr),
                        instr.depDistance,
                        instr.kind == InstrKind::Branch
                            ? (instr.branchTaken ? "yes" : "no")
                            : "-");
    }
    return 0;
}

int
cmdStats(const std::vector<std::string> &args, const char *argv0)
{
    if (args.size() != 1)
        usage(argv0, 2);
    const std::string &path = args[0];

    OpenedTrace t = openTrace(path);
    std::uint64_t total = 0;
    std::uint64_t kinds[4] = {0, 0, 0, 0};
    std::uint64_t taken = 0;
    std::uint64_t dep_loads = 0;
    std::uint64_t dep_sum = 0;
    std::uint32_t dep_max = 0;
    std::unordered_set<std::uint64_t> lines;
    std::unordered_set<std::uint64_t> pages;

    TraceInstr instr;
    while (t.reader->next(instr)) {
        ++total;
        ++kinds[static_cast<unsigned>(instr.kind)];
        if (instr.kind == InstrKind::Branch && instr.branchTaken)
            ++taken;
        if (instr.kind == InstrKind::Load && instr.depDistance > 0) {
            ++dep_loads;
            dep_sum += instr.depDistance;
            dep_max = std::max(dep_max, instr.depDistance);
        }
        if (instr.kind == InstrKind::Load ||
            instr.kind == InstrKind::Store) {
            lines.insert(static_cast<std::uint64_t>(instr.vaddr) >> 6);
            pages.insert(static_cast<std::uint64_t>(instr.vaddr) >> 12);
        }
    }
    if (total == 0)
        throw std::runtime_error("empty trace: " + path);

    const std::uint64_t branches =
        kinds[static_cast<unsigned>(InstrKind::Branch)];
    const std::uint64_t loads =
        kinds[static_cast<unsigned>(InstrKind::Load)];
    auto pct = [&](std::uint64_t n) {
        return 100.0 * static_cast<double>(n) /
               static_cast<double>(total);
    };
    std::printf("trace:         %s (%s)\n", t.name.c_str(),
                t.category.c_str());
    std::printf("instructions:  %" PRIu64 "\n", total);
    std::printf("  alu:         %" PRIu64 " (%.1f%%)\n",
                kinds[static_cast<unsigned>(InstrKind::Alu)],
                pct(kinds[static_cast<unsigned>(InstrKind::Alu)]));
    std::printf("  load:        %" PRIu64 " (%.1f%%)\n", loads,
                pct(loads));
    std::printf("  store:       %" PRIu64 " (%.1f%%)\n",
                kinds[static_cast<unsigned>(InstrKind::Store)],
                pct(kinds[static_cast<unsigned>(InstrKind::Store)]));
    std::printf("  branch:      %" PRIu64 " (%.1f%%)\n", branches,
                pct(branches));
    if (branches > 0)
        std::printf("branch taken:  %.1f%%\n",
                    100.0 * static_cast<double>(taken) /
                        static_cast<double>(branches));
    if (loads > 0)
        std::printf("dep loads:     %" PRIu64 " (%.1f%% of loads), "
                    "mean dist %.1f, max %u\n",
                    dep_loads,
                    100.0 * static_cast<double>(dep_loads) /
                        static_cast<double>(loads),
                    dep_loads > 0 ? static_cast<double>(dep_sum) /
                                        static_cast<double>(dep_loads)
                                  : 0.0,
                    dep_max);
    std::printf("footprint:     %zu 64B lines (%.1f MB), %zu 4KB pages "
                "(%.1f MB)\n",
                lines.size(),
                static_cast<double>(lines.size()) * 64.0 / (1 << 20),
                pages.size(),
                static_cast<double>(pages.size()) * 4096.0 / (1 << 20));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0], 2);
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    try {
        if (cmd == "synthesize")
            return cmdSynthesize(args, argv[0]);
        if (cmd == "convert")
            return cmdConvert(args, argv[0]);
        if (cmd == "inspect")
            return cmdInspect(args, argv[0]);
        if (cmd == "stats")
            return cmdStats(args, argv[0]);
        if (cmd == "corpus") {
            std::printf("%s", describeCorpus().c_str());
            return 0;
        }
        if (cmd == "-h" || cmd == "--help")
            usage(argv[0], 0);
        usage(argv[0], 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
