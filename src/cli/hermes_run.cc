/**
 * @file
 * hermes_run: build and run any simulation scenario from strings — no
 * recompiling. Every SystemConfig field is reachable through the
 * parameter registry as a key=value override (see --list-params), the
 * workload comes from --trace/--mix, and results land as a summary,
 * a full report, CSV/JSON rows or a bare deterministic fingerprint.
 *
 * The string path is golden-verified: with no overrides, the scenario
 * equals SystemConfig::baseline and reproduces the library-API
 * fingerprints pinned in tests/golden/fingerprints.txt.
 *
 * Examples:
 *   hermes_run --trace spec06.mcf_like.0 prefetcher=pythia \
 *              predictor=popet hermes.enabled=true
 *   hermes_run --mix spec06.mcf_like.0,ligra.pagerank_like.0 \
 *              llc.latency=50 --json -
 *   hermes_run --config scenario.ini --report
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/model_registry.hh"
#include "sim/param_registry.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/stat_registry.hh"
#include "sim/warmup_cache.hh"
#include "sweep/axis.hh"
#include "sweep/result_cache.hh"
#include "trace/resolve.hh"
#include "trace/suite.hh"

namespace
{

using namespace hermes;

constexpr const char *kDefaultTrace = "spec06.mcf_like.0";

void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s [key=value ...] [options]\n"
        "Build any simulation scenario from strings (no recompiling).\n"
        "\n"
        "scenario:\n"
        "  key=value        registry parameter override, e.g. llc.ways=16\n"
        "                   (--key=value also accepted; see --list-params)\n"
        "  --config FILE    .ini scenario file ('key = value' lines,\n"
        "                   '#' comments); command-line overrides win\n"
        "  --trace SPEC     workload trace, repeatable (one per core;\n"
        "                   default %s): a suite trace name,\n"
        "                   corpus.<generator>[:knob=value...], or an\n"
        "                   on-disk trace — file:<path> (HRMTRACE or\n"
        "                   ChampSim, optionally .gz/.xz)\n"
        "  --mix A,B,...    comma-separated trace-spec list (one per\n"
        "                   core)\n"
        "  --warmup N       warmup instructions per core (default 100000)\n"
        "  --instrs N       measured instructions per core (default 400000)\n"
        "  --scale F        scale both budgets (env HERMES_SIM_SCALE)\n"
        "  --cache SPEC     content-addressed result store\n"
        "                   \"DIR[,max_bytes=SIZE][,max_entries=N]\"; a\n"
        "                   cached scenario loads instead of simulating\n"
        "                   (env HERMES_RESULT_CACHE)\n"
        "  --no-cache       ignore HERMES_RESULT_CACHE\n"
        "  --warmup-cache SPEC\n"
        "                   warmup checkpoint store (same SPEC syntax);\n"
        "                   a matching warmup identity restores the\n"
        "                   warmed state instead of re-warming\n"
        "                   (env HERMES_WARMUP_CACHE)\n"
        "  --no-warmup-cache\n"
        "                   ignore HERMES_WARMUP_CACHE\n"
        "\n"
        "output:\n"
        "  --label NAME     row label for CSV/JSON (default: trace names)\n"
        "  --report         full plain-text statistics report\n"
        "  --csv FILE|-     header + one CSV row\n"
        "  --json FILE|-    one JSON object\n"
        "  --stats LIST     CSV/JSON columns: comma-separated stat keys,\n"
        "                   per-core forms (core.0.ipc) and globs\n"
        "                   (dram.*); default: the aggregate column set\n"
        "  --fingerprint    print only the 16-hex deterministic RunStats\n"
        "                   fingerprint (golden-comparable; --stats\n"
        "                   never changes it)\n"
        "\n"
        "discovery:\n"
        "  --list           predictors, prefetchers, replacement policies,\n"
        "                   suites and all parameters\n"
        "  --list-params    parameter table only\n"
        "  --list-models    registered models (predictors, prefetchers,\n"
        "                   replacement policies) with their knobs\n"
        "  --list-stats     statistics table (key, type, aggregation,\n"
        "                   fingerprint flag, description)\n"
        "  -h, --help       this message\n",
        argv0, kDefaultTrace);
    std::exit(exit_code);
}

struct Options
{
    Config overrides;
    std::vector<std::string> traceNames;
    std::uint64_t warmup = SimBudget::runDefaults().warmupInstrs;
    std::uint64_t instrs = SimBudget::runDefaults().simInstrs;
    std::string label;
    std::string cacheSpec;
    bool noCache = false;
    std::string warmupCacheSpec;
    bool noWarmupCache = false;
    std::string csvPath;
    std::string jsonPath;
    std::string statsSpec;
    bool report = false;
    bool fingerprintOnly = false;
};

std::uint64_t
parseCountOrDie(const std::string &s, const char *argv0)
{
    const auto v = parseInt64(s);
    if (!v || *v < 0) {
        std::fprintf(stderr, "error: expected a non-negative integer, "
                             "got '%s'\n",
                     s.c_str());
        usage(argv0, 2);
    }
    return static_cast<std::uint64_t>(*v);
}

Options
parseCli(int argc, char **argv)
{
    Options opt;
    Config file_config;
    std::vector<std::string> cli_overrides;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // GNU-style "--opt=value" for the value-taking options; only
        // unrecognised names fall through to the override branch.
        std::string inline_val;
        bool has_inline = false;
        if (arg.compare(0, 2, "--") == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                const std::string name = arg.substr(0, eq);
                for (const char *o :
                     {"--config", "--trace", "--mix", "--warmup",
                      "--instrs", "--scale", "--label", "--cache",
                      "--warmup-cache", "--csv", "--json",
                      "--stats"}) {
                    if (name == o) {
                        has_inline = true;
                        inline_val = arg.substr(eq + 1);
                        arg = name;
                        break;
                    }
                }
            }
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_val;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(argv[0], 0);
        } else if (arg == "--list") {
            std::printf("%s", describeScenarioSpace().c_str());
            std::exit(0);
        } else if (arg == "--list-params") {
            std::printf("%s",
                        ParamRegistry::instance().describe().c_str());
            std::exit(0);
        } else if (arg == "--list-models") {
            std::printf("%s",
                        ModelRegistry::instance().describe().c_str());
            std::exit(0);
        } else if (arg == "--list-stats") {
            std::printf("%s",
                        StatRegistry::instance().describe().c_str());
            std::exit(0);
        } else if (arg == "--config") {
            const std::string path = value();
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "error: cannot read %s\n",
                             path.c_str());
                std::exit(1);
            }
            std::ostringstream text;
            text << in.rdbuf();
            if (!file_config.parse(text.str())) {
                std::fprintf(stderr,
                             "error: malformed line in %s (expected "
                             "'key = value')\n",
                             path.c_str());
                std::exit(1);
            }
        } else if (arg == "--trace") {
            opt.traceNames.push_back(value());
        } else if (arg == "--mix") {
            const std::string spec = value();
            try {
                for (std::string &name :
                     sweep::splitCommaList(spec, "--mix list"))
                    opt.traceNames.push_back(std::move(name));
            } catch (const std::invalid_argument &) {
                std::fprintf(stderr,
                             "error: --mix wants a non-empty "
                             "comma-separated trace list, got '%s'\n",
                             spec.c_str());
                usage(argv[0], 2);
            }
        } else if (arg == "--warmup") {
            opt.warmup = parseCountOrDie(value(), argv[0]);
        } else if (arg == "--instrs") {
            opt.instrs = parseCountOrDie(value(), argv[0]);
        } else if (arg == "--scale") {
            // Validate here: SimBudget::fromEnv only warns on bad env
            // values, but an explicit flag deserves a hard error.
            const std::string scale = value();
            const auto v = parseFiniteDouble(scale);
            if (!v || *v <= 0) {
                std::fprintf(stderr,
                             "error: --scale wants a finite positive "
                             "number, got '%s'\n",
                             scale.c_str());
                usage(argv[0], 2);
            }
            setenv("HERMES_SIM_SCALE", scale.c_str(), 1);
        } else if (arg == "--label") {
            opt.label = value();
        } else if (arg == "--cache") {
            opt.cacheSpec = value();
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--warmup-cache") {
            opt.warmupCacheSpec = value();
        } else if (arg == "--no-warmup-cache") {
            opt.noWarmupCache = true;
        } else if (arg == "--csv") {
            opt.csvPath = value();
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--stats") {
            opt.statsSpec = value();
        } else if (arg == "--report") {
            opt.report = true;
        } else if (arg == "--fingerprint") {
            opt.fingerprintOnly = true;
        } else if (arg.find('=') != std::string::npos) {
            // A parameter override; --key=value is also accepted.
            while (!arg.empty() && arg.front() == '-')
                arg.erase(arg.begin());
            cli_overrides.push_back(arg);
        } else {
            std::fprintf(stderr, "error: unknown argument '%s'\n",
                         arg.c_str());
            usage(argv[0], 2);
        }
    }

    // File keys first, command-line overrides after (later wins).
    opt.overrides = file_config;
    for (const std::string &kv : cli_overrides) {
        const auto eq = kv.find('=');
        if (eq == 0 || eq == std::string::npos) {
            std::fprintf(stderr, "error: malformed override '%s'\n",
                         kv.c_str());
            usage(argv[0], 2);
        }
        opt.overrides.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    const int stdout_claims = (opt.fingerprintOnly ? 1 : 0) +
                              (opt.csvPath == "-" ? 1 : 0) +
                              (opt.jsonPath == "-" ? 1 : 0);
    if (stdout_claims > 1) {
        std::fprintf(stderr,
                     "error: only one of --fingerprint, --csv - and "
                     "--json - can claim stdout\n");
        usage(argv[0], 2);
    }
    if (opt.noWarmupCache && !opt.warmupCacheSpec.empty()) {
        std::fprintf(stderr,
                     "error: --warmup-cache and --no-warmup-cache are "
                     "mutually exclusive\n");
        usage(argv[0], 2);
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseCli(argc, argv);
    try {
        if (opt.traceNames.empty())
            opt.traceNames.push_back(kDefaultTrace);
        std::vector<TraceSpec> traces;
        for (const std::string &name : opt.traceNames)
            traces.push_back(resolveTrace(name));

        // One trace per core unless a single trace is replicated; when
        // the scenario does not pin system.cores, the mix size implies
        // the core count.
        if (!opt.overrides.contains("system.cores") && traces.size() > 1)
            opt.overrides.set("system.cores",
                              std::to_string(traces.size()));
        const SystemConfig cfg = SystemConfig::fromConfig(opt.overrides);
        if (traces.size() != 1 &&
            static_cast<int>(traces.size()) != cfg.numCores)
            throw std::invalid_argument(
                "got " + std::to_string(traces.size()) +
                " traces for a " + std::to_string(cfg.numCores) +
                "-core system (use one trace per core, or a single "
                "trace to replicate)");

        // Validate the column selection before simulating: a typo'd
        // --stats must not cost the run. Selection shapes the dumps
        // only; fingerprints and the summary always cover the full
        // statistics set.
        const std::vector<StatColumn> columns =
            opt.statsSpec.empty() ? defaultStatColumns()
                                  : selectStatColumns(opt.statsSpec);

        const SimBudget budget =
            SimBudget::fromEnv(opt.warmup, opt.instrs);

        // The label is part of the point's cache identity, so settle
        // it before any lookup.
        if (opt.label.empty()) {
            for (const auto &t : traces)
                opt.label +=
                    (opt.label.empty() ? "" : "+") + t.name();
        }

        // The same scenario described to hermes_sweep (or a server
        // spec) must hash identically, so mirror its grid-point shape:
        // a single trace replicates across every core.
        sweep::GridPoint point;
        point.label = opt.label;
        point.config = cfg;
        point.traces = traces;
        if (traces.size() == 1 && cfg.numCores > 1)
            point.traces.assign(
                static_cast<std::size_t>(cfg.numCores), traces[0]);
        point.budget = budget;

        std::string cache_spec = opt.cacheSpec;
        if (cache_spec.empty() && !opt.noCache)
            if (const char *env = std::getenv("HERMES_RESULT_CACHE"))
                cache_spec = env;
        std::unique_ptr<sweep::ResultCache> cache;
        if (!cache_spec.empty())
            cache = std::make_unique<sweep::ResultCache>(
                sweep::parseResultCacheSpec(cache_spec));

        std::string warmup_spec = opt.warmupCacheSpec;
        if (warmup_spec.empty() && !opt.noWarmupCache)
            if (const char *env = std::getenv("HERMES_WARMUP_CACHE"))
                warmup_spec = env;
        std::unique_ptr<WarmupCache> warmup_cache;
        if (!warmup_spec.empty())
            warmup_cache = std::make_unique<WarmupCache>(
                parseWarmupCacheSpec(warmup_spec));

        RunStats stats;
        std::optional<sweep::PointResult> hit;
        if (cache)
            hit = cache->load(point);
        if (hit) {
            stats = std::move(hit->stats);
        } else {
            const auto t0 = std::chrono::steady_clock::now();
            SimSession session(cfg, traces, budget);
            stats = runSession(session, warmup_cache.get());
            if (cache) {
                sweep::PointResult r;
                r.index = 0;
                r.label = opt.label;
                r.stats = stats;
                r.wallSeconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    t0)
                                    .count();
                cache->store(point, r);
            }
        }

        // Keep stdout machine-parseable when a dump streams to it.
        const bool stdout_is_dump =
            opt.csvPath == "-" || opt.jsonPath == "-";
        if (opt.fingerprintOnly) {
            std::printf("%016llx\n",
                        static_cast<unsigned long long>(
                            statsFingerprint(stats)));
        } else if (opt.report) {
            std::printf("%s", formatReport(stats).c_str());
        } else if (!stdout_is_dump) {
            std::printf("scenario %s: %d core(s), prefetcher=%s, "
                        "predictor=%s, hermes=%s\n",
                        opt.label.c_str(), cfg.numCores,
                        cfg.prefetcherName().c_str(),
                        cfg.predictorName().c_str(),
                        cfg.hermesIssueEnabled ? "on" : "off");
            std::printf("  cycles %llu  instrs %llu  ipc0 %.4f  "
                        "llc_mpki %.3f\n",
                        static_cast<unsigned long long>(stats.simCycles),
                        static_cast<unsigned long long>(
                            stats.instrsRetired()),
                        stats.ipc(0), stats.llcMpki());
            std::printf("  dram_reads %llu  hermes_scheduled %llu  "
                        "hermes_served %llu\n",
                        static_cast<unsigned long long>(
                            stats.dram.totalReads()),
                        static_cast<unsigned long long>(
                            stats.hermesRequestsScheduled),
                        static_cast<unsigned long long>(
                            stats.hermesLoadsServed));
            const PredictorStats pred = stats.predTotal();
            if (pred.total() > 0)
                std::printf("  pred_accuracy %.3f  pred_coverage %.3f\n",
                            pred.accuracy(), pred.coverage());
            std::printf("  fingerprint %016llx\n",
                        static_cast<unsigned long long>(
                            statsFingerprint(stats)));
        }

        bool dumps_ok = true;
        if (!opt.csvPath.empty())
            dumps_ok &= writeTextFile(
                opt.csvPath,
                csvHeader(columns) + "\n" +
                    formatCsvRow(opt.label, stats, columns) + "\n");
        if (!opt.jsonPath.empty())
            dumps_ok &= writeTextFile(
                opt.jsonPath,
                formatJsonRow(opt.label, stats, columns) + "\n");
        return dumps_ok ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
