#pragma once

/**
 * @file
 * One-call simulation entry points used by examples, tests and the
 * benchmark harness: build a System from a SystemConfig plus trace
 * specs, run warmup + measurement, return RunStats.
 */

#include <cstdint>
#include <vector>

#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes
{

/** Instruction budgets for a run. */
struct SimBudget
{
    std::uint64_t warmupInstrs = 100'000;
    std::uint64_t simInstrs = 400'000;

    /**
     * Budget scaled by the HERMES_SIM_SCALE environment variable
     * (a positive float; e.g. 4 quadruples both windows). Lets the
     * benchmark suite trade fidelity for runtime without recompiling.
     */
    static SimBudget fromEnv(std::uint64_t warmup = 100'000,
                             std::uint64_t sim = 400'000);
};

/** Run a single-core simulation of @p trace. */
RunStats simulateOne(const SystemConfig &config, const TraceSpec &trace,
                     const SimBudget &budget);

/**
 * Run a multi-core simulation; @p traces must have one entry per core
 * (a homogeneous mix repeats the same spec). Per-core workloads receive
 * distinct seed offsets so copies do not run in lockstep.
 */
RunStats simulateMix(const SystemConfig &config,
                     const std::vector<TraceSpec> &traces,
                     const SimBudget &budget);

/**
 * Dispatch to simulateOne/simulateMix on config.numCores. A single
 * trace on a multi-core config is replicated across all cores (the
 * homogeneous-mix convention); otherwise @p traces must have one entry
 * per core.
 */
RunStats simulate(const SystemConfig &config,
                  std::vector<TraceSpec> traces, const SimBudget &budget);

} // namespace hermes
