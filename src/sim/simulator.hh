#pragma once

/**
 * @file
 * Session-based simulation entry layer. A SimSession walks one run
 * through explicit phases —
 *
 *   build() -> warmup() -> measure() -> collect()
 *
 * — with a serialization seam between warmup() and measure(): the
 * warmed machine state can be written out (snapshot()) and later
 * restored (restore()) into a freshly built session, so grids that
 * vary only post-warmup parameters pay for warmup once (see
 * sim/warmup_cache.hh for the content-addressed store and
 * docs/sessions.md for the full lifecycle and trust model).
 *
 * The historic one-call helpers (simulateOne/simulateMix/simulate)
 * remain as thin shims over SimSession, byte-identical in behaviour.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes
{

class ByteSink;
class ByteSource;

/** Instruction budgets for a run. */
struct SimBudget
{
    std::uint64_t warmupInstrs = 100'000;
    std::uint64_t simInstrs = 400'000;

    /** Single-run windows (hermes_run, examples, golden tests' base). */
    static SimBudget runDefaults() { return {100'000, 400'000}; }

    /**
     * Per-point windows for grids (hermes_sweep, the bench harness):
     * smaller than runDefaults() because a figure multiplies them by
     * dozens of points. Both CLIs and the harness share this one
     * definition so their --warmup/--instrs defaults can never drift.
     */
    static SimBudget sweepDefaults() { return {60'000, 250'000}; }

    /**
     * Budget scaled by the HERMES_SIM_SCALE environment variable
     * (a positive float; e.g. 4 quadruples both windows). Lets the
     * benchmark suite trade fidelity for runtime without recompiling.
     */
    static SimBudget fromEnv(std::uint64_t warmup = 100'000,
                             std::uint64_t sim = 400'000);
};

/**
 * One simulation run as an explicit lifecycle. Phases must be entered
 * in order; calling one out of order throws std::logic_error (a
 * programming error, never a data defect).
 *
 *   SimSession s(config, traces, budget);
 *   s.build();            // open workloads, assemble the System
 *   s.warmup();           // or s.restore(source) from a checkpoint
 *   s.measure();
 *   RunStats r = s.collect();
 *
 * Between warmup() and measure() the session sits at the *snapshot
 * seam*: statistics are all zero and every stateful component
 * (workload cursors/RNG, cache tags + queues, DRAM queues, predictor
 * and prefetcher training state, ROB) is serializable. snapshot()
 * writes that state; restore() replaces warmup() in a session that is
 * built but not yet warmed. Checkpoints are versioned, keyed by
 * warmupFingerprint() and checksummed; restore() treats any mismatch
 * or corruption as a clean miss (returns false, session stays built)
 * so a caller always falls back to a real warmup.
 *
 * The constructor canonicalizes traces: corpus.* knob overrides from
 * the configuration are applied (trace/corpus.hh) and a single trace
 * on a multi-core configuration is replicated across cores (the
 * homogeneous-mix convention, distinct per-core seed offsets).
 */
class SimSession
{
  public:
    /** Checkpoint stream format version (bump on any layout change). */
    static constexpr std::uint32_t kCheckpointVersion = 1;
    /** Leading bytes of every checkpoint stream. */
    static constexpr char kCheckpointMagic[9] = "HRMCKPT1";

    /**
     * Validates trace count (one per core, or one total) and applies
     * corpus overrides; throws std::invalid_argument on either defect.
     */
    SimSession(SystemConfig config, std::vector<TraceSpec> traces,
               SimBudget budget);
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    /** Open the workloads and assemble the System. */
    void build();

    /** Run the warmup window (stats cleared at the end). */
    void warmup();

    /** Run the measurement window. */
    const RunStats &measure();

    /** Results of the measurement window. */
    const RunStats &collect() const;

    /**
     * True iff every stateful component opted into checkpointing
     * (System::checkpointable); false means warmup is always paid.
     */
    bool checkpointable() const;

    /**
     * Identity of the warmed state this session would produce: an
     * FNV-1a over the checkpoint version, every *warmup-affecting*
     * registry-rendered configuration key (ParamDef::warmupAffecting;
     * model and corpus knobs always count), the Hermes
     * warmup-issue-active bit, the trace list and the warmup budget.
     * Two sessions with equal fingerprints warm into identical state,
     * so one may restore the other's snapshot. Deliberately excludes
     * simInstrs and measure-only keys — that is the whole point.
     */
    std::uint64_t warmupFingerprint() const;

    /**
     * Serialize the warmed state (only legal at the snapshot seam).
     * The caller owns sink lifecycle (finish() for crash-safe sinks).
     */
    void snapshot(ByteSink &sink) const;

    /**
     * Restore a warmed state into a built session. Returns true and
     * advances to the warmed phase on success; returns false on *any*
     * defect — bad magic, version or fingerprint mismatch, truncation,
     * checksum failure — after rebuilding the session's pristine state
     * (a failed restore may have half-written component state, so the
     * System is reconstructed; the session stays in the built phase
     * and warmup() remains valid).
     */
    bool restore(ByteSource &source);

    /** The assembled machine (built phase onwards). */
    System &system();

    const SystemConfig &config() const { return config_; }
    /** Canonicalized trace list (after corpus overrides/replication). */
    const std::vector<TraceSpec> &traces() const { return traces_; }
    const SimBudget &budget() const { return budget_; }

  private:
    enum class Phase : std::uint8_t
    {
        Created,
        Built,
        Warmed,
        Measured,
    };

    void requirePhase(Phase expect, const char *method) const;
    /** (Re)construct workloads_ + System from the canonical traces. */
    void construct();

    SystemConfig config_;
    std::vector<TraceSpec> traces_;
    SimBudget budget_;
    Phase phase_ = Phase::Created;
    std::unique_ptr<System> system_;
    RunStats stats_;
};

/** Run a single-core simulation of @p trace. */
RunStats simulateOne(const SystemConfig &config, const TraceSpec &trace,
                     const SimBudget &budget);

/**
 * Run a multi-core simulation; @p traces must have one entry per core
 * (a homogeneous mix repeats the same spec). Per-core workloads receive
 * distinct seed offsets so copies do not run in lockstep.
 */
RunStats simulateMix(const SystemConfig &config,
                     const std::vector<TraceSpec> &traces,
                     const SimBudget &budget);

/**
 * Dispatch to simulateOne/simulateMix on config.numCores. A single
 * trace on a multi-core config is replicated across all cores (the
 * homogeneous-mix convention); otherwise @p traces must have one entry
 * per core.
 */
RunStats simulate(const SystemConfig &config,
                  std::vector<TraceSpec> traces, const SimBudget &budget);

} // namespace hermes
