#include "sim/report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/power.hh"
#include "sim/stat_registry.hh"

namespace hermes
{

namespace
{

void
cacheSection(std::ostringstream &os, const char *name, const CacheStats &c)
{
    const double hit_rate =
        c.demandLookups()
            ? 100.0 * static_cast<double>(c.demandHits()) /
                  static_cast<double>(c.demandLookups())
            : 0.0;
    os << "  " << name << ": demand " << c.demandLookups() << " (hit "
       << hit_rate << "%), wb " << c.writebackLookups << ", pf issued "
       << c.prefetchIssued << " useful " << c.usefulPrefetches
       << " useless " << c.uselessPrefetches << ", evict " << c.evictions
       << " (dirty " << c.dirtyEvictions << ")\n";
}

} // namespace

std::string
formatReport(const RunStats &stats)
{
    std::ostringstream os;
    os << "=== simulation report ===\n";
    os << "cycles: " << stats.simCycles << "\n";
    for (std::size_t i = 0; i < stats.core.size(); ++i) {
        const auto &c = stats.core[i];
        os << "core " << i << ": " << c.instrsRetired << " instrs, IPC "
           << stats.ipc(static_cast<int>(i)) << "\n";
        os << "  loads " << c.loadsRetired << " (off-chip "
           << c.loadsOffChip << ", blocking " << c.offChipBlocking
           << "), stores " << c.storesRetired << ", branches "
           << c.branchesRetired << " (mispred " << c.branchMispredicts
           << ")\n";
        os << "  stall cycles: off-chip " << c.stallCyclesOffChip
           << " (eliminable " << c.stallCyclesEliminable
           << "), other-load " << c.stallCyclesOtherLoad << ", other "
           << c.stallCyclesOther << "\n";
        if (i < stats.predictor.size() &&
            stats.predictor[i].total() > 0) {
            const auto &p = stats.predictor[i];
            os << "  off-chip predictor: acc "
               << 100.0 * p.accuracy() << "% cov "
               << 100.0 * p.coverage() << "% (tp " << p.truePositives
               << " fp " << p.falsePositives << " fn "
               << p.falseNegatives << " tn " << p.trueNegatives << ")\n";
        }
    }

    os << "memory hierarchy:\n";
    cacheSection(os, "L1D", stats.l1);
    cacheSection(os, "L2 ", stats.l2);
    cacheSection(os, "LLC", stats.llc);
    os << "  LLC MPKI: " << stats.llcMpki() << "\n";

    const auto &d = stats.dram;
    os << "dram: reads " << d.totalReads() << " (demand "
       << d.demandReads << ", prefetch " << d.prefetchReads
       << ", hermes " << d.hermesReads << "), writes " << d.writes
       << "\n";
    os << "  row hits " << d.rowHits << " misses " << d.rowMisses
       << " conflicts " << d.rowConflicts << ", wq-forwards "
       << d.wqForwards << "\n";
    if (stats.hermesRequestsScheduled > 0) {
        os << "hermes: scheduled " << stats.hermesRequestsScheduled
           << ", issued " << d.hermesIssued << ", merged-existing "
           << d.hermesMergedIntoExisting << ", useful " << d.hermesUseful
           << ", dropped " << d.hermesDropped << ", rejected "
           << d.hermesRejected << ", loads served "
           << stats.hermesLoadsServed << "\n";
    }
    if (stats.prefetch.issued > 0) {
        os << "prefetcher: issued " << stats.prefetch.issued
           << ", useful " << stats.prefetch.useful << ", useless "
           << stats.prefetch.useless << "\n";
    }

    const PowerBreakdown p = computePower(stats);
    os << "dynamic power (mW): L1 " << p.l1 << ", L2 " << p.l2
       << ", LLC " << p.llc << ", bus+DRAM " << p.bus << ", other "
       << p.other << ", total " << p.total() << "\n";
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::string
csvHeader(const std::vector<StatColumn> &columns)
{
    std::string header = "label";
    for (const StatColumn &c : columns)
        header += "," + c.name;
    return header;
}

std::string
csvHeader(bool with_host_perf)
{
    return csvHeader(defaultStatColumns(with_host_perf));
}

std::string
formatCsvRow(const std::string &label, const RunStats &stats,
             const std::vector<StatColumn> &columns)
{
    std::string out = label;
    for (const StatColumn &c : columns)
        out += "," + statColumnValue(c, stats);
    return out;
}

std::string
formatCsvRow(const std::string &label, const RunStats &stats,
             bool with_host_perf)
{
    return formatCsvRow(label, stats, defaultStatColumns(with_host_perf));
}

std::string
formatJsonRow(const std::string &label, const RunStats &stats,
              const std::vector<StatColumn> &columns)
{
    std::string out = "{\"label\":\"" + jsonEscape(label) + "\"";
    for (const StatColumn &c : columns)
        out += ",\"" + c.name + "\":" + statColumnValue(c, stats);
    out += "}";
    return out;
}

std::string
formatJsonRow(const std::string &label, const RunStats &stats,
              bool with_host_perf)
{
    return formatJsonRow(label, stats,
                         defaultStatColumns(with_host_perf));
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        const std::size_t n =
            std::fwrite(text.data(), 1, text.size(), stdout);
        if (n != text.size() || std::fflush(stdout) != 0) {
            std::fprintf(stderr,
                         "error: could not write dump to stdout\n");
            return false;
        }
        return true;
    }
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: could not write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

} // namespace hermes
