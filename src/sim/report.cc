#include "sim/report.hh"

#include <cstdio>
#include <sstream>
#include <vector>

#include "sim/power.hh"

namespace hermes
{

namespace
{

void
cacheSection(std::ostringstream &os, const char *name, const CacheStats &c)
{
    const double hit_rate =
        c.demandLookups()
            ? 100.0 * static_cast<double>(c.demandHits()) /
                  static_cast<double>(c.demandLookups())
            : 0.0;
    os << "  " << name << ": demand " << c.demandLookups() << " (hit "
       << hit_rate << "%), wb " << c.writebackLookups << ", pf issued "
       << c.prefetchIssued << " useful " << c.usefulPrefetches
       << " useless " << c.uselessPrefetches << ", evict " << c.evictions
       << " (dirty " << c.dirtyEvictions << ")\n";
}

} // namespace

std::string
formatReport(const RunStats &stats)
{
    std::ostringstream os;
    os << "=== simulation report ===\n";
    os << "cycles: " << stats.simCycles << "\n";
    for (std::size_t i = 0; i < stats.core.size(); ++i) {
        const auto &c = stats.core[i];
        os << "core " << i << ": " << c.instrsRetired << " instrs, IPC "
           << stats.ipc(static_cast<int>(i)) << "\n";
        os << "  loads " << c.loadsRetired << " (off-chip "
           << c.loadsOffChip << ", blocking " << c.offChipBlocking
           << "), stores " << c.storesRetired << ", branches "
           << c.branchesRetired << " (mispred " << c.branchMispredicts
           << ")\n";
        os << "  stall cycles: off-chip " << c.stallCyclesOffChip
           << " (eliminable " << c.stallCyclesEliminable
           << "), other-load " << c.stallCyclesOtherLoad << ", other "
           << c.stallCyclesOther << "\n";
        if (i < stats.predictor.size() &&
            stats.predictor[i].total() > 0) {
            const auto &p = stats.predictor[i];
            os << "  off-chip predictor: acc "
               << 100.0 * p.accuracy() << "% cov "
               << 100.0 * p.coverage() << "% (tp " << p.truePositives
               << " fp " << p.falsePositives << " fn "
               << p.falseNegatives << " tn " << p.trueNegatives << ")\n";
        }
    }

    os << "memory hierarchy:\n";
    cacheSection(os, "L1D", stats.l1);
    cacheSection(os, "L2 ", stats.l2);
    cacheSection(os, "LLC", stats.llc);
    os << "  LLC MPKI: " << stats.llcMpki() << "\n";

    const auto &d = stats.dram;
    os << "dram: reads " << d.totalReads() << " (demand "
       << d.demandReads << ", prefetch " << d.prefetchReads
       << ", hermes " << d.hermesReads << "), writes " << d.writes
       << "\n";
    os << "  row hits " << d.rowHits << " misses " << d.rowMisses
       << " conflicts " << d.rowConflicts << ", wq-forwards "
       << d.wqForwards << "\n";
    if (stats.hermesRequestsScheduled > 0) {
        os << "hermes: scheduled " << stats.hermesRequestsScheduled
           << ", issued " << d.hermesIssued << ", merged-existing "
           << d.hermesMergedIntoExisting << ", useful " << d.hermesUseful
           << ", dropped " << d.hermesDropped << ", rejected "
           << d.hermesRejected << ", loads served "
           << stats.hermesLoadsServed << "\n";
    }
    if (stats.prefetch.issued > 0) {
        os << "prefetcher: issued " << stats.prefetch.issued
           << ", useful " << stats.prefetch.useful << ", useless "
           << stats.prefetch.useless << "\n";
    }

    const PowerBreakdown p = computePower(stats);
    os << "dynamic power (mW): L1 " << p.l1 << ", L2 " << p.l2
       << ", LLC " << p.llc << ", bus+DRAM " << p.bus << ", other "
       << p.other << ", total " << p.total() << "\n";
    return os.str();
}

namespace
{

/** One aggregate column; CSV and JSON render the same list. */
struct Field
{
    const char *name;
    std::string value;
};

std::string
num(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string
num(std::uint64_t v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::vector<Field>
aggregateFields(const RunStats &stats, bool with_host_perf)
{
    std::uint64_t loads = 0, offchip = 0;
    for (const auto &c : stats.core) {
        loads += c.loadsRetired;
        offchip += c.loadsOffChip;
    }
    const PredictorStats pred = stats.predTotal();
    const PowerBreakdown power = computePower(stats);
    const double total_ipc =
        stats.simCycles
            ? static_cast<double>(stats.instrsRetired()) /
                  static_cast<double>(stats.simCycles)
            : 0.0;

    std::vector<Field> fields = {
        {"cycles", num(stats.simCycles)},
        {"instrs", num(stats.instrsRetired())},
        {"ipc", num(total_ipc)},
        {"llc_mpki", num(stats.llcMpki())},
        {"loads", num(loads)},
        {"offchip_loads", num(offchip)},
        {"pred_accuracy", num(pred.accuracy())},
        {"pred_coverage", num(pred.coverage())},
        {"dram_reads", num(stats.dram.totalReads())},
        {"dram_writes", num(stats.dram.writes)},
        {"hermes_issued", num(stats.dram.hermesIssued)},
        {"hermes_useful", num(stats.dram.hermesUseful)},
        {"hermes_dropped", num(stats.dram.hermesDropped)},
        {"pf_issued", num(stats.prefetch.issued)},
        {"pf_useful", num(stats.prefetch.useful)},
        {"power_mw", num(power.total())},
    };
    if (with_host_perf) {
        fields.push_back({"sim_mips", num(stats.hostPerf.mips())});
        fields.push_back({"host_seconds", num(stats.hostPerf.seconds)});
    }
    return fields;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::string
csvHeader(bool with_host_perf)
{
    // Static mirror of the aggregateFields() names (computing them
    // would run the whole aggregation on empty stats); the report
    // tests assert header arity and keys match the rows.
    std::string header =
        "label,cycles,instrs,ipc,llc_mpki,loads,offchip_loads,"
        "pred_accuracy,pred_coverage,dram_reads,dram_writes,"
        "hermes_issued,hermes_useful,hermes_dropped,pf_issued,"
        "pf_useful,power_mw";
    if (with_host_perf)
        header += ",sim_mips,host_seconds";
    return header;
}

std::string
formatCsvRow(const std::string &label, const RunStats &stats,
             bool with_host_perf)
{
    std::string out = label;
    for (const Field &f : aggregateFields(stats, with_host_perf))
        out += "," + f.value;
    return out;
}

std::string
formatJsonRow(const std::string &label, const RunStats &stats,
              bool with_host_perf)
{
    std::string out = "{\"label\":\"" + jsonEscape(label) + "\"";
    for (const Field &f : aggregateFields(stats, with_host_perf))
        out += std::string(",\"") + f.name + "\":" + f.value;
    out += "}";
    return out;
}

namespace
{

void
addCacheStats(Fnv64 &h, const CacheStats &c)
{
    h.add(c.loadLookups);
    h.add(c.loadHits);
    h.add(c.rfoLookups);
    h.add(c.rfoHits);
    h.add(c.writebackLookups);
    h.add(c.writebackHits);
    h.add(c.prefetchLookups);
    h.add(c.prefetchDropped);
    h.add(c.prefetchIssued);
    h.add(c.mshrMerges);
    h.add(c.mshrLatePrefetchHits);
    h.add(c.fills);
    h.add(c.prefetchFills);
    h.add(c.evictions);
    h.add(c.dirtyEvictions);
    h.add(c.usefulPrefetches);
    h.add(c.uselessPrefetches);
    h.add(c.rqRejects);
}

} // namespace

std::uint64_t
statsFingerprint(const RunStats &stats)
{
    Fnv64 h;
    h.add(stats.simCycles);
    h.add(stats.core.size());
    for (const CoreStats &c : stats.core) {
        h.add(c.cycles);
        h.add(c.instrsRetired);
        h.add(c.loadsRetired);
        h.add(c.storesRetired);
        h.add(c.branchesRetired);
        h.add(c.branchMispredicts);
        h.add(c.loadsOffChip);
        h.add(c.offChipBlocking);
        h.add(c.offChipNonBlocking);
        h.add(c.loadsServedByHermes);
        h.add(c.stallCyclesOffChip);
        h.add(c.stallCyclesOtherLoad);
        h.add(c.stallCyclesOther);
        h.add(c.stallCyclesEliminable);
    }
    for (const BranchStats &b : stats.branch) {
        h.add(b.lookups);
        h.add(b.mispredicts);
    }
    for (const PredictorStats &p : stats.predictor) {
        h.add(p.truePositives);
        h.add(p.falsePositives);
        h.add(p.falseNegatives);
        h.add(p.trueNegatives);
    }
    for (const std::uint64_t c : stats.coreFinishCycle)
        h.add(c);
    addCacheStats(h, stats.l1);
    addCacheStats(h, stats.l2);
    addCacheStats(h, stats.llc);
    const DramStats &d = stats.dram;
    h.add(d.demandReads);
    h.add(d.prefetchReads);
    h.add(d.hermesReads);
    h.add(d.writes);
    h.add(d.rowHits);
    h.add(d.rowMisses);
    h.add(d.rowConflicts);
    h.add(d.readMerges);
    h.add(d.wqForwards);
    h.add(d.hermesIssued);
    h.add(d.hermesMergedIntoExisting);
    h.add(d.hermesDropped);
    h.add(d.hermesUseful);
    h.add(d.hermesRejected);
    h.add(stats.prefetch.issued);
    h.add(stats.prefetch.useful);
    h.add(stats.prefetch.useless);
    h.add(stats.hermesRequestsScheduled);
    h.add(stats.hermesLoadsServed);
    return h.value();
}

} // namespace hermes
