#include "sim/warmup_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <stdexcept>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "sim/report.hh"
#include "sweep/result_cache.hh" // ensureDirectory
#include "trace/trace_io.hh"

namespace hermes
{

namespace
{

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("warmup cache: " + what);
}

struct EntryInfo
{
    std::string name;
    std::uint64_t bytes = 0;
    /** mtime in nanoseconds — the LRU clock (hits touch it). */
    std::int64_t mtimeNs = 0;
};

std::vector<EntryInfo>
scanEntries(const std::string &dir)
{
    std::vector<EntryInfo> out;
    DIR *d = opendir(dir.c_str());
    if (d == nullptr)
        fail("cannot scan " + dir + ": " + std::strerror(errno));
    while (const dirent *e = readdir(d)) {
        const std::string name = e->d_name;
        // Entries are exactly "<hex16>.ckpt"; tmp files and strangers
        // are invisible to the budget and never evicted from here.
        if (name.size() != 21 || name.compare(16, 5, ".ckpt") != 0)
            continue;
        struct stat st = {};
        if (stat((dir + "/" + name).c_str(), &st) != 0)
            continue;
        EntryInfo info;
        info.name = name;
        info.bytes = static_cast<std::uint64_t>(st.st_size);
        info.mtimeNs =
            static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
            st.st_mtim.tv_nsec;
        out.push_back(std::move(info));
    }
    closedir(d);
    return out;
}

} // namespace

WarmupCacheConfig
parseWarmupCacheSpec(const std::string &spec)
{
    WarmupCacheConfig cfg;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= spec.size()) {
        std::size_t next = spec.find(',', pos);
        if (next == std::string::npos)
            next = spec.size();
        const std::string part = spec.substr(pos, next - pos);
        pos = next + 1;
        if (first) {
            first = false;
            if (part.empty())
                throw std::invalid_argument(
                    "warmup cache spec wants "
                    "\"DIR[,max_bytes=SIZE][,max_entries=N]\"; got '" +
                    spec + "'");
            cfg.dir = part;
            continue;
        }
        const std::size_t eq = part.find('=');
        const std::string key =
            eq == std::string::npos ? part : part.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : part.substr(eq + 1);
        if (key == "max_bytes") {
            const auto v = parseSizeBytes(value);
            if (!v || *v == 0)
                throw std::invalid_argument(
                    "warmup cache max_bytes wants a positive size "
                    "(K/M/G suffixes allowed); got '" +
                    value + "'");
            cfg.maxBytes = *v;
        } else if (key == "max_entries") {
            const auto v = parseUint64(value);
            if (!v || *v == 0)
                throw std::invalid_argument(
                    "warmup cache max_entries wants a positive "
                    "integer; got '" +
                    value + "'");
            cfg.maxEntries = *v;
        } else {
            throw std::invalid_argument(
                "unknown warmup cache option '" + key +
                "' (want max_bytes or max_entries)");
        }
    }
    return cfg;
}

WarmupCache::WarmupCache(WarmupCacheConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.dir.empty())
        fail("empty cache directory");
    sweep::ensureDirectory(cfg_.dir);
    struct stat st = {};
    if (stat(cfg_.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fail(cfg_.dir + " is not a directory");
}

std::string
WarmupCache::entryName(std::uint64_t fp)
{
    return fingerprintHex(fp) + ".ckpt";
}

std::unique_lock<std::mutex>
WarmupCache::lockFingerprint(std::uint64_t fp)
{
    std::mutex *m = nullptr;
    {
        std::lock_guard<std::mutex> g(mutex_);
        auto &slot = fpLocks_[fp];
        if (slot == nullptr)
            slot = std::make_unique<std::mutex>();
        m = slot.get();
    }
    return std::unique_lock<std::mutex>(*m);
}

bool
WarmupCache::load(SimSession &session)
{
    const std::uint64_t fp = session.warmupFingerprint();
    const std::string path = cfg_.dir + "/" + entryName(fp);
    if (access(path.c_str(), F_OK) != 0) {
        std::lock_guard<std::mutex> g(mutex_);
        ++stats_.misses;
        return false;
    }
    bool restored = false;
    try {
        auto source = openByteSource(path);
        restored = session.restore(*source);
    } catch (const std::exception &) {
        restored = false;
    }
    std::lock_guard<std::mutex> g(mutex_);
    if (restored) {
        // Refresh the LRU clock; eviction drops the coldest mtime.
        static_cast<void>(utimensat(AT_FDCWD, path.c_str(), nullptr, 0));
        ++stats_.hits;
        return true;
    }
    // Never serve a doubtful entry: the store is first-writer-wins, so
    // an invalid file must go away for the re-warmed state to land.
    static_cast<void>(unlink(path.c_str()));
    ++stats_.rejected;
    ++stats_.misses;
    return false;
}

void
WarmupCache::store(SimSession &session)
{
    const std::uint64_t fp = session.warmupFingerprint();
    const std::string path = cfg_.dir + "/" + entryName(fp);
    // Content-addressed and deterministic: an existing entry already
    // holds this warmed state, so the first writer wins and re-stores
    // cost one access() check.
    if (access(path.c_str(), F_OK) == 0)
        return;
    // Atomic publish via the crash-safe sink (pid-unique tmp + fsync +
    // rename): concurrent processes may race on the rename — harmless,
    // both wrote identical state — but no reader ever sees a torn
    // checkpoint.
    auto sink = openByteSink(path, Compression::None);
    session.snapshot(*sink);
    sink->finish();
    std::lock_guard<std::mutex> g(mutex_);
    ++stats_.stores;
    evictToBudgetLocked();
}

std::size_t
WarmupCache::entryCount() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return scanEntries(cfg_.dir).size();
}

void
WarmupCache::evictToBudgetLocked()
{
    if (cfg_.maxBytes == 0 && cfg_.maxEntries == 0)
        return;
    // Rescan instead of tracking incrementally: other processes share
    // the directory, and stores are rare next to simulation work.
    std::vector<EntryInfo> entries = scanEntries(cfg_.dir);
    std::uint64_t bytes = 0;
    for (const EntryInfo &e : entries)
        bytes += e.bytes;
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.mtimeNs != b.mtimeNs ? a.mtimeNs < b.mtimeNs
                                                : a.name < b.name;
              });
    std::size_t count = entries.size();
    std::size_t victim = 0;
    while (victim < entries.size() &&
           ((cfg_.maxEntries != 0 && count > cfg_.maxEntries) ||
            (cfg_.maxBytes != 0 && bytes > cfg_.maxBytes))) {
        const EntryInfo &e = entries[victim++];
        if (unlink((cfg_.dir + "/" + e.name).c_str()) == 0)
            ++stats_.evicted;
        --count;
        bytes -= e.bytes;
    }
}

RunStats
runSession(SimSession &session, WarmupCache *cache)
{
    session.build();
    if (cache != nullptr && session.checkpointable()) {
        // Per-fingerprint serialization: of N threads racing to the
        // same warmed state, one warms and stores, the rest restore.
        auto guard = cache->lockFingerprint(session.warmupFingerprint());
        if (!cache->load(session)) {
            session.warmup();
            cache->store(session);
        }
    } else {
        session.warmup();
    }
    session.measure();
    return session.collect();
}

} // namespace hermes
