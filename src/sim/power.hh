#pragma once

/**
 * @file
 * Activity-based dynamic power model, substituting for McPAT (paper
 * §8.5, Fig. 18). Per-access energies for each structure are fixed
 * constants in the ratio published for comparable geometries; dynamic
 * power = sum(activity x energy) / execution time, which preserves the
 * *relative* power of configurations (the quantity Fig. 18 reports).
 */

#include "sim/system.hh"

namespace hermes
{

/** Per-structure dynamic power (arbitrary consistent units: mW). */
struct PowerBreakdown
{
    double l1 = 0;
    double l2 = 0;
    double llc = 0;
    double bus = 0;   ///< DRAM channel / on-chip interconnect traffic
    double other = 0; ///< Predictors, prefetcher, branch unit

    double
    total() const
    {
        return l1 + l2 + llc + bus + other;
    }
};

/** Per-access energy constants (pJ), roughly CACTI-class ratios. */
struct PowerParams
{
    double l1AccessPj = 20;
    double l2AccessPj = 60;
    double llcAccessPj = 240;
    double dramAccessPj = 12000;
    double busPerRequestPj = 800;
    double predictorAccessPj = 4;
    double prefetcherAccessPj = 12;
    double coreFreqGhz = 4.0;
};

/** Compute the dynamic power of a finished run. */
PowerBreakdown computePower(const RunStats &stats,
                            const PowerParams &params = PowerParams{});

} // namespace hermes
