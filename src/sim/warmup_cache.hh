#pragma once

/**
 * @file
 * Content-addressed warmup checkpoint store: a directory holding one
 * serialized warmed machine state per distinct warmup identity, named
 * by SimSession::warmupFingerprint() ("<hex16>.ckpt"). Any run — a
 * hermes_sweep grid point, hermes_run, a bench driver — whose warmup
 * identity matches an entry restores it instead of re-executing the
 * warmup window, so a sweep over post-warmup parameters (e.g.
 * hermes.issue_latency with hermes.warmup_issue=false) pays for warmup
 * exactly once.
 *
 * Entry layout (SimSession::snapshot): "HRMCKPT1" magic, format
 * version, the warmup fingerprint, every component's saveState stream
 * and a trailing FNV-1a checksum.
 *
 * Trust model: load() verifies magic, version, fingerprint and
 * checksum via SimSession::restore(); a corrupt, truncated or stale
 * entry is unlinked and reported as a miss — the caller re-warms and
 * the store rewrites the entry cleanly. Determinism makes concurrent
 * writers safe: equal fingerprints imply byte-identical snapshots, and
 * each store is an atomic tmp-file rename (trace_io's crash-safe
 * ByteSink), so readers never see a torn checkpoint.
 *
 * Size is LRU-bounded (by mtime; hits touch it): after a store grows
 * the directory past max_bytes / max_entries, the oldest entries are
 * evicted until it fits. Both limits default to unbounded.
 *
 * Deliberately NOT part of the parameter registry, for the same reason
 * as the result cache: registry keys feed fingerprints, so a cache
 * knob there would change the identities it stores under. Addressed by
 * CLI flag (--warmup-cache SPEC) or environment (HERMES_WARMUP_CACHE);
 * see parseWarmupCacheSpec().
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/simulator.hh"

namespace hermes
{

/** Where the store lives and how big it may grow (0 = unbounded). */
struct WarmupCacheConfig
{
    std::string dir;
    std::uint64_t maxBytes = 0;
    std::uint64_t maxEntries = 0;
};

/**
 * Parse "DIR[,max_bytes=SIZE][,max_entries=N]" (the --warmup-cache
 * flag and HERMES_WARMUP_CACHE syntax; SIZE takes K/M/G suffixes).
 * Throws std::invalid_argument on malformed specs.
 */
WarmupCacheConfig parseWarmupCacheSpec(const std::string &spec);

/** Hit/miss/housekeeping counters for one WarmupCache instance. */
struct WarmupCacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Entries written (stores of already-present identities are free). */
    std::size_t stores = 0;
    /** Corrupt/stale entries unlinked during load(). */
    std::size_t rejected = 0;
    std::size_t evicted = 0;
};

/** The store itself. Thread-safe; one instance per process is enough. */
class WarmupCache
{
  public:
    /** Opens (mkdir -p) the directory. Throws std::runtime_error. */
    explicit WarmupCache(WarmupCacheConfig cfg);

    WarmupCache(const WarmupCache &) = delete;
    WarmupCache &operator=(const WarmupCache &) = delete;

    /**
     * Try to restore @p session (built phase) from the entry matching
     * its warmup fingerprint. True on success (session is warmed); a
     * missing entry is a miss and a corrupt/stale entry is unlinked
     * and counts as a miss (session stays built either way).
     */
    bool load(SimSession &session);

    /**
     * Persist @p session's warmed state (warmed phase) under its
     * warmup fingerprint: stream to a tmp file, fsync, atomically
     * rename, evict past the budget. Already-present identities are
     * skipped (first writer wins; determinism makes them identical).
     */
    void store(SimSession &session);

    /**
     * Serialize threads warming the same identity: the returned lock
     * holds a per-fingerprint mutex, so within one process a shared
     * warmup really runs once and the rest restore its checkpoint.
     * Distinct fingerprints proceed in parallel.
     */
    std::unique_lock<std::mutex> lockFingerprint(std::uint64_t fp);

    const std::string &dir() const { return cfg_.dir; }
    const WarmupCacheStats &stats() const { return stats_; }

    /** Live count of "*.ckpt" entries (rescans the directory). */
    std::size_t entryCount() const;

    /** Entry filename for a warmup fingerprint: "<hex16>.ckpt". */
    static std::string entryName(std::uint64_t fp);

  private:
    void evictToBudgetLocked();

    WarmupCacheConfig cfg_;
    mutable std::mutex mutex_;
    WarmupCacheStats stats_;
    /** Never erased; bounded by the distinct identities of one run. */
    std::map<std::uint64_t, std::unique_ptr<std::mutex>> fpLocks_;
};

/**
 * The one driver every caller shares: build @p session, obtain the
 * warmed state — restored from @p cache when possible, else by running
 * warmup (and storing the result) — then measure and return the stats.
 * A null @p cache, or a session with a non-checkpointable component,
 * degrades to the plain build/warmup/measure sequence.
 */
RunStats runSession(SimSession &session, WarmupCache *cache);

} // namespace hermes
