#pragma once

/**
 * @file
 * Self-registering model factory: predictors, prefetchers and
 * replacement policies as drop-in plugins. Each model registers itself
 * by name from its own translation unit (a namespace-scope
 * ModelRegistrar), declaring a one-line doc, its tunable knobs and the
 * statistics-registry counters it feeds. Registration auto-exposes the
 * knobs as "pred.<name>.*" / "pref.<name>.*" / "repl.<name>.*"
 * parameter-registry keys (stored sparsely in SystemConfig::modelKnobs,
 * so configurations that never touch them render — and fingerprint —
 * exactly as before the registry existed), and the model becomes
 * selectable by string through the existing "predictor", "prefetcher"
 * and "llc.repl" parameters.
 *
 * A new model is therefore ONE new .cc file: the class, a registrar,
 * nothing else. No enum edits, no SystemConfig fields, no System
 * wiring (the legacy PredictorKind/PrefetcherKind/ReplKind paths are
 * thin shims over this registry). See docs/extending-models.md and
 * examples/custom_predictor.cc for the worked example, and
 * `hermes_run --list-models` for the generated reference.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hermes
{

struct SystemConfig;
class OffChipPredictor;
class Prefetcher;
class ReplacementPolicy;

/** The three pluggable model categories. */
enum class ModelKind : std::uint8_t
{
    Predictor,   ///< Off-chip load predictor ("predictor" parameter)
    Prefetcher,  ///< LLC hardware prefetcher ("prefetcher" parameter)
    Replacement, ///< LLC replacement policy ("llc.repl" parameter)
};

/** Printable kind name ("predictor", "prefetcher", "replacement"). */
const char *modelKindName(ModelKind kind);

/** Knob key prefix per kind ("pred", "pref", "repl"). */
const char *modelKnobPrefix(ModelKind kind);

/**
 * One tunable knob of a registered model, auto-exposed as the
 * parameter-registry key "<prefix>.<model>.<name>". Values are stored
 * as validated strings in SystemConfig::modelKnobs and read back by
 * the model's factory through ModelContext::knob*().
 */
struct ModelKnob
{
    enum class Type : std::uint8_t
    {
        Int,    ///< Integer (strict parse), inclusive [min, max]
        Bool,   ///< true/false, yes/no, on/off, 1/0
        Double, ///< Finite real, inclusive [min, max]
    };

    std::string name; ///< Key suffix, e.g. "table_bits"
    Type type = Type::Int;
    std::string defaultValue;
    double minValue = 0;
    double maxValue = 0;
    /** Int knobs indexed with masks must be a power of two. */
    bool powerOfTwo = false;
    std::string doc;

    const char *typeName() const;
};

struct ModelDef;

/**
 * Everything a model factory may need: the full system configuration,
 * per-core / per-cache construction context, and typed access to the
 * model's own knob values (sparse overrides over declared defaults).
 */
struct ModelContext
{
    /** Full system configuration (legacy typed param structs live here,
     * as does the sparse modelKnobs map). */
    const SystemConfig *config = nullptr;
    /** Master seed (seeded prefetchers, e.g. Pythia). */
    std::uint64_t seed = 1;
    /** Core this predictor instance serves. */
    int coreId = 0;
    /** Cache geometry (replacement policies). */
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    /** On-chip presence oracle for this core (the Ideal predictor). */
    std::function<bool(Addr line)> residentProbe;
    /** The model being constructed (set by the registry). */
    const ModelDef *model = nullptr;

    /** Declared-knob value: modelKnobs override or declared default.
     * Throws std::logic_error for a knob the model never declared. */
    std::int64_t knobInt(const std::string &name) const;
    bool knobBool(const std::string &name) const;
    double knobDouble(const std::string &name) const;
};

/** Schema + factory entry for one registered model. */
struct ModelDef
{
    std::string name;
    ModelKind kind = ModelKind::Predictor;
    /** One-line description (the --list-models doc column). */
    std::string doc;
    /** Knobs auto-exposed as "<prefix>.<name>.*" parameter keys. */
    std::vector<ModelKnob> knobs;
    /**
     * Pre-registry parameter keys this model reads from its typed
     * SystemConfig struct ("popet.act_threshold", ...). Listed in the
     * generated reference next to the auto-exposed knobs; new models
     * should declare knobs instead.
     */
    std::vector<std::string> legacyKeys;
    /** Statistics-registry keys this model feeds ("pred.tp", ...). */
    std::vector<std::string> counters;

    /** Exactly one factory, matching kind. A null return means "no
     * model" (the registered "none" entries). */
    std::function<std::unique_ptr<OffChipPredictor>(const ModelContext &)>
        makePredictor;
    std::function<std::unique_ptr<Prefetcher>(const ModelContext &)>
        makePrefetcher;
    std::function<std::unique_ptr<ReplacementPolicy>(const ModelContext &)>
        makeReplacement;

    /** Full parameter key of one declared knob. */
    std::string knobKey(const ModelKnob &knob) const;
};

/**
 * The process-wide model registry. Unlike the parameter and statistics
 * registries it stays open: models register during static
 * initialization from their own translation units (and tests or
 * embedders may add more at runtime; the selection parameters validate
 * against the live registry).
 */
class ModelRegistry
{
  public:
    /** The process-wide instance. */
    static ModelRegistry &instance();

    /** Tests may build private registries. */
    ModelRegistry() = default;

    /**
     * Register a model. Throws std::invalid_argument on a duplicate
     * (kind, name), an empty/ill-formed name, a missing or
     * kind-mismatched factory, or an invalid knob declaration.
     */
    void add(ModelDef def);

    /** All models of one kind, sorted by name (deterministic
     * regardless of static-initialization order). */
    std::vector<const ModelDef *> models(ModelKind kind) const;

    /** Sorted model names of one kind. */
    std::vector<std::string> names(ModelKind kind) const;

    /** Look a model up; nullptr if unknown. */
    const ModelDef *find(ModelKind kind, const std::string &name) const;

    /** Look a model up; throws std::invalid_argument with a
     * nearest-name suggestion if unknown. */
    const ModelDef &findOrThrow(ModelKind kind,
                                const std::string &name) const;

    /** Resolve a dotted parameter key ("pred.<model>.<knob>") to a
     * declared knob; nulls if the key is not a registered knob. */
    struct KnobRef
    {
        const ModelDef *model = nullptr;
        const ModelKnob *knob = nullptr;
        explicit operator bool() const { return knob != nullptr; }
    };
    KnobRef findKnob(const std::string &key) const;

    /** Every registered knob's full parameter key, sorted. */
    std::vector<std::string> knobKeys() const;

    /** Construct a model; null for the "none" entries. */
    std::unique_ptr<OffChipPredictor>
    makePredictor(const std::string &name, ModelContext ctx) const;
    std::unique_ptr<Prefetcher> makePrefetcher(const std::string &name,
                                               ModelContext ctx) const;
    std::unique_ptr<ReplacementPolicy>
    makeReplacement(const std::string &name, ModelContext ctx) const;

    /**
     * The generated model reference (the --list-models output): every
     * model's kind, name, doc, knob keys with type/default/range and
     * counter keys, sorted by kind then name.
     */
    std::string describe() const;

  private:
    std::vector<ModelDef> defs_;
    /** (kind, name) -> defs_ index. */
    std::map<std::pair<int, std::string>, std::size_t> index_;
    /** full knob key -> (defs_ index, knob index). */
    std::map<std::string, std::pair<std::size_t, std::size_t>> knobIndex_;
};

/**
 * Registers a model at namespace scope:
 *
 *   namespace { const ModelRegistrar reg(myModelDef()); }
 */
struct ModelRegistrar
{
    explicit ModelRegistrar(ModelDef def)
    {
        ModelRegistry::instance().add(std::move(def));
    }
};

/** Shared counter lists for the generated reference. */
std::vector<std::string> predictorCounterKeys();
std::vector<std::string> prefetcherCounterKeys();
std::vector<std::string> replacementCounterKeys();

} // namespace hermes
