#include "sim/system.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "sim/model_registry.hh"

namespace hermes
{

SystemConfig
SystemConfig::baseline(int cores)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    if (cores >= 8) {
        cfg.dram.channels = 4;
        cfg.dram.ranksPerChannel = 2;
    } else if (cores > 1) {
        cfg.dram.channels = 2;
        cfg.dram.ranksPerChannel = 2;
    }
    return cfg;
}

std::string
SystemConfig::predictorName() const
{
    return predictorModel.empty() ? predictorKindName(predictor)
                                  : predictorModel;
}

std::string
SystemConfig::prefetcherName() const
{
    return prefetcherModel.empty() ? prefetcherKindName(prefetcher)
                                   : prefetcherModel;
}

std::string
SystemConfig::llcReplName() const
{
    return llcReplModel.empty() ? replKindName(llcRepl) : llcReplModel;
}

std::uint64_t
RunStats::instrsRetired() const
{
    std::uint64_t total = 0;
    for (const auto &c : core)
        total += c.instrsRetired;
    return total;
}

double
RunStats::ipc(int core_id) const
{
    // 0 for a core this RunStats has no data for: empty results (e.g.
    // grid points another shard owns) read as "no data", which the
    // harness speedup helpers already filter, instead of throwing.
    if (core_id < 0 || static_cast<std::size_t>(core_id) >= core.size())
        return 0.0;
    const auto &c = core[core_id];
    const std::uint64_t cycles =
        core_id < static_cast<int>(coreFinishCycle.size()) &&
                coreFinishCycle[core_id] > 0
            ? coreFinishCycle[core_id]
            : simCycles;
    return cycles ? static_cast<double>(c.instrsRetired) /
                        static_cast<double>(cycles)
                  : 0.0;
}

double
RunStats::llcMpki() const
{
    const std::uint64_t instrs = instrsRetired();
    return instrs ? 1000.0 * static_cast<double>(llc.demandMisses()) /
                        static_cast<double>(instrs)
                  : 0.0;
}

double
RunStats::dramBwUtil() const
{
    // Each DRAM access keeps its channel's data bus busy for
    // busCyclesPerLine core cycles; capacity is one transfer per
    // channel per cycle. Guarded so zero-instruction placeholder rows
    // (and pre-registry RunStats with no config echo) read as 0.
    const double capacity = static_cast<double>(simCycles) *
                            static_cast<double>(dramChannels);
    if (capacity <= 0)
        return 0.0;
    const double busy =
        static_cast<double>(dram.totalReads() + dram.writes) *
        static_cast<double>(dramBusCyclesPerLine);
    return busy / capacity;
}

PredictorStats
RunStats::predTotal() const
{
    PredictorStats t;
    for (const auto &p : predictor) {
        t.truePositives += p.truePositives;
        t.falsePositives += p.falsePositives;
        t.falseNegatives += p.falseNegatives;
        t.trueNegatives += p.trueNegatives;
    }
    return t;
}

namespace
{

std::uint32_t
toSets(std::uint64_t bytes, std::uint32_t ways)
{
    const std::uint64_t lines = bytes / kBlockSize;
    const std::uint64_t sets = lines / ways;
    std::uint64_t p = 1;
    while (p * 2 <= sets)
        p *= 2;
    // Geometry must be a power of two; round down and widen the ways
    // to preserve capacity if needed.
    return static_cast<std::uint32_t>(p);
}

} // namespace

System::System(const SystemConfig &config,
               std::vector<std::unique_ptr<Workload>> workloads)
    : config_(config), workloads_(std::move(workloads))
{
    const int n = config_.numCores;
    if (static_cast<int>(workloads_.size()) != n)
        throw std::invalid_argument("need one workload per core");

    dram_ = std::make_unique<DramController>(config_.dram);

    CacheParams llc_params;
    llc_params.name = "LLC";
    llc_params.level = MemLevel::Llc;
    llc_params.ways = config_.llcWays;
    llc_params.sets =
        toSets(config_.llcBytesPerCore * n, config_.llcWays);
    llc_params.latency = config_.llcLatency;
    llc_params.mshrs = config_.llcMshrsPerCore * n;
    llc_params.rqSize = 64u * n;
    llc_params.pqSize = 48u * n;
    llc_params.repl = config_.llcRepl;
    if (!config_.llcReplModel.empty()) {
        // Registry-only policies reach the cache through a factory so
        // cache/ never depends on sim/. The configuration is captured
        // by value: the factory outlives this constructor inside
        // CacheParams.
        llc_params.replFactory = [cfg = config_](std::uint32_t sets,
                                                 std::uint32_t ways) {
            ModelContext ctx;
            ctx.config = &cfg;
            ctx.seed = cfg.seed;
            ctx.sets = sets;
            ctx.ways = ways;
            return ModelRegistry::instance().makeReplacement(
                cfg.llcReplModel, std::move(ctx));
        };
    }
    llc_ = std::make_unique<Cache>(llc_params);
    llc_->setLower(dram_.get());

    {
        ModelContext ctx;
        ctx.config = &config_;
        ctx.seed = config_.seed;
        prefetcher_ = ModelRegistry::instance().makePrefetcher(
            config_.prefetcherName(), std::move(ctx));
    }
    if (prefetcher_ != nullptr)
        llc_->setPrefetcher(prefetcher_.get());

    for (int i = 0; i < n; ++i) {
        CacheParams l2p;
        l2p.name = "L2";
        l2p.level = MemLevel::L2;
        l2p.sets = config_.l2Sets;
        l2p.ways = config_.l2Ways;
        l2p.latency = config_.l2Latency;
        l2p.mshrs = config_.l2Mshrs;
        l2p.rqSize = 48;
        l2p.repl = ReplKind::Lru;
        l2_.push_back(std::make_unique<Cache>(l2p));
        l2_.back()->setLower(llc_.get());
        llc_->setUpper(i, l2_.back().get());
        dram_->setClient(i, llc_.get());

        CacheParams l1p;
        l1p.name = "L1D";
        l1p.level = MemLevel::L1;
        l1p.sets = config_.l1Sets;
        l1p.ways = config_.l1Ways;
        l1p.latency = config_.l1Latency;
        l1p.mshrs = config_.l1Mshrs;
        l1p.rqSize = 32;
        l1p.repl = ReplKind::Lru;
        l1_.push_back(std::make_unique<Cache>(l1p));
        l1_.back()->setLower(l2_.back().get());
        l2_.back()->setUpper(i, l1_.back().get());
    }

    // Off-chip predictors + Hermes controllers (one per core), built
    // through the model registry by resolved name (the legacy enum
    // path funnels through the same factories).
    for (int i = 0; i < n; ++i) {
        Cache *l1 = l1_[i].get();
        Cache *l2 = l2_[i].get();
        Cache *llc = llc_.get();
        ModelContext ctx;
        ctx.config = &config_;
        ctx.seed = config_.seed;
        ctx.coreId = i;
        ctx.residentProbe = [l1, l2, llc](Addr line) {
            return l1->probe(line) || l2->probe(line) ||
                   llc->probe(line);
        };
        predictors_.push_back(ModelRegistry::instance().makePredictor(
            config_.predictorName(), std::move(ctx)));

        HermesParams hp;
        hp.issueEnabled = config_.hermesIssueEnabled &&
                          predictors_.back() != nullptr;
        hp.issueLatency = config_.hermesIssueLatency;
        hermes_.push_back(std::make_unique<HermesController>(
            hp, predictors_.back().get(), dram_.get()));
    }

    // Hierarchy events feed the TTP trackers of every core.
    llc_->onFillFromDram = [this](Addr line) {
        for (auto &p : predictors_)
            if (p != nullptr)
                p->onFillFromDram(line);
    };
    llc_->onEviction = [this](Addr line) {
        for (auto &p : predictors_)
            if (p != nullptr)
                p->onLlcEviction(line);
    };

    for (int i = 0; i < n; ++i) {
        cores_.push_back(std::make_unique<OooCore>(
            i, config_.core, workloads_[i].get(), l1_[i].get(),
            hermes_[i].get()));
        l1_[i]->setUpper(i, cores_.back().get());
    }
    finishCycle_.assign(n, 0);

    // Environment escape hatches (docs/performance.md): disable the
    // event-horizon fast-forward (determinism cross-check) and enable
    // per-component host-time attribution (bench --profile).
    eventSkip_ = std::getenv("HERMES_NO_EVENT_SKIP") == nullptr;
    profile_.enabled = std::getenv("HERMES_PROFILE") != nullptr;
}

System::~System() = default;

bool
System::tick()
{
    if (profile_.enabled)
        return tickProfiled();
    ++now_;
    ++profile_.tickedCycles;
    dram_->tick(now_);
    llc_->tick(now_);
    for (auto &c : l2_)
        c->tick(now_);
    for (auto &c : l1_)
        c->tick(now_);
    bool retired = false;
    for (auto &c : cores_)
        retired |= c->tick(now_);
    return retired;
}

bool
System::tickProfiled()
{
    using clock = std::chrono::steady_clock;
    auto seconds_since = [](clock::time_point t0, clock::time_point t1) {
        return std::chrono::duration<double>(t1 - t0).count();
    };
    ++now_;
    ++profile_.tickedCycles;
    const auto t0 = clock::now();
    dram_->tick(now_);
    const auto t1 = clock::now();
    profile_.dramSeconds += seconds_since(t0, t1);
    llc_->tick(now_);
    const auto t2 = clock::now();
    profile_.llcSeconds += seconds_since(t1, t2);
    for (auto &c : l2_)
        c->tick(now_);
    const auto t3 = clock::now();
    profile_.l2Seconds += seconds_since(t2, t3);
    for (auto &c : l1_)
        c->tick(now_);
    const auto t4 = clock::now();
    profile_.l1Seconds += seconds_since(t3, t4);
    bool retired = false;
    for (auto &c : cores_)
        retired |= c->tick(now_);
    profile_.coreSeconds += seconds_since(t4, clock::now());
    return retired;
}

Cycle
System::nextEventHorizon() const
{
    // Minimum over every component's lower bound. Each contract
    // guarantees a result of at least now_ + 1, so once any component
    // reports exactly that we can stop scanning: nothing can be lower.
    const Cycle next = now_ + 1;
    Cycle horizon = kNoEventCycle;
    for (const auto &c : cores_) {
        horizon = std::min(horizon, c->nextEventCycle(now_));
        if (horizon <= next)
            return next;
    }
    for (const auto &h : hermes_) {
        horizon = std::min(horizon, h->nextEventCycle(now_));
        if (horizon <= next)
            return next;
    }
    for (const auto &c : l1_) {
        horizon = std::min(horizon, c->nextEventCycle(now_));
        if (horizon <= next)
            return next;
    }
    for (const auto &c : l2_) {
        horizon = std::min(horizon, c->nextEventCycle(now_));
        if (horizon <= next)
            return next;
    }
    horizon = std::min(horizon, llc_->nextEventCycle(now_));
    if (horizon <= next)
        return next;
    horizon = std::min(horizon, dram_->nextEventCycle(now_));
    return std::max(horizon, next);
}

void
System::skipIdle(Cycle target)
{
    // Emulate what ticking the cycles in (now_, target] would have
    // done: nothing happens in an event-free span except that every
    // component clock advances (caches and DRAM stamp enqueues from
    // their own clocks) and the cores account stall cycles.
    const std::uint64_t skipped = target - now_;
    now_ = target;
    profile_.skippedCycles += skipped;
    dram_->skipTo(now_);
    llc_->skipTo(now_);
    for (auto &c : l2_)
        c->skipTo(now_);
    for (auto &c : l1_)
        c->skipTo(now_);
    for (auto &c : cores_)
        c->skipCycles(now_, skipped);
}

void
System::doSkip(Cycle limit)
{
    if (profile_.enabled) {
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        const Cycle horizon = nextEventHorizon();
        if (horizon > now_ + 1) {
            // Stop one cycle short of the horizon (the event itself
            // must be ticked) and never past the watchdog limit.
            const Cycle target = std::min<Cycle>(horizon - 1, limit);
            if (target > now_)
                skipIdle(target);
        }
        profile_.horizonSeconds +=
            std::chrono::duration<double>(clock::now() - t0).count();
        return;
    }
    const Cycle horizon = nextEventHorizon();
    if (horizon <= now_ + 1)
        return;
    const Cycle target = std::min<Cycle>(horizon - 1, limit);
    if (target > now_)
        skipIdle(target);
}

void
System::clearAllStats()
{
    for (auto &c : cores_)
        c->clearStats();
    for (auto &c : l1_)
        c->clearStats();
    for (auto &c : l2_)
        c->clearStats();
    llc_->clearStats();
    dram_->clearStats();
    for (auto &h : hermes_)
        h->clearStats();
    if (prefetcher_ != nullptr)
        prefetcher_->stats() = PrefetcherStats{};
}

RunStats
System::run(std::uint64_t warmup_instrs, std::uint64_t sim_instrs)
{
    runWarmup(warmup_instrs);
    return runMeasure(sim_instrs);
}

void
System::runWarmup(std::uint64_t warmup_instrs)
{
    const int n = config_.numCores;
    // Generous watchdog: no workload here sustains IPC below ~0.01.
    const std::uint64_t max_cycles = warmup_instrs * 400 + 1'000'000;
    const Stopwatch watch;

    // Warmup-time Hermes issue gate: with hermes.warmup_issue=false the
    // predictor still trains but no speculative requests are issued, so
    // the warmed state is independent of the issue path.
    if (!config_.hermesWarmupIssue)
        for (auto &h : hermes_)
            h->setIssueEnabled(false);

    auto all_reached = [&](std::uint64_t target) {
        for (const auto &c : cores_)
            if (c->instrsRetired() < target)
                return false;
        return true;
    };

    // all_reached() only changes when a core retires, and retirement is
    // an event, so fast-forwarding between ticks never skips the
    // completion check past the finish point.
    while (!all_reached(warmup_instrs) && now_ < max_cycles) {
        // Only probe the horizon after non-retiring ticks: a retiring
        // core almost always has head-of-ROB work next cycle, so the
        // probe would be wasted; skipping fewer idle spans is always
        // behavior-identical (idle ticks are no-ops).
        if (!tick())
            maybeSkip(max_cycles);
    }

    if (!config_.hermesWarmupIssue)
        for (int i = 0; i < n; ++i)
            hermes_[i]->setIssueEnabled(config_.hermesIssueEnabled &&
                                        predictors_[i] != nullptr);

    warmupExecuted_ = 0;
    for (const auto &c : cores_)
        warmupExecuted_ += c->instrsRetired();
    warmupSeconds_ = watch.elapsedSeconds();
    clearAllStats();
    measureStart_ = now_;
    finishCycle_.assign(n, 0);
}

RunStats
System::runMeasure(std::uint64_t sim_instrs)
{
    const int n = config_.numCores;
    const std::uint64_t max_cycles = sim_instrs * 400 + 1'000'000;
    const Stopwatch watch;

    // The completion scan only needs to run after cycles where some
    // core retired: instrsRetired() is constant otherwise, and
    // finishCycle_ records the cycle the quota was *reached*, which is
    // by definition a retiring cycle. The initial recheck covers the
    // sim_instrs == 0 edge (quota met before the first tick).
    bool done = false;
    bool recheck = true;
    while (!done && now_ < measureStart_ + max_cycles) {
        const bool retired = tick();
        if (retired || recheck) {
            recheck = false;
            done = true;
            for (int i = 0; i < n; ++i) {
                if (cores_[i]->instrsRetired() >= sim_instrs) {
                    if (finishCycle_[i] == 0)
                        finishCycle_[i] = now_ - measureStart_;
                } else {
                    done = false;
                }
            }
        }
        // Horizon probes only pay off after non-retiring ticks (see
        // runWarmup); a retiring core has head-of-ROB work next cycle.
        if (!done && !retired)
            maybeSkip(measureStart_ + max_cycles);
    }

    RunStats stats = collect();
    stats.simCycles = now_ - measureStart_;
    stats.hostPerf.seconds = warmupSeconds_ + watch.elapsedSeconds();
    stats.hostPerf.instrs = warmupExecuted_ + stats.instrsRetired();
    return stats;
}

bool
System::checkpointable() const
{
    for (const auto &wl : workloads_)
        if (!wl->checkpointable())
            return false;
    if (!llc_->checkpointable())
        return false;
    for (const auto &c : l2_)
        if (!c->checkpointable())
            return false;
    for (const auto &c : l1_)
        if (!c->checkpointable())
            return false;
    if (prefetcher_ != nullptr && !prefetcher_->checkpointable())
        return false;
    for (const auto &p : predictors_)
        if (p != nullptr && !p->checkpointable())
            return false;
    return true;
}

void
System::saveState(StateWriter &w) const
{
    w.section("SYST");
    w.u32(static_cast<std::uint32_t>(config_.numCores));
    w.u64(now_);
    for (const auto &wl : workloads_)
        wl->saveState(w);
    dram_->saveState(w);
    llc_->saveState(w);
    for (int i = 0; i < config_.numCores; ++i) {
        l2_[i]->saveState(w);
        l1_[i]->saveState(w);
    }
    if (prefetcher_ != nullptr)
        prefetcher_->saveState(w);
    for (const auto &p : predictors_)
        if (p != nullptr)
            p->saveState(w);
    for (const auto &h : hermes_)
        h->saveState(w);
    for (const auto &c : cores_)
        c->saveState(w);
}

void
System::loadState(StateReader &r)
{
    r.section("SYST");
    if (r.u32() != static_cast<std::uint32_t>(config_.numCores))
        throw StateError("core count mismatch");
    now_ = r.u64();
    for (auto &wl : workloads_)
        wl->loadState(r);
    dram_->loadState(r);
    llc_->loadState(r);
    for (int i = 0; i < config_.numCores; ++i) {
        l2_[i]->loadState(r);
        l1_[i]->loadState(r);
    }
    if (prefetcher_ != nullptr)
        prefetcher_->loadState(r);
    for (auto &p : predictors_)
        if (p != nullptr)
            p->loadState(r);
    for (auto &h : hermes_)
        h->loadState(r);
    for (auto &c : cores_)
        c->loadState(r);
    // Re-establish the snapshot seam: stats are zero by construction,
    // the measurement window starts here, and this process did no
    // warmup work (host-perf accounting).
    measureStart_ = now_;
    finishCycle_.assign(config_.numCores, 0);
    warmupExecuted_ = 0;
    warmupSeconds_ = 0.0;
}

RunStats
System::collect() const
{
    RunStats s;
    const int n = config_.numCores;
    s.coreFinishCycle = finishCycle_;
    for (int i = 0; i < n; ++i) {
        s.core.push_back(cores_[i]->stats());
        s.branch.push_back(cores_[i]->branchStats());
        s.predictor.push_back(hermes_[i]->stats().pred);
        s.hermesRequestsScheduled += hermes_[i]->stats().requestsScheduled;
        s.hermesLoadsServed += hermes_[i]->stats().loadsServedByHermes;

        auto add = [](CacheStats &dst, const CacheStats &src) {
            dst.loadLookups += src.loadLookups;
            dst.loadHits += src.loadHits;
            dst.rfoLookups += src.rfoLookups;
            dst.rfoHits += src.rfoHits;
            dst.writebackLookups += src.writebackLookups;
            dst.writebackHits += src.writebackHits;
            dst.prefetchLookups += src.prefetchLookups;
            dst.prefetchDropped += src.prefetchDropped;
            dst.prefetchIssued += src.prefetchIssued;
            dst.mshrMerges += src.mshrMerges;
            dst.mshrLatePrefetchHits += src.mshrLatePrefetchHits;
            dst.fills += src.fills;
            dst.prefetchFills += src.prefetchFills;
            dst.evictions += src.evictions;
            dst.dirtyEvictions += src.dirtyEvictions;
            dst.usefulPrefetches += src.usefulPrefetches;
            dst.uselessPrefetches += src.uselessPrefetches;
            dst.rqRejects += src.rqRejects;
        };
        add(s.l1, l1_[i]->stats());
        add(s.l2, l2_[i]->stats());
    }
    s.llc = llc_->stats();
    s.dram = dram_->stats();
    s.dramChannels = config_.dram.channels;
    s.dramBusCyclesPerLine = config_.dram.busCyclesPerLine();
    if (prefetcher_ != nullptr)
        s.prefetch = prefetcher_->stats();
    // Accumulated across warmup + measurement (host-side only, so the
    // warmup share is informative rather than misleading).
    s.profile = profile_;
    return s;
}

} // namespace hermes
