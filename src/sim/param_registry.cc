#include "sim/param_registry.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/config.hh"
#include "sim/model_registry.hh"
#include "trace/corpus.hh"
#include "trace/suite.hh"

namespace hermes
{

namespace
{

/**
 * Choices for a model-selection key: the legacy enum names in their
 * documented order, then any further registered models sorted by name.
 * Built at ParamRegistry construction (first use, i.e. after static
 * initialization has run every ModelRegistrar); apply() additionally
 * consults the live registry.
 */
std::vector<std::string>
modelChoices(ModelKind kind, std::vector<std::string> legacy)
{
    for (const std::string &name : ModelRegistry::instance().names(kind))
        if (std::find(legacy.begin(), legacy.end(), name) ==
            legacy.end())
            legacy.push_back(name);
    return legacy;
}

/** Format a bound without a decimal point ("64", "4294967296"). */
std::string
boundStr(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

/** Bytes in shorthand when exactly expressible ("3M", "48K", "64"). */
std::string
sizeStr(std::uint64_t bytes)
{
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0)
        return std::to_string(bytes >> 30) + "G";
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        return std::to_string(bytes >> 20) + "M";
    if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
        return std::to_string(bytes >> 10) + "K";
    return std::to_string(bytes);
}

std::string
joinChoices(const std::vector<std::string> &choices)
{
    std::string out;
    for (const auto &c : choices) {
        if (!out.empty())
            out += "|";
        out += c;
    }
    return out;
}

} // namespace

const char *
ParamDef::typeName() const
{
    switch (type) {
      case ParamType::Int:
        return "int";
      case ParamType::UInt:
        return "uint";
      case ParamType::Size:
        return "size";
      case ParamType::Bool:
        return "bool";
      case ParamType::Enum:
        return "enum";
    }
    return "?";
}

std::string
ParamDef::defaultValue() const
{
    return get(SystemConfig::baseline(1));
}

ParamRegistry::ParamRegistry()
{
    // Registration helpers. Each takes an accessor lambda
    // (SystemConfig& -> field&) so nested params bind the same way as
    // top-level fields; get() re-uses it through a const_cast, which is
    // safe because get() never writes.
    auto add = [this](ParamDef d) {
        index_[d.key] = defs_.size();
        defs_.push_back(std::move(d));
    };

    auto num = [&](const char *key, auto ref, double lo, double hi,
                   const char *doc, bool pow2 = false) {
        ParamDef d;
        d.key = key;
        d.type = ParamType::Int;
        d.doc = doc;
        d.minValue = lo;
        d.maxValue = hi;
        d.powerOfTwo = pow2;
        d.get = [ref](const SystemConfig &c) {
            return std::to_string(ref(const_cast<SystemConfig &>(c)));
        };
        d.set = [ref](SystemConfig &c, const std::string &v) {
            using Field = std::decay_t<decltype(ref(c))>;
            ref(c) = static_cast<Field>(*parseInt64(v));
        };
        add(std::move(d));
    };

    auto size = [&](const char *key, auto ref, double lo, double hi,
                    const char *doc) {
        ParamDef d;
        d.key = key;
        d.type = ParamType::Size;
        d.doc = doc;
        d.minValue = lo;
        d.maxValue = hi;
        d.get = [ref](const SystemConfig &c) {
            return sizeStr(ref(const_cast<SystemConfig &>(c)));
        };
        d.set = [ref](SystemConfig &c, const std::string &v) {
            using Field = std::decay_t<decltype(ref(c))>;
            ref(c) = static_cast<Field>(*parseSizeBytes(v));
        };
        add(std::move(d));
    };

    auto boolean = [&](const char *key, auto ref, const char *doc) {
        ParamDef d;
        d.key = key;
        d.type = ParamType::Bool;
        d.doc = doc;
        d.get = [ref](const SystemConfig &c) {
            return std::string(ref(const_cast<SystemConfig &>(c))
                                   ? "true"
                                   : "false");
        };
        d.set = [ref](SystemConfig &c, const std::string &v) {
            ref(c) = *parseBoolWord(v);
        };
        add(std::move(d));
    };

    // Enum fields need a from/to string pair instead of an accessor.
    auto enumerated = [&](const char *key,
                          std::vector<std::string> choices, auto getName,
                          auto setFromName, const char *doc) {
        ParamDef d;
        d.key = key;
        d.type = ParamType::Enum;
        d.doc = doc;
        d.choices = std::move(choices);
        d.get = [getName](const SystemConfig &c) {
            return std::string(getName(c));
        };
        d.set = setFromName;
        add(std::move(d));
    };

    num("system.cores", [](SystemConfig &c) -> auto & { return c.numCores; },
        1, 64, "number of simulated cores");
    {
        // The seed spans the full uint64 range the struct API allows,
        // so toConfig() round-trips even for seeds >= 2^63.
        ParamDef d;
        d.key = "system.seed";
        d.type = ParamType::UInt;
        d.doc = "master RNG seed (workloads, Pythia)";
        d.get = [](const SystemConfig &c) {
            return std::to_string(c.seed);
        };
        d.set = [](SystemConfig &c, const std::string &v) {
            c.seed = *parseUint64(v);
        };
        add(std::move(d));
    }

    num("core.fetch_width",
        [](SystemConfig &c) -> auto & { return c.core.fetchWidth; }, 1, 16,
        "instructions fetched/dispatched per cycle");
    num("core.retire_width",
        [](SystemConfig &c) -> auto & { return c.core.retireWidth; }, 1,
        16, "instructions retired per cycle");
    num("core.rob_size",
        [](SystemConfig &c) -> auto & { return c.core.robSize; }, 16,
        65536, "reorder buffer entries (Fig. 19 sweeps)");
    num("core.lq_size",
        [](SystemConfig &c) -> auto & { return c.core.lqSize; }, 1, 4096,
        "load queue entries");
    num("core.sq_size",
        [](SystemConfig &c) -> auto & { return c.core.sqSize; }, 1, 4096,
        "store queue entries");
    num("core.mispredict_penalty",
        [](SystemConfig &c) -> auto & { return c.core.mispredictPenalty; },
        0, 1000, "branch misprediction penalty (cycles)");
    num("core.alu_latency",
        [](SystemConfig &c) -> auto & { return c.core.aluLatency; }, 0,
        100, "ALU instruction latency (cycles)");
    num("core.agen_latency",
        [](SystemConfig &c) -> auto & { return c.core.agenLatency; }, 0,
        100, "address-generation delay before L1 issue (cycles)");
    num("core.max_loads_per_cycle",
        [](SystemConfig &c) -> auto & { return c.core.maxLoadsPerCycle; },
        1, 16, "loads issued to the L1 per cycle");

    num("l1.sets", [](SystemConfig &c) -> auto & { return c.l1Sets; }, 1,
        1 << 16, "L1D sets", true);
    num("l1.ways", [](SystemConfig &c) -> auto & { return c.l1Ways; }, 1,
        128, "L1D associativity");
    num("l1.latency",
        [](SystemConfig &c) -> auto & { return c.l1Latency; }, 0, 1000,
        "L1D round-trip latency (cycles)");
    num("l1.mshrs", [](SystemConfig &c) -> auto & { return c.l1Mshrs; },
        1, 1024, "L1D MSHR entries");

    num("l2.sets", [](SystemConfig &c) -> auto & { return c.l2Sets; }, 1,
        1 << 20, "L2 sets", true);
    num("l2.ways", [](SystemConfig &c) -> auto & { return c.l2Ways; }, 1,
        128, "L2 associativity");
    num("l2.latency",
        [](SystemConfig &c) -> auto & { return c.l2Latency; }, 0, 1000,
        "L2 incremental latency (cycles)");
    num("l2.mshrs", [](SystemConfig &c) -> auto & { return c.l2Mshrs; },
        1, 1024, "L2 MSHR entries");

    size("llc.bytes_per_core",
         [](SystemConfig &c) -> auto & { return c.llcBytesPerCore; },
         1 << 16, 4294967296.0,
         "LLC capacity per core (Fig. 20 sweeps; accepts K/M/G)");
    num("llc.ways", [](SystemConfig &c) -> auto & { return c.llcWays; },
        1, 128, "LLC associativity");
    num("llc.latency",
        [](SystemConfig &c) -> auto & { return c.llcLatency; }, 0, 1000,
        "LLC incremental latency (Fig. 17d sweeps; cycles)");
    num("llc.mshrs_per_core",
        [](SystemConfig &c) -> auto & { return c.llcMshrsPerCore; }, 1,
        1024, "LLC MSHR entries per core");
    // Model-selection keys. Legacy enum names set the enum field (so
    // pre-registry configurations render byte-identically); any other
    // registered model name is stored as a string and resolved through
    // the model registry at System construction.
    enumerated(
        "llc.repl",
        modelChoices(ModelKind::Replacement, {"lru", "srrip", "ship"}),
        [](const SystemConfig &c) { return c.llcReplName(); },
        [](SystemConfig &c, const std::string &v) {
            for (const ReplKind k :
                 {ReplKind::Lru, ReplKind::Srrip, ReplKind::Ship}) {
                if (v == replKindName(k)) {
                    c.llcRepl = k;
                    c.llcReplModel.clear();
                    return;
                }
            }
            c.llcReplModel = v;
        },
        "LLC replacement policy");
    defs_.back().modelKind = static_cast<int>(ModelKind::Replacement);

    enumerated(
        "prefetcher",
        modelChoices(ModelKind::Prefetcher,
                     {"none", "streamer", "spp", "bingo", "mlop", "sms",
                      "pythia"}),
        [](const SystemConfig &c) { return c.prefetcherName(); },
        [](SystemConfig &c, const std::string &v) {
            for (const char *name : {"none", "streamer", "spp", "bingo",
                                     "mlop", "sms", "pythia"}) {
                if (v == name) {
                    c.prefetcher = prefetcherKindFromString(v);
                    c.prefetcherModel.clear();
                    return;
                }
            }
            c.prefetcher = PrefetcherKind::None;
            c.prefetcherModel = v;
        },
        "LLC hardware prefetcher (Table 6)");
    defs_.back().modelKind = static_cast<int>(ModelKind::Prefetcher);

    enumerated(
        "predictor",
        modelChoices(ModelKind::Predictor,
                     {"none", "popet", "hmp", "ttp", "ideal"}),
        [](const SystemConfig &c) { return c.predictorName(); },
        [](SystemConfig &c, const std::string &v) {
            for (const char *name :
                 {"none", "popet", "hmp", "ttp", "ideal"}) {
                if (v == name) {
                    c.predictor = predictorKindFromString(v);
                    c.predictorModel.clear();
                    return;
                }
            }
            c.predictor = PredictorKind::None;
            c.predictorModel = v;
        },
        "off-chip load predictor (paper §7.2)");
    defs_.back().modelKind = static_cast<int>(ModelKind::Predictor);

    boolean("hermes.enabled",
            [](SystemConfig &c) -> auto & { return c.hermesIssueEnabled; },
            "issue Hermes requests (false = predictor-only)");
    defs_.back().warmupAffecting = false;
    num("hermes.issue_latency",
        [](SystemConfig &c) -> auto & { return c.hermesIssueLatency; }, 0,
        1000,
        "Hermes request issue latency (Hermes-O 6, Hermes-P 18; "
        "Fig. 17c sweeps)");
    defs_.back().warmupAffecting = false;
    boolean("hermes.warmup_issue",
            [](SystemConfig &c) -> auto & { return c.hermesWarmupIssue; },
            "issue Hermes requests during warmup too (false makes "
            "warmed state independent of the issue path, so "
            "issue-side sweeps share one warmup checkpoint)");
    defs_.back().sparseRender = true;

    num("popet.act_threshold",
        [](SystemConfig &c) -> auto & {
            return c.popet.activationThreshold;
        },
        -1024, 1024, "POPET activation threshold tau_act (Fig. 17e)");
    num("popet.train_threshold_neg",
        [](SystemConfig &c) -> auto & {
            return c.popet.trainingThresholdNeg;
        },
        -1024, 1024, "POPET negative training threshold T_N");
    num("popet.train_threshold_pos",
        [](SystemConfig &c) -> auto & {
            return c.popet.trainingThresholdPos;
        },
        -1024, 1024, "POPET positive training threshold T_P");
    boolean("popet.train_on_mispredict",
            [](SystemConfig &c) -> auto & {
                return c.popet.trainOnMispredict;
            },
            "also train on mispredictions outside [T_N, T_P]");
    num("popet.weight_bits",
        [](SystemConfig &c) -> auto & { return c.popet.weightBits; }, 2,
        8, "POPET perceptron weight width (bits)");
    num("popet.feature_mask",
        [](SystemConfig &c) -> auto & { return c.popet.featureMask; }, 1,
        31, "bitmask of enabled POPET features (Fig. 10/11 ablations)");
    num("popet.page_buffer_entries",
        [](SystemConfig &c) -> auto & {
            return c.popet.pageBufferEntries;
        },
        1, 65536, "POPET first-access page buffer entries");

    num("hmp.local_histories",
        [](SystemConfig &c) -> auto & { return c.hmp.localHistories; }, 1,
        1 << 20, "HMP per-PC history registers", true);
    num("hmp.local_history_bits",
        [](SystemConfig &c) -> auto & { return c.hmp.localHistoryBits; },
        1, 16, "HMP local history length (bits)");
    num("hmp.local_counters",
        [](SystemConfig &c) -> auto & { return c.hmp.localCounters; }, 1,
        1 << 24, "HMP local pattern table counters", true);
    num("hmp.gshare_counters",
        [](SystemConfig &c) -> auto & { return c.hmp.gshareCounters; }, 1,
        1 << 24, "HMP gshare table counters", true);
    num("hmp.global_history_bits",
        [](SystemConfig &c) -> auto & { return c.hmp.globalHistoryBits; },
        1, 31, "HMP global history length (bits)");
    num("hmp.gskew_counters",
        [](SystemConfig &c) -> auto & { return c.hmp.gskewCounters; }, 1,
        1 << 24, "HMP gskew counters per skewed bank", true);
    num("hmp.counter_bits",
        [](SystemConfig &c) -> auto & { return c.hmp.counterBits; }, 1, 8,
        "HMP saturating counter width (bits)");

    num("ttp.sets", [](SystemConfig &c) -> auto & { return c.ttp.sets; },
        1, 1 << 24, "TTP tag-table sets", true);
    num("ttp.ways", [](SystemConfig &c) -> auto & { return c.ttp.ways; },
        1, 64, "TTP tag-table associativity");
    num("ttp.tag_bits",
        [](SystemConfig &c) -> auto & { return c.ttp.tagBits; }, 1, 16,
        "TTP partial tag width (bits)");

    num("dram.channels",
        [](SystemConfig &c) -> auto & { return c.dram.channels; }, 1, 64,
        "DRAM channels");
    num("dram.ranks_per_channel",
        [](SystemConfig &c) -> auto & { return c.dram.ranksPerChannel; },
        1, 8, "DRAM ranks per channel");
    num("dram.banks_per_rank",
        [](SystemConfig &c) -> auto & { return c.dram.banksPerRank; }, 1,
        64, "DRAM banks per rank");
    size("dram.row_buffer_bytes",
         [](SystemConfig &c) -> auto & { return c.dram.rowBufferBytes; },
         64, 1 << 20, "DRAM row buffer size (accepts K/M/G)");
    num("dram.core_freq_mhz",
        [](SystemConfig &c) -> auto & { return c.dram.coreFreqMhz; }, 500,
        10000, "core clock used to convert DRAM timings (MHz)");
    num("dram.mtps",
        [](SystemConfig &c) -> auto & { return c.dram.mtps; }, 400, 25600,
        "DRAM transfer rate (MT/s; Fig. 17a sweeps)");
    num("dram.t_rcd",
        [](SystemConfig &c) -> auto & { return c.dram.tRcd; }, 1, 1000,
        "row-to-column delay (core cycles)");
    num("dram.t_rp", [](SystemConfig &c) -> auto & { return c.dram.tRp; },
        1, 1000, "row precharge time (core cycles)");
    num("dram.t_cas",
        [](SystemConfig &c) -> auto & { return c.dram.tCas; }, 1, 1000,
        "column access latency (core cycles)");
    num("dram.rq_size",
        [](SystemConfig &c) -> auto & { return c.dram.rqSize; }, 4, 4096,
        "read-queue entries per channel");
    num("dram.wq_size",
        [](SystemConfig &c) -> auto & { return c.dram.wqSize; }, 4, 4096,
        "write-queue entries per channel");
}

const ParamRegistry &
ParamRegistry::instance()
{
    static const ParamRegistry reg;
    return reg;
}

const ParamDef *
ParamRegistry::find(const std::string &key) const
{
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &defs_[it->second];
}

std::string
ParamRegistry::nearestKey(const std::string &key) const
{
    std::string best;
    std::size_t best_dist = ~std::size_t{0};
    auto consider = [&](const std::string &cand) {
        const std::size_t dist = editDistance(key, cand);
        if (dist < best_dist) {
            best_dist = dist;
            best = cand;
        }
    };
    for (const ParamDef &d : defs_)
        consider(d.key);
    // Registered model knobs are addressable keys too.
    for (const std::string &k : ModelRegistry::instance().knobKeys())
        consider(k);
    return best;
}

const ParamDef &
ParamRegistry::findOrThrow(const std::string &key) const
{
    const ParamDef *d = find(key);
    if (d == nullptr) {
        std::string msg = "unknown parameter '" + key + "'";
        const std::string near = nearestKey(key);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        throw std::invalid_argument(msg);
    }
    return *d;
}

namespace
{

/** Validate a registered-knob value against its declaration. */
void
applyModelKnob(SystemConfig &cfg, const std::string &key,
               const std::string &value, const ModelKnob &knob)
{
    auto rangeCheck = [&](double v) {
        if (v < knob.minValue || v > knob.maxValue) {
            char lo[32], hi[32];
            std::snprintf(lo, sizeof(lo), "%g", knob.minValue);
            std::snprintf(hi, sizeof(hi), "%g", knob.maxValue);
            throw std::invalid_argument(key + ": value " + value +
                                        " out of range [" + lo + ", " +
                                        hi + "]");
        }
    };
    switch (knob.type) {
      case ModelKnob::Type::Int: {
        const auto v = parseInt64(value);
        if (!v)
            throw std::invalid_argument(key + ": expected an integer, "
                                              "got '" +
                                        value + "'");
        rangeCheck(static_cast<double>(*v));
        if (knob.powerOfTwo && (*v <= 0 || (*v & (*v - 1)) != 0))
            throw std::invalid_argument(key + ": value " + value +
                                        " must be a power of two");
        break;
      }
      case ModelKnob::Type::Bool: {
        if (!parseBoolWord(value))
            throw std::invalid_argument(key + ": expected a boolean, "
                                              "got '" +
                                        value + "'");
        break;
      }
      case ModelKnob::Type::Double: {
        const auto v = parseFiniteDouble(value);
        if (!v)
            throw std::invalid_argument(key + ": expected a number, "
                                              "got '" +
                                        value + "'");
        rangeCheck(*v);
        break;
      }
    }
    cfg.modelKnobs[key] = value;
}

} // namespace

void
ParamRegistry::apply(SystemConfig &cfg, const std::string &key,
                     const std::string &value) const
{
    const ParamDef *d = find(key);
    if (d == nullptr) {
        // Not a core parameter: maybe a registered model knob
        // ("pred.<model>.<knob>") or a corpus-generator knob
        // ("corpus.<gen>.<knob>") — both sparse maps, so untouched
        // configurations render (and fingerprint) unchanged.
        if (const auto kref = ModelRegistry::instance().findKnob(key)) {
            applyModelKnob(cfg, key, value, *kref.knob);
            return;
        }
        if (key.rfind("corpus.", 0) == 0) {
            validateCorpusOverride(key, value); // throws on any defect
            cfg.corpusKnobs[key] = value;
            return;
        }
        d = &findOrThrow(key); // throws with a nearest-key suggestion
    }

    auto rangeCheck = [&](double v) {
        if (v < d->minValue || v > d->maxValue)
            throw std::invalid_argument(
                key + ": value " + value + " out of range [" +
                boundStr(d->minValue) + ", " + boundStr(d->maxValue) +
                "]");
    };
    auto pow2Check = [&](std::uint64_t v) {
        if (d->powerOfTwo && (v == 0 || (v & (v - 1)) != 0))
            throw std::invalid_argument(key + ": value " + value +
                                        " must be a power of two");
    };

    switch (d->type) {
      case ParamType::Int: {
        const auto v = parseInt64(value);
        if (!v)
            throw std::invalid_argument(key + ": expected an integer, "
                                              "got '" +
                                        value + "'");
        rangeCheck(static_cast<double>(*v));
        pow2Check(static_cast<std::uint64_t>(*v));
        break;
      }
      case ParamType::UInt: {
        // parseUint64 itself bounds the value to [0, UINT64_MAX].
        if (!parseUint64(value))
            throw std::invalid_argument(
                key + ": expected an unsigned integer, got '" + value +
                "'");
        break;
      }
      case ParamType::Size: {
        const auto v = parseSizeBytes(value);
        if (!v)
            throw std::invalid_argument(
                key + ": expected a byte count (K/M/G suffixes "
                      "allowed), got '" +
                value + "'");
        rangeCheck(static_cast<double>(*v));
        pow2Check(*v);
        break;
      }
      case ParamType::Bool: {
        if (!parseBoolWord(value))
            throw std::invalid_argument(key + ": expected a boolean, "
                                              "got '" +
                                        value + "'");
        break;
      }
      case ParamType::Enum: {
        bool ok = std::find(d->choices.begin(), d->choices.end(),
                            value) != d->choices.end();
        if (!ok && d->modelKind >= 0) {
            // Model-selection keys consult the live registry so models
            // registered after this snapshot remain selectable —
            // findOrThrow supplies the nearest-name suggestion.
            const auto kind = static_cast<ModelKind>(d->modelKind);
            if (ModelRegistry::instance().find(kind, value) == nullptr)
                ModelRegistry::instance().findOrThrow(kind, value);
            ok = true;
        }
        if (!ok)
            throw std::invalid_argument(key + ": '" + value +
                                        "' is not one of " +
                                        joinChoices(d->choices));
        break;
      }
    }
    d->set(cfg, value);
}

std::string
ParamRegistry::describe() const
{
    std::size_t key_w = 0, type_w = 0, dflt_w = 0, range_w = 0,
                warm_w = 0;
    struct Row
    {
        std::string key, type, dflt, range, warm, doc;
    };
    std::vector<Row> rows;
    for (const ParamDef &d : defs_) {
        Row r;
        r.key = d.key;
        r.type = d.typeName();
        r.dflt = d.defaultValue();
        // "warm" keys shape warmed state (change = new warmup
        // checkpoint); "gated" ones only do while Hermes issues during
        // warmup (hermes.warmup_issue=true).
        r.warm = d.warmupAffecting ? "warm" : "gated";
        switch (d.type) {
          case ParamType::Int:
          case ParamType::Size:
            r.range = "[" + boundStr(d.minValue) + ", " +
                      boundStr(d.maxValue) + "]" +
                      (d.powerOfTwo ? " pow2" : "");
            break;
          case ParamType::UInt:
            r.range = "[0, " + std::to_string(UINT64_MAX) + "]";
            break;
          case ParamType::Bool:
            r.range = "true|false";
            break;
          case ParamType::Enum:
            r.range = joinChoices(d.choices);
            break;
        }
        r.doc = d.doc;
        key_w = std::max(key_w, r.key.size());
        type_w = std::max(type_w, r.type.size());
        dflt_w = std::max(dflt_w, r.dflt.size());
        range_w = std::max(range_w, r.range.size());
        warm_w = std::max(warm_w, r.warm.size());
        rows.push_back(std::move(r));
    }

    std::string out;
    char buf[512];
    for (const Row &r : rows) {
        std::snprintf(buf, sizeof(buf),
                      "%-*s  %-*s  %-*s  %-*s  %-*s  %s\n",
                      static_cast<int>(key_w), r.key.c_str(),
                      static_cast<int>(type_w), r.type.c_str(),
                      static_cast<int>(dflt_w), r.dflt.c_str(),
                      static_cast<int>(range_w), r.range.c_str(),
                      static_cast<int>(warm_w), r.warm.c_str(),
                      r.doc.c_str());
        out += buf;
    }
    return out;
}

SystemConfig
SystemConfig::fromConfig(const Config &config)
{
    const ParamRegistry &reg = ParamRegistry::instance();
    // system.cores seeds the baseline so derived defaults (DRAM
    // channels/ranks scale with the core count) match the struct API;
    // explicit dram.* keys still override them afterwards.
    SystemConfig probe = SystemConfig::baseline(1);
    if (const auto cores = config.getString("system.cores"))
        reg.apply(probe, "system.cores", *cores);
    SystemConfig cfg = SystemConfig::baseline(probe.numCores);
    for (const std::string &key : config.keys()) {
        if (key == "system.cores")
            continue;
        reg.apply(cfg, key, *config.getString(key));
    }
    return cfg;
}

Config
SystemConfig::toConfig() const
{
    Config out;
    for (const ParamDef &d : ParamRegistry::instance().params()) {
        const std::string value = d.get(*this);
        // Sparse keys render only off-default, keeping the rendered
        // configuration — and every pinned pointFingerprint golden —
        // byte-identical for configurations that never set them.
        if (d.sparseRender && value == d.defaultValue())
            continue;
        out.set(d.key, value);
    }
    // Explicitly-set model knobs only (std::map iterates sorted, so
    // the rendering — and the sweep fingerprint — is deterministic);
    // untouched configurations render exactly as before the registry.
    for (const auto &[key, value] : modelKnobs)
        out.set(key, value);
    for (const auto &[key, value] : corpusKnobs)
        out.set(key, value);
    return out;
}

std::string
describeScenarioSpace()
{
    auto fromDef = [](const char *key) {
        return joinChoices(
            ParamRegistry::instance().find(key)->choices);
    };
    std::string out;
    out += "predictors:  " + fromDef("predictor") + "\n";
    out += "prefetchers: " + fromDef("prefetcher") + "\n";
    out += "replacement: " + fromDef("llc.repl") + "\n";
    for (const char *suite_name : {"quick", "full"}) {
        const auto specs = std::string(suite_name) == "quick"
                               ? quickSuite()
                               : fullSuite();
        out += "suite " + std::string(suite_name) + " (" +
               std::to_string(specs.size()) + " traces):\n";
        for (const auto &spec : specs)
            out += "  " + spec.name() + " (" + spec.category() + ")\n";
    }
    out += describeCorpus();
    out += "parameters (key  type  default  range  warmup  doc):\n";
    out += ParamRegistry::instance().describe();
    return out;
}

void
applyOverride(SystemConfig &cfg, const std::string &kv)
{
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("expected key=value, got '" + kv +
                                    "'");
    ParamRegistry::instance().apply(cfg, kv.substr(0, eq),
                                    kv.substr(eq + 1));
}

SystemConfig
configWith(SystemConfig base, const std::vector<std::string> &kvs)
{
    for (const std::string &kv : kvs)
        applyOverride(base, kv);
    return base;
}

} // namespace hermes
