#include "sim/model_registry.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/config.hh"
#include "sim/param_registry.hh"
#include "sim/system.hh"

namespace hermes
{

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Predictor:
        return "predictor";
      case ModelKind::Prefetcher:
        return "prefetcher";
      case ModelKind::Replacement:
        return "replacement";
    }
    return "?";
}

const char *
modelKnobPrefix(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Predictor:
        return "pred";
      case ModelKind::Prefetcher:
        return "pref";
      case ModelKind::Replacement:
        return "repl";
    }
    return "?";
}

const char *
ModelKnob::typeName() const
{
    switch (type) {
      case Type::Int:
        return "int";
      case Type::Bool:
        return "bool";
      case Type::Double:
        return "double";
    }
    return "?";
}

std::string
ModelDef::knobKey(const ModelKnob &knob) const
{
    return std::string(modelKnobPrefix(kind)) + "." + name + "." +
           knob.name;
}

namespace
{

/** Names are dotted-key segments: lowercase alnum and underscores. */
bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name)
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_'))
            return false;
    return true;
}

const std::string &
knobRaw(const ModelContext &ctx, const std::string &name,
        const ModelKnob *&knob_out)
{
    if (ctx.model == nullptr || ctx.config == nullptr)
        throw std::logic_error("ModelContext used outside the registry");
    for (const ModelKnob &k : ctx.model->knobs) {
        if (k.name != name)
            continue;
        knob_out = &k;
        const auto it =
            ctx.config->modelKnobs.find(ctx.model->knobKey(k));
        return it != ctx.config->modelKnobs.end() ? it->second
                                                  : k.defaultValue;
    }
    throw std::logic_error("model '" + ctx.model->name +
                           "' reads undeclared knob '" + name + "'");
}

} // namespace

std::int64_t
ModelContext::knobInt(const std::string &name) const
{
    const ModelKnob *k = nullptr;
    const std::string &raw = knobRaw(*this, name, k);
    return *parseInt64(raw);
}

bool
ModelContext::knobBool(const std::string &name) const
{
    const ModelKnob *k = nullptr;
    const std::string &raw = knobRaw(*this, name, k);
    return *parseBoolWord(raw);
}

double
ModelContext::knobDouble(const std::string &name) const
{
    const ModelKnob *k = nullptr;
    const std::string &raw = knobRaw(*this, name, k);
    return *parseFiniteDouble(raw);
}

ModelRegistry &
ModelRegistry::instance()
{
    static ModelRegistry reg;
    return reg;
}

void
ModelRegistry::add(ModelDef def)
{
    if (!validName(def.name))
        throw std::invalid_argument(
            "model name '" + def.name +
            "' must be lowercase alnum/underscore");
    const int factories = (def.makePredictor ? 1 : 0) +
                          (def.makePrefetcher ? 1 : 0) +
                          (def.makeReplacement ? 1 : 0);
    const bool kind_matches =
        (def.kind == ModelKind::Predictor && def.makePredictor) ||
        (def.kind == ModelKind::Prefetcher && def.makePrefetcher) ||
        (def.kind == ModelKind::Replacement && def.makeReplacement);
    if (factories != 1 || !kind_matches)
        throw std::invalid_argument(
            "model '" + def.name +
            "' must provide exactly the factory matching its kind");
    const auto key =
        std::make_pair(static_cast<int>(def.kind), def.name);
    if (index_.count(key) != 0)
        throw std::invalid_argument(
            std::string(modelKindName(def.kind)) + " '" + def.name +
            "' is already registered");
    for (const ModelKnob &k : def.knobs) {
        if (!validName(k.name))
            throw std::invalid_argument(
                "model '" + def.name + "': knob name '" + k.name +
                "' must be lowercase alnum/underscore");
        if (k.doc.empty())
            throw std::invalid_argument("model '" + def.name +
                                        "': knob '" + k.name +
                                        "' needs a doc string");
        // The declared default must survive its own validation.
        bool ok = false;
        switch (k.type) {
          case ModelKnob::Type::Int: {
            const auto v = parseInt64(k.defaultValue);
            ok = v && static_cast<double>(*v) >= k.minValue &&
                 static_cast<double>(*v) <= k.maxValue &&
                 (!k.powerOfTwo ||
                  (*v > 0 && (*v & (*v - 1)) == 0));
            break;
          }
          case ModelKnob::Type::Bool:
            ok = parseBoolWord(k.defaultValue).has_value();
            break;
          case ModelKnob::Type::Double: {
            const auto v = parseFiniteDouble(k.defaultValue);
            ok = v && *v >= k.minValue && *v <= k.maxValue;
            break;
          }
        }
        if (!ok)
            throw std::invalid_argument(
                "model '" + def.name + "': knob '" + k.name +
                "' default '" + k.defaultValue +
                "' fails its own validation");
    }

    const std::size_t idx = defs_.size();
    defs_.push_back(std::move(def));
    index_[key] = idx;
    for (std::size_t ki = 0; ki < defs_[idx].knobs.size(); ++ki) {
        const std::string full =
            defs_[idx].knobKey(defs_[idx].knobs[ki]);
        if (knobIndex_.count(full) != 0)
            throw std::invalid_argument("duplicate knob key '" + full +
                                        "'");
        knobIndex_[full] = {idx, ki};
    }
}

std::vector<const ModelDef *>
ModelRegistry::models(ModelKind kind) const
{
    std::vector<const ModelDef *> out;
    for (const ModelDef &d : defs_)
        if (d.kind == kind)
            out.push_back(&d);
    std::sort(out.begin(), out.end(),
              [](const ModelDef *a, const ModelDef *b) {
                  return a->name < b->name;
              });
    return out;
}

std::vector<std::string>
ModelRegistry::names(ModelKind kind) const
{
    std::vector<std::string> out;
    for (const ModelDef *d : models(kind))
        out.push_back(d->name);
    return out;
}

const ModelDef *
ModelRegistry::find(ModelKind kind, const std::string &name) const
{
    const auto it =
        index_.find(std::make_pair(static_cast<int>(kind), name));
    return it == index_.end() ? nullptr : &defs_[it->second];
}

const ModelDef &
ModelRegistry::findOrThrow(ModelKind kind, const std::string &name) const
{
    if (const ModelDef *d = find(kind, name))
        return *d;
    std::string msg = std::string("unknown ") + modelKindName(kind) +
                      " '" + name + "'";
    std::string best;
    std::size_t best_dist = ~std::size_t{0};
    for (const std::string &cand : names(kind)) {
        const std::size_t dist = editDistance(name, cand);
        if (dist < best_dist) {
            best_dist = dist;
            best = cand;
        }
    }
    if (!best.empty())
        msg += "; did you mean '" + best + "'?";
    throw std::invalid_argument(msg);
}

ModelRegistry::KnobRef
ModelRegistry::findKnob(const std::string &key) const
{
    const auto it = knobIndex_.find(key);
    if (it == knobIndex_.end())
        return {};
    KnobRef ref;
    ref.model = &defs_[it->second.first];
    ref.knob = &ref.model->knobs[it->second.second];
    return ref;
}

std::vector<std::string>
ModelRegistry::knobKeys() const
{
    std::vector<std::string> out;
    for (const auto &entry : knobIndex_)
        out.push_back(entry.first);
    return out;
}

std::unique_ptr<OffChipPredictor>
ModelRegistry::makePredictor(const std::string &name,
                             ModelContext ctx) const
{
    const ModelDef &d = findOrThrow(ModelKind::Predictor, name);
    ctx.model = &d;
    return d.makePredictor(ctx);
}

std::unique_ptr<Prefetcher>
ModelRegistry::makePrefetcher(const std::string &name,
                              ModelContext ctx) const
{
    const ModelDef &d = findOrThrow(ModelKind::Prefetcher, name);
    ctx.model = &d;
    return d.makePrefetcher(ctx);
}

std::unique_ptr<ReplacementPolicy>
ModelRegistry::makeReplacement(const std::string &name,
                               ModelContext ctx) const
{
    const ModelDef &d = findOrThrow(ModelKind::Replacement, name);
    ctx.model = &d;
    return d.makeReplacement(ctx);
}

std::string
ModelRegistry::describe() const
{
    // One block per model, sorted by kind then name (deterministic
    // regardless of registration order — this output is pinned in the
    // README model reference and gated by tools/check_model_docs.sh).
    struct KnobRow
    {
        std::string key, type, dflt, range, doc;
    };
    auto boundStr = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", v);
        return std::string(buf);
    };

    std::string out;
    for (const ModelKind kind :
         {ModelKind::Predictor, ModelKind::Prefetcher,
          ModelKind::Replacement}) {
        for (const ModelDef *d : models(kind)) {
            if (!out.empty())
                out += "\n";
            out += std::string(modelKindName(kind)) + " " + d->name +
                   " — " + d->doc + "\n";

            std::vector<KnobRow> rows;
            // Legacy typed-struct parameters first (they predate the
            // registry and keep their original keys), then the
            // auto-exposed knobs.
            for (const std::string &key : d->legacyKeys) {
                const ParamDef *p = ParamRegistry::instance().find(key);
                if (p == nullptr)
                    continue;
                KnobRow r;
                r.key = key;
                r.type = p->typeName();
                r.dflt = p->defaultValue();
                switch (p->type) {
                  case ParamType::Int:
                  case ParamType::Size:
                    r.range = "[" + boundStr(p->minValue) + ", " +
                              boundStr(p->maxValue) + "]" +
                              (p->powerOfTwo ? " pow2" : "");
                    break;
                  case ParamType::UInt:
                    r.range = "[0, 2^64)";
                    break;
                  case ParamType::Bool:
                    r.range = "true|false";
                    break;
                  case ParamType::Enum: {
                    for (const std::string &c : p->choices)
                        r.range +=
                            (r.range.empty() ? "" : "|") + c;
                    break;
                  }
                }
                r.doc = p->doc;
                rows.push_back(std::move(r));
            }
            for (const ModelKnob &k : d->knobs) {
                KnobRow r;
                r.key = d->knobKey(k);
                r.type = k.typeName();
                r.dflt = k.defaultValue;
                switch (k.type) {
                  case ModelKnob::Type::Int:
                  case ModelKnob::Type::Double:
                    r.range = "[" + boundStr(k.minValue) + ", " +
                              boundStr(k.maxValue) + "]" +
                              (k.powerOfTwo ? " pow2" : "");
                    break;
                  case ModelKnob::Type::Bool:
                    r.range = "true|false";
                    break;
                }
                r.doc = k.doc;
                rows.push_back(std::move(r));
            }

            std::size_t key_w = 0, type_w = 0, dflt_w = 0, range_w = 0;
            for (const KnobRow &r : rows) {
                key_w = std::max(key_w, r.key.size());
                type_w = std::max(type_w, r.type.size());
                dflt_w = std::max(dflt_w, r.dflt.size());
                range_w = std::max(range_w, r.range.size());
            }
            char buf[512];
            for (const KnobRow &r : rows) {
                std::snprintf(buf, sizeof(buf),
                              "  knob %-*s  %-*s  %-*s  %-*s  %s\n",
                              static_cast<int>(key_w), r.key.c_str(),
                              static_cast<int>(type_w), r.type.c_str(),
                              static_cast<int>(dflt_w), r.dflt.c_str(),
                              static_cast<int>(range_w),
                              r.range.c_str(), r.doc.c_str());
                out += buf;
            }
            if (d->counters.empty()) {
                out += "  counters: (none)\n";
            } else {
                out += "  counters: ";
                for (std::size_t i = 0; i < d->counters.size(); ++i)
                    out += (i ? ", " : "") + d->counters[i];
                out += "\n";
            }
        }
    }
    return out;
}

std::vector<std::string>
predictorCounterKeys()
{
    return {"pred.tp",       "pred.fp",        "pred.fn",
            "pred.tn",       "pred.accuracy",  "pred.coverage",
            "hermes.scheduled", "hermes.served", "hermes.served_rate"};
}

std::vector<std::string>
prefetcherCounterKeys()
{
    return {"pf.issued",     "pf.useful",      "pf.useless",
            "llc.pf_issued", "llc.pf_fills",   "llc.pf_useful",
            "llc.pf_useless", "llc.mshr_late_pf"};
}

std::vector<std::string>
replacementCounterKeys()
{
    return {"llc.evictions", "llc.dirty_evictions", "llc.hit_rate",
            "llc.mpki"};
}

} // namespace hermes
