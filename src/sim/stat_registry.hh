#pragma once

/**
 * @file
 * Schema'd statistics registry: the output-side twin of the parameter
 * registry. Every RunStats field — raw counters (scalar and per-core),
 * configuration echoes and derived metrics (IPC, MPKI, predictor
 * accuracy/coverage, DRAM bandwidth utilization, Hermes rates, power)
 * — is bound to a dotted string key ("core.instrs", "llc.mpki",
 * "pred.accuracy", "dram.bw_util", ...) with a type, an aggregation
 * rule, a doc string and a fingerprint-inclusion flag.
 *
 * Everything that renders or persists statistics funnels through this
 * schema: the CSV/JSON rows in sim/report, statsFingerprint(), the
 * sweep journal's stats codec (via codecPlan()), the CLIs'
 * --stats/--list-stats column selection and the bench harness dumps.
 * Declaring one row here makes a new counter journal-codec'd,
 * CSV-emittable, selectable and documented at once.
 *
 * Per-core statistics are addressable in two forms: the bare key
 * ("core.instrs") is the across-cores aggregate, and an index inserted
 * after the first segment ("core.0.instrs", "pred.2.accuracy") reads
 * one core. Out-of-range indices read as 0, so placeholder rows from
 * partial shards render as zeros instead of exploding.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace hermes
{

/** Value category of one registered statistic. */
enum class StatType : std::uint8_t
{
    U64, ///< Exact integer counter
    F64, ///< Real-valued (derived or host-side) metric
};

/** How one statistic relates to the underlying counters. */
enum class StatAgg : std::uint8_t
{
    Total,   ///< One counter for the whole run
    PerCore, ///< Stored per core; the bare key sums across cores
    Derived, ///< Computed from other statistics (zero-safe)
    Config,  ///< Run metadata echoed from the configuration
    Host,    ///< Host-side measurement (non-deterministic)
};

/** Schema entry for one RunStats statistic. */
struct StatDef
{
    std::string key;
    StatType type = StatType::U64;
    StatAgg agg = StatAgg::Total;
    std::string doc;
    /** Hashed by statsFingerprint() (raw deterministic counters). */
    bool inFingerprint = false;

    /** Aggregate value (sum across cores for PerCore statistics). */
    std::function<std::uint64_t(const RunStats &)> getU64;
    /** Write one scalar counter (journal decode); null for Derived. */
    std::function<void(RunStats &, std::uint64_t)> setU64;
    /** Per-core read; must return 0 for an out-of-range core. */
    std::function<std::uint64_t(const RunStats &, std::size_t)> getAtU64;
    /** Per-core write; the codec resizes the vector first. */
    std::function<void(RunStats &, std::size_t, std::uint64_t)> setAtU64;
    /** Aggregate real value (Derived/Host statistics). */
    std::function<double(const RunStats &)> getF64;
    /** Optional per-core real value (e.g. core.N.ipc). */
    std::function<double(const RunStats &, std::size_t)> getAtF64;

    const char *typeName() const;
    const char *aggName() const;
    /** True when the statistic has a per-core indexed form. */
    bool perCore() const { return getAtU64 || getAtF64; }
};

/**
 * One step of the journal stats codec (and of statsFingerprint()).
 * The plan linearizes RunStats deterministically: scalars render as
 * "name":value, per-core groups as "name":[[...],...] (flat for a
 * single-statistic group), scalar sections as "name":[...]. The
 * fingerprint walks the same plan, hashing every inFingerprint value
 * in plan order — so codec, fingerprint and schema can never drift.
 */
struct StatCodecItem
{
    enum class Kind : std::uint8_t
    {
        Scalar,  ///< One top-level "name":value
        Group,   ///< Per-core array-of-arrays
        Section, ///< Flat array of scalar counters
    };
    Kind kind = Kind::Scalar;
    std::string name; ///< JSON key in the journal record
    /** Hash the per-core count itself (the "core" group: every other
     * vector's length is implied by it). */
    bool hashCount = false;
    std::vector<const StatDef *> defs;
    /** Vector length (Group). */
    std::function<std::size_t(const RunStats &)> count;
    /** Resize before per-core decode (Group). */
    std::function<void(RunStats &, std::size_t)> resize;
};

/** The process-wide statistics schema (immutable after construction). */
class StatRegistry
{
  public:
    static const StatRegistry &instance();

    /** All statistics, in registration (documentation) order. */
    const std::vector<StatDef> &stats() const { return defs_; }

    /** The journal codec / fingerprint linearization of RunStats. */
    const std::vector<StatCodecItem> &codecPlan() const { return plan_; }

    /** Look a key up; nullptr if unknown. */
    const StatDef *find(const std::string &key) const;

    /**
     * Look a key up; throws std::invalid_argument with a nearest-key
     * suggestion if unknown.
     */
    const StatDef &findOrThrow(const std::string &key) const;

    /** Registered key closest to @p key by edit distance. */
    std::string nearestKey(const std::string &key) const;

    /**
     * Human-readable table of every key: type, aggregation,
     * fingerprint flag and doc string (the --list-stats output).
     */
    std::string describe() const;

  private:
    StatRegistry();

    std::vector<StatDef> defs_;
    std::vector<StatCodecItem> plan_;
    std::map<std::string, std::size_t> index_;
};

/**
 * One rendered output column: a registered statistic, optionally
 * pinned to a single core (the "core.N.ipc" form).
 */
struct StatColumn
{
    /** Column header: the key with dots as underscores. */
    std::string name;
    const StatDef *def = nullptr;
    /** >= 0 selects one core of a per-core statistic. */
    int coreIndex = -1;
};

/**
 * The legacy aggregate column set every CSV/JSON row used before the
 * registry existed — column names are pinned ("ipc", "llc_mpki", ...)
 * so existing dumps and downstream scripts stay byte-identical.
 * @p with_host_perf appends the non-deterministic sim_mips /
 * host_seconds columns (the --mips opt-in).
 */
std::vector<StatColumn> defaultStatColumns(bool with_host_perf = false);

/**
 * Parse a --stats column list: comma-separated keys, indexed per-core
 * keys ("core.0.ipc") and '*'/'?' globs over registered keys
 * ("dram.*", expanded in registration order). Throws
 * std::invalid_argument on unknown keys (with a nearest-key
 * suggestion), non-per-core indexed keys and globs matching nothing.
 */
std::vector<StatColumn> selectStatColumns(const std::string &spec);

/**
 * Append the sim_mips/host_seconds columns unless already selected:
 * --mips keeps its documented dump columns when combined with a
 * --stats selection.
 */
void appendHostPerfColumns(std::vector<StatColumn> &columns);

/**
 * Rendered value of one column, using the same numeric formatting the
 * CSV/JSON emitters always used (integers exact, reals at 6
 * significant digits).
 */
std::string statColumnValue(const StatColumn &col, const RunStats &stats);

/** Aggregate value of a registered integer statistic. */
std::uint64_t statU64(const RunStats &stats, const std::string &key);

/**
 * Aggregate value of any registered statistic as a double (integer
 * counters convert; use for derived metrics like "dram.bw_util").
 */
double statF64(const RunStats &stats, const std::string &key);

} // namespace hermes
