#pragma once

/**
 * @file
 * Schema'd parameter registry: every field of SystemConfig and its
 * nested parameter structs (CoreParams, cache geometry, PopetParams,
 * HmpParams, TtpParams, DramParams, Hermes knobs) is bound to a dotted
 * string key ("llc.ways", "popet.act_threshold", "dram.channels", ...)
 * with a type, a default, a valid range and a doc string.
 *
 * This is what makes every experiment expressible as strings: the
 * hermes_run CLI, .ini scenario files and the string-driven sweep axes
 * (sweep/axis.hh) all funnel through ParamRegistry::apply(), which
 * validates and writes one key into a SystemConfig. Unknown keys fail
 * with a nearest-key suggestion; out-of-range values and
 * non-power-of-two geometry are rejected before they can build a
 * malformed System.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace hermes
{

class Config;

/** Value category of one registered parameter. */
enum class ParamType : std::uint8_t
{
    Int,  ///< Integer (strict parse; decimal, hex or octal)
    UInt, ///< Full-range uint64 (seeds); no further range constraint
    Size, ///< Byte count; accepts K/M/G suffixes (powers of 1024)
    Bool, ///< true/false, yes/no, on/off, 1/0
    Enum, ///< One of a fixed set of names
};

/** Schema entry for one SystemConfig field. */
struct ParamDef
{
    std::string key;
    ParamType type = ParamType::Int;
    std::string doc;
    /** Inclusive numeric bounds (Int/Size). */
    double minValue = 0;
    double maxValue = 0;
    /** Geometry indexed with masks must be a power of two. */
    bool powerOfTwo = false;
    /** Valid names (Enum). */
    std::vector<std::string> choices;
    /**
     * ModelKind (as int) for the model-selection keys ("predictor",
     * "prefetcher", "llc.repl"); -1 otherwise. Selection keys validate
     * against the live ModelRegistry rather than the choices snapshot,
     * so models registered after this registry was built (tests,
     * embedders) remain selectable.
     */
    int modelKind = -1;
    /**
     * Does this key shape the warmed (post-warmup) machine state? The
     * warmup-checkpoint fingerprint (sim/simulator.hh) hashes exactly
     * the warmup-affecting keys, so a sweep over measure-only keys can
     * share one checkpoint. False only for the Hermes issue-side keys
     * ("hermes.enabled", "hermes.issue_latency"), and even those count
     * as warmup-affecting while Hermes issues during warmup
     * (hermes.warmup_issue=true, the legacy default).
     */
    bool warmupAffecting = true;
    /**
     * Render this key in toConfig() only when it differs from its
     * default. Keys added after the sweep goldens were pinned must be
     * sparse: pointFingerprint hashes the full rendered configuration,
     * so an always-rendered new key would shift every golden.
     */
    bool sparseRender = false;

    /** Current value of the field, in re-parseable string form. */
    std::function<std::string(const SystemConfig &)> get;
    /** Assign a *pre-validated* value string to the field. */
    std::function<void(SystemConfig &, const std::string &)> set;

    const char *typeName() const;
    /** The field's value in SystemConfig::baseline(1). */
    std::string defaultValue() const;
};

/** The process-wide schema (immutable after construction). */
class ParamRegistry
{
  public:
    static const ParamRegistry &instance();

    /** All parameters, in registration (documentation) order. */
    const std::vector<ParamDef> &params() const { return defs_; }

    /** Look a key up; nullptr if unknown. */
    const ParamDef *find(const std::string &key) const;

    /**
     * Look a key up; throws std::invalid_argument with a nearest-key
     * suggestion if unknown.
     */
    const ParamDef &findOrThrow(const std::string &key) const;

    /** Registered key closest to @p key by edit distance. */
    std::string nearestKey(const std::string &key) const;

    /**
     * Validate @p value against the schema and write it into @p cfg.
     * Throws std::invalid_argument on unknown key (with nearest-key
     * suggestion), parse failure, out-of-range value or
     * non-power-of-two geometry.
     */
    void apply(SystemConfig &cfg, const std::string &key,
               const std::string &value) const;

    /**
     * Human-readable table of every key: type, default, range/choices
     * and doc string (the --list-params output).
     */
    std::string describe() const;

  private:
    ParamRegistry();

    std::vector<ParamDef> defs_;
    std::map<std::string, std::size_t> index_;
};

/**
 * The full discovery listing shared by `hermes_run --list` and the
 * bench harness: predictors, prefetchers, replacement policies, trace
 * suites and the parameter table.
 */
std::string describeScenarioSpace();

/** Apply one "key=value" override string (throws on any error). */
void applyOverride(SystemConfig &cfg, const std::string &kv);

/** Copy of @p base with a list of "key=value" overrides applied. */
SystemConfig configWith(SystemConfig base,
                        const std::vector<std::string> &kvs);

} // namespace hermes
