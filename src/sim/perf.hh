#pragma once

/**
 * @file
 * Host-side performance instrumentation for simulation runs: a
 * monotonic stopwatch and the per-run throughput record (simulated
 * instructions per host wall-clock second, reported as MIPS).
 *
 * The numbers here describe the *simulator*, not the simulated
 * machine: they are intentionally excluded from statsFingerprint() and
 * from the default CSV/JSON columns so that determinism checks and
 * paired sweeps stay reproducible. The bench harness opts into them
 * with --mips, and bench/perf_gate builds its throughput gate on them.
 */

#include <chrono>
#include <cstdint>

namespace hermes
{

/** Simulator throughput over one System::run invocation. */
struct HostPerf
{
    /** Wall-clock seconds spent inside run() (warmup + measurement). */
    double seconds = 0;
    /** Instructions executed by run(), including the warmup window. */
    std::uint64_t instrs = 0;

    /** Simulated millions of instructions per host second. */
    double
    mips() const
    {
        return seconds > 0 ? static_cast<double>(instrs) / seconds / 1e6
                           : 0.0;
    }
};

/**
 * Per-component host-time attribution for one run (System `--profile`
 * mode, enabled by the HERMES_PROFILE environment variable). The cycle
 * counters are maintained on every run (they are cheap and make the
 * event-horizon skip ratio observable); the per-component seconds are
 * only accumulated when profiling is enabled, because they cost two
 * clock reads per pipeline stage per cycle. Like HostPerf, all of this
 * describes the simulator, never the simulated machine, and is
 * excluded from statsFingerprint().
 */
struct HostProfile
{
    /** HERMES_PROFILE was set when the System was built. */
    bool enabled = false;
    double dramSeconds = 0;
    double llcSeconds = 0;
    double l2Seconds = 0;
    double l1Seconds = 0;
    /** Cores, including the Hermes controllers they tick. */
    double coreSeconds = 0;
    /** nextEventHorizon() evaluation + fast-forward bookkeeping. */
    double horizonSeconds = 0;
    /** Cycles actually ticked (warmup + measurement). */
    std::uint64_t tickedCycles = 0;
    /** Idle cycles fast-forwarded by the event-horizon loop. */
    std::uint64_t skippedCycles = 0;
};

/** Monotonic stopwatch used to fill HostPerf::seconds. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace hermes
