#include "sim/stat_registry.hh"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/config.hh"
#include "sim/power.hh"
#include "sim/report.hh"

namespace hermes
{

namespace
{

// The codec plan linearizes every field of these structs. If you add a
// field, register it (one StatDef row) — these asserts catch the
// struct growing before the registry does, and the runtime count
// checks in the constructor catch a row going missing. (All-u64
// structs have no padding, so sizeof is an exact field count.)
static_assert(sizeof(CoreStats) == 14 * sizeof(std::uint64_t),
              "CoreStats changed: register the new field");
static_assert(sizeof(CacheStats) == 18 * sizeof(std::uint64_t),
              "CacheStats changed: register the new field");
static_assert(sizeof(DramStats) == 14 * sizeof(std::uint64_t),
              "DramStats changed: register the new field");
static_assert(sizeof(PredictorStats) == 4 * sizeof(std::uint64_t),
              "PredictorStats changed: register the new field");
static_assert(sizeof(BranchStats) == 2 * sizeof(std::uint64_t),
              "BranchStats changed: register the new field");
static_assert(sizeof(PrefetcherStats) == 3 * sizeof(std::uint64_t),
              "PrefetcherStats changed: register the new field");
static_assert(sizeof(HostPerf) == sizeof(double) + sizeof(std::uint64_t),
              "HostPerf changed: update the journal record codec");

/** Classic '*'/'?' glob over a whole key. */
bool
globMatch(const char *pat, const char *s)
{
    for (; *pat != '\0'; ++pat, ++s) {
        if (*pat == '*') {
            while (*(pat + 1) == '*')
                ++pat;
            for (const char *t = s;; ++t) {
                if (globMatch(pat + 1, t))
                    return true;
                if (*t == '\0')
                    return false;
            }
        }
        if (*s == '\0' || (*pat != '?' && *pat != *s))
            return false;
    }
    return *s == '\0';
}

/** The numeric renderings every CSV/JSON row always used. */
std::string
renderU64(std::uint64_t v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string
renderF64(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string
underscored(const std::string &key)
{
    std::string out = key;
    for (char &c : out)
        if (c == '.')
            c = '_';
    return out;
}

} // namespace

const char *
StatDef::typeName() const
{
    switch (type) {
      case StatType::U64:
        return "u64";
      case StatType::F64:
        return "f64";
    }
    return "?";
}

const char *
StatDef::aggName() const
{
    switch (agg) {
      case StatAgg::Total:
        return "total";
      case StatAgg::PerCore:
        return "per-core";
      case StatAgg::Derived:
        return "derived";
      case StatAgg::Config:
        return "config";
      case StatAgg::Host:
        return "host";
    }
    return "?";
}

const StatRegistry &
StatRegistry::instance()
{
    // Intentionally immortal (never destroyed): the bench harness
    // renders its --csv/--json dumps from an atexit handler that can
    // be registered before the registry's first use, so a guarded
    // static would be destroyed first and leave the handler reading
    // freed memory.
    static const StatRegistry *registry = new StatRegistry();
    return *registry;
}

StatRegistry::StatRegistry()
{
    // Tag of the codec container each def belongs to ("" = derived or
    // record-level, not part of the stats codec); parallel to defs_.
    std::vector<std::string> tags;

    auto add = [&](StatDef d, const char *tag) {
        if (index_.count(d.key) != 0)
            throw std::logic_error("duplicate stat key " + d.key);
        index_[d.key] = defs_.size();
        defs_.push_back(std::move(d));
        tags.push_back(tag);
    };

    auto scalar = [&](const char *key, std::uint64_t RunStats::*f,
                      const char *doc, const char *tag) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::Total;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) { return s.*f; };
        d.setU64 = [f](RunStats &s, std::uint64_t v) { s.*f = v; };
        add(std::move(d), tag);
    };

    auto configEcho = [&](const char *key, std::uint64_t RunStats::*f,
                          const char *doc) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::Config;
        d.inFingerprint = false; // keeps the pinned goldens stable
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) { return s.*f; };
        d.setU64 = [f](RunStats &s, std::uint64_t v) { s.*f = v; };
        add(std::move(d), "cfg");
    };

    auto coreCounter = [&](const char *key, std::uint64_t CoreStats::*f,
                           const char *doc) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::PerCore;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) {
            std::uint64_t t = 0;
            for (const CoreStats &c : s.core)
                t += c.*f;
            return t;
        };
        d.getAtU64 = [f](const RunStats &s, std::size_t i) {
            return i < s.core.size() ? s.core[i].*f : 0;
        };
        d.setAtU64 = [f](RunStats &s, std::size_t i, std::uint64_t v) {
            s.core[i].*f = v;
        };
        add(std::move(d), "core");
    };

    auto branchCounter = [&](const char *key,
                             std::uint64_t BranchStats::*f,
                             const char *doc) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::PerCore;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) {
            std::uint64_t t = 0;
            for (const BranchStats &b : s.branch)
                t += b.*f;
            return t;
        };
        d.getAtU64 = [f](const RunStats &s, std::size_t i) {
            return i < s.branch.size() ? s.branch[i].*f : 0;
        };
        d.setAtU64 = [f](RunStats &s, std::size_t i, std::uint64_t v) {
            s.branch[i].*f = v;
        };
        add(std::move(d), "branch");
    };

    auto predCounter = [&](const char *key,
                           std::uint64_t PredictorStats::*f,
                           const char *doc) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::PerCore;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) {
            std::uint64_t t = 0;
            for (const PredictorStats &p : s.predictor)
                t += p.*f;
            return t;
        };
        d.getAtU64 = [f](const RunStats &s, std::size_t i) {
            return i < s.predictor.size() ? s.predictor[i].*f : 0;
        };
        d.setAtU64 = [f](RunStats &s, std::size_t i, std::uint64_t v) {
            s.predictor[i].*f = v;
        };
        add(std::move(d), "pred");
    };

    auto cacheCounter = [&](const std::string &level,
                            CacheStats RunStats::*c,
                            std::uint64_t CacheStats::*f,
                            const char *name, const char *doc) {
        StatDef d;
        d.key = level + "." + name;
        d.type = StatType::U64;
        d.agg = StatAgg::Total;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [c, f](const RunStats &s) { return s.*c.*f; };
        d.setU64 = [c, f](RunStats &s, std::uint64_t v) { s.*c.*f = v; };
        add(std::move(d), level.c_str());
    };

    auto dramCounter = [&](const char *key, std::uint64_t DramStats::*f,
                           const char *doc, const char *tag) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::Total;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) { return s.dram.*f; };
        d.setU64 = [f](RunStats &s, std::uint64_t v) { s.dram.*f = v; };
        add(std::move(d), tag);
    };

    auto pfCounter = [&](const char *key,
                         std::uint64_t PrefetcherStats::*f,
                         const char *doc) {
        StatDef d;
        d.key = key;
        d.type = StatType::U64;
        d.agg = StatAgg::Total;
        d.inFingerprint = true;
        d.doc = doc;
        d.getU64 = [f](const RunStats &s) { return s.prefetch.*f; };
        d.setU64 = [f](RunStats &s, std::uint64_t v) {
            s.prefetch.*f = v;
        };
        add(std::move(d), "pf");
    };

    auto derivedF64 = [&](const char *key, const char *doc,
                          std::function<double(const RunStats &)> get,
                          std::function<double(const RunStats &,
                                               std::size_t)>
                              getAt = nullptr) {
        StatDef d;
        d.key = key;
        d.type = StatType::F64;
        d.agg = StatAgg::Derived;
        d.doc = doc;
        d.getF64 = std::move(get);
        d.getAtF64 = std::move(getAt);
        add(std::move(d), "");
    };

    auto hostF64 = [&](const char *key, const char *doc,
                       std::function<double(const RunStats &)> get) {
        StatDef d;
        d.key = key;
        d.type = StatType::F64;
        d.agg = StatAgg::Host;
        d.doc = doc;
        d.getF64 = std::move(get);
        add(std::move(d), "");
    };

    // --- simulation window ----------------------------------------
    scalar("cycles", &RunStats::simCycles,
           "simulated cycles in the measurement window", "cycles");

    // --- per-core retirement and stalls ---------------------------
    coreCounter("core.cycles", &CoreStats::cycles,
                "cycles this core was simulated");
    coreCounter("core.instrs", &CoreStats::instrsRetired,
                "instructions retired (measurement window)");
    coreCounter("core.loads", &CoreStats::loadsRetired,
                "load instructions retired");
    coreCounter("core.stores", &CoreStats::storesRetired,
                "store instructions retired");
    coreCounter("core.branches", &CoreStats::branchesRetired,
                "branch instructions retired");
    coreCounter("core.branch_mispredicts",
                &CoreStats::branchMispredicts,
                "branches mispredicted at retirement");
    coreCounter("core.loads_offchip", &CoreStats::loadsOffChip,
                "retired loads served by DRAM");
    coreCounter("core.offchip_blocking", &CoreStats::offChipBlocking,
                "off-chip loads that blocked retirement");
    coreCounter("core.offchip_nonblocking",
                &CoreStats::offChipNonBlocking,
                "off-chip loads retired without blocking");
    coreCounter("core.loads_hermes", &CoreStats::loadsServedByHermes,
                "retired loads whose data came from a Hermes request");
    coreCounter("core.stall_offchip", &CoreStats::stallCyclesOffChip,
                "ROB-head stall cycles under an off-chip load (Fig. 3)");
    coreCounter("core.stall_other_load",
                &CoreStats::stallCyclesOtherLoad,
                "ROB-head stall cycles under an on-chip load");
    coreCounter("core.stall_other", &CoreStats::stallCyclesOther,
                "ROB-head stall cycles with no load at the head");
    coreCounter("core.stall_eliminable",
                &CoreStats::stallCyclesEliminable,
                "off-chip stall cycles removable by skipping the cache "
                "hierarchy (Fig. 3 dark bars)");
    derivedF64(
        "core.ipc",
        "instructions per cycle (aggregate; core.N.ipc per core)",
        [](const RunStats &s) {
            return s.simCycles
                       ? static_cast<double>(s.instrsRetired()) /
                             static_cast<double>(s.simCycles)
                       : 0.0;
        },
        [](const RunStats &s, std::size_t i) {
            return s.ipc(static_cast<int>(i));
        });

    // --- branch predictor -----------------------------------------
    branchCounter("branch.lookups", &BranchStats::lookups,
                  "branch predictor lookups");
    branchCounter("branch.mispredicts", &BranchStats::mispredicts,
                  "branch predictor mispredictions");
    derivedF64(
        "branch.mpki", "branch mispredictions per kilo-instruction",
        [](const RunStats &s) {
            std::uint64_t m = 0;
            for (const BranchStats &b : s.branch)
                m += b.mispredicts;
            const std::uint64_t instrs = s.instrsRetired();
            return instrs ? 1000.0 * static_cast<double>(m) /
                                static_cast<double>(instrs)
                          : 0.0;
        },
        [](const RunStats &s, std::size_t i) {
            if (i >= s.branch.size() || i >= s.core.size())
                return 0.0;
            return s.branch[i].mpki(s.core[i].instrsRetired);
        });

    // --- off-chip load predictor (Eq. 3/4, Fig. 9) ----------------
    predCounter("pred.tp", &PredictorStats::truePositives,
                "loads predicted off-chip that went off-chip");
    predCounter("pred.fp", &PredictorStats::falsePositives,
                "loads predicted off-chip that stayed on-chip");
    predCounter("pred.fn", &PredictorStats::falseNegatives,
                "off-chip loads predicted on-chip");
    predCounter("pred.tn", &PredictorStats::trueNegatives,
                "on-chip loads predicted on-chip");
    derivedF64(
        "pred.accuracy",
        "fraction of off-chip predictions that were right (Eq. 3)",
        [](const RunStats &s) { return s.predTotal().accuracy(); },
        [](const RunStats &s, std::size_t i) {
            return i < s.predictor.size() ? s.predictor[i].accuracy()
                                          : 0.0;
        });
    derivedF64(
        "pred.coverage",
        "fraction of off-chip loads that were predicted (Eq. 4)",
        [](const RunStats &s) { return s.predTotal().coverage(); },
        [](const RunStats &s, std::size_t i) {
            return i < s.predictor.size() ? s.predictor[i].coverage()
                                          : 0.0;
        });

    // --- per-core completion --------------------------------------
    {
        StatDef d;
        d.key = "core.finish_cycle";
        d.type = StatType::U64;
        d.agg = StatAgg::PerCore;
        d.inFingerprint = true;
        d.doc = "cycle this core reached its instruction quota";
        d.getU64 = [](const RunStats &s) {
            std::uint64_t t = 0;
            for (const std::uint64_t c : s.coreFinishCycle)
                t += c;
            return t;
        };
        d.getAtU64 = [](const RunStats &s, std::size_t i) {
            return i < s.coreFinishCycle.size() ? s.coreFinishCycle[i]
                                                : 0;
        };
        d.setAtU64 = [](RunStats &s, std::size_t i, std::uint64_t v) {
            s.coreFinishCycle[i] = v;
        };
        add(std::move(d), "finish");
    }

    // --- cache hierarchy ------------------------------------------
    auto cacheSection = [&](const std::string &level,
                            CacheStats RunStats::*c) {
        cacheCounter(level, c, &CacheStats::loadLookups, "load_lookups",
                     "demand load lookups");
        cacheCounter(level, c, &CacheStats::loadHits, "load_hits",
                     "demand load hits");
        cacheCounter(level, c, &CacheStats::rfoLookups, "rfo_lookups",
                     "store (RFO) lookups");
        cacheCounter(level, c, &CacheStats::rfoHits, "rfo_hits",
                     "store (RFO) hits");
        cacheCounter(level, c, &CacheStats::writebackLookups,
                     "wb_lookups", "writeback lookups");
        cacheCounter(level, c, &CacheStats::writebackHits, "wb_hits",
                     "writeback hits");
        cacheCounter(level, c, &CacheStats::prefetchLookups,
                     "pf_lookups", "own-prefetch candidates probed");
        cacheCounter(level, c, &CacheStats::prefetchDropped,
                     "pf_dropped", "prefetch candidates already present");
        cacheCounter(level, c, &CacheStats::prefetchIssued, "pf_issued",
                     "prefetches forwarded to the lower level");
        cacheCounter(level, c, &CacheStats::mshrMerges, "mshr_merges",
                     "requests merged into an in-flight MSHR");
        cacheCounter(level, c, &CacheStats::mshrLatePrefetchHits,
                     "mshr_late_pf",
                     "demand merged into a prefetch MSHR (late prefetch)");
        cacheCounter(level, c, &CacheStats::fills, "fills",
                     "lines filled");
        cacheCounter(level, c, &CacheStats::prefetchFills, "pf_fills",
                     "lines filled by prefetch");
        cacheCounter(level, c, &CacheStats::evictions, "evictions",
                     "lines evicted");
        cacheCounter(level, c, &CacheStats::dirtyEvictions,
                     "dirty_evictions", "dirty lines written back");
        cacheCounter(level, c, &CacheStats::usefulPrefetches,
                     "pf_useful", "prefetched lines later hit by demand");
        cacheCounter(level, c, &CacheStats::uselessPrefetches,
                     "pf_useless", "prefetched lines evicted untouched");
        cacheCounter(level, c, &CacheStats::rqRejects, "rq_rejects",
                     "requests rejected by a full read queue");
        derivedF64(
            (level + ".hit_rate").c_str(),
            "demand hit rate (hits / lookups)",
            [c](const RunStats &s) {
                const CacheStats &cs = s.*c;
                return cs.demandLookups()
                           ? static_cast<double>(cs.demandHits()) /
                                 static_cast<double>(cs.demandLookups())
                           : 0.0;
            });
    };
    cacheSection("l1", &RunStats::l1);
    cacheSection("l2", &RunStats::l2);
    cacheSection("llc", &RunStats::llc);
    derivedF64("llc.mpki",
               "LLC demand misses per kilo-instruction (Fig. 5)",
               [](const RunStats &s) { return s.llcMpki(); });

    // --- DRAM ------------------------------------------------------
    dramCounter("dram.demand_reads", &DramStats::demandReads,
                "demand (load/RFO) reads serviced", "dram");
    dramCounter("dram.prefetch_reads", &DramStats::prefetchReads,
                "prefetch reads serviced", "dram");
    dramCounter("dram.hermes_reads", &DramStats::hermesReads,
                "Hermes-initiated reads serviced", "dram");
    dramCounter("dram.writes", &DramStats::writes,
                "writebacks serviced", "dram");
    dramCounter("dram.row_hits", &DramStats::rowHits,
                "row-buffer hits", "dram");
    dramCounter("dram.row_misses", &DramStats::rowMisses,
                "closed-row activations", "dram");
    dramCounter("dram.row_conflicts", &DramStats::rowConflicts,
                "row-buffer conflicts", "dram");
    dramCounter("dram.read_merges", &DramStats::readMerges,
                "reads merged into in-flight reads", "dram");
    dramCounter("dram.wq_forwards", &DramStats::wqForwards,
                "reads serviced from the write queue", "dram");
    {
        StatDef d;
        d.key = "dram.reads";
        d.type = StatType::U64;
        d.agg = StatAgg::Derived;
        d.doc = "total reads serviced (demand + prefetch + hermes; "
                "Fig. 15b)";
        d.getU64 = [](const RunStats &s) { return s.dram.totalReads(); };
        add(std::move(d), "");
    }
    derivedF64("dram.bw_util",
               "fraction of DRAM data-bus capacity used (Fig. 17a)",
               [](const RunStats &s) { return s.dramBwUtil(); });

    // --- Hermes ----------------------------------------------------
    dramCounter("hermes.issued", &DramStats::hermesIssued,
                "Hermes requests enqueued at the controller", "hermes");
    dramCounter("hermes.merged", &DramStats::hermesMergedIntoExisting,
                "Hermes requests merged into an in-flight read",
                "hermes");
    dramCounter("hermes.dropped", &DramStats::hermesDropped,
                "Hermes reads completed with no waiting load", "hermes");
    dramCounter("hermes.useful", &DramStats::hermesUseful,
                "Hermes reads completed with a waiting load", "hermes");
    dramCounter("hermes.rejected", &DramStats::hermesRejected,
                "Hermes requests rejected by a full read queue",
                "hermes");

    // --- prefetcher ------------------------------------------------
    pfCounter("pf.issued", &PrefetcherStats::issued,
              "prefetch lines handed to the cache");
    pfCounter("pf.useful", &PrefetcherStats::useful,
              "prefetched lines later hit by demand");
    pfCounter("pf.useless", &PrefetcherStats::useless,
              "prefetched lines evicted untouched");

    // --- Hermes scheduling (core side) -----------------------------
    scalar("hermes.scheduled", &RunStats::hermesRequestsScheduled,
           "Hermes requests scheduled by the predictors", "hsched");
    scalar("hermes.served", &RunStats::hermesLoadsServed,
           "retired loads served by a Hermes request", "hserved");
    derivedF64("hermes.issue_rate",
               "fraction of scheduled Hermes requests issued to DRAM",
               [](const RunStats &s) {
                   return s.hermesRequestsScheduled
                              ? static_cast<double>(
                                    s.dram.hermesIssued) /
                                    static_cast<double>(
                                        s.hermesRequestsScheduled)
                              : 0.0;
               });
    derivedF64("hermes.served_rate",
               "fraction of off-chip loads served by Hermes",
               [](const RunStats &s) {
                   std::uint64_t offchip = 0;
                   for (const CoreStats &c : s.core)
                       offchip += c.loadsOffChip;
                   return offchip ? static_cast<double>(
                                        s.hermesLoadsServed) /
                                        static_cast<double>(offchip)
                                  : 0.0;
               });

    // --- configuration echoes -------------------------------------
    configEcho("dram.channels", &RunStats::dramChannels,
               "DRAM channels (configuration echo for dram.bw_util)");
    configEcho("dram.bus_cycles_per_line",
               &RunStats::dramBusCyclesPerLine,
               "core cycles one 64B line occupies a channel data bus");

    // --- dynamic power (sim/power.hh model) -----------------------
    derivedF64("power.mw", "dynamic power, total (mW; Fig. 18)",
               [](const RunStats &s) { return computePower(s).total(); });
    derivedF64("power.l1", "dynamic power, L1D slice (mW)",
               [](const RunStats &s) { return computePower(s).l1; });
    derivedF64("power.l2", "dynamic power, L2 slice (mW)",
               [](const RunStats &s) { return computePower(s).l2; });
    derivedF64("power.llc", "dynamic power, LLC slice (mW)",
               [](const RunStats &s) { return computePower(s).llc; });
    derivedF64("power.bus", "dynamic power, bus + DRAM slice (mW)",
               [](const RunStats &s) { return computePower(s).bus; });
    derivedF64("power.other",
               "dynamic power, predictors/prefetcher/branch slice (mW)",
               [](const RunStats &s) { return computePower(s).other; });

    // --- host-side throughput (non-deterministic) -----------------
    hostF64("host.mips",
            "simulated MIPS of the simulator itself (host-side)",
            [](const RunStats &s) { return s.hostPerf.mips(); });
    hostF64("host.seconds",
            "host wall-clock seconds spent in System::run",
            [](const RunStats &s) { return s.hostPerf.seconds; });

    // --- the codec / fingerprint plan ------------------------------
    // Mirrors the legacy hand-rolled journal layout and fingerprint
    // order exactly; the golden determinism tests pin the result.
    auto defsTagged = [&](const char *tag) {
        std::vector<const StatDef *> out;
        for (std::size_t i = 0; i < defs_.size(); ++i)
            if (tags[i] == tag)
                out.push_back(&defs_[i]);
        return out;
    };
    auto planScalar = [&](const char *tag) {
        StatCodecItem it;
        it.kind = StatCodecItem::Kind::Scalar;
        it.name = tag;
        it.defs = defsTagged(tag);
        plan_.push_back(std::move(it));
    };
    auto planGroup =
        [&](const char *tag, bool hash_count,
            std::function<std::size_t(const RunStats &)> count,
            std::function<void(RunStats &, std::size_t)> resize) {
            StatCodecItem it;
            it.kind = StatCodecItem::Kind::Group;
            it.name = tag;
            it.hashCount = hash_count;
            it.defs = defsTagged(tag);
            it.count = std::move(count);
            it.resize = std::move(resize);
            plan_.push_back(std::move(it));
        };
    auto planSection = [&](const char *tag) {
        StatCodecItem it;
        it.kind = StatCodecItem::Kind::Section;
        it.name = tag;
        it.defs = defsTagged(tag);
        plan_.push_back(std::move(it));
    };

    planScalar("cycles");
    planGroup(
        "core", /*hash_count=*/true,
        [](const RunStats &s) { return s.core.size(); },
        [](RunStats &s, std::size_t n) { s.core.resize(n); });
    planGroup(
        "branch", false,
        [](const RunStats &s) { return s.branch.size(); },
        [](RunStats &s, std::size_t n) { s.branch.resize(n); });
    planGroup(
        "pred", false,
        [](const RunStats &s) { return s.predictor.size(); },
        [](RunStats &s, std::size_t n) { s.predictor.resize(n); });
    planGroup(
        "finish", false,
        [](const RunStats &s) { return s.coreFinishCycle.size(); },
        [](RunStats &s, std::size_t n) { s.coreFinishCycle.resize(n); });
    planSection("l1");
    planSection("l2");
    planSection("llc");
    planSection("dram");
    planSection("hermes");
    planSection("pf");
    planScalar("hsched");
    planScalar("hserved");
    planSection("cfg");

    // Every struct field must be covered exactly once; sizes are
    // checked against the static_asserts' field counts so a field
    // registered twice or dropped fails the whole test suite at once.
    auto expectPlan = [&](const char *tag, std::size_t want) {
        for (const StatCodecItem &it : plan_)
            if (it.name == tag) {
                if (it.defs.size() != want)
                    throw std::logic_error(
                        std::string("stat registry: codec container '") +
                        tag + "' holds " +
                        std::to_string(it.defs.size()) +
                        " stats, expected " + std::to_string(want));
                return;
            }
        throw std::logic_error(
            std::string("stat registry: no codec container '") + tag +
            "'");
    };
    expectPlan("cycles", 1);
    expectPlan("core", sizeof(CoreStats) / sizeof(std::uint64_t));
    expectPlan("branch", sizeof(BranchStats) / sizeof(std::uint64_t));
    expectPlan("pred", sizeof(PredictorStats) / sizeof(std::uint64_t));
    expectPlan("finish", 1);
    expectPlan("l1", sizeof(CacheStats) / sizeof(std::uint64_t));
    expectPlan("l2", sizeof(CacheStats) / sizeof(std::uint64_t));
    expectPlan("llc", sizeof(CacheStats) / sizeof(std::uint64_t));
    // DramStats splits across the "dram" and "hermes" containers.
    expectPlan("dram", 9);
    expectPlan("hermes", sizeof(DramStats) / sizeof(std::uint64_t) - 9);
    expectPlan("pf", sizeof(PrefetcherStats) / sizeof(std::uint64_t));
    expectPlan("hsched", 1);
    expectPlan("hserved", 1);
    expectPlan("cfg", 2);
}

const StatDef *
StatRegistry::find(const std::string &key) const
{
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &defs_[it->second];
}

const StatDef &
StatRegistry::findOrThrow(const std::string &key) const
{
    const StatDef *d = find(key);
    if (d == nullptr) {
        std::string msg = "unknown statistic '" + key + "'";
        const std::string near = nearestKey(key);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        throw std::invalid_argument(msg);
    }
    return *d;
}

std::string
StatRegistry::nearestKey(const std::string &key) const
{
    std::string best;
    std::size_t best_dist = ~std::size_t{0};
    for (const StatDef &d : defs_) {
        const std::size_t dist = editDistance(key, d.key);
        if (dist < best_dist) {
            best_dist = dist;
            best = d.key;
        }
    }
    return best;
}

std::string
StatRegistry::describe() const
{
    std::size_t key_w = 0, type_w = 0, agg_w = 0;
    for (const StatDef &d : defs_) {
        key_w = std::max(key_w, d.key.size());
        type_w = std::max(type_w, std::string(d.typeName()).size());
        agg_w = std::max(agg_w, std::string(d.aggName()).size());
    }
    std::ostringstream os;
    for (const StatDef &d : defs_) {
        os << d.key << std::string(key_w - d.key.size() + 2, ' ');
        const std::string type = d.typeName();
        os << type << std::string(type_w - type.size() + 2, ' ');
        const std::string agg = d.aggName();
        os << agg << std::string(agg_w - agg.size() + 2, ' ');
        os << (d.inFingerprint ? "fp" : "- ") << "  ";
        os << d.doc << "\n";
    }
    return os.str();
}

namespace
{

/** Resolve one non-glob spec item (plain or "group.N.rest" indexed). */
StatColumn
resolveOne(const std::string &item)
{
    const StatRegistry &reg = StatRegistry::instance();
    StatColumn col;
    col.name = underscored(item);
    if (const StatDef *d = reg.find(item)) {
        col.def = d;
        return col;
    }

    // "core.0.ipc": an index inserted after the first segment selects
    // one core of a per-core statistic.
    const std::size_t dot1 = item.find('.');
    const std::size_t dot2 =
        dot1 == std::string::npos ? std::string::npos
                                  : item.find('.', dot1 + 1);
    if (dot2 != std::string::npos && dot2 > dot1 + 1) {
        const std::string idx = item.substr(dot1 + 1, dot2 - dot1 - 1);
        bool digits = true;
        for (const char c : idx)
            digits =
                digits && std::isdigit(static_cast<unsigned char>(c));
        if (digits) {
            const std::string base =
                item.substr(0, dot1) + item.substr(dot2);
            const StatDef &d = reg.findOrThrow(base);
            if (!d.perCore())
                throw std::invalid_argument(
                    "'" + base + "' is not a per-core statistic ('" +
                    item + "')");
            // Strict parse: an absurd index must fail like any other
            // bad spec, not escape as a different exception type.
            const auto parsed = parseInt64(idx);
            if (!parsed || *parsed < 0 ||
                *parsed > std::numeric_limits<int>::max())
                throw std::invalid_argument("bad core index in '" +
                                            item + "'");
            col.def = &d;
            col.coreIndex = static_cast<int>(*parsed);
            return col;
        }
    }
    reg.findOrThrow(item); // throws with a nearest-key suggestion
    return col;            // unreachable
}

} // namespace

std::vector<StatColumn>
defaultStatColumns(bool with_host_perf)
{
    // The pre-registry aggregate row: these (column, key) pairs pin
    // the legacy CSV/JSON column names, so dumps stay byte-identical.
    static const std::pair<const char *, const char *> kColumns[] = {
        {"cycles", "cycles"},
        {"instrs", "core.instrs"},
        {"ipc", "core.ipc"},
        {"llc_mpki", "llc.mpki"},
        {"loads", "core.loads"},
        {"offchip_loads", "core.loads_offchip"},
        {"pred_accuracy", "pred.accuracy"},
        {"pred_coverage", "pred.coverage"},
        {"dram_reads", "dram.reads"},
        {"dram_writes", "dram.writes"},
        {"hermes_issued", "hermes.issued"},
        {"hermes_useful", "hermes.useful"},
        {"hermes_dropped", "hermes.dropped"},
        {"pf_issued", "pf.issued"},
        {"pf_useful", "pf.useful"},
        {"power_mw", "power.mw"},
    };
    const StatRegistry &reg = StatRegistry::instance();
    std::vector<StatColumn> cols;
    for (const auto &[name, key] : kColumns)
        cols.push_back({name, &reg.findOrThrow(key), -1});
    if (with_host_perf) {
        cols.push_back({"sim_mips", &reg.findOrThrow("host.mips"), -1});
        cols.push_back(
            {"host_seconds", &reg.findOrThrow("host.seconds"), -1});
    }
    return cols;
}

std::vector<StatColumn>
selectStatColumns(const std::string &spec)
{
    const StatRegistry &reg = StatRegistry::instance();
    std::vector<StatColumn> cols;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim ASCII whitespace around each item.
        while (!item.empty() &&
               std::isspace(static_cast<unsigned char>(item.front())))
            item.erase(item.begin());
        while (!item.empty() &&
               std::isspace(static_cast<unsigned char>(item.back())))
            item.pop_back();
        if (item.empty())
            throw std::invalid_argument(
                "empty entry in stats column list '" + spec + "'");
        if (item.find('*') != std::string::npos ||
            item.find('?') != std::string::npos) {
            bool any = false;
            for (const StatDef &d : reg.stats()) {
                if (!globMatch(item.c_str(), d.key.c_str()))
                    continue;
                cols.push_back({underscored(d.key), &d, -1});
                any = true;
            }
            if (!any)
                throw std::invalid_argument(
                    "stats glob '" + item +
                    "' matches no registered key (see --list-stats)");
        } else {
            cols.push_back(resolveOne(item));
        }
    }
    if (cols.empty())
        throw std::invalid_argument("empty stats column list");
    return cols;
}

void
appendHostPerfColumns(std::vector<StatColumn> &columns)
{
    const StatRegistry &reg = StatRegistry::instance();
    for (const auto &[name, key] :
         {std::pair<const char *, const char *>{"sim_mips",
                                                "host.mips"},
          {"host_seconds", "host.seconds"}}) {
        const StatDef &d = reg.findOrThrow(key);
        bool present = false;
        for (const StatColumn &c : columns)
            present = present || c.def == &d;
        if (!present)
            columns.push_back({name, &d, -1});
    }
}

std::string
statColumnValue(const StatColumn &col, const RunStats &stats)
{
    const StatDef &d = *col.def;
    if (d.type == StatType::U64) {
        if (col.coreIndex >= 0)
            return renderU64(d.getAtU64(
                stats, static_cast<std::size_t>(col.coreIndex)));
        return renderU64(d.getU64(stats));
    }
    if (col.coreIndex >= 0)
        return renderF64(
            d.getAtF64
                ? d.getAtF64(stats,
                             static_cast<std::size_t>(col.coreIndex))
                : 0.0);
    return renderF64(d.getF64(stats));
}

std::uint64_t
statsFingerprint(const RunStats &stats)
{
    // Walk the codec plan in order, hashing every fingerprint-flagged
    // counter; the plan order reproduces the pre-registry hand-rolled
    // hash exactly, so the pinned goldens survive the refactor.
    Fnv64 h;
    for (const StatCodecItem &item :
         StatRegistry::instance().codecPlan()) {
        if (item.kind == StatCodecItem::Kind::Group) {
            const std::size_t n = item.count(stats);
            if (item.hashCount)
                h.add(static_cast<std::uint64_t>(n));
            for (std::size_t i = 0; i < n; ++i)
                for (const StatDef *d : item.defs)
                    if (d->inFingerprint)
                        h.add(d->getAtU64(stats, i));
            continue;
        }
        for (const StatDef *d : item.defs)
            if (d->inFingerprint)
                h.add(d->getU64(stats));
    }
    return h.value();
}

std::uint64_t
statU64(const RunStats &stats, const std::string &key)
{
    const StatDef &d = StatRegistry::instance().findOrThrow(key);
    if (!d.getU64)
        throw std::invalid_argument("statistic '" + key +
                                    "' is not an integer counter");
    return d.getU64(stats);
}

double
statF64(const RunStats &stats, const std::string &key)
{
    const StatDef &d = StatRegistry::instance().findOrThrow(key);
    if (d.getF64)
        return d.getF64(stats);
    if (d.getU64)
        return static_cast<double>(d.getU64(stats));
    throw std::invalid_argument("statistic '" + key +
                                "' has no aggregate value");
}

} // namespace hermes
