#pragma once

/**
 * @file
 * Human-readable and CSV reporting of RunStats: the full statistics
 * dump used by the CLI front end and handy for ad-hoc experiments.
 */

#include <string>

#include "sim/system.hh"

namespace hermes
{

/** Multi-section plain-text report of a finished run. */
std::string formatReport(const RunStats &stats);

/** One-line CSV header matching formatCsvRow(). */
std::string csvHeader();

/** Flat CSV row (aggregated over cores) for scripted consumption. */
std::string formatCsvRow(const std::string &label, const RunStats &stats);

/**
 * The same flat aggregate as formatCsvRow() as a single JSON object
 * (keys match the csvHeader() column names).
 */
std::string formatJsonRow(const std::string &label, const RunStats &stats);

} // namespace hermes
