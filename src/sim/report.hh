#pragma once

/**
 * @file
 * Human-readable and CSV reporting of RunStats: the full statistics
 * dump used by the CLI front end and handy for ad-hoc experiments.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/fnv.hh"
#include "sim/stat_registry.hh"
#include "sim/system.hh"

namespace hermes
{

/** Multi-section plain-text report of a finished run. */
std::string formatReport(const RunStats &stats);

/**
 * One-line CSV header for a registry-selected column list (see
 * sim/stat_registry.hh; "label" always leads).
 */
std::string csvHeader(const std::vector<StatColumn> &columns);

/**
 * One-line CSV header matching formatCsvRow(): the default aggregate
 * columns. When @p with_host_perf is set, sim_mips/host_seconds
 * columns are appended; they describe the simulator's own throughput
 * and are non-deterministic, so they are opt-in (the bench harness
 * enables them via --mips).
 */
std::string csvHeader(bool with_host_perf = false);

/** CSV row of registry-selected columns. */
std::string formatCsvRow(const std::string &label, const RunStats &stats,
                         const std::vector<StatColumn> &columns);

/** Flat CSV row (aggregated over cores) for scripted consumption. */
std::string formatCsvRow(const std::string &label, const RunStats &stats,
                         bool with_host_perf = false);

/** JSON object of registry-selected columns (keys = column names). */
std::string formatJsonRow(const std::string &label, const RunStats &stats,
                          const std::vector<StatColumn> &columns);

/**
 * The same flat aggregate as formatCsvRow() as a single JSON object
 * (keys match the csvHeader() column names).
 */
std::string formatJsonRow(const std::string &label, const RunStats &stats,
                          bool with_host_perf = false);

/**
 * FNV-1a hash over every deterministic field of @p stats: the stat
 * registry's codec plan linearizes the counters (all fingerprint-
 * flagged integer statistics; host wall-clock measurements and
 * configuration echoes are excluded). Two runs of the same (config,
 * traces, budget) must produce equal fingerprints at any sweep thread
 * count, and hot-path refactors must not change them — the golden
 * determinism tests pin a set of these values. Implemented in
 * sim/stat_registry.cc next to the plan it walks.
 */
std::uint64_t statsFingerprint(const RunStats &stats);

/**
 * Write @p text to @p path, "-" meaning stdout: the one dump writer
 * behind the CLIs' and the bench harness's --csv/--json flags. False
 * (with a message on stderr) on any write failure.
 */
bool writeTextFile(const std::string &path, const std::string &text);

/** The canonical 16-hex-digit rendering of a fingerprint. */
std::string fingerprintHex(std::uint64_t fp);

/** Escape for a double-quoted JSON string (quotes, backslash, ctrls). */
std::string jsonEscape(const std::string &s);

} // namespace hermes
