#pragma once

/**
 * @file
 * Human-readable and CSV reporting of RunStats: the full statistics
 * dump used by the CLI front end and handy for ad-hoc experiments.
 */

#include <string>

#include "sim/system.hh"

namespace hermes
{

/** Multi-section plain-text report of a finished run. */
std::string formatReport(const RunStats &stats);

/**
 * One-line CSV header matching formatCsvRow(). When @p with_host_perf
 * is set, sim_mips/host_seconds columns are appended; they describe
 * the simulator's own throughput and are non-deterministic, so they
 * are opt-in (the bench harness enables them via --mips).
 */
std::string csvHeader(bool with_host_perf = false);

/** Flat CSV row (aggregated over cores) for scripted consumption. */
std::string formatCsvRow(const std::string &label, const RunStats &stats,
                         bool with_host_perf = false);

/**
 * The same flat aggregate as formatCsvRow() as a single JSON object
 * (keys match the csvHeader() column names).
 */
std::string formatJsonRow(const std::string &label, const RunStats &stats,
                          bool with_host_perf = false);

/**
 * FNV-1a hash over every deterministic field of @p stats (all integer
 * counters; host wall-clock measurements are excluded). Two runs of the
 * same (config, traces, budget) must produce equal fingerprints at any
 * sweep thread count, and hot-path refactors must not change them —
 * the golden determinism tests pin a set of these values.
 */
std::uint64_t statsFingerprint(const RunStats &stats);

} // namespace hermes
