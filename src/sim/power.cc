#include "sim/power.hh"

namespace hermes
{

PowerBreakdown
computePower(const RunStats &stats, const PowerParams &params)
{
    PowerBreakdown p;
    if (stats.simCycles == 0)
        return p;

    const double seconds =
        static_cast<double>(stats.simCycles) /
        (params.coreFreqGhz * 1e9);
    const double pj_to_mw = 1e-12 / seconds * 1e3;

    const auto cache_energy = [&](const CacheStats &c, double per_access) {
        const double accesses =
            static_cast<double>(c.loadLookups + c.rfoLookups +
                                c.writebackLookups + c.prefetchLookups +
                                c.fills);
        return accesses * per_access;
    };

    p.l1 = cache_energy(stats.l1, params.l1AccessPj) * pj_to_mw;
    p.l2 = cache_energy(stats.l2, params.l2AccessPj) * pj_to_mw;
    p.llc = cache_energy(stats.llc, params.llcAccessPj) * pj_to_mw;

    const double dram_requests =
        static_cast<double>(stats.dram.totalReads() + stats.dram.writes);
    p.bus = dram_requests *
            (params.dramAccessPj + params.busPerRequestPj) * pj_to_mw;

    double other_pj = 0;
    const PredictorStats pred = stats.predTotal();
    other_pj += static_cast<double>(pred.total()) *
                params.predictorAccessPj;
    other_pj += static_cast<double>(stats.llc.demandLookups()) *
                params.prefetcherAccessPj *
                (stats.prefetch.issued > 0 ? 1.0 : 0.0);
    p.other = other_pj * pj_to_mw;
    return p;
}

} // namespace hermes
