#pragma once

/**
 * @file
 * Full-system assembly: N cores, each with a private L1D and L2, a
 * shared LLC (3MB/core slices modelled as one shared cache), a DDR4
 * memory controller, the configured LLC prefetcher, and per-core
 * off-chip predictors + Hermes controllers. Defaults reproduce Table 4.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/ooo_core.hh"
#include "dram/dram.hh"
#include "hermes/hermes.hh"
#include "sim/perf.hh"
#include "predictor/hmp.hh"
#include "predictor/offchip_pred.hh"
#include "predictor/popet.hh"
#include "predictor/ttp.hh"
#include "prefetch/prefetcher.hh"
#include "trace/workload.hh"

namespace hermes
{

class Config;

/** Complete system configuration (Table 4 defaults for one core). */
struct SystemConfig
{
    int numCores = 1;
    CoreParams core;

    // L1D: 48KB, 12-way, 5-cycle round trip.
    std::uint32_t l1Sets = 64;
    std::uint32_t l1Ways = 12;
    Cycle l1Latency = 5;
    std::uint32_t l1Mshrs = 16;

    // L2: 1.25MB, 20-way, 15-cycle round trip (10 incremental).
    std::uint32_t l2Sets = 1024;
    std::uint32_t l2Ways = 20;
    Cycle l2Latency = 10;
    std::uint32_t l2Mshrs = 48;

    // LLC: 3MB/core, 12-way, 55-cycle round trip (40 incremental),
    // SHiP replacement (Fig. 17d sweeps llcLatency; Fig. 20 the size).
    std::uint64_t llcBytesPerCore = 3ull << 20;
    std::uint32_t llcWays = 12;
    Cycle llcLatency = 40;
    std::uint32_t llcMshrsPerCore = 64;
    ReplKind llcRepl = ReplKind::Ship;

    PrefetcherKind prefetcher = PrefetcherKind::None;

    PredictorKind predictor = PredictorKind::None;
    /** Issue Hermes requests (false = predictor-only measurement). */
    bool hermesIssueEnabled = false;
    /** Hermes-O: 6 cycles; Hermes-P: 18 cycles (Fig. 17c sweeps). */
    Cycle hermesIssueLatency = 6;
    /**
     * Issue Hermes requests during warmup too (the legacy behaviour).
     * Turning this off makes warmed state independent of the Hermes
     * issue path, so a sweep over issue-side parameters (e.g.
     * hermes.issue_latency) can share one warmup checkpoint across all
     * its points. The predictor still trains during warmup either way.
     */
    bool hermesWarmupIssue = true;
    PopetParams popet;
    HmpParams hmp;
    TtpParams ttp;

    DramParams dram;

    std::uint64_t seed = 1;

    /**
     * Registry-selected model names (sim/model_registry.hh). Empty
     * means "use the enum field" — the "predictor", "prefetcher" and
     * "llc.repl" parameters set these only for names outside the
     * legacy enum sets, so pre-registry configurations render (and
     * fingerprint) exactly as before.
     */
    std::string predictorModel;
    std::string prefetcherModel;
    std::string llcReplModel;
    /**
     * Sparse registered-knob overrides ("pred.<model>.<knob>" ->
     * validated value string). Only explicitly-set knobs appear here;
     * unset knobs fall back to their declared defaults at model
     * construction.
     */
    std::map<std::string, std::string> modelKnobs;
    /**
     * Sparse corpus-generator knob overrides ("corpus.<gen>.<knob>" ->
     * validated value string), applied by re-canonicalizing
     * corpus-backed trace specs (trace/corpus.hh) before the workloads
     * are opened. Like modelKnobs, only explicitly-set knobs appear, so
     * pre-existing configurations render (and fingerprint) unchanged.
     */
    std::map<std::string, std::string> corpusKnobs;

    /** Resolved model names: the registry string when set, else the
     * legacy enum's name. This is what System actually instantiates. */
    std::string predictorName() const;
    std::string prefetcherName() const;
    std::string llcReplName() const;

    /** Baseline single/multi-core configuration per Table 4. */
    static SystemConfig baseline(int cores);

    /**
     * Build a configuration from dotted string keys ("llc.ways=16",
     * "popet.act_threshold=-20", ...) validated against the parameter
     * registry (sim/param_registry.hh). Starts from
     * baseline(system.cores) so derived defaults (DRAM channels per
     * core count) match the struct API, then applies every other key
     * in insertion order. Throws std::invalid_argument on unknown keys
     * (with a nearest-key suggestion), unparsable or out-of-range
     * values, and non-power-of-two geometry.
     */
    static SystemConfig fromConfig(const Config &config);

    /**
     * The registry round trip: every registered key with this
     * configuration's current value. fromConfig(toConfig()) rebuilds
     * an identical configuration.
     */
    Config toConfig() const;
};

/** Aggregated results of one simulation run. */
struct RunStats
{
    std::uint64_t simCycles = 0;
    std::vector<CoreStats> core;
    std::vector<BranchStats> branch;
    std::vector<PredictorStats> predictor;
    std::vector<std::uint64_t> coreFinishCycle; ///< Cycle each core hit
                                                ///< its instruction quota
    CacheStats l1;  ///< Summed over cores
    CacheStats l2;  ///< Summed over cores
    CacheStats llc;
    DramStats dram;
    PrefetcherStats prefetch;
    std::uint64_t hermesRequestsScheduled = 0;
    std::uint64_t hermesLoadsServed = 0;
    /** Configuration echoes filled by System::collect() so derived
     * metrics (dram.bw_util) stay computable from a RunStats alone;
     * deterministic but excluded from fingerprints to keep the pinned
     * goldens stable. */
    std::uint64_t dramChannels = 0;
    std::uint64_t dramBusCyclesPerLine = 0;
    /** Simulator throughput (host-side; excluded from fingerprints). */
    HostPerf hostPerf;
    /** Per-component host-time attribution and ticked/skipped cycle
     * counters (host-side; excluded from fingerprints). */
    HostProfile profile;

    /** Instructions retired across all cores (measurement window). */
    std::uint64_t instrsRetired() const;
    /** Per-core IPC over the measurement window (0 if no such core,
     * so empty shard placeholders read as "no data"). */
    double ipc(int core_id) const;
    /** LLC demand misses per kilo instruction. */
    double llcMpki() const;
    /** Aggregate predictor confusion matrix. */
    PredictorStats predTotal() const;
    /** Fraction of DRAM data-bus capacity spent transferring lines
     * (reads + writes, all channels); 0 for an empty window. */
    double dramBwUtil() const;
};

/**
 * A complete simulated machine. Workloads are cloned per core from the
 * provided list (one entry per core).
 */
class System
{
  public:
    System(const SystemConfig &config,
           std::vector<std::unique_ptr<Workload>> workloads);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run warmup then measure. Each core executes at least
     * @p sim_instrs instructions in the measurement window; cores that
     * finish early keep executing (multi-programmed replay, §7).
     * Equivalent to runWarmup() followed by runMeasure().
     */
    RunStats run(std::uint64_t warmup_instrs, std::uint64_t sim_instrs);

    /**
     * Warmup phase: execute @p warmup_instrs per core (Hermes issue
     * gated by SystemConfig::hermesWarmupIssue), then clear all
     * statistics. The post-warmup state is the snapshot seam: every
     * counter is zero, so checkpoints carry only learned/queue state.
     */
    void runWarmup(std::uint64_t warmup_instrs);

    /** Measurement phase; requires runWarmup() or loadState() first. */
    RunStats runMeasure(std::uint64_t sim_instrs);

    /**
     * True iff every stateful component (workloads, caches via their
     * replacement policy, predictor, prefetcher) opted into
     * checkpointing. Registry models that don't are a clean "no
     * checkpoint", never a wrong one.
     */
    bool checkpointable() const;

    /**
     * Serialize/restore the full warmed machine state. Only valid at
     * the snapshot seam (immediately after runWarmup()); statistics are
     * all zero there and are deliberately not part of the stream.
     */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

    /**
     * Single-stepping access for fine-grained tests.
     * @return true iff any core retired at least one instruction
     * (run{Warmup,Measure} re-check completion only on such cycles).
     */
    bool tick();
    Cycle now() const { return now_; }

    /**
     * The event-horizon of the whole machine: the minimum of every
     * component's nextEventCycle() (docs/performance.md). Cycles in
     * (now(), horizon) are provably event-free — ticking them would
     * only perform the bookkeeping skipIdle() emulates — so the run
     * loops fast-forward across them. Always at least now() + 1.
     */
    Cycle nextEventHorizon() const;

    /**
     * Enable/disable the event-horizon fast-forward (defaults to on;
     * the HERMES_NO_EVENT_SKIP environment variable disables it at
     * construction — the escape hatch the determinism tests use to
     * prove the two loops produce identical statistics).
     */
    void setEventSkip(bool enabled) { eventSkip_ = enabled; }
    bool eventSkip() const { return eventSkip_; }

    OooCore &coreAt(int i) { return *cores_[i]; }
    Cache &l1At(int i) { return *l1_[i]; }
    Cache &l2At(int i) { return *l2_[i]; }
    Cache &llc() { return *llc_; }
    DramController &dram() { return *dram_; }
    Prefetcher *prefetcher() { return prefetcher_.get(); }
    OffChipPredictor *predictorAt(int i)
    {
        return predictors_[i].get();
    }
    HermesController &hermesAt(int i) { return *hermes_[i]; }
    const SystemConfig &config() const { return config_; }

  private:
    void clearAllStats();
    RunStats collect() const;
    /** tick() with per-stage host-time attribution (HERMES_PROFILE). */
    bool tickProfiled();
    /** Advance every component clock to @p target, emulating the
     * bookkeeping the skipped idle ticks would have performed. */
    void skipIdle(Cycle target);
    /** Fast-forward to just before the next event, clamped to
     * @p limit (the run loop's watchdog bound). */
    void doSkip(Cycle limit);
    void
    maybeSkip(Cycle limit)
    {
        if (eventSkip_)
            doSkip(limit);
    }

    SystemConfig config_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::unique_ptr<DramController> dram_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<std::unique_ptr<OffChipPredictor>> predictors_;
    std::vector<std::unique_ptr<HermesController>> hermes_;
    std::vector<std::unique_ptr<OooCore>> cores_;
    Cycle now_ = 0;
    std::vector<std::uint64_t> finishCycle_;
    /** Measurement-window start (set at the end of runWarmup). */
    Cycle measureStart_ = 0;
    /** Warmup work done by *this process* (host-perf accounting only;
     * zero after a checkpoint restore, which is the point). */
    std::uint64_t warmupExecuted_ = 0;
    double warmupSeconds_ = 0.0;
    /** Event-horizon fast-forward enabled (HERMES_NO_EVENT_SKIP=1
     * disables it; statistics are identical either way). */
    bool eventSkip_ = true;
    /** Host-side tick/skip accounting (HostProfile in RunStats). */
    HostProfile profile_;
};

} // namespace hermes
