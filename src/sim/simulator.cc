#include "sim/simulator.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hermes
{

SimBudget
SimBudget::fromEnv(std::uint64_t warmup, std::uint64_t sim)
{
    SimBudget b;
    b.warmupInstrs = warmup;
    b.simInstrs = sim;
    const char *env = std::getenv("HERMES_SIM_SCALE");
    if (env == nullptr)
        return b;
    // Strict parse: the whole string must be one finite positive
    // number. strtod alone would silently accept trailing garbage
    // ("2x" -> 2) and NaN/inf, and a typo would silently fall back to
    // the defaults; warn instead so misconfigured runs are visible.
    char *end = nullptr;
    const double scale = std::strtod(env, &end);
    const bool parsed = end != env && *end == '\0';
    if (!parsed || !std::isfinite(scale) || scale <= 0) {
        std::fprintf(stderr,
                     "warning: ignoring invalid HERMES_SIM_SCALE=\"%s\""
                     " (expected a finite positive number)\n",
                     env);
        return b;
    }
    b.warmupInstrs = static_cast<std::uint64_t>(warmup * scale);
    b.simInstrs = static_cast<std::uint64_t>(sim * scale);
    return b;
}

RunStats
simulateOne(const SystemConfig &config, const TraceSpec &trace,
            const SimBudget &budget)
{
    if (config.numCores != 1)
        throw std::invalid_argument("simulateOne needs a 1-core config");
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(trace.make());
    System system(config, std::move(w));
    return system.run(budget.warmupInstrs, budget.simInstrs);
}

RunStats
simulateMix(const SystemConfig &config,
            const std::vector<TraceSpec> &traces, const SimBudget &budget)
{
    if (static_cast<int>(traces.size()) != config.numCores)
        throw std::invalid_argument("need one trace per core");
    std::vector<std::unique_ptr<Workload>> w;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        auto base = traces[i].make();
        w.push_back(i == 0 ? std::move(base) : base->clone(i));
    }
    System system(config, std::move(w));
    return system.run(budget.warmupInstrs, budget.simInstrs);
}

RunStats
simulate(const SystemConfig &config, std::vector<TraceSpec> traces,
         const SimBudget &budget)
{
    if (traces.empty())
        throw std::invalid_argument("simulate needs at least one trace");
    if (config.numCores == 1 && traces.size() == 1)
        return simulateOne(config, traces[0], budget);
    if (traces.size() == 1) {
        const TraceSpec t = traces[0]; // copy: assign() would read a
                                       // reference into itself
        traces.assign(static_cast<std::size_t>(config.numCores), t);
    }
    return simulateMix(config, traces, budget);
}

} // namespace hermes
