#include "sim/simulator.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/config.hh"
#include "common/fnv.hh"
#include "common/state_io.hh"
#include "sim/param_registry.hh"
#include "trace/corpus.hh"
#include "trace/trace_io.hh"

namespace hermes
{

namespace
{

/**
 * Does Hermes actually issue requests during warmup? Only then do the
 * issue-side keys (hermes.enabled, hermes.issue_latency) shape the
 * warmed state: the request stream seen by DRAM and the caches differs
 * when speculative loads fly during the warmup window.
 */
bool
warmupIssueActive(const SystemConfig &config)
{
    return config.hermesIssueEnabled && config.hermesWarmupIssue &&
           config.predictorName() != "none";
}

/** Read exactly @p size bytes or throw (short streams are defects). */
void
readExact(ByteSource &source, void *data, std::size_t size)
{
    auto *p = static_cast<unsigned char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const std::size_t n = source.read(p + got, size - got);
        if (n == 0)
            throw StateError("truncated stream (wanted " +
                             std::to_string(size) + " magic bytes)");
        got += n;
    }
}

} // namespace

SimBudget
SimBudget::fromEnv(std::uint64_t warmup, std::uint64_t sim)
{
    SimBudget b;
    b.warmupInstrs = warmup;
    b.simInstrs = sim;
    const char *env = std::getenv("HERMES_SIM_SCALE");
    if (env == nullptr)
        return b;
    // Strict parse: the whole string must be one finite positive
    // number. strtod alone would silently accept trailing garbage
    // ("2x" -> 2) and NaN/inf, and a typo would silently fall back to
    // the defaults; warn instead so misconfigured runs are visible.
    char *end = nullptr;
    const double scale = std::strtod(env, &end);
    const bool parsed = end != env && *end == '\0';
    if (!parsed || !std::isfinite(scale) || scale <= 0) {
        std::fprintf(stderr,
                     "warning: ignoring invalid HERMES_SIM_SCALE=\"%s\""
                     " (expected a finite positive number)\n",
                     env);
        return b;
    }
    b.warmupInstrs = static_cast<std::uint64_t>(warmup * scale);
    b.simInstrs = static_cast<std::uint64_t>(sim * scale);
    return b;
}

constexpr char SimSession::kCheckpointMagic[9];

SimSession::SimSession(SystemConfig config, std::vector<TraceSpec> traces,
                       SimBudget budget)
    : config_(std::move(config)), traces_(std::move(traces)),
      budget_(budget)
{
    if (traces_.empty())
        throw std::invalid_argument("SimSession needs at least one trace");
    if (!config_.corpusKnobs.empty())
        traces_ = applyCorpusOverrides(std::move(traces_),
                                       config_.corpusKnobs);
    if (traces_.size() == 1 && config_.numCores > 1) {
        const TraceSpec t = traces_[0]; // copy: assign() would read a
                                        // reference into itself
        traces_.assign(static_cast<std::size_t>(config_.numCores), t);
    }
    if (static_cast<int>(traces_.size()) != config_.numCores)
        throw std::invalid_argument("need one trace per core");
}

SimSession::~SimSession() = default;

void
SimSession::requirePhase(Phase expect, const char *method) const
{
    if (phase_ == expect)
        return;
    static const char *const names[] = {"created", "built", "warmed",
                                        "measured"};
    throw std::logic_error(
        std::string("SimSession::") + method + ": session is " +
        names[static_cast<int>(phase_)] + ", wants " +
        names[static_cast<int>(expect)]);
}

void
SimSession::construct()
{
    std::vector<std::unique_ptr<Workload>> w;
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        auto base = traces_[i].make();
        w.push_back(i == 0 ? std::move(base) : base->clone(i));
    }
    system_ = std::make_unique<System>(config_, std::move(w));
}

void
SimSession::build()
{
    requirePhase(Phase::Created, "build");
    construct();
    phase_ = Phase::Built;
}

void
SimSession::warmup()
{
    requirePhase(Phase::Built, "warmup");
    system_->runWarmup(budget_.warmupInstrs);
    phase_ = Phase::Warmed;
}

const RunStats &
SimSession::measure()
{
    requirePhase(Phase::Warmed, "measure");
    stats_ = system_->runMeasure(budget_.simInstrs);
    phase_ = Phase::Measured;
    return stats_;
}

const RunStats &
SimSession::collect() const
{
    requirePhase(Phase::Measured, "collect");
    return stats_;
}

bool
SimSession::checkpointable() const
{
    requirePhase(Phase::Built, "checkpointable");
    return system_->checkpointable();
}

System &
SimSession::system()
{
    if (system_ == nullptr)
        throw std::logic_error("SimSession::system: not built yet");
    return *system_;
}

std::uint64_t
SimSession::warmupFingerprint() const
{
    Fnv64 f;
    f.add(std::string("hermes-warmup-v1"));
    f.add(std::uint64_t{kCheckpointVersion});
    const bool active = warmupIssueActive(config_);
    // Hash the registry-rendered configuration (the same canonical
    // strings pointFingerprint hashes) restricted to warmup-affecting
    // keys. Keys the registry does not know — model knobs, corpus
    // knobs — always shape training/workload state, so they always
    // count.
    const Config rendered = config_.toConfig();
    const ParamRegistry &registry = ParamRegistry::instance();
    for (const std::string &key : rendered.keys()) {
        const ParamDef *def = registry.find(key);
        const bool include =
            def == nullptr || def->warmupAffecting || active;
        if (!include)
            continue;
        f.add(key);
        f.add(rendered.get(key, std::string()));
    }
    f.add(std::uint64_t{active ? 1u : 0u});
    f.add(static_cast<std::uint64_t>(traces_.size()));
    for (const TraceSpec &t : traces_) {
        f.add(t.name());
        f.add(t.filePath); // "" for synthetic/corpus workloads
    }
    f.add(budget_.warmupInstrs);
    return f.value();
}

void
SimSession::snapshot(ByteSink &sink) const
{
    requirePhase(Phase::Warmed, "snapshot");
    sink.write(kCheckpointMagic, 8);
    StateWriter w(sink);
    w.u32(kCheckpointVersion);
    w.u64(warmupFingerprint());
    system_->saveState(w);
    w.sealChecksum();
}

bool
SimSession::restore(ByteSource &source)
{
    requirePhase(Phase::Built, "restore");
    bool ok = false;
    try {
        char magic[8] = {};
        readExact(source, magic, sizeof(magic));
        if (std::memcmp(magic, kCheckpointMagic, 8) != 0)
            throw StateError("bad magic");
        StateReader r(source);
        if (r.u32() != kCheckpointVersion)
            throw StateError("version mismatch");
        if (r.u64() != warmupFingerprint())
            throw StateError("warmup fingerprint mismatch");
        system_->loadState(r);
        r.verifyChecksum();
        ok = true;
    } catch (const std::exception &) {
        // A failed loadState may have half-written component state;
        // rebuild from the trace specs so warmup() starts pristine.
        ok = false;
    }
    if (!ok) {
        construct();
        return false;
    }
    phase_ = Phase::Warmed;
    return true;
}

RunStats
simulateOne(const SystemConfig &config, const TraceSpec &trace,
            const SimBudget &budget)
{
    if (config.numCores != 1)
        throw std::invalid_argument("simulateOne needs a 1-core config");
    SimSession session(config, {trace}, budget);
    session.build();
    session.warmup();
    session.measure();
    return session.collect();
}

RunStats
simulateMix(const SystemConfig &config,
            const std::vector<TraceSpec> &traces, const SimBudget &budget)
{
    if (static_cast<int>(traces.size()) != config.numCores)
        throw std::invalid_argument("need one trace per core");
    SimSession session(config, traces, budget);
    session.build();
    session.warmup();
    session.measure();
    return session.collect();
}

RunStats
simulate(const SystemConfig &config, std::vector<TraceSpec> traces,
         const SimBudget &budget)
{
    if (traces.empty())
        throw std::invalid_argument("simulate needs at least one trace");
    if (config.numCores == 1 && traces.size() == 1)
        return simulateOne(config, traces[0], budget);
    SimSession session(config, std::move(traces), budget);
    session.build();
    session.warmup();
    session.measure();
    return session.collect();
}

} // namespace hermes
