#pragma once

/**
 * @file
 * Hashed-perceptron conditional branch predictor, following the style
 * of Jimenez & Lin (HPCA'01) / Tarjan & Skadron as used by the paper's
 * baseline core (Table 4: "Perceptron branch predictor with 17-cycle
 * misprediction penalty"). Three feature tables (PC, PC^GHR, GHR
 * segments) of 8-bit weights vote; training uses the usual
 * threshold-gated perceptron update.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"

namespace hermes
{

/** Branch predictor statistics. */
struct BranchStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    double
    mpki(std::uint64_t instructions) const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(mispredicts) /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/** Hashed-perceptron branch direction predictor. */
class BranchPredictor
{
  public:
    BranchPredictor();

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc);

    /**
     * Train with the actual direction and update the global history.
     * @return true iff the prediction recorded by the immediately
     *         preceding predict() call was wrong.
     */
    bool update(Addr pc, bool taken);

    const BranchStats &stats() const { return stats_; }
    void clearStats() { stats_ = BranchStats{}; }

    std::uint64_t storageBits() const;

    void
    saveState(StateWriter &w) const
    {
        w.section("BPRC");
        for (const auto &table : weights_)
            for (std::int8_t v : table)
                w.i8(v);
        w.u64(ghr_);
        for (std::uint32_t idx : lastIndex_)
            w.u32(idx);
        w.i32(lastSum_);
        w.b(lastPrediction_);
    }

    void
    loadState(StateReader &r)
    {
        r.section("BPRC");
        for (auto &table : weights_)
            for (std::int8_t &v : table)
                v = r.i8();
        ghr_ = r.u64();
        for (std::uint32_t &idx : lastIndex_)
            idx = r.u32();
        lastSum_ = r.i32();
        lastPrediction_ = r.b();
    }

  private:
    static constexpr unsigned kTables = 3;
    static constexpr std::uint32_t kTableSize = 4096;
    static constexpr int kThreshold = 24;
    static constexpr int kWeightMax = 127;
    static constexpr int kWeightMin = -128;

    std::uint32_t indexFor(unsigned table, Addr pc) const;

    std::array<std::vector<std::int8_t>, kTables> weights_;
    std::uint64_t ghr_ = 0;
    // Stashed between predict() and update() (calls always pair up).
    std::array<std::uint32_t, kTables> lastIndex_{};
    int lastSum_ = 0;
    bool lastPrediction_ = false;
    BranchStats stats_;
};

} // namespace hermes
