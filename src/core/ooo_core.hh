#pragma once

/**
 * @file
 * Trace-driven out-of-order core model (ChampSim style, Table 4):
 * 6-wide fetch/retire, 512-entry ROB, 128/72-entry LQ/SQ, perceptron
 * branch predictor with a 17-cycle misprediction penalty.
 *
 * The model tracks exactly the microarchitectural effects the paper's
 * evaluation depends on:
 *  - loads occupy LQ entries, access the L1 and block retirement at the
 *    ROB head until their data returns;
 *  - explicit trace dependences serialise pointer-chase loads;
 *  - per-load stall attribution distinguishes off-chip blocking loads
 *    (Fig. 2/3/15a) and records how much of each stall the on-chip
 *    hierarchy traversal contributed (the "eliminable" fraction);
 *  - the Hermes hooks: predict at LQ allocation, issue after address
 *    generation, train at completion.
 *
 * Non-goals (documented simplifications): no register renaming — ALU
 * ILP is assumed abundant except for explicit trace dependences; stores
 * commit to the L1 write queue at retirement without store-to-load
 * forwarding.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cache/mem_iface.hh"
#include "common/ring.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "core/branch_predictor.hh"
#include "hermes/hermes.hh"
#include "predictor/offchip_pred.hh"
#include "trace/workload.hh"

namespace hermes
{

/** Core microarchitecture parameters (Table 4 defaults). */
struct CoreParams
{
    unsigned fetchWidth = 6;
    unsigned retireWidth = 6;
    unsigned robSize = 512;
    unsigned lqSize = 128;
    unsigned sqSize = 72;
    Cycle mispredictPenalty = 17;
    Cycle aluLatency = 1;
    /** Address-generation delay between readiness and L1 issue. */
    Cycle agenLatency = 1;
    unsigned maxLoadsPerCycle = 2;
};

/** Core-level statistics. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instrsRetired = 0;
    std::uint64_t loadsRetired = 0;
    std::uint64_t storesRetired = 0;
    std::uint64_t branchesRetired = 0;
    std::uint64_t branchMispredicts = 0;

    std::uint64_t loadsOffChip = 0;       ///< Served by DRAM
    std::uint64_t offChipBlocking = 0;    ///< ...that blocked retirement
    std::uint64_t offChipNonBlocking = 0;
    std::uint64_t loadsServedByHermes = 0;

    std::uint64_t stallCyclesOffChip = 0; ///< Head blocked by off-chip ld
    std::uint64_t stallCyclesOtherLoad = 0;
    std::uint64_t stallCyclesOther = 0;
    /** Portion of off-chip stalls removable by skipping the hierarchy
     * traversal (Fig. 3 dark bars). */
    std::uint64_t stallCyclesEliminable = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrsRetired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * One simulated core. Implements MemClient to receive load data from
 * its L1.
 */
class OooCore final : public MemClient
{
  public:
    /**
     * @param core_id this core's index (routed through the hierarchy)
     * @param params microarchitecture configuration
     * @param workload instruction source (not owned)
     * @param l1d first-level data cache (not owned)
     * @param hermes Hermes controller (not owned; may be null)
     */
    OooCore(int core_id, CoreParams params, Workload *workload,
            MemDevice *l1d, HermesController *hermes);

    /** Advance one cycle: retire, issue loads, fetch/dispatch. Inline
     * so the per-cycle stage guards avoid four calls when a stage has
     * nothing to do (stalled on an off-chip load, fetch squashed).
     * @return true iff at least one instruction retired this cycle
     * (System::runMeasure re-checks completion only on such cycles). */
    bool
    tick(Cycle now)
    {
        now_ = now;
        ++stats_.cycles;
        const std::uint64_t retired_before = stats_.instrsRetired;
        if (!robEmpty())
            retire(now);
        if (!readyLoads_.empty())
            issueLoads(now);
        if (now >= fetchResumeAt_ && !robFull())
            dispatch(now);
        if (hermes_ != nullptr)
            hermes_->tick(now);
        return stats_.instrsRetired != retired_before;
    }

    /**
     * Event-horizon contract (docs/performance.md): a lower bound, in
     * absolute cycles, on the next cycle at which ticking this core
     * would do anything beyond the bookkeeping skipCycles() emulates.
     * Externally triggered work — a load completion returning through
     * returnData() — is covered by the cache/DRAM horizons, not this
     * one. Never returns less than @p now + 1.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        const Cycle next = now + 1;
        Cycle horizon = kNoEventCycle;
        if (!robEmpty()) {
            const RobEntry &head = rob_[headSeq_ & robMask_];
            if (head.state == State::Done)
                return next; // retires next cycle
            if (head.instr.kind != InstrKind::Load &&
                head.state == State::Ready) {
                if (head.readyAt <= now)
                    return next; // completes and retires next cycle
                horizon = head.readyAt;
            }
            // WaitingDep / IssuedToMem / Ready-load heads advance only
            // through load issue (below) or memory completions.
        }
        if (!readyLoads_.empty()) {
            // Issue is strictly FIFO, so the front entry is the next
            // event even though issueAt is not monotone across the
            // ring (wake() can enqueue earlier deadlines behind it).
            const Cycle at = rob_[readyLoads_.front() & robMask_].issueAt;
            if (at <= now)
                return next; // issue attempt (can bump L1 rqRejects)
            horizon = std::min(horizon, at);
        }
        if (robFull())
            return horizon; // unblocked by retire, covered above
        if (next < fetchResumeAt_) {
            // Front-end squashed: nothing to dispatch until the
            // mispredicted branch's refill completes.
            return std::min(horizon, fetchResumeAt_);
        }
        if (!hasPendingFetch_)
            return next; // dispatch will fetch from the workload
        const bool blocked =
            (pendingFetch_.kind == InstrKind::Load &&
             lqUsed_ >= params_.lqSize) ||
            (pendingFetch_.kind == InstrKind::Store &&
             sqUsed_ >= params_.sqSize);
        if (!blocked)
            return next; // dispatch will insert the pending instruction
        return horizon;  // LQ/SQ drain via completions/retire, covered
    }

    /**
     * Emulate @p cycles event-free ticks ending at absolute cycle
     * @p now: exactly what tick() does on such cycles — advance the
     * cycle counter and the core clock, and attribute blocked cycles
     * to the (necessarily incomplete) ROB head.
     */
    void
    skipCycles(Cycle now, std::uint64_t cycles)
    {
        now_ = now;
        stats_.cycles += cycles;
        if (!robEmpty())
            rob_[headSeq_ & robMask_].blockedCycles += cycles;
    }

    // MemClient: load data returned by the L1.
    void returnData(const MemRequest &req) override;

    int coreId() const { return coreId_; }
    const CoreParams &params() const { return params_; }
    const CoreStats &stats() const { return stats_; }
    const BranchStats &branchStats() const { return branch_.stats(); }

    /** Reset statistics (end of warmup), keeping learned state. */
    void clearStats();

    std::uint64_t instrsRetired() const { return stats_.instrsRetired; }

    /** Warmup checkpoint hooks (stats are zero at the snapshot seam). */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    enum class State : std::uint8_t
    {
        Empty,
        WaitingDep,  ///< Blocked on an older instruction
        Ready,       ///< Can execute / issue from readyAt
        IssuedToMem, ///< Load in flight in the memory system
        Done,
    };

    /**
     * One ROB slot. Trivially copyable on purpose: dispatch resets the
     * slot with a plain aggregate assignment and no heap traffic. The
     * dependence wakeup list is an intrusive singly-linked list through
     * the waiter entries themselves (firstWaiter/lastWaiter on the
     * producer, nextWaiter on each waiter; seq 0 terminates), replacing
     * the per-entry std::vector the wakeup loop used to allocate.
     */
    struct RobEntry
    {
        // Layout: the fields retire()/dispatch()/issueLoads() touch
        // every cycle sit together in the first 64 bytes (the ROB
        // spans more than L1D, so lines touched per entry matter);
        // load-return bookkeeping and the waiter links trail behind.
        InstrId seq = 0;
        Cycle readyAt = 0;     ///< Completion time for non-loads
        Cycle issueAt = 0;     ///< Earliest L1 issue (loads)
        std::uint64_t blockedCycles = 0;
        TraceInstr instr;
        State state = State::Empty;
        bool wentOffChip = false;
        bool servedByHermes = false;
        Cycle l1Issue = 0;
        Cycle mcArrive = 0;
        InstrId firstWaiter = 0; ///< Head of this entry's waiter list
        InstrId lastWaiter = 0;  ///< Tail (for O(1) FIFO append)
        InstrId nextWaiter = 0;  ///< Link when *this* entry is waiting
        PredMeta predMeta;
    };

    RobEntry &entry(InstrId seq);
    bool robFull() const { return nextSeq_ - headSeq_ >= params_.robSize; }
    bool robEmpty() const { return nextSeq_ == headSeq_; }

    void retire(Cycle now);
    void issueLoads(Cycle now);
    void dispatch(Cycle now);
    void dispatchOne(const TraceInstr &instr, Cycle now);
    /** Completion of a non-memory instruction or load: wake waiters. */
    void wake(RobEntry &producer, Cycle now);
    bool nonLoadComplete(const RobEntry &e, Cycle now) const;

    int coreId_;
    CoreParams params_;
    Workload *workload_;
    MemDevice *l1d_;
    HermesController *hermes_;
    BranchPredictor branch_;

    /** ROB storage, sized to the next power of two above robSize so
     * entry() indexes with a mask instead of a division. Occupancy is
     * still bounded by robSize (robFull), so slots never alias. */
    std::vector<RobEntry> rob_;
    InstrId robMask_ = 0;
    InstrId headSeq_ = 1;
    InstrId nextSeq_ = 1; ///< seq 0 reserved as "no dependence"
    unsigned lqUsed_ = 0;
    unsigned sqUsed_ = 0;
    Ring<InstrId> readyLoads_;
    TraceInstr pendingFetch_;
    bool hasPendingFetch_ = false;
    Cycle fetchResumeAt_ = 0;
    Cycle now_ = 0;
    CoreStats stats_;
};

} // namespace hermes
