#include "core/branch_predictor.hh"

#include <algorithm>

namespace hermes
{

namespace
{

std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

} // namespace

BranchPredictor::BranchPredictor()
{
    for (auto &t : weights_)
        t.assign(kTableSize, 0);
}

std::uint32_t
BranchPredictor::indexFor(unsigned table, Addr pc) const
{
    switch (table) {
      case 0:
        return mix32(pc) & (kTableSize - 1);
      case 1:
        return mix32(pc ^ (ghr_ & 0xFFFF)) & (kTableSize - 1);
      default:
        return mix32((ghr_ >> 4) ^ (pc << 7)) & (kTableSize - 1);
    }
}

bool
BranchPredictor::predict(Addr pc)
{
    ++stats_.lookups;
    int sum = 0;
    for (unsigned t = 0; t < kTables; ++t) {
        lastIndex_[t] = indexFor(t, pc);
        sum += weights_[t][lastIndex_[t]];
    }
    lastSum_ = sum;
    lastPrediction_ = sum >= 0;
    return lastPrediction_;
}

bool
BranchPredictor::update(Addr pc, bool taken)
{
    (void)pc;
    const bool mispredicted = lastPrediction_ != taken;
    if (mispredicted)
        ++stats_.mispredicts;

    if (mispredicted || std::abs(lastSum_) < kThreshold) {
        for (unsigned t = 0; t < kTables; ++t) {
            std::int8_t &w = weights_[t][lastIndex_[t]];
            if (taken)
                w = static_cast<std::int8_t>(std::min<int>(w + 1,
                                                           kWeightMax));
            else
                w = static_cast<std::int8_t>(std::max<int>(w - 1,
                                                           kWeightMin));
        }
    }
    ghr_ = (ghr_ << 1) | static_cast<std::uint64_t>(taken);
    return mispredicted;
}

std::uint64_t
BranchPredictor::storageBits() const
{
    return static_cast<std::uint64_t>(kTables) * kTableSize * 8 + 64;
}

} // namespace hermes
