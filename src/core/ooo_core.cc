#include "core/ooo_core.hh"

#include <algorithm>
#include <cassert>

namespace hermes
{

OooCore::OooCore(int core_id, CoreParams params, Workload *workload,
                 MemDevice *l1d, HermesController *hermes)
    : coreId_(core_id), params_(params), workload_(workload), l1d_(l1d),
      hermes_(hermes), rob_(ceilPow2(params.robSize)),
      robMask_(rob_.size() - 1)
{
    assert(params_.robSize > 0 && params_.fetchWidth > 0);
}

OooCore::RobEntry &
OooCore::entry(InstrId seq)
{
    return rob_[seq & robMask_];
}

void
OooCore::clearStats()
{
    stats_ = CoreStats{};
    branch_.clearStats();
}

bool
OooCore::nonLoadComplete(const RobEntry &e, Cycle now) const
{
    return e.state == State::Ready && e.readyAt <= now;
}

void
OooCore::retire(Cycle now)
{
    for (unsigned n = 0; n < params_.retireWidth && !robEmpty(); ++n) {
        RobEntry &head = entry(headSeq_);
        const bool is_load = head.instr.kind == InstrKind::Load;
        const bool complete =
            head.state == State::Done ||
            (!is_load && nonLoadComplete(head, now));
        if (!complete) {
            ++head.blockedCycles;
            break;
        }

        switch (head.instr.kind) {
          case InstrKind::Load: {
            ++stats_.loadsRetired;
            if (head.wentOffChip) {
                ++stats_.loadsOffChip;
                if (head.blockedCycles > 0)
                    ++stats_.offChipBlocking;
                else
                    ++stats_.offChipNonBlocking;
                stats_.stallCyclesOffChip += head.blockedCycles;
                // The hierarchy-traversal portion of the load latency
                // (L1 access start -> MC arrival) bounds the stall
                // cycles Hermes could remove (Fig. 3).
                const Cycle traversal =
                    head.mcArrive > head.l1Issue
                        ? head.mcArrive - head.l1Issue
                        : 0;
                stats_.stallCyclesEliminable +=
                    std::min<std::uint64_t>(head.blockedCycles, traversal);
            } else {
                stats_.stallCyclesOtherLoad += head.blockedCycles;
            }
            if (head.servedByHermes)
                ++stats_.loadsServedByHermes;
            break;
          }
          case InstrKind::Store:
            ++stats_.storesRetired;
            stats_.stallCyclesOther += head.blockedCycles;
            // Commit the store to the L1 via its write queue
            // (write-allocate; see cache.cc).
            {
                MemRequest wr;
                wr.address = head.instr.vaddr;
                wr.pc = head.instr.pc;
                wr.coreId = coreId_;
                wr.type = AccessType::Rfo;
                wr.cycleCreated = now;
                l1d_->addWrite(wr);
                assert(sqUsed_ > 0);
                --sqUsed_;
            }
            break;
          case InstrKind::Branch:
            ++stats_.branchesRetired;
            stats_.stallCyclesOther += head.blockedCycles;
            break;
          case InstrKind::Alu:
            stats_.stallCyclesOther += head.blockedCycles;
            break;
        }

        head.state = State::Empty;
        ++headSeq_;
        ++stats_.instrsRetired;
    }
}

void
OooCore::issueLoads(Cycle now)
{
    unsigned issued = 0;
    while (issued < params_.maxLoadsPerCycle && !readyLoads_.empty()) {
        const InstrId seq = readyLoads_.front();
        RobEntry &e = entry(seq);
        assert(e.seq == seq && e.instr.kind == InstrKind::Load);
        if (e.issueAt > now)
            break;

        MemRequest req;
        req.address = e.instr.vaddr;
        req.pc = e.instr.pc;
        req.coreId = coreId_;
        req.type = AccessType::Load;
        req.instrId = seq;
        req.cycleCreated = now;
        if (!l1d_->addRead(req))
            break; // L1 read queue full: retry next cycle.
        readyLoads_.pop_front();
        e.state = State::IssuedToMem;
        e.l1Issue = now;
        if (hermes_ != nullptr)
            hermes_->onLoadIssued(req, e.predMeta, now);
        ++issued;
    }
}

void
OooCore::dispatch(Cycle now)
{
    for (unsigned n = 0; n < params_.fetchWidth; ++n) {
        if (now < fetchResumeAt_ || robFull())
            return;
        if (!hasPendingFetch_) {
            pendingFetch_ = workload_->next();
            hasPendingFetch_ = true;
        }
        const TraceInstr &instr = pendingFetch_;
        if (instr.kind == InstrKind::Load && lqUsed_ >= params_.lqSize)
            return;
        if (instr.kind == InstrKind::Store && sqUsed_ >= params_.sqSize)
            return;
        dispatchOne(instr, now);
        hasPendingFetch_ = false;
    }
}

void
OooCore::dispatchOne(const TraceInstr &instr, Cycle now)
{
    const InstrId seq = nextSeq_++;
    RobEntry &e = entry(seq);
    // Partial reset: the remaining fields (predMeta, wentOffChip,
    // servedByHermes, l1Issue, mcArrive, readyAt/issueAt) are written
    // before they are read — predictLoad overwrites predMeta for every
    // load, the timing fields only matter once returnData ran — and
    // nextWaiter is zeroed by wake() whenever the slot left a waiter
    // chain, so a recycled slot always starts with it clear.
    e.instr = instr;
    e.seq = seq;
    e.blockedCycles = 0;
    e.firstWaiter = 0;
    e.lastWaiter = 0;

    // Resolve the (optional) data dependence on an older instruction.
    // Only in-flight loads need the wakeup machinery: non-load
    // producers have statically known completion times, so dependents
    // simply inherit them.
    bool dep_pending = false;
    Cycle dep_ready_at = now;
    if (instr.depDistance > 0 && instr.depDistance < seq) {
        const InstrId dep_seq = seq - instr.depDistance;
        if (dep_seq >= headSeq_) {
            RobEntry &producer = entry(dep_seq);
            if (producer.seq == dep_seq &&
                producer.state != State::Empty) {
                const bool in_flight_load =
                    producer.instr.kind == InstrKind::Load &&
                    producer.state != State::Done;
                if (in_flight_load) {
                    // FIFO append to the producer's intrusive waiter
                    // list (wake order == registration order, which
                    // fixes the load issue order downstream).
                    if (producer.firstWaiter == 0) {
                        producer.firstWaiter = seq;
                    } else {
                        entry(producer.lastWaiter).nextWaiter = seq;
                    }
                    producer.lastWaiter = seq;
                    dep_pending = true;
                } else {
                    dep_ready_at = std::max(dep_ready_at,
                                            producer.readyAt);
                }
            }
        }
    }

    switch (instr.kind) {
      case InstrKind::Alu:
        e.state = dep_pending ? State::WaitingDep : State::Ready;
        e.readyAt = dep_ready_at + params_.aluLatency;
        break;
      case InstrKind::Branch: {
        e.state = State::Ready;
        e.readyAt = now + 1;
        branch_.predict(instr.pc);
        if (branch_.update(instr.pc, instr.branchTaken)) {
            ++stats_.branchMispredicts;
            // Squash the front-end: fetch resumes after the branch
            // resolves plus the pipeline-refill penalty.
            fetchResumeAt_ = now + 1 + params_.mispredictPenalty;
        }
        break;
      }
      case InstrKind::Store:
        ++sqUsed_;
        e.state = dep_pending ? State::WaitingDep : State::Ready;
        e.readyAt = dep_ready_at + 1;
        break;
      case InstrKind::Load: {
        ++lqUsed_;
        // LQ allocation: consult the off-chip predictor (paper §6.1.1).
        if (hermes_ != nullptr)
            hermes_->predictLoad(instr.pc, instr.vaddr, e.predMeta);
        if (dep_pending) {
            e.state = State::WaitingDep;
        } else {
            e.state = State::Ready;
            e.issueAt = dep_ready_at + params_.agenLatency;
            readyLoads_.push_back(seq);
        }
        break;
      }
    }
}

void
OooCore::wake(RobEntry &producer, Cycle now)
{
    InstrId wseq = producer.firstWaiter;
    while (wseq != 0) {
        RobEntry &w = entry(wseq);
        const InstrId next = w.nextWaiter;
        w.nextWaiter = 0;
        // Waiters cannot retire before their producer wakes them, so
        // the entry is always live; the guards are defensive.
        if (wseq >= headSeq_ && wseq < nextSeq_ && w.seq == wseq &&
            w.state == State::WaitingDep) {
            w.state = State::Ready;
            w.readyAt = now + params_.aluLatency;
            if (w.instr.kind == InstrKind::Load) {
                w.issueAt = now + params_.agenLatency;
                readyLoads_.push_back(wseq);
            }
        }
        wseq = next;
    }
    producer.firstWaiter = 0;
    producer.lastWaiter = 0;
}

void
OooCore::returnData(const MemRequest &req)
{
    const InstrId seq = req.instrId;
    if (seq < headSeq_ || seq >= nextSeq_)
        return; // Stale response (should not happen; loads block retire)
    RobEntry &e = entry(seq);
    if (e.seq != seq || e.instr.kind != InstrKind::Load ||
        e.state != State::IssuedToMem)
        return;

    e.state = State::Done;
    e.wentOffChip = req.servedFrom == MemLevel::Dram;
    e.servedByHermes = req.servedByHermes;
    e.mcArrive = req.cycleMcArrive;
    assert(lqUsed_ > 0);
    --lqUsed_;

    if (hermes_ != nullptr)
        hermes_->onLoadComplete(e.instr.pc, e.instr.vaddr, e.predMeta,
                                e.wentOffChip, e.servedByHermes);
    wake(e, now_);
}

namespace
{

void
saveInstr(StateWriter &w, const TraceInstr &instr)
{
    w.u64(instr.pc);
    w.u8(static_cast<std::uint8_t>(instr.kind));
    w.u64(instr.vaddr);
    w.b(instr.branchTaken);
    w.u32(instr.depDistance);
}

void
loadInstr(StateReader &r, TraceInstr &instr)
{
    instr.pc = r.u64();
    instr.kind = static_cast<InstrKind>(r.u8());
    instr.vaddr = r.u64();
    instr.branchTaken = r.b();
    instr.depDistance = r.u32();
}

void
savePredMeta(StateWriter &w, const PredMeta &m)
{
    for (std::uint32_t idx : m.index)
        w.u32(idx);
    w.u8(m.indexCount);
    w.i16(m.sum);
    w.b(m.predictedOffChip);
    w.b(m.valid);
}

void
loadPredMeta(StateReader &r, PredMeta &m)
{
    for (std::uint32_t &idx : m.index)
        idx = r.u32();
    m.indexCount = r.u8();
    m.sum = r.i16();
    m.predictedOffChip = r.b();
    m.valid = r.b();
}

} // namespace

void
OooCore::saveState(StateWriter &w) const
{
    w.section("CORE");
    branch_.saveState(w);
    w.u64(rob_.size());
    for (const RobEntry &e : rob_) {
        saveInstr(w, e.instr);
        w.u64(e.seq);
        w.u8(static_cast<std::uint8_t>(e.state));
        w.u64(e.readyAt);
        w.u64(e.issueAt);
        w.u64(e.blockedCycles);
        savePredMeta(w, e.predMeta);
        w.b(e.wentOffChip);
        w.b(e.servedByHermes);
        w.u64(e.l1Issue);
        w.u64(e.mcArrive);
        w.u64(e.firstWaiter);
        w.u64(e.lastWaiter);
        w.u64(e.nextWaiter);
    }
    w.u64(headSeq_);
    w.u64(nextSeq_);
    w.u32(lqUsed_);
    w.u32(sqUsed_);
    w.u64(readyLoads_.size());
    for (std::size_t i = 0; i < readyLoads_.size(); ++i)
        w.u64(readyLoads_.at(i));
    saveInstr(w, pendingFetch_);
    w.b(hasPendingFetch_);
    w.u64(fetchResumeAt_);
    w.u64(now_);
}

void
OooCore::loadState(StateReader &r)
{
    r.section("CORE");
    branch_.loadState(r);
    if (r.u64() != rob_.size())
        throw StateError("core rob size mismatch");
    for (RobEntry &e : rob_) {
        loadInstr(r, e.instr);
        e.seq = r.u64();
        e.state = static_cast<State>(r.u8());
        e.readyAt = r.u64();
        e.issueAt = r.u64();
        e.blockedCycles = r.u64();
        loadPredMeta(r, e.predMeta);
        e.wentOffChip = r.b();
        e.servedByHermes = r.b();
        e.l1Issue = r.u64();
        e.mcArrive = r.u64();
        e.firstWaiter = r.u64();
        e.lastWaiter = r.u64();
        e.nextWaiter = r.u64();
    }
    headSeq_ = r.u64();
    nextSeq_ = r.u64();
    lqUsed_ = r.u32();
    sqUsed_ = r.u32();
    readyLoads_.clear();
    const std::size_t nReady = r.count(rob_.size());
    for (std::size_t i = 0; i < nReady; ++i)
        readyLoads_.push_back(r.u64());
    loadInstr(r, pendingFetch_);
    hasPendingFetch_ = r.b();
    fetchResumeAt_ = r.u64();
    now_ = r.u64();
}

} // namespace hermes
