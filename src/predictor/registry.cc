#include <stdexcept>

#include "predictor/offchip_pred.hh"

namespace hermes
{

PredictorKind
predictorKindFromString(const std::string &name)
{
    if (name == "none")
        return PredictorKind::None;
    if (name == "popet")
        return PredictorKind::Popet;
    if (name == "hmp")
        return PredictorKind::Hmp;
    if (name == "ttp")
        return PredictorKind::Ttp;
    if (name == "ideal")
        return PredictorKind::Ideal;
    throw std::invalid_argument("unknown off-chip predictor: " + name);
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::None:
        return "none";
      case PredictorKind::Popet:
        return "popet";
      case PredictorKind::Hmp:
        return "hmp";
      case PredictorKind::Ttp:
        return "ttp";
      case PredictorKind::Ideal:
        return "ideal";
    }
    return "?";
}

} // namespace hermes
