#include <stdexcept>

#include "predictor/offchip_pred.hh"
#include "sim/model_registry.hh"

namespace hermes
{

// The "no predictor" baseline registers here so every value of the
// "predictor" parameter resolves through the model registry.
namespace
{

ModelDef
nonePredictorDef()
{
    ModelDef d;
    d.name = "none";
    d.kind = ModelKind::Predictor;
    d.doc = "no off-chip load predictor (baseline)";
    d.makePredictor = [](const ModelContext &) {
        return std::unique_ptr<OffChipPredictor>();
    };
    return d;
}

const ModelRegistrar noneRegistrar(nonePredictorDef());

} // namespace

PredictorKind
predictorKindFromString(const std::string &name)
{
    if (name == "none")
        return PredictorKind::None;
    if (name == "popet")
        return PredictorKind::Popet;
    if (name == "hmp")
        return PredictorKind::Hmp;
    if (name == "ttp")
        return PredictorKind::Ttp;
    if (name == "ideal")
        return PredictorKind::Ideal;
    throw std::invalid_argument("unknown off-chip predictor: " + name);
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::None:
        return "none";
      case PredictorKind::Popet:
        return "popet";
      case PredictorKind::Hmp:
        return "hmp";
      case PredictorKind::Ttp:
        return "ttp";
      case PredictorKind::Ideal:
        return "ideal";
    }
    return "?";
}

} // namespace hermes
