/**
 * @file
 * "hashperc": a table-free hashed-perceptron off-chip predictor
 * variant, landed entirely through the model registry (no enum, no
 * SystemConfig field, no System wiring — this file is the whole
 * model).
 *
 * Where POPET hashes each program feature into its own weight table
 * and tracks first accesses in a page buffer, hashperc folds a
 * configurable number of feature hashes into ONE shared weight table
 * (the "table-free" signature: no per-feature tables, no auxiliary
 * page buffer). Each hash mixes a different slice of program context
 * (PC, line/byte offsets, recent load-PC history) with a per-hash salt
 * so the k probes behave like a k-way bloomed perceptron. Prediction
 * sums the k indexed weights against an activation threshold; training
 * is POPET-style thresholded perceptron learning.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "predictor/offchip_pred.hh"
#include "sim/model_registry.hh"

namespace hermes
{

namespace
{

/** Cheap 64->32 bit mixer (same construction as POPET's hasher). */
std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
}

class HashPerc final : public OffChipPredictor
{
  public:
    explicit HashPerc(const ModelContext &ctx)
        : hashes_(static_cast<unsigned>(ctx.knobInt("hashes"))),
          weightBits_(static_cast<unsigned>(ctx.knobInt("weight_bits"))),
          tauAct_(static_cast<int>(ctx.knobInt("act_threshold"))),
          tn_(static_cast<int>(ctx.knobInt("train_threshold_neg"))),
          tp_(static_cast<int>(ctx.knobInt("train_threshold_pos"))),
          mask_((1u << ctx.knobInt("table_bits")) - 1),
          weights_(1u << ctx.knobInt("table_bits"), 0)
    {
    }

    const char *name() const override { return "hashperc"; }

    bool
    predict(Addr pc, Addr vaddr, PredMeta &meta) override
    {
        // Hot path: the four raw context slices are computed once in
        // straight-line code; the probe loop then only salts + mixes,
        // selecting its slice with h & 3 (h % 4 on an unsigned) —
        // no per-probe switch dispatch.
        const std::array<std::uint64_t, 4> raws = {
            pc ^ (static_cast<std::uint64_t>(lineOffsetInPage(vaddr))
                  << 1),
            pc ^ (static_cast<std::uint64_t>(byteOffsetInLine(vaddr))
                  << 1),
            (lastLoadPcs_[0] << 3) ^ (lastLoadPcs_[1] << 2) ^
                (lastLoadPcs_[2] << 1) ^ lastLoadPcs_[3],
            (pc << 6) ^ lineAddr(vaddr),
        };
        int sum = 0;
        meta = PredMeta{};
        for (unsigned h = 0; h < hashes_; ++h) {
            const std::uint32_t idx =
                mix32(raws[h & 3] + (h + 1) * 0x9E3779B9ull) & mask_;
            meta.index[meta.indexCount++] = idx;
            sum += weights_[idx];
        }
        meta.sum = static_cast<std::int16_t>(sum);
        meta.predictedOffChip = sum >= tauAct_;
        meta.valid = true;

        lastLoadPcs_[3] = lastLoadPcs_[2];
        lastLoadPcs_[2] = lastLoadPcs_[1];
        lastLoadPcs_[1] = lastLoadPcs_[0];
        lastLoadPcs_[0] = pc;
        return meta.predictedOffChip;
    }

    void
    train(Addr pc, Addr vaddr, const PredMeta &meta,
          bool went_off_chip) override
    {
        (void)pc;
        (void)vaddr;
        if (!meta.valid)
            return;
        // Thresholded perceptron update (POPET §6.1.2): adjust only
        // when the sum is not saturated past [T_N, T_P], or on a
        // misprediction.
        const bool within = meta.sum >= tn_ && meta.sum <= tp_;
        const bool mispredict = meta.predictedOffChip != went_off_chip;
        if (!within && !mispredict)
            return;
        const int wmax = (1 << (weightBits_ - 1)) - 1;
        const int wmin = -(1 << (weightBits_ - 1));
        // Unlike POPET (disjoint per-feature tables), the k probes
        // share one table and can collide; saturating updates to the
        // same slot are order-dependent, so this loop must stay
        // sequential.
        for (unsigned i = 0; i < meta.indexCount; ++i) {
            std::int8_t &w = weights_[meta.index[i]];
            if (went_off_chip)
                w = static_cast<std::int8_t>(std::min<int>(w + 1, wmax));
            else
                w = static_cast<std::int8_t>(std::max<int>(w - 1, wmin));
        }
    }

    std::uint64_t
    storageBits() const override
    {
        // The shared table is the entire model state.
        return static_cast<std::uint64_t>(weights_.size()) * weightBits_;
    }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("HSHP");
        w.u64(weights_.size());
        for (std::int8_t v : weights_)
            w.i8(v);
        for (Addr pc : lastLoadPcs_)
            w.u64(pc);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("HSHP");
        if (r.u64() != weights_.size())
            throw StateError("hashperc weight table size mismatch");
        for (std::int8_t &v : weights_)
            v = r.i8();
        for (Addr &pc : lastLoadPcs_)
            pc = r.u64();
    }

  private:
    unsigned hashes_;
    unsigned weightBits_;
    int tauAct_;
    int tn_;
    int tp_;
    std::uint32_t mask_;
    std::vector<std::int8_t> weights_;
    std::array<Addr, 4> lastLoadPcs_{};
};

ModelDef
hashPercModelDef()
{
    ModelDef d;
    d.name = "hashperc";
    d.kind = ModelKind::Predictor;
    d.doc = "table-free hashed perceptron: k salted hashes into one "
            "shared weight table (POPET variant)";
    d.knobs = {
        {"table_bits", ModelKnob::Type::Int, "11", 6, 20, false,
         "log2 of the shared weight-table entries"},
        {"hashes", ModelKnob::Type::Int, "4", 1, 6, false,
         "probes per prediction (PredMeta holds at most 6)"},
        {"act_threshold", ModelKnob::Type::Int, "-8", -1024, 1024,
         false, "activation threshold tau_act"},
        {"train_threshold_neg", ModelKnob::Type::Int, "-20", -1024,
         1024, false, "negative training threshold T_N"},
        {"train_threshold_pos", ModelKnob::Type::Int, "24", -1024,
         1024, false, "positive training threshold T_P"},
        {"weight_bits", ModelKnob::Type::Int, "5", 2, 8, false,
         "signed weight width (bits)"},
    };
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<HashPerc>(ctx);
    };
    return d;
}

const ModelRegistrar hashPercRegistrar(hashPercModelDef());

} // namespace

} // namespace hermes
