#include "predictor/hmp.hh"

#include <cassert>

#include "sim/model_registry.hh"
#include "sim/system.hh"

namespace hermes
{

namespace
{

std::uint32_t
mix32(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

} // namespace

Hmp::Hmp(HmpParams params)
    : params_(params),
      counterMax_(static_cast<std::uint8_t>((1u << params.counterBits) - 1)),
      localHistory_(params.localHistories, 0),
      localPattern_(params.localCounters, 0),
      gshare_(params.gshareCounters, 0)
{
    for (auto &bank : gskew_)
        bank.assign(params_.gskewCounters, 0);
}

bool
Hmp::counterTaken(std::uint8_t c) const
{
    return c > counterMax_ / 2;
}

void
Hmp::bump(std::uint8_t &c, bool up)
{
    if (up) {
        if (c < counterMax_)
            ++c;
    } else if (c > 0) {
        --c;
    }
}

std::uint32_t
Hmp::localIndex(Addr pc) const
{
    return mix32(pc) & (params_.localHistories - 1);
}

std::uint32_t
Hmp::localPatternIndex(Addr pc) const
{
    const std::uint16_t hist = localHistory_[localIndex(pc)];
    return (mix32(pc >> 2) ^ hist) & (params_.localCounters - 1);
}

std::uint32_t
Hmp::gshareIndex(Addr pc) const
{
    return (mix32(pc) ^ globalHistory_) & (params_.gshareCounters - 1);
}

std::uint32_t
Hmp::gskewIndex(unsigned bank, Addr pc) const
{
    // Different skewing function per bank, as in the e-gskew scheme.
    const std::uint64_t h = pc ^ (static_cast<std::uint64_t>(globalHistory_)
                                  << (3 + bank));
    return mix32(h * (2 * bank + 3)) & (params_.gskewCounters - 1);
}

bool
Hmp::predict(Addr pc, Addr vaddr, PredMeta &meta)
{
    (void)vaddr;
    meta = PredMeta{};

    const std::uint32_t li = localPatternIndex(pc);
    const std::uint32_t gi = gshareIndex(pc);
    const std::uint32_t s0 = gskewIndex(0, pc);
    const std::uint32_t s1 = gskewIndex(1, pc);
    const std::uint32_t s2 = gskewIndex(2, pc);

    const bool local_pred = counterTaken(localPattern_[li]);
    const bool gshare_pred = counterTaken(gshare_[gi]);
    const int skew_votes = static_cast<int>(counterTaken(gskew_[0][s0])) +
                           static_cast<int>(counterTaken(gskew_[1][s1])) +
                           static_cast<int>(counterTaken(gskew_[2][s2]));
    const bool gskew_pred = skew_votes >= 2;

    const int votes = static_cast<int>(local_pred) +
                      static_cast<int>(gshare_pred) +
                      static_cast<int>(gskew_pred);

    // Stash indices so training addresses the same entries even after
    // the histories advance.
    meta.index[0] = li;
    meta.index[1] = gi;
    meta.index[2] = s0;
    meta.index[3] = s1;
    meta.index[4] = s2;
    meta.index[5] = localIndex(pc);
    meta.indexCount = 6;
    meta.predictedOffChip = votes >= 2;
    meta.valid = true;
    return meta.predictedOffChip;
}

void
Hmp::train(Addr pc, Addr vaddr, const PredMeta &meta, bool went_off_chip)
{
    (void)pc;
    (void)vaddr;
    if (!meta.valid)
        return;

    bump(localPattern_[meta.index[0]], went_off_chip);
    bump(gshare_[meta.index[1]], went_off_chip);
    for (unsigned b = 0; b < 3; ++b)
        bump(gskew_[b][meta.index[2 + b]], went_off_chip);

    // Advance histories with the true outcome.
    std::uint16_t &lh = localHistory_[meta.index[5]];
    lh = static_cast<std::uint16_t>(
        ((lh << 1) | static_cast<std::uint16_t>(went_off_chip)) &
        ((1u << params_.localHistoryBits) - 1));
    globalHistory_ =
        ((globalHistory_ << 1) | static_cast<std::uint32_t>(went_off_chip)) &
        ((1u << params_.globalHistoryBits) - 1);
}

std::uint64_t
Hmp::storageBits() const
{
    std::uint64_t bits = 0;
    bits += static_cast<std::uint64_t>(params_.localHistories) *
            params_.localHistoryBits;
    bits += static_cast<std::uint64_t>(params_.localCounters) *
            params_.counterBits;
    bits += static_cast<std::uint64_t>(params_.gshareCounters) *
            params_.counterBits;
    bits += 3ull * params_.gskewCounters * params_.counterBits;
    return bits;
}

namespace
{

ModelDef
hmpModelDef()
{
    ModelDef d;
    d.name = "hmp";
    d.kind = ModelKind::Predictor;
    d.doc = "hybrid local/gshare/gskew hit-miss predictor (Yoaz et "
            "al., the paper's HMP baseline, §7.2)";
    d.legacyKeys = {"hmp.local_histories",
                    "hmp.local_history_bits",
                    "hmp.local_counters",
                    "hmp.gshare_counters",
                    "hmp.global_history_bits",
                    "hmp.gskew_counters",
                    "hmp.counter_bits"};
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<Hmp>(ctx.config->hmp);
    };
    return d;
}

const ModelRegistrar hmpRegistrar(hmpModelDef());

} // namespace

} // namespace hermes
