#pragma once

/**
 * @file
 * TTP: the address tag-tracking off-chip predictor the paper designs as
 * a comparison point (§4, §7.2), inspired by D2D/D2M/LP/MissMap. TTP
 * keeps a set-associative table of partial tags of cache lines believed
 * to be resident in the on-chip hierarchy: tags are inserted when a
 * line is filled from DRAM and removed when the LLC evicts the line. A
 * load whose tag is absent is predicted to go off-chip.
 *
 * Its weaknesses emerge naturally: lines still resident in L1/L2 after
 * an LLC eviction, in-flight fills and partial-tag aliasing all cause
 * mispredictions, reproducing the paper's high-coverage / low-accuracy
 * result (Fig. 9) despite a metadata budget similar to the L2 (1.5MB,
 * Table 6).
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** TTP sizing: defaults give the paper's ~1.5MB budget. */
struct TtpParams
{
    std::uint32_t sets = 1u << 16;
    std::uint32_t ways = 11;
    unsigned tagBits = 16;
};

/** Tag-tracking off-chip predictor. */
class Ttp : public OffChipPredictor
{
  public:
    explicit Ttp(TtpParams params = TtpParams{});

    const char *name() const override { return "ttp"; }
    bool predict(Addr pc, Addr vaddr, PredMeta &meta) override;
    void train(Addr pc, Addr vaddr, const PredMeta &meta,
               bool went_off_chip) override;
    void onFillFromDram(Addr line) override;
    void onLlcEviction(Addr line) override;
    std::uint64_t storageBits() const override;

    /** Test hook: is a line currently tracked as resident? */
    bool tracked(Addr line) const;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("TTPP");
        w.u64(table_.size());
        for (const Entry &e : table_) {
            w.u16(e.tag);
            w.u32(e.lastUse);
            w.b(e.valid);
        }
        w.u32(clock_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("TTPP");
        if (r.u64() != table_.size())
            throw StateError("ttp table size mismatch");
        for (Entry &e : table_) {
            e.tag = r.u16();
            e.lastUse = r.u32();
            e.valid = r.b();
        }
        clock_ = r.u32();
    }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::uint32_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setOf(Addr line) const;
    std::uint16_t tagOf(Addr line) const;

    TtpParams params_;
    std::vector<Entry> table_;
    std::uint32_t clock_ = 0;
};

} // namespace hermes
