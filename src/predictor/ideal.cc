#include "predictor/ideal.hh"

#include "sim/model_registry.hh"

namespace hermes
{

// IdealPredictor itself is header-only; this translation unit hosts
// its model registration.
namespace
{

ModelDef
idealModelDef()
{
    ModelDef d;
    d.name = "ideal";
    d.kind = ModelKind::Predictor;
    d.doc = "oracle off-chip predictor probing actual hierarchy "
            "residency (Ideal Hermes, §3.1)";
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<IdealPredictor>(ctx.residentProbe);
    };
    return d;
}

const ModelRegistrar idealRegistrar(idealModelDef());

} // namespace

} // namespace hermes
