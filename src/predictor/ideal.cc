#include "predictor/ideal.hh"

// IdealPredictor is header-only; this translation unit anchors it in
// the library so the build layout stays uniform.
