#include "predictor/ttp.hh"

#include <cassert>

#include "sim/model_registry.hh"
#include "sim/system.hh"

namespace hermes
{

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

Ttp::Ttp(TtpParams params)
    : params_(params),
      table_(static_cast<std::size_t>(params.sets) * params.ways)
{
    assert((params_.sets & (params_.sets - 1)) == 0);
}

std::uint32_t
Ttp::setOf(Addr line) const
{
    return static_cast<std::uint32_t>(line & (params_.sets - 1));
}

std::uint16_t
Ttp::tagOf(Addr line) const
{
    return static_cast<std::uint16_t>(
        mix64(line >> 0) >> 17 & ((1u << params_.tagBits) - 1));
}

bool
Ttp::tracked(Addr line) const
{
    const std::uint32_t set = setOf(line);
    const std::uint16_t tag = tagOf(line);
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        if (table_[base + w].valid && table_[base + w].tag == tag)
            return true;
    return false;
}

bool
Ttp::predict(Addr pc, Addr vaddr, PredMeta &meta)
{
    (void)pc;
    meta = PredMeta{};
    meta.predictedOffChip = !tracked(lineAddr(vaddr));
    meta.valid = true;
    return meta.predictedOffChip;
}

void
Ttp::train(Addr pc, Addr vaddr, const PredMeta &meta, bool went_off_chip)
{
    // TTP learns only from hierarchy fill/eviction events.
    (void)pc;
    (void)vaddr;
    (void)meta;
    (void)went_off_chip;
}

void
Ttp::onFillFromDram(Addr line)
{
    const std::uint32_t set = setOf(line);
    const std::uint16_t tag = tagOf(line);
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;
    ++clock_;

    Entry *victim = &table_[base];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.tag == tag) {
            e.lastUse = clock_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
}

void
Ttp::onLlcEviction(Addr line)
{
    const std::uint32_t set = setOf(line);
    const std::uint16_t tag = tagOf(line);
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.tag == tag) {
            e.valid = false;
            return;
        }
    }
}

std::uint64_t
Ttp::storageBits() const
{
    return static_cast<std::uint64_t>(table_.size()) *
           (params_.tagBits + 1);
}

namespace
{

ModelDef
ttpModelDef()
{
    ModelDef d;
    d.name = "ttp";
    d.kind = ModelKind::Predictor;
    d.doc = "address tag-tracking off-chip predictor (the paper's TTP "
            "comparison point, §4)";
    d.legacyKeys = {"ttp.sets", "ttp.ways", "ttp.tag_bits"};
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<Ttp>(ctx.config->ttp);
    };
    return d;
}

const ModelRegistrar ttpRegistrar(ttpModelDef());

} // namespace

} // namespace hermes
