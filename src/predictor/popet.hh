#pragma once

/**
 * @file
 * POPET: the Perceptron-based Off-chip load Predictor (paper §6.1).
 *
 * POPET is a hashed-perceptron model. Each of five program features is
 * hashed into its own table of 5-bit signed saturating weights
 * (Table 3). Prediction sums the five indexed weights and compares
 * against the activation threshold tau_act; training nudges each
 * indexed weight toward the true outcome when the sum is not already
 * saturated beyond the training thresholds [T_N, T_P] (Table 2:
 * tau_act = -18, T_N = -35, T_P = 40).
 *
 * The selected features (paper Table 2):
 *   1. PC ^ cache-line offset (in page)     -> 1024-entry table
 *   2. PC ^ byte offset (in line)           -> 1024-entry table
 *   3. PC + first-access bit                -> 1024-entry table
 *   4. cache-line offset + first-access bit ->  128-entry table
 *   5. last-4 load PCs (shifted XOR)        -> 1024-entry table
 *
 * The first-access hint comes from a 64-entry page buffer (page tag +
 * 64-bit line bitmap, LRU), updated on every prediction.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/addr_index.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** POPET feature identifiers (bitmask positions for ablations). */
enum PopetFeature : unsigned
{
    kFeatPcXorLineOffset = 0,
    kFeatPcXorByteOffset = 1,
    kFeatPcFirstAccess = 2,
    kFeatOffsetFirstAccess = 3,
    kFeatLast4LoadPcs = 4,
    kPopetFeatureCount = 5,
};

/** Tunable POPET parameters (paper Table 2 defaults). */
struct PopetParams
{
    int activationThreshold = -18; ///< tau_act
    int trainingThresholdNeg = -35; ///< T_N
    int trainingThresholdPos = 40;  ///< T_P
    /** Also train on mispredictions outside [T_N, T_P]. */
    bool trainOnMispredict = true;
    unsigned weightBits = 5;
    /**
     * Bitmask of enabled features (Fig. 10/11 ablations). When fewer
     * than five features are active, thresholds are scaled
     * proportionally so the decision boundary stays comparable.
     */
    unsigned featureMask = (1u << kPopetFeatureCount) - 1;
    unsigned pageBufferEntries = 64;
};

/** The POPET predictor. */
class Popet : public OffChipPredictor
{
  public:
    explicit Popet(PopetParams params = PopetParams{});

    const char *name() const override { return "popet"; }
    bool predict(Addr pc, Addr vaddr, PredMeta &meta) override;
    void train(Addr pc, Addr vaddr, const PredMeta &meta,
               bool went_off_chip) override;
    std::uint64_t storageBits() const override;

    const PopetParams &params() const { return params_; }

    /** Scaled activation threshold in effect (feature ablations). */
    int effectiveActivation() const { return tauActScaled_; }

    /** Raw weight inspection (tests). */
    int weightAt(unsigned feature, std::uint32_t index) const;

    /** Table sizes per feature (Table 3). */
    static constexpr std::array<std::uint32_t, kPopetFeatureCount>
        kTableSizes = {1024, 1024, 1024, 128, 1024};

    bool checkpointable() const override { return true; }

    /** Checkpoint format is per-table (size + weights) even though the
     * weights live in one arena, so pre-arena checkpoints stay
     * compatible byte for byte. */
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    struct PageBufferEntry
    {
        Addr pageTag = 0;
        std::uint64_t bitmap = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * Look up / update the page buffer and return the first-access
     * hint for the line (true = not recently touched).
     */
    bool firstAccessHint(Addr vaddr);

    /** Compute the hashed table index of one feature. */
    std::uint32_t featureIndex(unsigned feature, Addr pc, Addr vaddr,
                               bool first_access) const;

    unsigned activeFeatureCount() const;

    /** Intrusive LRU list maintenance (head = least recently used). */
    void lruDetach(std::uint32_t slot);
    void lruAppend(std::uint32_t slot);

    static constexpr std::uint32_t kLruNil = ~std::uint32_t{0};

    PopetParams params_;
    int tauActScaled_;
    int tnScaled_;
    int tpScaled_;
    /**
     * All five weight tables in one contiguous arena (per-feature base
     * offsets are the running sum of kTableSizes). Keeping the hot dot
     * product inside one allocation lets predict() gather the five
     * weights without chasing per-table vector headers; the checkpoint
     * format still writes per-table slices (see saveState).
     */
    std::vector<std::int8_t> arena_;
    /** 1 for enabled features, 0 for masked-out ones (multiplicative
     * predication: the dot product has no per-feature branches). */
    std::array<std::int32_t, kPopetFeatureCount> featActive_{};
    std::vector<PageBufferEntry> pageBuffer_;
    /** page tag -> pageBuffer_ slot; hits are O(1) instead of a scan. */
    AddrIndex pageIndex_;
    /**
     * Intrusive doubly-linked recency list over pageBuffer_ slots
     * (head = LRU victim). lastUse clock values are strictly
     * increasing and unique, so list order equals lastUse order and
     * the head is exactly the entry the old O(n) min-scan selected;
     * lastUse stays authoritative for the checkpoint format and the
     * list is rebuilt from it on loadState.
     */
    std::vector<std::uint32_t> lruPrev_;
    std::vector<std::uint32_t> lruNext_;
    std::uint32_t lruHead_ = kLruNil;
    std::uint32_t lruTail_ = kLruNil;
    /** Invalid slots left; they fill in ascending index order,
     * matching the scan-based allocation order they replace. */
    std::uint32_t pageInvalidLeft_;
    std::uint64_t pageBufferClock_ = 0;
    std::array<Addr, 4> lastLoadPcs_{};
};

} // namespace hermes
