#pragma once

/**
 * @file
 * POPET: the Perceptron-based Off-chip load Predictor (paper §6.1).
 *
 * POPET is a hashed-perceptron model. Each of five program features is
 * hashed into its own table of 5-bit signed saturating weights
 * (Table 3). Prediction sums the five indexed weights and compares
 * against the activation threshold tau_act; training nudges each
 * indexed weight toward the true outcome when the sum is not already
 * saturated beyond the training thresholds [T_N, T_P] (Table 2:
 * tau_act = -18, T_N = -35, T_P = 40).
 *
 * The selected features (paper Table 2):
 *   1. PC ^ cache-line offset (in page)     -> 1024-entry table
 *   2. PC ^ byte offset (in line)           -> 1024-entry table
 *   3. PC + first-access bit                -> 1024-entry table
 *   4. cache-line offset + first-access bit ->  128-entry table
 *   5. last-4 load PCs (shifted XOR)        -> 1024-entry table
 *
 * The first-access hint comes from a 64-entry page buffer (page tag +
 * 64-bit line bitmap, LRU), updated on every prediction.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "common/addr_index.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** POPET feature identifiers (bitmask positions for ablations). */
enum PopetFeature : unsigned
{
    kFeatPcXorLineOffset = 0,
    kFeatPcXorByteOffset = 1,
    kFeatPcFirstAccess = 2,
    kFeatOffsetFirstAccess = 3,
    kFeatLast4LoadPcs = 4,
    kPopetFeatureCount = 5,
};

/** Tunable POPET parameters (paper Table 2 defaults). */
struct PopetParams
{
    int activationThreshold = -18; ///< tau_act
    int trainingThresholdNeg = -35; ///< T_N
    int trainingThresholdPos = 40;  ///< T_P
    /** Also train on mispredictions outside [T_N, T_P]. */
    bool trainOnMispredict = true;
    unsigned weightBits = 5;
    /**
     * Bitmask of enabled features (Fig. 10/11 ablations). When fewer
     * than five features are active, thresholds are scaled
     * proportionally so the decision boundary stays comparable.
     */
    unsigned featureMask = (1u << kPopetFeatureCount) - 1;
    unsigned pageBufferEntries = 64;
};

/** The POPET predictor. */
class Popet : public OffChipPredictor
{
  public:
    explicit Popet(PopetParams params = PopetParams{});

    const char *name() const override { return "popet"; }
    bool predict(Addr pc, Addr vaddr, PredMeta &meta) override;
    void train(Addr pc, Addr vaddr, const PredMeta &meta,
               bool went_off_chip) override;
    std::uint64_t storageBits() const override;

    const PopetParams &params() const { return params_; }

    /** Scaled activation threshold in effect (feature ablations). */
    int effectiveActivation() const { return tauActScaled_; }

    /** Raw weight inspection (tests). */
    int weightAt(unsigned feature, std::uint32_t index) const;

    /** Table sizes per feature (Table 3). */
    static constexpr std::array<std::uint32_t, kPopetFeatureCount>
        kTableSizes = {1024, 1024, 1024, 128, 1024};

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("POPT");
        for (const auto &table : weights_) {
            w.u64(table.size());
            for (std::int8_t v : table)
                w.i8(v);
        }
        w.u64(pageBuffer_.size());
        for (const PageBufferEntry &e : pageBuffer_) {
            w.u64(e.pageTag);
            w.u64(e.bitmap);
            w.u64(e.lastUse);
        }
        w.u32(pageInvalidLeft_);
        w.u64(pageBufferClock_);
        for (Addr pc : lastLoadPcs_)
            w.u64(pc);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("POPT");
        for (auto &table : weights_) {
            if (r.u64() != table.size())
                throw StateError("popet weight table size mismatch");
            for (std::int8_t &v : table)
                v = r.i8();
        }
        if (r.u64() != pageBuffer_.size())
            throw StateError("popet page buffer size mismatch");
        for (PageBufferEntry &e : pageBuffer_) {
            e.pageTag = r.u64();
            e.bitmap = r.u64();
            e.lastUse = r.u64();
        }
        pageInvalidLeft_ = r.u32();
        pageBufferClock_ = r.u64();
        for (Addr &pc : lastLoadPcs_)
            pc = r.u64();
        // Valid slots fill in ascending index order (see the
        // pageInvalidLeft_ comment below), so the occupied prefix is
        // exactly the index content to rebuild.
        pageIndex_.clear();
        const std::size_t used =
            pageBuffer_.size() - static_cast<std::size_t>(pageInvalidLeft_);
        for (std::size_t i = 0; i < used; ++i)
            pageIndex_.insert(pageBuffer_[i].pageTag,
                              static_cast<std::uint32_t>(i));
    }

  private:
    struct PageBufferEntry
    {
        Addr pageTag = 0;
        std::uint64_t bitmap = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * Look up / update the page buffer and return the first-access
     * hint for the line (true = not recently touched).
     */
    bool firstAccessHint(Addr vaddr);

    /** Compute the hashed table index of one feature. */
    std::uint32_t featureIndex(unsigned feature, Addr pc, Addr vaddr,
                               bool first_access) const;

    unsigned activeFeatureCount() const;

    PopetParams params_;
    int tauActScaled_;
    int tnScaled_;
    int tpScaled_;
    std::array<std::vector<std::int8_t>, kPopetFeatureCount> weights_;
    std::vector<PageBufferEntry> pageBuffer_;
    /** page tag -> pageBuffer_ slot; hits are O(1) instead of a scan. */
    AddrIndex pageIndex_;
    /** Invalid slots left; they fill in ascending index order,
     * matching the scan-based allocation order they replace. */
    std::uint32_t pageInvalidLeft_;
    std::uint64_t pageBufferClock_ = 0;
    std::array<Addr, 4> lastLoadPcs_{};
};

} // namespace hermes
