#pragma once

/**
 * @file
 * HMP: the hit-miss predictor of Yoaz et al. (ISCA'99), extended per the
 * paper's footnote 3 to predict misses of the *entire* hierarchy
 * (off-chip loads) rather than L1 misses. HMP combines three component
 * predictors in the style of a hybrid branch predictor — local, gshare
 * and gskew — and takes the majority of their three predictions
 * (paper §7.2). Each component is a table of saturating counters
 * trained with the true off-chip outcome.
 */

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** Sizing parameters (defaults give the paper's ~11KB budget). */
struct HmpParams
{
    std::uint32_t localHistories = 2048;  ///< Per-PC history registers
    unsigned localHistoryBits = 10;
    std::uint32_t localCounters = 8192;   ///< Pattern table
    std::uint32_t gshareCounters = 8192;
    unsigned globalHistoryBits = 12;
    std::uint32_t gskewCounters = 8192;   ///< Per skewed bank
    unsigned counterBits = 2;
};

/** Hybrid local/gshare/gskew off-chip predictor. */
class Hmp : public OffChipPredictor
{
  public:
    explicit Hmp(HmpParams params = HmpParams{});

    const char *name() const override { return "hmp"; }
    bool predict(Addr pc, Addr vaddr, PredMeta &meta) override;
    void train(Addr pc, Addr vaddr, const PredMeta &meta,
               bool went_off_chip) override;
    std::uint64_t storageBits() const override;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &w) const override
    {
        w.section("HMPP");
        w.u64(localHistory_.size());
        for (std::uint16_t v : localHistory_)
            w.u16(v);
        w.u64(localPattern_.size());
        for (std::uint8_t v : localPattern_)
            w.u8(v);
        w.u64(gshare_.size());
        for (std::uint8_t v : gshare_)
            w.u8(v);
        for (const auto &bank : gskew_) {
            w.u64(bank.size());
            for (std::uint8_t v : bank)
                w.u8(v);
        }
        w.u32(globalHistory_);
    }

    void
    loadState(StateReader &r) override
    {
        r.section("HMPP");
        if (r.u64() != localHistory_.size())
            throw StateError("hmp local history size mismatch");
        for (std::uint16_t &v : localHistory_)
            v = r.u16();
        if (r.u64() != localPattern_.size())
            throw StateError("hmp local pattern size mismatch");
        for (std::uint8_t &v : localPattern_)
            v = r.u8();
        if (r.u64() != gshare_.size())
            throw StateError("hmp gshare size mismatch");
        for (std::uint8_t &v : gshare_)
            v = r.u8();
        for (auto &bank : gskew_) {
            if (r.u64() != bank.size())
                throw StateError("hmp gskew size mismatch");
            for (std::uint8_t &v : bank)
                v = r.u8();
        }
        globalHistory_ = r.u32();
    }

  private:
    bool counterTaken(std::uint8_t c) const;
    void bump(std::uint8_t &c, bool up);

    std::uint32_t localIndex(Addr pc) const;
    std::uint32_t localPatternIndex(Addr pc) const;
    std::uint32_t gshareIndex(Addr pc) const;
    std::uint32_t gskewIndex(unsigned bank, Addr pc) const;

    HmpParams params_;
    std::uint8_t counterMax_;

    std::vector<std::uint16_t> localHistory_;
    std::vector<std::uint8_t> localPattern_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> gskew_[3];
    std::uint32_t globalHistory_ = 0;
};

} // namespace hermes
