#pragma once

/**
 * @file
 * The Ideal off-chip predictor (paper §3.1, "Ideal Hermes"): an oracle
 * that knows with perfect accuracy and coverage whether a load will be
 * serviced by DRAM. It is realised by probing the actual hierarchy
 * state through a callback installed by the System.
 */

#include <functional>

#include "common/types.hh"
#include "predictor/offchip_pred.hh"

namespace hermes
{

/** Oracle predictor backed by a hierarchy-presence probe. */
class IdealPredictor : public OffChipPredictor
{
  public:
    using Probe = std::function<bool(Addr line)>;

    /** @param resident returns true iff the line is on-chip. */
    explicit IdealPredictor(Probe resident)
        : resident_(std::move(resident))
    {
    }

    const char *name() const override { return "ideal"; }

    bool
    predict(Addr pc, Addr vaddr, PredMeta &meta) override
    {
        (void)pc;
        meta = PredMeta{};
        meta.predictedOffChip = !resident_(lineAddr(vaddr));
        meta.valid = true;
        return meta.predictedOffChip;
    }

    void
    train(Addr, Addr, const PredMeta &, bool) override
    {
    }

    std::uint64_t storageBits() const override { return 0; }

    /** Stateless: the probe reads live hierarchy state on demand. */
    bool checkpointable() const override { return true; }

  private:
    Probe resident_;
};

} // namespace hermes
