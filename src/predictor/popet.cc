#include "predictor/popet.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sim/model_registry.hh"
#include "sim/system.hh"

namespace hermes
{

namespace
{

/** Cheap 64->32 bit mixer used to hash feature values into tables. */
std::uint32_t
hashFeature(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
}

int
scaleThreshold(int threshold, unsigned active, unsigned total)
{
    if (active == total)
        return threshold;
    const double scaled = static_cast<double>(threshold) *
                          static_cast<double>(active) /
                          static_cast<double>(total);
    return static_cast<int>(std::lround(scaled));
}

} // namespace

Popet::Popet(PopetParams params)
    : params_(params), pageBuffer_(params.pageBufferEntries),
      pageIndex_(params.pageBufferEntries),
      pageInvalidLeft_(params.pageBufferEntries)
{
    assert(params_.weightBits >= 2 && params_.weightBits <= 8);
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        weights_[f].assign(kTableSizes[f], 0);
    const unsigned active = activeFeatureCount();
    assert(active > 0 && "POPET needs at least one feature");
    tauActScaled_ = scaleThreshold(params_.activationThreshold, active,
                                   kPopetFeatureCount);
    tnScaled_ = scaleThreshold(params_.trainingThresholdNeg, active,
                               kPopetFeatureCount);
    tpScaled_ = scaleThreshold(params_.trainingThresholdPos, active,
                               kPopetFeatureCount);
}

unsigned
Popet::activeFeatureCount() const
{
    unsigned n = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        if (params_.featureMask & (1u << f))
            ++n;
    return n;
}

bool
Popet::firstAccessHint(Addr vaddr)
{
    const Addr page = pageNumber(vaddr);
    const std::uint64_t bit = 1ull << lineOffsetInPage(vaddr);
    ++pageBufferClock_;

    // O(1) hit path through the page index (this runs per prediction).
    const std::uint32_t slot = pageIndex_.find(page);
    if (slot != AddrIndex::kNotFound) {
        PageBufferEntry &e = pageBuffer_[slot];
        e.lastUse = pageBufferClock_;
        const bool first = (e.bitmap & bit) == 0;
        e.bitmap |= bit;
        return first;
    }

    // Miss: fill invalid slots in ascending order first, else evict
    // the least recently used entry (unique clock values, so the
    // victim is unambiguous). The line has not been seen in the
    // tracked window -> first access.
    std::uint32_t victim;
    if (pageInvalidLeft_ > 0) {
        victim = static_cast<std::uint32_t>(pageBuffer_.size()) -
                 pageInvalidLeft_;
        --pageInvalidLeft_;
    } else {
        victim = 0;
        std::uint64_t oldest = pageBuffer_[0].lastUse;
        for (std::uint32_t i = 1; i < pageBuffer_.size(); ++i) {
            if (pageBuffer_[i].lastUse < oldest) {
                oldest = pageBuffer_[i].lastUse;
                victim = i;
            }
        }
        pageIndex_.erase(pageBuffer_[victim].pageTag);
    }
    PageBufferEntry &e = pageBuffer_[victim];
    e.pageTag = page;
    e.bitmap = bit;
    e.lastUse = pageBufferClock_;
    pageIndex_.insert(page, victim);
    return true;
}

std::uint32_t
Popet::featureIndex(unsigned feature, Addr pc, Addr vaddr,
                    bool first_access) const
{
    std::uint64_t raw = 0;
    switch (feature) {
      case kFeatPcXorLineOffset:
        raw = pc ^ (static_cast<std::uint64_t>(lineOffsetInPage(vaddr))
                    << 1);
        break;
      case kFeatPcXorByteOffset:
        raw = pc ^ (static_cast<std::uint64_t>(byteOffsetInLine(vaddr))
                    << 1) ^ 0xABCDull;
        break;
      case kFeatPcFirstAccess:
        raw = (pc << 1) | static_cast<std::uint64_t>(first_access);
        break;
      case kFeatOffsetFirstAccess:
        raw = (static_cast<std::uint64_t>(lineOffsetInPage(vaddr)) << 1) |
              static_cast<std::uint64_t>(first_access);
        break;
      case kFeatLast4LoadPcs: {
        raw = (lastLoadPcs_[0] << 3) ^ (lastLoadPcs_[1] << 2) ^
              (lastLoadPcs_[2] << 1) ^ lastLoadPcs_[3];
        break;
      }
      default:
        assert(false && "bad feature id");
    }
    return hashFeature(raw + feature * 0x9E3779B9ull) &
           (kTableSizes[feature] - 1);
}

bool
Popet::predict(Addr pc, Addr vaddr, PredMeta &meta)
{
    const bool first_access = firstAccessHint(vaddr);

    int sum = 0;
    meta = PredMeta{};
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        if (!(params_.featureMask & (1u << f)))
            continue;
        const std::uint32_t idx = featureIndex(f, pc, vaddr, first_access);
        // Pack the feature id with the index so training can address
        // the right table without recomputing hashes.
        meta.index[meta.indexCount++] = (f << 16) | idx;
        sum += weights_[f][idx];
    }
    meta.sum = static_cast<std::int16_t>(sum);
    meta.predictedOffChip = sum >= tauActScaled_;
    meta.valid = true;

    // Shift the load-PC history (most recent first).
    lastLoadPcs_[3] = lastLoadPcs_[2];
    lastLoadPcs_[2] = lastLoadPcs_[1];
    lastLoadPcs_[1] = lastLoadPcs_[0];
    lastLoadPcs_[0] = pc;

    return meta.predictedOffChip;
}

namespace
{
/// Optional diagnostic: per-PC confusion counters (set POPET_DEBUG=1).
struct PcDebug
{
    std::map<Addr, std::array<std::uint64_t, 4>> counts;
    ~PcDebug()
    {
        for (auto &[pc, c] : counts)
            std::fprintf(stderr,
                         "popet pc %llx tp %llu fp %llu fn %llu tn %llu\n",
                         (unsigned long long)pc, (unsigned long long)c[0],
                         (unsigned long long)c[1], (unsigned long long)c[2],
                         (unsigned long long)c[3]);
    }
};
PcDebug *pcDebug()
{
    static PcDebug d;
    return std::getenv("POPET_DEBUG") ? &d : nullptr;
}
} // namespace

void
Popet::train(Addr pc, Addr vaddr, const PredMeta &meta, bool went_off_chip)
{
    (void)vaddr;
    if (!meta.valid)
        return;
    if (auto *d = pcDebug()) {
        auto &c = d->counts[pc];
        if (meta.predictedOffChip && went_off_chip) ++c[0];
        else if (meta.predictedOffChip) ++c[1];
        else if (went_off_chip) ++c[2];
        else ++c[3];
    }
    // Saturation check (paper §6.1.2): only adjust weights when the sum
    // was within [T_N, T_P]; optionally also on a misprediction.
    const bool within =
        meta.sum >= tnScaled_ && meta.sum <= tpScaled_;
    const bool mispredict = meta.predictedOffChip != went_off_chip;
    if (!within && !(params_.trainOnMispredict && mispredict))
        return;

    const int wmax = (1 << (params_.weightBits - 1)) - 1;
    const int wmin = -(1 << (params_.weightBits - 1));
    for (unsigned i = 0; i < meta.indexCount; ++i) {
        const unsigned f = meta.index[i] >> 16;
        const std::uint32_t idx = meta.index[i] & 0xFFFFu;
        std::int8_t &w = weights_[f][idx];
        if (went_off_chip)
            w = static_cast<std::int8_t>(std::min<int>(w + 1, wmax));
        else
            w = static_cast<std::int8_t>(std::max<int>(w - 1, wmin));
    }
}

int
Popet::weightAt(unsigned feature, std::uint32_t index) const
{
    return weights_.at(feature).at(index);
}

std::uint64_t
Popet::storageBits() const
{
    std::uint64_t bits = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        if (params_.featureMask & (1u << f))
            bits += static_cast<std::uint64_t>(kTableSizes[f]) *
                    params_.weightBits;
    // Page buffer: 64 entries x (page tag + 64-bit bitmap) = 64 x 80b
    // using the paper's 16-bit page tags.
    bits += static_cast<std::uint64_t>(pageBuffer_.size()) * 80;
    return bits;
}

namespace
{

ModelDef
popetModelDef()
{
    ModelDef d;
    d.name = "popet";
    d.kind = ModelKind::Predictor;
    d.doc = "multi-feature hashed-perceptron off-chip predictor "
            "(the paper's POPET, §6.1)";
    d.legacyKeys = {"popet.act_threshold",
                    "popet.train_threshold_neg",
                    "popet.train_threshold_pos",
                    "popet.train_on_mispredict",
                    "popet.weight_bits",
                    "popet.feature_mask",
                    "popet.page_buffer_entries"};
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<Popet>(ctx.config->popet);
    };
    return d;
}

const ModelRegistrar popetRegistrar(popetModelDef());

} // namespace

} // namespace hermes
