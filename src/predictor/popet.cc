#include "predictor/popet.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "sim/model_registry.hh"
#include "sim/system.hh"

namespace hermes
{

namespace
{

/** Cheap 64->32 bit mixer used to hash feature values into tables. */
std::uint32_t
hashFeature(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
}

int
scaleThreshold(int threshold, unsigned active, unsigned total)
{
    if (active == total)
        return threshold;
    const double scaled = static_cast<double>(threshold) *
                          static_cast<double>(active) /
                          static_cast<double>(total);
    return static_cast<int>(std::lround(scaled));
}

/** Running-sum base offset of each feature's table in the arena
 * (kBases[kPopetFeatureCount] is the total arena size). */
constexpr std::array<std::uint32_t, kPopetFeatureCount + 1>
tableBases()
{
    std::array<std::uint32_t, kPopetFeatureCount + 1> bases{};
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        bases[f + 1] = bases[f] + Popet::kTableSizes[f];
    return bases;
}

constexpr auto kBases = tableBases();

} // namespace

Popet::Popet(PopetParams params)
    : params_(params), pageBuffer_(params.pageBufferEntries),
      pageIndex_(params.pageBufferEntries),
      pageInvalidLeft_(params.pageBufferEntries)
{
    assert(params_.weightBits >= 2 && params_.weightBits <= 8);
    arena_.assign(kBases[kPopetFeatureCount], 0);
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        featActive_[f] = (params_.featureMask >> f) & 1u;
    lruPrev_.assign(pageBuffer_.size(), kLruNil);
    lruNext_.assign(pageBuffer_.size(), kLruNil);
    const unsigned active = activeFeatureCount();
    assert(active > 0 && "POPET needs at least one feature");
    tauActScaled_ = scaleThreshold(params_.activationThreshold, active,
                                   kPopetFeatureCount);
    tnScaled_ = scaleThreshold(params_.trainingThresholdNeg, active,
                               kPopetFeatureCount);
    tpScaled_ = scaleThreshold(params_.trainingThresholdPos, active,
                               kPopetFeatureCount);
}

unsigned
Popet::activeFeatureCount() const
{
    unsigned n = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        if (params_.featureMask & (1u << f))
            ++n;
    return n;
}

void
Popet::lruDetach(std::uint32_t slot)
{
    const std::uint32_t prev = lruPrev_[slot];
    const std::uint32_t next = lruNext_[slot];
    if (prev != kLruNil)
        lruNext_[prev] = next;
    else
        lruHead_ = next;
    if (next != kLruNil)
        lruPrev_[next] = prev;
    else
        lruTail_ = prev;
}

void
Popet::lruAppend(std::uint32_t slot)
{
    lruPrev_[slot] = lruTail_;
    lruNext_[slot] = kLruNil;
    if (lruTail_ != kLruNil)
        lruNext_[lruTail_] = slot;
    else
        lruHead_ = slot;
    lruTail_ = slot;
}

bool
Popet::firstAccessHint(Addr vaddr)
{
    const Addr page = pageNumber(vaddr);
    const std::uint64_t bit = 1ull << lineOffsetInPage(vaddr);
    ++pageBufferClock_;

    // O(1) hit path through the page index (this runs per prediction).
    const std::uint32_t slot = pageIndex_.find(page);
    if (slot != AddrIndex::kNotFound) {
        PageBufferEntry &e = pageBuffer_[slot];
        e.lastUse = pageBufferClock_;
        lruDetach(slot);
        lruAppend(slot);
        const bool first = (e.bitmap & bit) == 0;
        e.bitmap |= bit;
        return first;
    }

    // Miss: fill invalid slots in ascending order first, else evict
    // the least recently used entry — the recency-list head, which is
    // exactly the min-lastUse slot the old O(n) scan found (clock
    // values are unique). The line has not been seen in the tracked
    // window -> first access.
    std::uint32_t victim;
    if (pageInvalidLeft_ > 0) {
        victim = static_cast<std::uint32_t>(pageBuffer_.size()) -
                 pageInvalidLeft_;
        --pageInvalidLeft_;
    } else {
        victim = lruHead_;
        lruDetach(victim);
        pageIndex_.erase(pageBuffer_[victim].pageTag);
    }
    PageBufferEntry &e = pageBuffer_[victim];
    e.pageTag = page;
    e.bitmap = bit;
    e.lastUse = pageBufferClock_;
    lruAppend(victim);
    pageIndex_.insert(page, victim);
    return true;
}

std::uint32_t
Popet::featureIndex(unsigned feature, Addr pc, Addr vaddr,
                    bool first_access) const
{
    std::uint64_t raw = 0;
    switch (feature) {
      case kFeatPcXorLineOffset:
        raw = pc ^ (static_cast<std::uint64_t>(lineOffsetInPage(vaddr))
                    << 1);
        break;
      case kFeatPcXorByteOffset:
        raw = pc ^ (static_cast<std::uint64_t>(byteOffsetInLine(vaddr))
                    << 1) ^ 0xABCDull;
        break;
      case kFeatPcFirstAccess:
        raw = (pc << 1) | static_cast<std::uint64_t>(first_access);
        break;
      case kFeatOffsetFirstAccess:
        raw = (static_cast<std::uint64_t>(lineOffsetInPage(vaddr)) << 1) |
              static_cast<std::uint64_t>(first_access);
        break;
      case kFeatLast4LoadPcs: {
        raw = (lastLoadPcs_[0] << 3) ^ (lastLoadPcs_[1] << 2) ^
              (lastLoadPcs_[2] << 1) ^ lastLoadPcs_[3];
        break;
      }
      default:
        assert(false && "bad feature id");
    }
    return hashFeature(raw + feature * 0x9E3779B9ull) &
           (kTableSizes[feature] - 1);
}

bool
Popet::predict(Addr pc, Addr vaddr, PredMeta &meta)
{
    const bool first_access = firstAccessHint(vaddr);

    // Hot path: all five raw feature values and hashed indices are
    // computed up front in straight-line code (no per-feature
    // dispatch), then the dot product gathers from the contiguous
    // arena with the feature mask applied multiplicatively. Masked-out
    // features contribute 0 to the sum and write 0 to the slot the
    // next active feature overwrites, so the resulting PredMeta is
    // byte-identical to the branching loop's (index[] beyond
    // indexCount stays zero from the PredMeta{} reset).
    const std::uint64_t line_off = lineOffsetInPage(vaddr);
    const std::uint64_t byte_off = byteOffsetInLine(vaddr);
    const std::uint64_t first = first_access ? 1 : 0;
    const std::array<std::uint64_t, kPopetFeatureCount> raws = {
        pc ^ (line_off << 1),
        pc ^ (byte_off << 1) ^ 0xABCDull,
        (pc << 1) | first,
        (line_off << 1) | first,
        (lastLoadPcs_[0] << 3) ^ (lastLoadPcs_[1] << 2) ^
            (lastLoadPcs_[2] << 1) ^ lastLoadPcs_[3],
    };
    std::array<std::uint32_t, kPopetFeatureCount> idx;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        idx[f] = hashFeature(raws[f] + f * 0x9E3779B9ull) &
                 (kTableSizes[f] - 1);

    int sum = 0;
    meta = PredMeta{};
    unsigned cnt = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        const std::int32_t active = featActive_[f];
        sum += active * arena_[kBases[f] + idx[f]];
        // Pack the feature id with the index so training can address
        // the right table without recomputing hashes.
        meta.index[cnt] =
            static_cast<std::uint32_t>(active) * ((f << 16) | idx[f]);
        cnt += static_cast<unsigned>(active);
    }
    meta.indexCount = static_cast<std::uint8_t>(cnt);
    meta.sum = static_cast<std::int16_t>(sum);
    meta.predictedOffChip = sum >= tauActScaled_;
    meta.valid = true;

    // Shift the load-PC history (most recent first).
    lastLoadPcs_[3] = lastLoadPcs_[2];
    lastLoadPcs_[2] = lastLoadPcs_[1];
    lastLoadPcs_[1] = lastLoadPcs_[0];
    lastLoadPcs_[0] = pc;

    return meta.predictedOffChip;
}

namespace
{
/// Optional diagnostic: per-PC confusion counters (set POPET_DEBUG=1).
struct PcDebug
{
    std::map<Addr, std::array<std::uint64_t, 4>> counts;
    ~PcDebug()
    {
        for (auto &[pc, c] : counts)
            std::fprintf(stderr,
                         "popet pc %llx tp %llu fp %llu fn %llu tn %llu\n",
                         (unsigned long long)pc, (unsigned long long)c[0],
                         (unsigned long long)c[1], (unsigned long long)c[2],
                         (unsigned long long)c[3]);
    }
};
PcDebug *pcDebug()
{
    // The environment lookup is hoisted out of the per-train path
    // (this helper runs on every prediction outcome).
    static const bool enabled = std::getenv("POPET_DEBUG") != nullptr;
    if (!enabled)
        return nullptr;
    static PcDebug d;
    return &d;
}
} // namespace

void
Popet::train(Addr pc, Addr vaddr, const PredMeta &meta, bool went_off_chip)
{
    (void)vaddr;
    if (!meta.valid)
        return;
    if (auto *d = pcDebug()) {
        auto &c = d->counts[pc];
        if (meta.predictedOffChip && went_off_chip) ++c[0];
        else if (meta.predictedOffChip) ++c[1];
        else if (went_off_chip) ++c[2];
        else ++c[3];
    }
    // Saturation check (paper §6.1.2): only adjust weights when the sum
    // was within [T_N, T_P]; optionally also on a misprediction.
    const bool within =
        meta.sum >= tnScaled_ && meta.sum <= tpScaled_;
    const bool mispredict = meta.predictedOffChip != went_off_chip;
    if (!within && !(params_.trainOnMispredict && mispredict))
        return;

    // Distinct features address disjoint arena slices, so the updates
    // are independent and the loop auto-vectorizes over the gathered
    // slots (clamp expressed as min/max on both sides, which is
    // equivalent for a +-1 step).
    const int wmax = (1 << (params_.weightBits - 1)) - 1;
    const int wmin = -(1 << (params_.weightBits - 1));
    const int delta = went_off_chip ? 1 : -1;
    for (unsigned i = 0; i < meta.indexCount; ++i) {
        const unsigned f = meta.index[i] >> 16;
        const std::uint32_t idx = meta.index[i] & 0xFFFFu;
        std::int8_t &w = arena_[kBases[f] + idx];
        w = static_cast<std::int8_t>(
            std::min(std::max(w + delta, wmin), wmax));
    }
}

int
Popet::weightAt(unsigned feature, std::uint32_t index) const
{
    if (index >= kTableSizes.at(feature))
        throw std::out_of_range("popet weight index out of range");
    return arena_.at(kBases[feature] + index);
}

void
Popet::saveState(StateWriter &w) const
{
    w.section("POPT");
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        w.u64(kTableSizes[f]);
        for (std::uint32_t i = 0; i < kTableSizes[f]; ++i)
            w.i8(arena_[kBases[f] + i]);
    }
    w.u64(pageBuffer_.size());
    for (const PageBufferEntry &e : pageBuffer_) {
        w.u64(e.pageTag);
        w.u64(e.bitmap);
        w.u64(e.lastUse);
    }
    w.u32(pageInvalidLeft_);
    w.u64(pageBufferClock_);
    for (Addr pc : lastLoadPcs_)
        w.u64(pc);
}

void
Popet::loadState(StateReader &r)
{
    r.section("POPT");
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        if (r.u64() != kTableSizes[f])
            throw StateError("popet weight table size mismatch");
        for (std::uint32_t i = 0; i < kTableSizes[f]; ++i)
            arena_[kBases[f] + i] = r.i8();
    }
    if (r.u64() != pageBuffer_.size())
        throw StateError("popet page buffer size mismatch");
    for (PageBufferEntry &e : pageBuffer_) {
        e.pageTag = r.u64();
        e.bitmap = r.u64();
        e.lastUse = r.u64();
    }
    pageInvalidLeft_ = r.u32();
    pageBufferClock_ = r.u64();
    for (Addr &pc : lastLoadPcs_)
        pc = r.u64();
    // Valid slots fill in ascending index order (see the
    // pageInvalidLeft_ comment in the header), so the occupied prefix
    // is exactly the content to rebuild the page index from; the
    // recency list is rebuilt by linking those slots in lastUse order
    // (unique strictly-increasing clock values).
    pageIndex_.clear();
    const std::size_t used =
        pageBuffer_.size() - static_cast<std::size_t>(pageInvalidLeft_);
    for (std::size_t i = 0; i < used; ++i)
        pageIndex_.insert(pageBuffer_[i].pageTag,
                          static_cast<std::uint32_t>(i));
    lruHead_ = lruTail_ = kLruNil;
    lruPrev_.assign(pageBuffer_.size(), kLruNil);
    lruNext_.assign(pageBuffer_.size(), kLruNil);
    std::vector<std::uint32_t> order(used);
    for (std::size_t i = 0; i < used; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return pageBuffer_[a].lastUse < pageBuffer_[b].lastUse;
              });
    for (std::uint32_t slot : order)
        lruAppend(slot);
}

std::uint64_t
Popet::storageBits() const
{
    std::uint64_t bits = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        if (params_.featureMask & (1u << f))
            bits += static_cast<std::uint64_t>(kTableSizes[f]) *
                    params_.weightBits;
    // Page buffer: 64 entries x (page tag + 64-bit bitmap) = 64 x 80b
    // using the paper's 16-bit page tags.
    bits += static_cast<std::uint64_t>(pageBuffer_.size()) * 80;
    return bits;
}

namespace
{

ModelDef
popetModelDef()
{
    ModelDef d;
    d.name = "popet";
    d.kind = ModelKind::Predictor;
    d.doc = "multi-feature hashed-perceptron off-chip predictor "
            "(the paper's POPET, §6.1)";
    d.legacyKeys = {"popet.act_threshold",
                    "popet.train_threshold_neg",
                    "popet.train_threshold_pos",
                    "popet.train_on_mispredict",
                    "popet.weight_bits",
                    "popet.feature_mask",
                    "popet.page_buffer_entries"};
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<Popet>(ctx.config->popet);
    };
    return d;
}

const ModelRegistrar popetRegistrar(popetModelDef());

} // namespace

} // namespace hermes
