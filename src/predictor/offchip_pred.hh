#pragma once

/**
 * @file
 * Off-chip load predictor interface (the component Hermes plugs in).
 *
 * For every demand load the core consults the predictor at LQ
 * allocation; per-load metadata (hashed feature indices, perceptron sum,
 * prediction) is stored in the LQ entry exactly as the paper describes
 * (§6.1.1) and handed back verbatim at training time when the load
 * completes and its true off-chip outcome is known (§6.1.2).
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace hermes
{

class StateReader;
class StateWriter;

/**
 * Per-load predictor metadata kept in the LQ entry (paper Table 3, "LQ
 * metadata"). Generic enough for every predictor implementation here.
 */
struct PredMeta
{
    std::array<std::uint32_t, 6> index{}; ///< Hashed per-feature indices
    std::uint8_t indexCount = 0;
    std::int16_t sum = 0;       ///< Cumulative perceptron weight W_sigma
    bool predictedOffChip = false;
    bool valid = false;         ///< A prediction was actually made
};

/** Confusion-matrix counters for accuracy/coverage (paper Eq. 3-4). */
struct PredictorStats
{
    std::uint64_t truePositives = 0;
    std::uint64_t falsePositives = 0;
    std::uint64_t falseNegatives = 0;
    std::uint64_t trueNegatives = 0;

    std::uint64_t
    total() const
    {
        return truePositives + falsePositives + falseNegatives +
               trueNegatives;
    }

    /** Eq. 3: fraction of predicted off-chip loads that went off-chip. */
    double
    accuracy() const
    {
        const std::uint64_t d = truePositives + falsePositives;
        return d ? static_cast<double>(truePositives) / d : 0.0;
    }

    /** Eq. 4: fraction of off-chip loads that were predicted. */
    double
    coverage() const
    {
        const std::uint64_t d = truePositives + falseNegatives;
        return d ? static_cast<double>(truePositives) / d : 0.0;
    }
};

/** An off-chip load predictor instance (one per core). */
class OffChipPredictor
{
  public:
    virtual ~OffChipPredictor() = default;

    virtual const char *name() const = 0;

    /**
     * Predict whether the load will go off-chip (called at LQ
     * allocation). May update internal history state.
     */
    virtual bool predict(Addr pc, Addr vaddr, PredMeta &meta) = 0;

    /**
     * Train with the true outcome when the load completes.
     * @param meta the metadata produced by predict() for this load
     * @param went_off_chip true iff the load was serviced by DRAM
     */
    virtual void train(Addr pc, Addr vaddr, const PredMeta &meta,
                       bool went_off_chip) = 0;

    /** Hierarchy events (used by the TTP tag tracker). */
    virtual void onFillFromDram(Addr line) { (void)line; }
    virtual void onLlcEviction(Addr line) { (void)line; }

    /** Metadata storage in bits (Table 3 / Table 6 accounting). */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Warmup-checkpoint support (sim/simulator.hh). A predictor that
     * does not override these stays non-checkpointable and disables
     * checkpointing for runs that select it.
     */
    virtual bool checkpointable() const { return false; }
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}
};

/** Predictor kinds evaluated in the paper (§7.2). */
enum class PredictorKind : std::uint8_t
{
    None,
    Popet,
    Hmp,
    Ttp,
    Ideal,
};

PredictorKind predictorKindFromString(const std::string &name);
const char *predictorKindName(PredictorKind kind);

} // namespace hermes
