/**
 * @file
 * Prefetcher interplay study: sweeps all six prefetchers over a chosen
 * trace, with and without Hermes, reporting speedup, coverage of
 * off-chip loads, extra DRAM traffic and storage cost — the
 * performance-per-overhead argument of paper §8.2.4.
 *
 * Usage: example_prefetcher_study [trace=<name>] [instructions=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const TraceSpec trace = findTrace(
        cli.get("trace", std::string("parsec.streamcluster_like.0")));
    SimBudget budget;
    budget.simInstrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{250'000}));
    budget.warmupInstrs = budget.simInstrs / 2;

    const SystemConfig base = SystemConfig::baseline(1);
    const RunStats r0 = simulateOne(base, trace, budget);
    const double base_ipc = r0.ipc(0);
    const double base_reads =
        static_cast<double>(r0.dram.totalReads());

    std::printf("trace: %s   baseline IPC %.3f, %llu DRAM reads\n\n",
                trace.name().c_str(), base_ipc,
                static_cast<unsigned long long>(r0.dram.totalReads()));
    std::printf("%-10s %9s %9s %9s %9s %9s\n", "prefetcher", "speedup",
                "+hermes", "reads+%", "h.reads+%", "kB");

    for (auto pf : {PrefetcherKind::None, PrefetcherKind::Streamer,
                    PrefetcherKind::Spp, PrefetcherKind::Bingo,
                    PrefetcherKind::Mlop, PrefetcherKind::Sms,
                    PrefetcherKind::Pythia}) {
        SystemConfig cfg = base;
        cfg.prefetcher = pf;
        const RunStats rp = simulateOne(cfg, trace, budget);

        SystemConfig hcfg = cfg;
        hcfg.predictor = PredictorKind::Popet;
        hcfg.hermesIssueEnabled = true;
        const RunStats rh = simulateOne(hcfg, trace, budget);

        const auto pref = makePrefetcher(pf);
        std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9.1f\n",
                    prefetcherKindName(pf),
                    100.0 * (rp.ipc(0) / base_ipc - 1.0),
                    100.0 * (rh.ipc(0) / base_ipc - 1.0),
                    100.0 * (rp.dram.totalReads() / base_reads - 1.0),
                    100.0 * (rh.dram.totalReads() / base_reads - 1.0),
                    pref ? pref->storageBits() / 8192.0 : 0.0);
    }
    std::printf("\nHermes adds its gain at ~4KB of state; compare the "
                "reads-per-speedup\nratios against the prefetchers "
                "(paper: 0.5%% vs 2%% requests per 1%% speedup).\n");
    return 0;
}
