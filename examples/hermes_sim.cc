/**
 * @file
 * Full command-line front end for the simulator — the "champsim binary"
 * of this repository. Configures every major knob from key=value
 * arguments or an ini-style config file, runs single- or multi-core
 * simulations on synthetic or recorded traces, and dumps the complete
 * statistics report (plus an optional CSV row).
 *
 * Usage examples:
 *   example_hermes_sim trace=spec06.mcf_like.0 prefetcher=pythia \
 *       predictor=popet hermes=1 instructions=500000
 *   example_hermes_sim config=myrun.ini csv=1
 *   example_hermes_sim cores=8 trace=ligra.bfs_like.0 prefetcher=pythia
 *   example_hermes_sim record=trace.bin trace=cvp.server_db_like.0 \
 *       record_count=1000000
 *   example_hermes_sim trace_file=trace.bin predictor=popet hermes=1
 *   example_hermes_sim list_traces=1
 *
 * Keys (defaults in parentheses): cores(1), trace, trace_file,
 * instructions(400000), warmup(instructions/4), prefetcher(none),
 * predictor(none), hermes(0), hermes_latency(6), tau_act(-18),
 * rob(512), llc_mb_per_core(3), llc_latency(40), mtps(3200),
 * channels(auto), csv(0), config(-), record(-), record_count(1000000).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"

using namespace hermes;

namespace
{

int
listTraces()
{
    std::printf("%-30s %-8s %s\n", "name", "category", "pattern");
    for (const auto &spec : fullSuite())
        std::printf("%-30s %-8s %d\n", spec.name().c_str(),
                    spec.category().c_str(),
                    static_cast<int>(spec.params.pattern));
    return 0;
}

int
recordTrace(const Config &cfg)
{
    const std::string out = cfg.get("record", std::string());
    const std::string trace_name =
        cfg.get("trace", std::string("spec06.mcf_like.0"));
    const auto count = static_cast<std::uint64_t>(
        cfg.get("record_count", std::int64_t{1'000'000}));
    auto wl = findTrace(trace_name).make();
    try {
        writeTraceFile(out, *wl, count, trace_name,
                       findTrace(trace_name).category());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "failed to write %s: %s\n", out.c_str(),
                     e.what());
        return 1;
    }
    std::printf("recorded %llu instructions of %s into %s\n",
                static_cast<unsigned long long>(count),
                trace_name.c_str(), out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    if (cfg.contains("config")) {
        std::ifstream in(cfg.get("config", std::string()));
        if (!in) {
            std::fprintf(stderr, "cannot open config file\n");
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        Config file_cfg;
        if (!file_cfg.parse(buf.str()))
            std::fprintf(stderr, "warning: malformed config lines\n");
        // Command line wins over the file: re-apply argv last.
        for (const auto &k : file_cfg.keys())
            if (!cfg.contains(k))
                cfg.set(k, *file_cfg.getString(k));
    }

    if (cfg.get("list_traces", false))
        return listTraces();
    if (cfg.contains("record"))
        return recordTrace(cfg);

    const int cores = static_cast<int>(cfg.get("cores", std::int64_t{1}));
    SystemConfig sys = SystemConfig::baseline(cores);
    sys.prefetcher = prefetcherKindFromString(
        cfg.get("prefetcher", std::string("none")));
    sys.predictor = predictorKindFromString(
        cfg.get("predictor", std::string("none")));
    sys.hermesIssueEnabled = cfg.get("hermes", false);
    sys.hermesIssueLatency = static_cast<Cycle>(
        cfg.get("hermes_latency", std::int64_t{6}));
    sys.popet.activationThreshold = static_cast<int>(
        cfg.get("tau_act", std::int64_t{-18}));
    sys.core.robSize = static_cast<unsigned>(
        cfg.get("rob", std::int64_t{512}));
    sys.llcBytesPerCore = static_cast<std::uint64_t>(cfg.get(
                              "llc_mb_per_core", std::int64_t{3})) << 20;
    sys.llcLatency = static_cast<Cycle>(
        cfg.get("llc_latency", std::int64_t{40}));
    sys.dram.mtps = static_cast<unsigned>(
        cfg.get("mtps", std::int64_t{3200}));
    if (cfg.contains("channels"))
        sys.dram.channels = static_cast<unsigned>(
            cfg.get("channels", std::int64_t{1}));

    const auto instrs = static_cast<std::uint64_t>(
        cfg.get("instructions", std::int64_t{400'000}));
    SimBudget budget;
    budget.simInstrs = instrs;
    budget.warmupInstrs = static_cast<std::uint64_t>(
        cfg.get("warmup", static_cast<std::int64_t>(instrs / 4)));

    RunStats stats;
    std::string label;
    if (cfg.contains("trace_file")) {
        const std::string path = cfg.get("trace_file", std::string());
        std::vector<std::unique_ptr<Workload>> wls;
        for (int i = 0; i < cores; ++i) {
            auto base = std::make_unique<FileWorkload>(path);
            wls.push_back(i == 0 ? std::move(base) : base->clone(i));
        }
        label = path;
        System system(sys, std::move(wls));
        stats = system.run(budget.warmupInstrs, budget.simInstrs);
    } else {
        const std::string trace_name =
            cfg.get("trace", std::string("spec06.mcf_like.0"));
        label = trace_name;
        const TraceSpec spec = findTrace(trace_name);
        if (cores == 1) {
            stats = simulateOne(sys, spec, budget);
        } else {
            std::vector<TraceSpec> mix(cores, spec);
            stats = simulateMix(sys, mix, budget);
        }
    }

    if (cfg.get("csv", false)) {
        std::printf("%s\n%s\n", csvHeader().c_str(),
                    formatCsvRow(label, stats).c_str());
    } else {
        std::printf("%s", formatReport(stats).c_str());
    }
    return 0;
}
