/**
 * @file
 * The declarative experiment API end to end: build scenarios from an
 * .ini-style string via SystemConfig::fromConfig, sweep a registered
 * parameter with a string axis spec, and fan the resulting grid over
 * the SweepEngine — no struct mutation, no recompiling to change the
 * experiment.
 *
 * Usage: scenario_strings [threads=<n>] [axis=<key=v1,v2,...>]
 *   e.g.  scenario_strings axis=llc.latency=30,40,50,60
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/param_registry.hh"
#include "sweep/axis.hh"
#include "sweep/sweep.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const int threads =
        static_cast<int>(cli.get("threads", std::int64_t{0}));
    const std::string axis =
        cli.get("axis", std::string("llc.latency=30,40,50,60"));

    // A scenario as it would sit in a config file: Pythia baseline
    // plus Hermes-O (paper Table 4).
    Config scenario;
    scenario.parse("prefetcher = pythia\n"
                   "predictor = popet\n"
                   "hermes.enabled = true\n"
                   "hermes.issue_latency = 6\n");
    const SystemConfig base = SystemConfig::fromConfig(scenario);

    SimBudget budget;
    budget.warmupInstrs = 50'000;
    budget.simInstrs = 200'000;

    // Expand the axis spec into labelled configs, cross with two
    // representative traces, and run the grid.
    std::vector<sweep::GridPoint> grid;
    for (const auto &pt : sweep::expandAxis(base, axis))
        for (const char *trace :
             {"spec06.mcf_like.0", "ligra.pagerank_like.0"})
            grid.push_back({pt.label + "/" + trace,
                            pt.config,
                            {findTrace(trace)},
                            budget});

    sweep::SweepOptions opts;
    opts.threads = threads;
    const auto results = sweep::SweepEngine(opts).run(grid);
    std::printf("%s", sweep::toCsv(results).c_str());
    return 0;
}
