/**
 * @file
 * Journaled-sweep demo: the library-API version of what `hermes_sweep
 * --shard/--resume/--merge` does. One grid is split across two
 * simulated "machines" (shard 1/2 and 2/2), each journaling its half;
 * the journals are then merged and the unioned results are checked —
 * byte-for-byte — against the same grid swept in one process. Finally
 * a crash is simulated by resuming from just one shard journal: only
 * the missing half re-simulates.
 *
 * Usage: sharded_sweep [dir=<tmp dir>] [instructions=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/report.hh"
#include "sweep/journal.hh"
#include "sweep/sweep.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string dir = cli.get("dir", std::string("/tmp"));
    const auto instrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{50'000}));

    SimBudget budget;
    budget.warmupInstrs = instrs / 4;
    budget.simInstrs = instrs;

    SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;

    std::vector<sweep::GridPoint> grid;
    for (const TraceSpec &t : quickSuite()) {
        grid.push_back({"nopf." + t.name(), nopf, {t}, budget});
        grid.push_back({"pythia." + t.name(), pythia, {t}, budget});
    }
    std::printf("grid: %zu points, space %s\n", grid.size(),
                fingerprintHex(sweep::spaceFingerprint(grid)).c_str());

    // The reference: the whole grid in one process.
    const auto direct = sweep::SweepEngine().run(grid);

    // Two "machines", each owning a deterministic half of the grid.
    std::vector<std::string> paths;
    for (int s = 1; s <= 2; ++s) {
        const std::string path =
            dir + "/sharded_sweep_s" + std::to_string(s) + ".jsonl";
        paths.push_back(path);
        sweep::JournalWriter journal(path);
        sweep::OrchestrateOptions opts;
        opts.shard = {s, 2};
        opts.journal = &journal;
        const auto run = sweep::runJournaled({}, grid, opts);
        std::printf("shard %d/2: %zu simulated, %zu left to others\n",
                    s, run.simulated, run.otherShard);
    }

    // Merge the journals; the union must equal the unsharded run.
    std::vector<std::vector<sweep::JournalSegment>> files;
    for (const std::string &p : paths)
        files.push_back(sweep::readJournal(p));
    auto merged = sweep::mergeSegments(files);
    sweep::validateSegment(merged[0], grid);
    std::vector<sweep::PointResult> unioned;
    for (const auto &rec : merged[0].records)
        unioned.push_back(rec.result);
    std::printf("merged %zu records: CSV %s, fingerprint %s vs %s\n",
                unioned.size(),
                sweep::toCsv(unioned) == sweep::toCsv(direct)
                    ? "byte-identical"
                    : "MISMATCH",
                fingerprintHex(sweep::sweepFingerprint(unioned)).c_str(),
                fingerprintHex(sweep::sweepFingerprint(direct)).c_str());

    // Crash recovery: resume from shard 1's journal alone — exactly
    // the other half simulates again, nothing that was recorded does.
    auto partial = sweep::readJournal(paths[0]);
    sweep::validateSegment(partial[0], grid);
    sweep::OrchestrateOptions resume_opts;
    resume_opts.resume = &partial[0];
    const auto resumed = sweep::runJournaled({}, grid, resume_opts);
    std::printf("resume from shard 1 only: %zu reused, %zu "
                "re-simulated, complete=%s\n",
                resumed.resumed, resumed.simulated,
                resumed.complete() ? "yes" : "no");
    return sweep::toCsv(resumed.results) == sweep::toCsv(direct) ? 0
                                                                 : 1;
}
