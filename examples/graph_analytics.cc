/**
 * @file
 * Graph-analytics case study: the workload class that motivates Hermes
 * (irregular gathers that no prefetcher covers). Runs every Ligra-like
 * trace under four systems — no prefetching, Hermes alone, Pythia, and
 * Pythia+Hermes — and reports per-trace IPC, off-chip load counts and
 * POPET quality, mirroring the paper's §1 motivation.
 *
 * Usage: example_graph_analytics [instructions=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    SimBudget budget;
    budget.simInstrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{250'000}));
    budget.warmupInstrs = budget.simInstrs / 3;

    const SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig hermes_only = nopf;
    hermes_only.predictor = PredictorKind::Popet;
    hermes_only.hermesIssueEnabled = true;
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;
    SystemConfig combo = pythia;
    combo.predictor = PredictorKind::Popet;
    combo.hermesIssueEnabled = true;

    std::printf("%-26s %8s %8s %8s %8s %6s %6s\n", "trace", "no-pf",
                "hermes", "pythia", "pyt+her", "acc%", "cov%");
    for (const auto &spec : fullSuite()) {
        if (spec.category() != "Ligra")
            continue;
        const RunStats r0 = simulateOne(nopf, spec, budget);
        const RunStats rh = simulateOne(hermes_only, spec, budget);
        const RunStats rp = simulateOne(pythia, spec, budget);
        const RunStats rc = simulateOne(combo, spec, budget);
        const PredictorStats p = rc.predTotal();
        std::printf("%-26s %8.3f %8.3f %8.3f %8.3f %6.1f %6.1f\n",
                    spec.name().c_str(), r0.ipc(0), rh.ipc(0), rp.ipc(0),
                    rc.ipc(0), 100 * p.accuracy(), 100 * p.coverage());
    }
    std::printf("\nIPC normalised columns show how Hermes attacks the "
                "gather misses\nthat spatial prefetching cannot learn "
                "(paper §2, Fig. 2).\n");
    return 0;
}
