/**
 * @file
 * Quickstart: build the paper's baseline system (Table 4), add Hermes
 * with POPET, run one workload and print the headline numbers — IPC,
 * speedup, POPET accuracy/coverage, and the Hermes request economy.
 *
 * Usage: example_quickstart [trace=<name>] [instructions=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string trace_name =
        cli.get("trace", std::string("ligra.pagerank_like.0"));
    const auto instrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{400'000}));

    const TraceSpec trace = findTrace(trace_name);
    SimBudget budget;
    budget.warmupInstrs = instrs / 4;
    budget.simInstrs = instrs;

    // The paper's baseline: Pythia prefetching at the LLC.
    SystemConfig base = SystemConfig::baseline(1);
    base.prefetcher = PrefetcherKind::Pythia;

    // Same system plus Hermes-O with the POPET off-chip predictor.
    SystemConfig hermes_cfg = base;
    hermes_cfg.predictor = PredictorKind::Popet;
    hermes_cfg.hermesIssueEnabled = true;
    hermes_cfg.hermesIssueLatency = 6;

    std::printf("trace: %s (%s), %llu instructions\n", trace.name().c_str(),
                trace.category().c_str(),
                static_cast<unsigned long long>(instrs));

    const RunStats b = simulateOne(base, trace, budget);
    const RunStats h = simulateOne(hermes_cfg, trace, budget);

    std::printf("\n%-28s %10s %10s\n", "", "baseline", "+Hermes");
    std::printf("%-28s %10.3f %10.3f\n", "IPC", b.ipc(0), h.ipc(0));
    std::printf("%-28s %10.2f %10.2f\n", "LLC MPKI", b.llcMpki(),
                h.llcMpki());
    std::printf("%-28s %10llu %10llu\n", "off-chip loads",
                static_cast<unsigned long long>(b.core[0].loadsOffChip),
                static_cast<unsigned long long>(h.core[0].loadsOffChip));
    std::printf("%-28s %10s %10llu\n", "Hermes requests", "-",
                static_cast<unsigned long long>(
                    h.hermesRequestsScheduled));
    std::printf("%-28s %10s %10llu\n", "loads served by Hermes", "-",
                static_cast<unsigned long long>(h.hermesLoadsServed));

    const PredictorStats p = h.predTotal();
    std::printf("\nPOPET accuracy %.1f%%  coverage %.1f%%\n",
                100.0 * p.accuracy(), 100.0 * p.coverage());
    std::printf("speedup from Hermes: %.2f%%\n",
                100.0 * (h.ipc(0) / b.ipc(0) - 1.0));
    return 0;
}
