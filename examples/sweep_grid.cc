/**
 * @file
 * Sweep-engine demo: fan a (config x trace) grid over all cores with
 * sweep::SweepEngine and print the aggregate CSV plus a JSON array.
 * Replaces the old serial three-config loop: the grid here is the same
 * no-prefetch / Pythia / Pythia+Hermes-O comparison over the quick
 * suite, but every point runs concurrently and the result order is
 * byte-identical at any thread count.
 *
 * Usage: sweep_grid [threads=<n>] [instructions=<n>] [json=<0|1>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sweep/sweep.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const int threads =
        static_cast<int>(cli.get("threads", std::int64_t{0}));
    const auto instrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{250'000}));
    const bool emit_json = cli.get("json", std::int64_t{0}) != 0;

    SimBudget budget;
    budget.warmupInstrs = instrs / 4;
    budget.simInstrs = instrs;

    SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;
    SystemConfig hermes_o = pythia;
    hermes_o.predictor = PredictorKind::Popet;
    hermes_o.hermesIssueEnabled = true;

    const struct
    {
        const char *name;
        const SystemConfig &cfg;
    } configs[] = {
        {"nopf", nopf}, {"pythia", pythia}, {"pythia+hermes-o", hermes_o}};

    std::vector<sweep::GridPoint> grid;
    for (const auto &c : configs)
        for (const auto &trace : quickSuite())
            grid.push_back({std::string(c.name) + "." + trace.name(),
                            c.cfg,
                            {trace},
                            budget});

    sweep::SweepOptions opts;
    opts.threads = threads;
    opts.onProgress = [](std::size_t done, std::size_t total,
                         const sweep::PointResult &r) {
        std::fprintf(stderr, "\r[%zu/%zu] %-40.40s", done, total,
                     r.label.c_str());
        if (done == total)
            std::fprintf(stderr, "\n");
    };

    const auto results = sweep::SweepEngine(opts).run(grid);
    if (emit_json)
        std::printf("%s\n", sweep::toJson(results).c_str());
    else
        std::printf("%s", sweep::toCsv(results).c_str());
    return 0;
}
