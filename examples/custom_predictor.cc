/**
 * @file
 * A drop-in off-chip predictor, end to end: this single translation
 * unit defines a model, registers it under the name "example_bias",
 * and the rest of the simulator picks it up with **zero changes** — no
 * enum, no SystemConfig field, no System wiring. The scenario below
 * selects it purely through strings (`predictor = example_bias`) and
 * tunes it through the automatically exposed
 * `pred.example_bias.*` parameter keys, exactly as `hermes_run`
 * overrides would. The walkthrough lives in docs/extending-models.md.
 *
 * The model itself is deliberately simple: a PC-indexed table of
 * saturating counters that learns, per load PC, how often that PC's
 * loads go off-chip, and predicts off-chip once the counter crosses a
 * threshold.
 *
 * Usage: custom_predictor [trace=<name>]
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "predictor/offchip_pred.hh"
#include "sim/model_registry.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

using namespace hermes;

namespace
{

/** Per-PC off-chip bias: an array of n-bit saturating counters. */
class ExampleBias final : public OffChipPredictor
{
  public:
    explicit ExampleBias(const ModelContext &ctx)
        : threshold_(static_cast<int>(ctx.knobInt("threshold"))),
          counterMax_((1 << ctx.knobInt("counter_bits")) - 1),
          counterBits_(
              static_cast<unsigned>(ctx.knobInt("counter_bits"))),
          mask_((1u << ctx.knobInt("table_bits")) - 1),
          counters_(1u << ctx.knobInt("table_bits"), 0)
    {
    }

    const char *name() const override { return "example_bias"; }

    bool
    predict(Addr pc, Addr vaddr, PredMeta &meta) override
    {
        (void)vaddr;
        const std::uint32_t idx = index(pc);
        meta = PredMeta{};
        meta.index[meta.indexCount++] = idx;
        meta.sum = static_cast<std::int16_t>(counters_[idx]);
        meta.predictedOffChip = counters_[idx] >= threshold_;
        meta.valid = true;
        return meta.predictedOffChip;
    }

    void
    train(Addr pc, Addr vaddr, const PredMeta &meta,
          bool went_off_chip) override
    {
        (void)pc;
        (void)vaddr;
        if (!meta.valid)
            return;
        int &c = counters_[meta.index[0]];
        if (went_off_chip)
            c = c < counterMax_ ? c + 1 : c;
        else
            c = c > 0 ? c - 1 : 0;
    }

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(counters_.size()) *
               counterBits_;
    }

  private:
    std::uint32_t
    index(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc >> 2) ^ (pc >> 13)) &
               mask_;
    }

    int threshold_;
    int counterMax_;
    unsigned counterBits_;
    std::uint32_t mask_;
    std::vector<int> counters_;
};

ModelDef
exampleBiasDef()
{
    ModelDef d;
    d.name = "example_bias";
    d.kind = ModelKind::Predictor;
    d.doc = "per-PC saturating-counter off-chip bias (example model)";
    d.knobs = {
        {"table_bits", ModelKnob::Type::Int, "12", 4, 24, false,
         "log2 of the counter-table entries"},
        {"counter_bits", ModelKnob::Type::Int, "3", 1, 8, false,
         "saturating counter width (bits)"},
        {"threshold", ModelKnob::Type::Int, "4", 1, 255, false,
         "counter value at which loads predict off-chip"},
    };
    d.counters = predictorCounterKeys();
    d.makePredictor = [](const ModelContext &ctx) {
        return std::make_unique<ExampleBias>(ctx);
    };
    return d;
}

// Registration happens at static-initialisation time, before main();
// from here on "example_bias" is a first-class predictor everywhere a
// model name is accepted.
const ModelRegistrar exampleBiasRegistrar(exampleBiasDef());

} // namespace

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const std::string trace =
        cli.get("trace", std::string("spec06.mcf_like.0"));

    // Select and tune the model purely through strings — the same path
    // hermes_run key=value overrides and .ini scenario files use.
    Config scenario;
    scenario.parse("predictor = example_bias\n"
                   "hermes.enabled = true\n"
                   "pred.example_bias.table_bits = 13\n"
                   "pred.example_bias.threshold = 3\n");
    const SystemConfig cfg = SystemConfig::fromConfig(scenario);

    SimBudget budget;
    budget.warmupInstrs = 20'000;
    budget.simInstrs = 80'000;
    const RunStats stats =
        simulateOne(cfg, findTrace(trace), budget);

    const PredictorStats pred = stats.predTotal();
    std::printf("example_bias on %s: accuracy %.3f coverage %.3f "
                "hermes_scheduled %llu ipc %.4f\n",
                trace.c_str(), pred.accuracy(), pred.coverage(),
                static_cast<unsigned long long>(
                    stats.hermesRequestsScheduled),
                stats.ipc(0));

    // Round-trip proof: the registry knobs travel through toConfig()
    // like any other parameter, so journaled sweeps and fingerprints
    // see them.
    const bool knob_kept =
        cfg.toConfig().contains("pred.example_bias.table_bits");
    std::printf("knobs survive toConfig() round-trip: %s\n",
                knob_kept ? "yes" : "NO");
    return knob_kept ? 0 : 1;
}
