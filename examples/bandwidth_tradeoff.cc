/**
 * @file
 * Bandwidth trade-off demo (paper §8.4.1): as main-memory bandwidth
 * shrinks, accurate Hermes requests age far better than speculative
 * prefetching — below ~400 MTPS Hermes alone overtakes Pythia. Sweeps
 * MTPS for one trace and prints the three-way comparison.
 *
 * Usage: example_bandwidth_tradeoff [trace=<name>] [instructions=<n>]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace hermes;

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const TraceSpec trace =
        findTrace(cli.get("trace", std::string("ligra.bfs_like.0")));
    SimBudget budget;
    budget.simInstrs = static_cast<std::uint64_t>(
        cli.get("instructions", std::int64_t{200'000}));
    budget.warmupInstrs = budget.simInstrs / 2;

    std::printf("trace: %s\n\n", trace.name().c_str());
    std::printf("%8s %10s %10s %10s %12s\n", "MTPS", "no-pf IPC",
                "hermes", "pythia", "pythia+herm");
    for (unsigned mtps : {200u, 400u, 800u, 1600u, 3200u, 6400u}) {
        auto cfg_with = [&](PrefetcherKind pf, bool hermes) {
            SystemConfig cfg = SystemConfig::baseline(1);
            cfg.dram.mtps = mtps;
            cfg.prefetcher = pf;
            if (hermes) {
                cfg.predictor = PredictorKind::Popet;
                cfg.hermesIssueEnabled = true;
            }
            return cfg;
        };
        const double ipc0 =
            simulateOne(cfg_with(PrefetcherKind::None, false), trace,
                        budget)
                .ipc(0);
        const double ipc_h =
            simulateOne(cfg_with(PrefetcherKind::None, true), trace,
                        budget)
                .ipc(0);
        const double ipc_p =
            simulateOne(cfg_with(PrefetcherKind::Pythia, false), trace,
                        budget)
                .ipc(0);
        const double ipc_ph =
            simulateOne(cfg_with(PrefetcherKind::Pythia, true), trace,
                        budget)
                .ipc(0);
        std::printf("%8u %10.3f %10.3f %10.3f %12.3f\n", mtps, ipc0,
                    ipc_h, ipc_p, ipc_ph);
    }
    std::printf("\nShape to look for: hermes >= pythia at the lowest "
                "MTPS rows, and\npythia+hermes >= pythia everywhere "
                "(paper Fig. 17a).\n");
    return 0;
}
