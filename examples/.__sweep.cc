#include <cstdio>
#include "sim/simulator.hh"
#include "sim/system.hh"
using namespace hermes;
int main() {
    SimBudget b; b.warmupInstrs=60000; b.simInstrs=250000;
    for (const auto& spec : quickSuite()) {
        SystemConfig nopf = SystemConfig::baseline(1);
        SystemConfig pyt = nopf; pyt.prefetcher = PrefetcherKind::Pythia;
        SystemConfig pyh = pyt; pyh.predictor=PredictorKind::Popet; pyh.hermesIssueEnabled=true;
        auto r0 = simulateOne(nopf, spec, b);
        auto r1 = simulateOne(pyt, spec, b);
        auto r2 = simulateOne(pyh, spec, b);
        auto p = r2.predTotal();
        std::printf("%-30s ipc %5.3f/%5.3f/%5.3f mpki %5.1f/%5.1f pyth+%5.1f%% herm+%5.1f%% acc %4.1f cov %4.1f\n",
            spec.name().c_str(), r0.ipc(0), r1.ipc(0), r2.ipc(0),
            r0.llcMpki(), r1.llcMpki(),
            100.0*(r1.ipc(0)/r0.ipc(0)-1), 100.0*(r2.ipc(0)/r1.ipc(0)-1),
            100*p.accuracy(), 100*p.coverage());
    }
    return 0;
}
