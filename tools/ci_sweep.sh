#!/usr/bin/env bash
# The sharded CI figure pipeline: one place that defines the
# scaled-down fig12 + fig16 sweep grids, so the 4-way shard matrix,
# the merge job and local golden regeneration can never drift apart.
#
# Usage:
#   tools/ci_sweep.sh shard I N OUTDIR   run shard I/N of both grids,
#                                        journaling to OUTDIR
#   tools/ci_sweep.sh merge INDIR OUTDIR union INDIR/*'s shard
#                                        journals, emit merged
#                                        journals/CSVs/fingerprints in
#                                        OUTDIR and assert the pinned
#                                        goldens
#   tools/ci_sweep.sh golden OUTDIR      run both grids unsharded and
#                                        rewrite tests/golden/
#                                        ci_sweep_fingerprints.txt
#   tools/ci_sweep.sh spacefp            print "fig12 <fp>" and
#                                        "fig16 <fp>" space fingerprints
#                                        (CI cache keys)
#   tools/ci_sweep.sh warm CACHE OUTDIR  run both grids twice against
#                                        one result cache; assert pass 2
#                                        simulates 0 points yet emits
#                                        byte-identical golden-matching
#                                        fingerprints
#   tools/ci_sweep.sh warmup-warm CACHE OUTDIR
#                                        run the two-point issue-latency
#                                        grid uncached, then twice
#                                        against one warmup checkpoint
#                                        store; assert warmup runs
#                                        exactly once, restores restore,
#                                        and all three fingerprints
#                                        match the pinned golden
#
# HERMES_SWEEP points at the hermes_sweep binary (default:
# build/hermes_sweep relative to the repo root).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep_bin="${HERMES_SWEEP:-$repo_root/build/hermes_sweep}"
golden_file="$repo_root/tests/golden/ci_sweep_fingerprints.txt"

# The grids are part of the pinned golden fingerprints: keep ambient
# scaling out of them.
unset HERMES_SIM_SCALE HERMES_BENCH_SUITE

# Scaled-down fig12: the paper's single-core mechanism grid (no-pf /
# Hermes-O / Pythia / Pythia+Hermes-O) over the quick suite.
fig12_space() {
    "$sweep_bin" \
        predictor=popet hermes.issue_latency=6 \
        --axis "prefetcher=none,pythia" \
        --axis "hermes.enabled=false,true" \
        --suite quick --warmup 6000 --instrs 20000 \
        --no-progress "$@"
}

# Scaled-down fig16: the eight-core predictor comparison on one
# heterogeneous and one homogeneous mix.
hetero_mix="spec06.mcf_like.0,spec06.lbm_like.0,spec17.fotonik_like.0"
hetero_mix+=",spec17.xalancbmk_like.0,parsec.streamcluster_like.0"
hetero_mix+=",ligra.bfs_like.0,ligra.pagerank_like.0,cvp.server_db_like.0"
fig16_space() {
    "$sweep_bin" \
        system.cores=8 prefetcher=pythia hermes.enabled=true \
        --axis "predictor=hmp,ttp,popet" \
        --mix "$hetero_mix" --trace spec06.mcf_like.0 \
        --warmup 2000 --instrs 6000 \
        --no-progress "$@"
}

# Two-point issue-latency sweep whose points share one warmup identity
# (hermes.warmup_issue=false makes hermes.issue_latency measure-only):
# the checkpointed-warmup probe for the warmup-warm gate.
warmlat_space() {
    "$sweep_bin" \
        predictor=popet hermes.enabled=true hermes.warmup_issue=false \
        --axis "hermes.issue_latency=6,18" \
        --trace corpus.chase --warmup 6000 --instrs 20000 \
        --no-progress "$@"
}

mips_of_journal() { # journal file -> "X.XX" (simulated MIPS) or "-"
    python3 - "$1" <<'EOF'
import json, sys
instrs = seconds = 0
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "host" in rec:
            seconds += rec["host"][0]
            instrs += rec["host"][1]
print(f"{instrs / seconds / 1e6:.2f}" if seconds > 0 else "-")
EOF
}

step_summary() { # append a line to the GitHub step summary, if any
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        echo "$1" >>"$GITHUB_STEP_SUMMARY"
    fi
}

cmd="${1:?usage: ci_sweep.sh shard|merge|golden ...}"
shift
case "$cmd" in
shard)
    i="${1:?shard index}"
    n="${2:?shard count}"
    out="${3:?output dir}"
    mkdir -p "$out"
    fig12_space --shard "$i/$n" --journal "$out/fig12-shard$i.jsonl"
    fig16_space --shard "$i/$n" --journal "$out/fig16-shard$i.jsonl"
    step_summary "| shard $i/$n fig12 | $(mips_of_journal "$out/fig12-shard$i.jsonl") MIPS |"
    step_summary "| shard $i/$n fig16 | $(mips_of_journal "$out/fig16-shard$i.jsonl") MIPS |"
    ;;
merge)
    in="${1:?input dir}"
    out="${2:?output dir}"
    mkdir -p "$out"
    for fig in fig12 fig16; do
        resumes=()
        for j in "$in"/$fig-shard*.jsonl; do
            resumes+=(--resume "$j")
        done
        ${fig}_space "${resumes[@]}" --merge \
            --journal "$out/$fig.jsonl" --csv "$out/$fig.csv" \
            --fingerprint >"$out/$fig.fingerprint"
        got="$(cat "$out/$fig.fingerprint")"
        want="$(awk -v f="$fig" '$1 == f {print $2}' "$golden_file")"
        if [ "$got" != "$want" ]; then
            echo "FAIL: merged $fig fingerprint $got != golden $want" >&2
            echo "      (tools/ci_sweep.sh golden regenerates the" \
                "golden after an intentional simulation change)" >&2
            exit 1
        fi
        echo "OK: merged $fig fingerprint $got matches golden"
    done
    step_summary "| merged fig12 | fingerprint $(cat "$out/fig12.fingerprint") |"
    step_summary "| merged fig16 | fingerprint $(cat "$out/fig16.fingerprint") |"
    ;;
spacefp)
    # The space fingerprint identifies the exact grid (every point's
    # config, traces and budgets), which makes it the right CI cache
    # key: any grid change starts a fresh cache instead of mixing
    # entries from different scenario spaces into one artifact.
    echo "fig12 $(fig12_space --list-grid | awk 'NR==1 {print $NF}')"
    echo "fig16 $(fig16_space --list-grid | awk 'NR==1 {print $NF}')"
    ;;
warm)
    cache="${1:?cache dir}"
    out="${2:?output dir}"
    mkdir -p "$out"
    export HERMES_RESULT_CACHE="$cache"
    for pass in 1 2; do
        for fig in fig12 fig16; do
            ${fig}_space --journal "$out/$fig-pass$pass.jsonl" \
                --fingerprint >"$out/$fig-pass$pass.fp" \
                2>"$out/$fig-pass$pass.log"
            cat "$out/$fig-pass$pass.log" >&2
        done
    done
    for fig in fig12 fig16; do
        # Pass 2 must be answered entirely from the store...
        if ! grep -q "(0 simulated, " "$out/$fig-pass2.log"; then
            echo "FAIL: warm $fig rerun simulated points:" >&2
            cat "$out/$fig-pass2.log" >&2
            exit 1
        fi
        # ...and still reproduce pass 1 (and the pinned golden)
        # byte-for-byte: journals included, since cached results carry
        # even their host-perf payload back unchanged.
        if ! cmp -s "$out/$fig-pass1.fp" "$out/$fig-pass2.fp"; then
            echo "FAIL: warm $fig fingerprint drifted across passes" >&2
            exit 1
        fi
        if ! cmp -s "$out/$fig-pass1.jsonl" "$out/$fig-pass2.jsonl"; then
            echo "FAIL: warm $fig journal drifted across passes" >&2
            exit 1
        fi
        got="$(cat "$out/$fig-pass2.fp")"
        want="$(awk -v f="$fig" '$1 == f {print $2}' "$golden_file")"
        if [ "$got" != "$want" ]; then
            echo "FAIL: warm $fig fingerprint $got != golden $want" >&2
            exit 1
        fi
        echo "OK: warm $fig rerun simulated 0 points, fingerprint" \
            "$got matches golden"
    done
    step_summary "| warm rerun | 0 points simulated, fingerprints match golden |"
    ;;
warmup-warm)
    cache="${1:?warmup cache dir}"
    out="${2:?output dir}"
    mkdir -p "$out"
    # Keep ambient stores out of the gate: the point is the warmup
    # cache, and a result-store hit would skip simulation entirely.
    unset HERMES_RESULT_CACHE HERMES_WARMUP_CACHE
    warmlat_space --fingerprint >"$out/warmlat-base.fp" \
        2>"$out/warmlat-base.log"
    for pass in 1 2; do
        warmlat_space --warmup-cache "$cache" \
            --fingerprint >"$out/warmlat-pass$pass.fp" \
            2>"$out/warmlat-pass$pass.log"
        cat "$out/warmlat-pass$pass.log" >&2
    done
    # Cold pass: the shared identity warms once, the other point
    # restores; warm pass: both points restore, zero warmups.
    if ! grep -q "warmup-cache: 1 warmed, 1 restored" \
        "$out/warmlat-pass1.log"; then
        echo "FAIL: cold pass did not warm exactly once:" >&2
        cat "$out/warmlat-pass1.log" >&2
        exit 1
    fi
    if ! grep -q "warmup-cache: 0 warmed, 2 restored" \
        "$out/warmlat-pass2.log"; then
        echo "FAIL: warm pass re-ran a warmup:" >&2
        cat "$out/warmlat-pass2.log" >&2
        exit 1
    fi
    # Restored-from-checkpoint results must be byte-identical to the
    # uncached run — and to the pinned golden.
    for pass in 1 2; do
        if ! cmp -s "$out/warmlat-base.fp" "$out/warmlat-pass$pass.fp"; then
            echo "FAIL: warmup-cached pass $pass fingerprint differs" \
                "from the uncached run" >&2
            exit 1
        fi
    done
    got="$(cat "$out/warmlat-base.fp")"
    want="$(awk -v f=warmlat '$1 == f {print $2}' "$golden_file")"
    if [ "$got" != "$want" ]; then
        echo "FAIL: warmlat fingerprint $got != golden $want" >&2
        echo "      (tools/ci_sweep.sh golden regenerates the golden" \
            "after an intentional simulation change)" >&2
        exit 1
    fi
    echo "OK: warmup-warm warmed once, restored 3 points, fingerprint" \
        "$got matches golden"
    step_summary "| warmup-warm | 1 warmup, 3 restores, fingerprint matches golden |"
    ;;
golden)
    out="${1:?output dir}"
    mkdir -p "$out"
    fig12_space --journal "$out/fig12.jsonl" --csv "$out/fig12.csv" \
        --fingerprint >"$out/fig12.fingerprint"
    fig16_space --journal "$out/fig16.jsonl" --csv "$out/fig16.csv" \
        --fingerprint >"$out/fig16.fingerprint"
    warmlat_space --journal "$out/warmlat.jsonl" \
        --fingerprint >"$out/warmlat.fingerprint"
    {
        echo "# Pinned sweep fingerprints for the sharded CI figure"
        echo "# pipeline (tools/ci_sweep.sh); the merge of the 4 shard"
        echo "# journals must reproduce these exactly. Regenerate with"
        echo "# tools/ci_sweep.sh golden <dir> after an intentional"
        echo "# simulation-visible change."
        echo "fig12 $(cat "$out/fig12.fingerprint")"
        echo "fig16 $(cat "$out/fig16.fingerprint")"
        echo "warmlat $(cat "$out/warmlat.fingerprint")"
    } >"$golden_file"
    echo "wrote $golden_file:"
    grep -v '^#' "$golden_file"
    ;;
*)
    echo "unknown command '$cmd' (want" \
        "shard|merge|golden|spacefp|warm|warmup-warm)" >&2
    exit 2
    ;;
esac
