#!/usr/bin/env bash
# Docs-freshness gate for the README statistics reference: the fenced
# block under "### Statistics reference" must be the verbatim output
# of `hermes_run --list-stats`. Run after registering new statistics
# (regenerate the block with that command); CI's determinism job runs
# this against the freshly built binary.
#
# Usage: tools/check_stats_docs.sh [path/to/hermes_run]
#   (default binary: build/hermes_run relative to the repo root)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
run_bin="${1:-$repo_root/build/hermes_run}"

actual="$(mktemp)"
expected="$(mktemp)"
trap 'rm -f "$actual" "$expected"' EXIT

"$run_bin" --list-stats >"$actual"

# The reference block is the first bare ``` fence after the heading
# (the preceding example block is fenced as ```sh).
python3 - "$repo_root/README.md" >"$expected" <<'EOF'
import sys

lines = open(sys.argv[1]).read().splitlines(keepends=True)
in_section = False
in_block = capture = found = False
for line in lines:
    stripped = line.rstrip("\n")
    if line.startswith("### Statistics reference"):
        in_section = True
        continue
    if not in_section:
        continue
    if not in_block:
        if stripped.startswith("```"):
            # Fences toggle; only the bare ``` fence opens the
            # reference block (examples are fenced as ```sh).
            in_block = True
            capture = stripped == "```" and not found
            found = found or capture
        continue
    if stripped == "```":
        if capture:
            break
        in_block = capture = False
        continue
    if capture:
        sys.stdout.write(line)
if not found:
    sys.exit("README.md: no statistics reference block found")
EOF

if ! diff -u "$expected" "$actual"; then
    echo >&2
    echo "README statistics reference is stale: regenerate the" >&2
    echo "\"### Statistics reference\" code block from" >&2
    echo "\`hermes_run --list-stats\` output." >&2
    exit 1
fi
echo "README statistics reference is up to date" \
     "($(wc -l <"$actual" | tr -d ' ') keys)"
