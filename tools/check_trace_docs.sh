#!/usr/bin/env bash
# Docs-freshness gate for the trace ecosystem: the fenced block under
# "### Corpus reference" in README.md must be the verbatim output of
# `hermes_trace corpus`. Run after adding a corpus generator or knob
# (regenerate the block with that command); CI's determinism job runs
# this against the freshly built binary.
#
# Usage: tools/check_trace_docs.sh [path/to/hermes_trace]
#   (default binary: build/hermes_trace relative to the repo root)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
trace_bin="${1:-$repo_root/build/hermes_trace}"

actual="$(mktemp)"
expected="$(mktemp)"
trap 'rm -f "$actual" "$expected"' EXIT

"$trace_bin" corpus >"$actual"

# The reference block is the first bare ``` fence after the heading
# (example blocks are fenced as ```sh).
python3 - "$repo_root/README.md" >"$expected" <<'EOF'
import sys

lines = open(sys.argv[1]).read().splitlines(keepends=True)
in_section = False
in_block = capture = found = False
for line in lines:
    stripped = line.rstrip("\n")
    if line.startswith("### Corpus reference"):
        in_section = True
        continue
    if not in_section:
        continue
    if not in_block:
        if stripped.startswith("```"):
            in_block = True
            capture = stripped == "```" and not found
            found = found or capture
        continue
    if stripped == "```":
        if capture:
            break
        in_block = capture = False
        continue
    if capture:
        sys.stdout.write(line)
if not found:
    sys.exit("README.md: no corpus reference block found")
EOF

if ! diff -u "$expected" "$actual"; then
    echo >&2
    echo "README corpus reference is stale: regenerate the" >&2
    echo "\"### Corpus reference\" code block from" >&2
    echo "\`hermes_trace corpus\` output." >&2
    exit 1
fi

echo "trace docs OK (corpus reference in sync)"
