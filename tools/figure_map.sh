#!/usr/bin/env bash
# Generate the README "Paper figure map" table from the one-line
# `// figmap: <figure> | <sweeps>` annotation every bench/*.cc driver
# carries. Printed to stdout; README.md holds the output between
# `<!-- figure-map:begin -->` and `<!-- figure-map:end -->` markers and
# tools/check_model_docs.sh gates freshness in CI.
#
# Usage: tools/figure_map.sh            print the table
#        tools/figure_map.sh --update   rewrite the README block

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

generate() {
    python3 - "$repo_root" <<'EOF'
import glob
import os
import sys

root = sys.argv[1]
rows = []
for path in sorted(glob.glob(os.path.join(root, "bench", "*.cc"))):
    stem = os.path.splitext(os.path.basename(path))[0]
    ann = [l for l in open(path) if l.lstrip().startswith("// figmap:")]
    if len(ann) != 1:
        sys.exit(f"bench/{stem}.cc: expected exactly one '// figmap:' "
                 f"line, found {len(ann)}")
    body = ann[0].split("// figmap:", 1)[1].strip()
    parts = [p.strip() for p in body.split("|")]
    if len(parts) != 2 or not all(parts):
        sys.exit(f"bench/{stem}.cc: figmap line must be "
                 f"'<figure> | <sweeps>', got '{body}'")
    rows.append((stem, parts[0], parts[1]))

print("| driver | paper figure | sweeps | run |")
print("|---|---|---|---|")
for stem, fig, sweeps in rows:
    print(f"| `{stem}` | {fig} | {sweeps} | `./build/{stem}` |")
EOF
}

if [ "${1:-}" = "--update" ]; then
    table="$(generate)"
    python3 - "$repo_root/README.md" "$table" <<'EOF'
import sys

path, table = sys.argv[1], sys.argv[2]
begin, end = "<!-- figure-map:begin -->", "<!-- figure-map:end -->"
text = open(path).read()
if begin not in text or end not in text:
    sys.exit(f"{path}: missing {begin}/{end} markers")
head, rest = text.split(begin, 1)
_, tail = rest.split(end, 1)
open(path, "w").write(head + begin + "\n" + table + "\n" + end + tail)
EOF
    echo "README.md figure map updated."
else
    generate
fi
