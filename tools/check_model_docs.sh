#!/usr/bin/env bash
# Docs-freshness gate for the model surface:
#  1. the fenced block under "### Model reference" in README.md must be
#     the verbatim output of `hermes_run --list-models`;
#  2. the "Paper figure map" table between the figure-map markers must
#     match what tools/figure_map.sh generates from the bench/*.cc
#     `// figmap:` annotations.
# Run after registering a new model or adding a bench driver
# (regenerate with `hermes_run --list-models` and
# `tools/figure_map.sh --update`); CI's determinism job runs this
# against the freshly built binary.
#
# Usage: tools/check_model_docs.sh [path/to/hermes_run]
#   (default binary: build/hermes_run relative to the repo root)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
run_bin="${1:-$repo_root/build/hermes_run}"

actual="$(mktemp)"
expected="$(mktemp)"
trap 'rm -f "$actual" "$expected"' EXIT

# --- 1. the model reference block ------------------------------------
"$run_bin" --list-models >"$actual"

# The reference block is the first bare ``` fence after the heading
# (example blocks are fenced as ```sh).
python3 - "$repo_root/README.md" >"$expected" <<'EOF'
import sys

lines = open(sys.argv[1]).read().splitlines(keepends=True)
in_section = False
in_block = capture = found = False
for line in lines:
    stripped = line.rstrip("\n")
    if line.startswith("### Model reference"):
        in_section = True
        continue
    if not in_section:
        continue
    if not in_block:
        if stripped.startswith("```"):
            in_block = True
            capture = stripped == "```" and not found
            found = found or capture
        continue
    if stripped == "```":
        if capture:
            break
        in_block = capture = False
        continue
    if capture:
        sys.stdout.write(line)
if not found:
    sys.exit("README.md: no model reference block found")
EOF

if ! diff -u "$expected" "$actual"; then
    echo >&2
    echo "README model reference is stale: regenerate the" >&2
    echo "\"### Model reference\" code block from" >&2
    echo "\`hermes_run --list-models\` output." >&2
    exit 1
fi

# --- 2. the paper figure map -----------------------------------------
"$repo_root/tools/figure_map.sh" >"$actual"

python3 - "$repo_root/README.md" >"$expected" <<'EOF'
import sys

text = open(sys.argv[1]).read()
begin, end = "<!-- figure-map:begin -->", "<!-- figure-map:end -->"
if begin not in text or end not in text:
    sys.exit("README.md: no figure-map markers found")
block = text.split(begin, 1)[1].split(end, 1)[0]
sys.stdout.write(block.strip("\n") + "\n")
EOF

if ! diff -u "$expected" "$actual"; then
    echo >&2
    echo "README paper figure map is stale: run" >&2
    echo "\`tools/figure_map.sh --update\` (the table is generated" >&2
    echo "from the // figmap: lines in bench/*.cc)." >&2
    exit 1
fi

echo "model docs OK (model reference + figure map in sync)"
