// Tests for the cache model: hit/miss behaviour, timing, MSHR handling,
// write paths, prefetch plumbing and a reference-model cross-check.

#include <gtest/gtest.h>

#include <map>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "test_helpers.hh"

namespace hermes
{
namespace
{

using test::FakeMemory;
using test::loadReq;
using test::RecordingClient;

struct CacheHarness
{
    explicit CacheHarness(CacheParams p = defaultParams())
        : cache(p)
    {
        cache.setLower(&memory);
        cache.setUpper(0, &client);
        memory.setClient(&cache);
    }

    static CacheParams
    defaultParams()
    {
        CacheParams p;
        p.sets = 16;
        p.ways = 4;
        p.latency = 5;
        p.mshrs = 8;
        p.rqSize = 16;
        return p;
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            ++now;
            memory.tick(now);
            cache.tick(now);
        }
    }

    FakeMemory memory{50};
    Cache cache;
    RecordingClient client;
    Cycle now = 0;
};

TEST(Cache, MissGoesToLowerAndFills)
{
    CacheHarness h;
    EXPECT_TRUE(h.cache.addRead(loadReq(0x1000)));
    h.run(100);
    ASSERT_EQ(h.client.responses.size(), 1u);
    EXPECT_EQ(h.client.responses[0].line(), lineAddr(0x1000));
    EXPECT_EQ(static_cast<int>(h.client.responses[0].servedFrom),
              static_cast<int>(MemLevel::Dram));
    EXPECT_TRUE(h.cache.probe(lineAddr(0x1000)));
    EXPECT_EQ(h.memory.reads.size(), 1u);
}

TEST(Cache, HitServedAtLookupLatency)
{
    CacheHarness h;
    h.cache.addRead(loadReq(0x1000));
    h.run(100);
    h.client.responses.clear();

    const Cycle start = h.now;
    h.cache.addRead(loadReq(0x1000, 0x400000, 0, 2));
    h.run(20);
    ASSERT_EQ(h.client.responses.size(), 1u);
    // Lookup latency of 5 cycles: response arrives at start+5.
    EXPECT_EQ(h.client.responses[0].servedFrom, MemLevel::L1);
    EXPECT_EQ(h.cache.stats().loadHits, 1u);
    EXPECT_GE(h.now, start + 5);
}

TEST(Cache, MissLatencyIncludesLookupAndMemory)
{
    CacheHarness h;
    const Cycle start = h.now;
    h.cache.addRead(loadReq(0x2000));
    while (h.client.responses.empty() && h.now < start + 300)
        h.run(1);
    // 5 (lookup) + 50 (memory) plus a couple of tick-ordering cycles.
    ASSERT_FALSE(h.client.responses.empty());
    const Cycle elapsed = h.now - start;
    EXPECT_GE(elapsed, 55u);
    EXPECT_LE(elapsed, 62u);
}

TEST(Cache, MshrMergesSameLine)
{
    CacheHarness h;
    h.cache.addRead(loadReq(0x3000, 0x400000, 0, 1));
    h.cache.addRead(loadReq(0x3008, 0x400004, 0, 2));
    h.cache.addRead(loadReq(0x3030, 0x400008, 0, 3));
    h.run(100);
    EXPECT_EQ(h.client.responses.size(), 3u);
    EXPECT_EQ(h.memory.reads.size(), 1u); // one fetch for the line
    EXPECT_EQ(h.cache.stats().mshrMerges, 2u);
}

TEST(Cache, RqFullRejects)
{
    CacheParams p = CacheHarness::defaultParams();
    p.rqSize = 2;
    CacheHarness h(p);
    EXPECT_TRUE(h.cache.addRead(loadReq(0x1000)));
    EXPECT_TRUE(h.cache.addRead(loadReq(0x2000)));
    EXPECT_FALSE(h.cache.addRead(loadReq(0x3000)));
    EXPECT_EQ(h.cache.stats().rqRejects, 1u);
}

TEST(Cache, MshrExhaustionBlocksThenRecovers)
{
    CacheParams p = CacheHarness::defaultParams();
    p.mshrs = 2;
    CacheHarness h(p);
    for (int i = 0; i < 4; ++i)
        h.cache.addRead(loadReq(0x10000 + i * 0x1000, 0x400000, 0, i + 1));
    h.run(400);
    EXPECT_EQ(h.client.responses.size(), 4u); // all eventually served
}

TEST(Cache, EvictionWritesBackDirtyLine)
{
    CacheParams p = CacheHarness::defaultParams();
    p.sets = 1;
    p.ways = 2;
    CacheHarness h(p);

    // Write (store commit) to line A: allocates dirty via RFO.
    MemRequest st = loadReq(0x1000);
    st.type = AccessType::Rfo;
    h.cache.addWrite(st);
    h.run(100);
    ASSERT_TRUE(h.cache.probe(lineAddr(0x1000)));

    // Fill two more lines mapping to the same (only) set.
    h.cache.addRead(loadReq(0x2000));
    h.run(100);
    h.cache.addRead(loadReq(0x3000));
    h.run(100);
    EXPECT_GE(h.cache.stats().evictions, 1u);
    EXPECT_GE(h.cache.stats().dirtyEvictions, 1u);
    ASSERT_FALSE(h.memory.writes.empty());
    EXPECT_EQ(h.memory.writes[0].line(), lineAddr(0x1000));
}

TEST(Cache, WritebackFromUpperInstallsDirectly)
{
    CacheHarness h;
    MemRequest wb = loadReq(0x4000);
    wb.type = AccessType::Writeback;
    h.cache.addWrite(wb);
    h.run(20);
    EXPECT_TRUE(h.cache.probe(lineAddr(0x4000)));
    EXPECT_TRUE(h.memory.reads.empty()); // no fetch for a writeback fill
}

TEST(Cache, StoreMissFetchesLineAndInstallsDirty)
{
    CacheHarness h;
    MemRequest st = loadReq(0x5000);
    st.type = AccessType::Rfo;
    h.cache.addWrite(st);
    h.run(100);
    EXPECT_TRUE(h.cache.probe(lineAddr(0x5000)));
    EXPECT_EQ(h.memory.reads.size(), 1u); // write-allocate fetch
    EXPECT_TRUE(h.client.responses.empty()); // no upward response
}

TEST(Cache, ProbeMshrSeesOutstandingMiss)
{
    CacheHarness h;
    h.cache.addRead(loadReq(0x6000));
    h.run(8); // past lookup, before fill
    EXPECT_TRUE(h.cache.probeMshr(lineAddr(0x6000)));
    h.run(100);
    EXPECT_FALSE(h.cache.probeMshr(lineAddr(0x6000)));
}

TEST(Cache, EvictionHookFires)
{
    CacheParams p = CacheHarness::defaultParams();
    p.sets = 1;
    p.ways = 1;
    CacheHarness h(p);
    std::vector<Addr> evicted;
    h.cache.onEviction = [&](Addr line) { evicted.push_back(line); };
    h.cache.addRead(loadReq(0x1000));
    h.run(100);
    h.cache.addRead(loadReq(0x2000));
    h.run(100);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], lineAddr(0x1000));
}

TEST(Cache, FillFromDramHookFires)
{
    CacheHarness h;
    std::vector<Addr> filled;
    h.cache.onFillFromDram = [&](Addr line) { filled.push_back(line); };
    h.cache.addRead(loadReq(0x7000));
    h.run(100);
    ASSERT_EQ(filled.size(), 1u);
    EXPECT_EQ(filled[0], lineAddr(0x7000));
}

/** Prefetcher stub that requests the next line on every access. */
class NextLinePf : public Prefetcher
{
  public:
    const char *name() const override { return "nextline"; }
    void
    onAccess(Addr addr, Addr, bool, std::vector<Addr> &out) override
    {
        out.push_back(lineAddr(addr) + 1);
    }
    std::uint64_t storageBits() const override { return 0; }
};

TEST(Cache, PrefetchFillsAndCountsUseful)
{
    CacheHarness h;
    NextLinePf pf;
    h.cache.setPrefetcher(&pf);

    h.cache.addRead(loadReq(0x8000)); // miss; prefetch 0x8040 issued
    h.run(200);
    EXPECT_TRUE(h.cache.probe(lineAddr(0x8040)));
    EXPECT_EQ(h.cache.stats().prefetchIssued, 1u);
    EXPECT_EQ(pf.stats().issued, 1u);

    h.cache.addRead(loadReq(0x8040, 0x400000, 0, 2)); // hits prefetch
    h.run(20);
    EXPECT_EQ(h.cache.stats().usefulPrefetches, 1u);
    EXPECT_EQ(pf.stats().useful, 1u);
}

TEST(Cache, PrefetchToResidentLineDropped)
{
    CacheHarness h;
    NextLinePf pf;
    h.cache.setPrefetcher(&pf);
    h.cache.addRead(loadReq(0x9000));
    h.run(200);
    // Access the prefetched line: its own prefetch (next-next line)
    // is to a missing line; access the original line again -> its
    // prefetch target is now resident -> dropped.
    h.cache.addRead(loadReq(0x9000, 0x400000, 0, 2));
    h.run(200);
    EXPECT_GE(h.cache.stats().prefetchDropped, 1u);
}

/**
 * Reference-model cross-check: an LRU cache must agree with a simple
 * map-based functional model on the hit/miss sequence (single
 * outstanding request at a time, so timing cannot reorder handling).
 */
class CacheReferenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheReferenceTest, MatchesFunctionalLruModel)
{
    const auto [sets, ways] = GetParam();
    CacheParams p;
    p.sets = sets;
    p.ways = ways;
    p.latency = 1;
    p.mshrs = 4;
    p.rqSize = 4;
    p.repl = ReplKind::Lru;
    CacheHarness h(p);

    // Functional model: per-set LRU list of line addresses.
    std::map<std::uint32_t, std::vector<Addr>> model;
    Rng rng(1234);
    unsigned model_hits = 0;

    for (int i = 0; i < 800; ++i) {
        const Addr line = rng.below(sets * ways * 3);
        const Addr addr = line << kLogBlockSize;
        const auto set = static_cast<std::uint32_t>(line & (sets - 1));

        auto &lru = model[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        const bool model_hit = it != lru.end();
        if (model_hit) {
            ++model_hits;
            lru.erase(it);
        } else if (lru.size() >= ways) {
            lru.erase(lru.begin());
        }
        lru.push_back(line);

        const std::uint64_t hits_before = h.cache.stats().loadHits;
        ASSERT_TRUE(h.cache.addRead(loadReq(addr, 0x400000, 0, i + 1)));
        h.run(80); // complete fully before the next access
        const bool sim_hit = h.cache.stats().loadHits > hits_before;
        ASSERT_EQ(sim_hit, model_hit)
            << "access " << i << " line " << line;
    }
    EXPECT_EQ(h.cache.stats().loadHits, model_hits);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheReferenceTest,
                         ::testing::Combine(::testing::Values(4u, 16u),
                                            ::testing::Values(2u, 4u,
                                                              8u)));

} // namespace
} // namespace hermes
