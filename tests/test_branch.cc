// Tests for the hashed-perceptron branch predictor.

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/branch_predictor.hh"

namespace hermes
{
namespace
{

TEST(Branch, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x400000;
    for (int i = 0; i < 200; ++i) {
        bp.predict(pc);
        bp.update(pc, true);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(pc);
        bp.update(pc, true);
    }
    EXPECT_EQ(correct, 100);
}

TEST(Branch, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x400040;
    for (int i = 0; i < 200; ++i) {
        bp.predict(pc);
        bp.update(pc, false);
    }
    int taken = 0;
    for (int i = 0; i < 100; ++i) {
        taken += bp.predict(pc);
        bp.update(pc, false);
    }
    EXPECT_EQ(taken, 0);
}

TEST(Branch, LearnsAlternationViaHistory)
{
    BranchPredictor bp;
    const Addr pc = 0x400080;
    for (int i = 0; i < 2000; ++i) {
        bp.predict(pc);
        bp.update(pc, i % 2 == 0);
    }
    int correct = 0;
    for (int i = 2000; i < 2400; ++i) {
        const bool pred = bp.predict(pc);
        const bool actual = i % 2 == 0;
        correct += pred == actual;
        bp.update(pc, actual);
    }
    EXPECT_GT(correct, 380);
}

TEST(Branch, LearnsLoopExitPattern)
{
    // Taken 15 times, not-taken once (16-iteration loop).
    BranchPredictor bp;
    const Addr pc = 0x4000C0;
    for (int i = 0; i < 8000; ++i) {
        bp.predict(pc);
        bp.update(pc, i % 16 != 15);
    }
    unsigned mispredicts = 0;
    for (int i = 0; i < 1600; ++i) {
        const bool actual = i % 16 != 15;
        const bool pred = bp.predict(pc);
        mispredicts += pred != actual;
        bp.update(pc, actual);
    }
    // The perceptron's 24-bit history covers the 16-long period.
    EXPECT_LT(mispredicts, 160u);
}

TEST(Branch, RandomOutcomesNearChance)
{
    BranchPredictor bp;
    Rng rng(77);
    const Addr pc = 0x400100;
    unsigned correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool actual = rng.chance(0.5);
        const bool pred = bp.predict(pc);
        correct += pred == actual;
        bp.update(pc, actual);
    }
    EXPECT_GT(correct, n * 42 / 100);
    EXPECT_LT(correct, n * 58 / 100);
}

TEST(Branch, UpdateReportsMisprediction)
{
    BranchPredictor bp;
    const Addr pc = 0x400140;
    for (int i = 0; i < 100; ++i) {
        bp.predict(pc);
        bp.update(pc, true);
    }
    bp.predict(pc);
    EXPECT_TRUE(bp.update(pc, false)); // surprise outcome
    EXPECT_GT(bp.stats().mispredicts, 0u);
}

TEST(Branch, StatsAndStorage)
{
    BranchPredictor bp;
    bp.predict(0x400000);
    bp.update(0x400000, true);
    EXPECT_EQ(bp.stats().lookups, 1u);
    bp.clearStats();
    EXPECT_EQ(bp.stats().lookups, 0u);
    EXPECT_GT(bp.storageBits(), 0u);
    EXPECT_DOUBLE_EQ(BranchStats{}.mpki(0), 0.0);
}

TEST(Branch, DistinctPcsIndependent)
{
    BranchPredictor bp;
    for (int i = 0; i < 500; ++i) {
        bp.predict(0x400200);
        bp.update(0x400200, true);
        bp.predict(0x400240);
        bp.update(0x400240, false);
    }
    EXPECT_TRUE(bp.predict(0x400200));
    bp.update(0x400200, true);
    EXPECT_FALSE(bp.predict(0x400240));
    bp.update(0x400240, false);
}

} // namespace
} // namespace hermes
