// Tests for the self-registering model factory
// (sim/model_registry.hh): registration validation (duplicates,
// ill-formed names, factory/kind mismatches), nearest-name suggestions
// for unknown models and knob keys, knob validation and
// fromConfig/toConfig round trips, runtime registration visibility
// through the selection parameters, and the golden guarantee that
// selecting a legacy model through the registry string path produces
// byte-identical RunStats fingerprints to the enum path.

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/config.hh"
#include "golden_util.hh"
#include "predictor/offchip_pred.hh"
#include "sim/model_registry.hh"
#include "sim/param_registry.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "trace/suite.hh"

namespace hermes
{
namespace
{

using golden::goldenBudget;
using golden::loadGoldens;

ModelDef
minimalPredictorDef(const std::string &name)
{
    ModelDef d;
    d.name = name;
    d.kind = ModelKind::Predictor;
    d.doc = "test predictor";
    d.makePredictor = [](const ModelContext &) {
        return std::unique_ptr<OffChipPredictor>();
    };
    return d;
}

SystemConfig
configWith(std::initializer_list<const char *> overrides)
{
    SystemConfig cfg = SystemConfig::baseline(1);
    for (const char *kv : overrides)
        applyOverride(cfg, kv);
    return cfg;
}

TEST(ModelRegistry, DuplicateNameRejected)
{
    ModelRegistry reg;
    reg.add(minimalPredictorDef("dup"));
    try {
        reg.add(minimalPredictorDef("dup"));
        FAIL() << "duplicate registration did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("already registered"),
                  std::string::npos)
            << e.what();
    }
    // Same name under a different kind is a different model.
    ModelDef pf = minimalPredictorDef("dup");
    pf.kind = ModelKind::Prefetcher;
    pf.makePredictor = nullptr;
    pf.makePrefetcher = [](const ModelContext &) {
        return std::unique_ptr<Prefetcher>();
    };
    EXPECT_NO_THROW(reg.add(std::move(pf)));
}

TEST(ModelRegistry, IllFormedDefsRejected)
{
    ModelRegistry reg;
    // Names are lowercase [a-z0-9_].
    EXPECT_THROW(reg.add(minimalPredictorDef("Bad-Name")),
                 std::invalid_argument);
    EXPECT_THROW(reg.add(minimalPredictorDef("")),
                 std::invalid_argument);
    // Exactly one factory, matching the declared kind.
    ModelDef none = minimalPredictorDef("nofactory");
    none.makePredictor = nullptr;
    EXPECT_THROW(reg.add(std::move(none)), std::invalid_argument);
    ModelDef wrong = minimalPredictorDef("wrongkind");
    wrong.kind = ModelKind::Prefetcher;
    EXPECT_THROW(reg.add(std::move(wrong)), std::invalid_argument);
    // Knob defaults must pass their own declared validation.
    ModelDef bad_knob = minimalPredictorDef("badknob");
    bad_knob.knobs = {{"k", ModelKnob::Type::Int, "99", 0, 8, false,
                       "out-of-range default"}};
    EXPECT_THROW(reg.add(std::move(bad_knob)), std::invalid_argument);
}

TEST(ModelRegistry, UnknownModelGetsNearestSuggestion)
{
    try {
        ModelRegistry::instance().findOrThrow(ModelKind::Predictor,
                                              "hashprec");
        FAIL() << "unknown model did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'hashperc'"),
                  std::string::npos)
            << e.what();
    }
    // The same suggestion surfaces through the selection parameter.
    try {
        configWith({"predictor=hashprec"});
        FAIL() << "unknown predictor name did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("hashperc"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ModelRegistry, UnknownKnobKeyGetsNearestSuggestion)
{
    try {
        configWith({"pred.hashperc.table_bit=12"});
        FAIL() << "unknown knob key did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(
            std::string(e.what()).find("pred.hashperc.table_bits"),
            std::string::npos)
            << e.what();
    }
}

TEST(ModelRegistry, KnobValuesAreValidated)
{
    // Range check.
    EXPECT_THROW(configWith({"pred.hashperc.table_bits=40"}),
                 std::invalid_argument);
    // Power-of-two check on mask-indexed geometry.
    EXPECT_THROW(configWith({"pref.ipcp.entries=1000"}),
                 std::invalid_argument);
    // Type check.
    EXPECT_THROW(configWith({"pred.hashperc.hashes=many"}),
                 std::invalid_argument);
    // In-range values apply.
    EXPECT_NO_THROW(configWith({"pref.ipcp.entries=2048"}));
}

TEST(ModelRegistry, KnobsRoundTripThroughConfig)
{
    const SystemConfig cfg = configWith(
        {"predictor=hashperc", "pred.hashperc.table_bits=12"});
    const Config out = cfg.toConfig();
    EXPECT_EQ(out.get("predictor", std::string()), "hashperc");
    EXPECT_EQ(out.get("pred.hashperc.table_bits", std::string()), "12");
    // And back: a config rebuilt from the rendering is identical.
    const SystemConfig again = SystemConfig::fromConfig(out);
    EXPECT_EQ(again.predictorName(), "hashperc");
    EXPECT_EQ(again.modelKnobs, cfg.modelKnobs);

    // Untouched knobs never render: pre-registry configurations keep
    // their exact key set (and therefore their golden fingerprints).
    const Config base = SystemConfig::baseline(1).toConfig();
    for (const std::string &key : base.keys()) {
        EXPECT_NE(key.rfind("pred.", 0), 0u) << key;
        EXPECT_NE(key.rfind("pref.", 0), 0u) << key;
        EXPECT_NE(key.rfind("repl.", 0), 0u) << key;
    }
    EXPECT_FALSE(base.contains("pred.hashperc.table_bits"));
}

TEST(ModelRegistry, UndeclaredKnobReadIsAModelBug)
{
    ModelContext ctx;
    ModelDef def = minimalPredictorDef("ctxtest");
    ctx.model = &def;
    EXPECT_THROW(ctx.knobInt("no_such_knob"), std::logic_error);
}

TEST(ModelRegistry, RuntimeRegistrationIsSelectable)
{
    // The registry stays open: a model added after static
    // initialization (here: mid-test) is immediately selectable
    // through the live-validated selection parameters.
    const std::string name = "runtime_test_pred";
    if (!ModelRegistry::instance().find(ModelKind::Predictor, name))
        ModelRegistry::instance().add(minimalPredictorDef(name));
    const SystemConfig cfg = configWith({"predictor=runtime_test_pred"});
    EXPECT_EQ(cfg.predictorName(), name);
    EXPECT_EQ(cfg.toConfig().get("predictor", std::string()), name);
}

TEST(ModelRegistry, ListsContainTheNewContenders)
{
    const auto preds =
        ModelRegistry::instance().names(ModelKind::Predictor);
    EXPECT_NE(std::find(preds.begin(), preds.end(), "hashperc"),
              preds.end());
    const auto prefs =
        ModelRegistry::instance().names(ModelKind::Prefetcher);
    EXPECT_NE(std::find(prefs.begin(), prefs.end(), "ipcp"),
              prefs.end());
    const std::string ref = ModelRegistry::instance().describe();
    EXPECT_NE(ref.find("pred.hashperc.table_bits"), std::string::npos);
    EXPECT_NE(ref.find("pref.ipcp.degree"), std::string::npos);
}

TEST(ModelRegistryGolden, RegistryStringPathMatchesEnumPath)
{
    // The golden "one.hermes.mcf" scenario (enum-selected Pythia +
    // POPET + Hermes), forced through the registry string path: the
    // enums stay None and the model names drive construction. The
    // RunStats fingerprint must be byte-identical to the pinned
    // golden, proving the registry shims change nothing.
    const auto golden = loadGoldens();
    ASSERT_TRUE(golden.count("one.hermes.mcf"));
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::None;
    cfg.prefetcherModel = "pythia";
    cfg.predictor = PredictorKind::None;
    cfg.predictorModel = "popet";
    cfg.hermesIssueEnabled = true;
    const RunStats stats = simulateOne(
        cfg, findTrace("spec06.mcf_like.0"), goldenBudget());
    EXPECT_EQ(statsFingerprint(stats), golden.at("one.hermes.mcf"))
        << "registry-constructed POPET diverged from the enum path";
}

TEST(ModelRegistryGolden, NewContendersRunDeterministically)
{
    SimBudget b;
    b.warmupInstrs = 2'000;
    b.simInstrs = 5'000;
    const TraceSpec trace = findTrace("spec06.mcf_like.0");

    const SystemConfig pred_cfg = configWith(
        {"predictor=hashperc", "hermes.enabled=true"});
    const RunStats p1 = simulateOne(pred_cfg, trace, b);
    const RunStats p2 = simulateOne(pred_cfg, trace, b);
    EXPECT_EQ(statsFingerprint(p1), statsFingerprint(p2));
    EXPECT_GT(p1.predTotal().total(), 0u);
    EXPECT_GT(p1.hermesRequestsScheduled, 0u);

    // A streaming trace: ipcp needs stable per-PC strides to trigger.
    const TraceSpec stream = findTrace("parsec.streamcluster_like.0");
    const SystemConfig pf_cfg = configWith({"prefetcher=ipcp"});
    const RunStats f1 = simulateOne(pf_cfg, stream, b);
    const RunStats f2 = simulateOne(pf_cfg, stream, b);
    EXPECT_EQ(statsFingerprint(f1), statsFingerprint(f2));
    EXPECT_GT(f1.llc.prefetchIssued, 0u);
}

} // namespace
} // namespace hermes
