// Tests for the out-of-order core model: retirement, load blocking,
// dependences, branch misprediction penalties, queue limits and stall
// attribution.

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "test_helpers.hh"

namespace hermes
{
namespace
{

using test::FakeMemory;

/** Finite script followed by an infinite ALU filler. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::vector<TraceInstr> script)
        : script_(std::move(script))
    {
    }

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return name_; }

    TraceInstr
    next() override
    {
        if (pos_ < script_.size())
            return script_[pos_++];
        TraceInstr t;
        t.pc = 0x400800;
        t.kind = InstrKind::Alu;
        return t;
    }

    std::unique_ptr<Workload>
    clone(std::uint64_t) const override
    {
        return std::make_unique<ScriptedWorkload>(script_);
    }

  private:
    std::vector<TraceInstr> script_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

TraceInstr
alu()
{
    TraceInstr t;
    t.pc = 0x400000;
    t.kind = InstrKind::Alu;
    return t;
}

TraceInstr
load(Addr addr, std::uint32_t dep = 0)
{
    TraceInstr t;
    t.pc = 0x400010;
    t.kind = InstrKind::Load;
    t.vaddr = addr;
    t.depDistance = dep;
    return t;
}

TraceInstr
store(Addr addr)
{
    TraceInstr t;
    t.pc = 0x400020;
    t.kind = InstrKind::Store;
    t.vaddr = addr;
    return t;
}

TraceInstr
branch(bool taken, Addr pc = 0x400030)
{
    TraceInstr t;
    t.pc = pc;
    t.kind = InstrKind::Branch;
    t.branchTaken = taken;
    return t;
}

struct CoreHarness
{
    explicit CoreHarness(std::vector<TraceInstr> script,
                         CoreParams params = CoreParams{},
                         Cycle mem_latency = 40)
        : memory(mem_latency), workload(std::move(script)),
          core(0, params, &workload, &memory, nullptr)
    {
        memory.setClient(&core);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            ++now;
            memory.tick(now);
            core.tick(now);
        }
    }

    FakeMemory memory;
    ScriptedWorkload workload;
    OooCore core;
    Cycle now = 0;
};

TEST(Core, AluIpcApproachesWidth)
{
    CoreHarness h({});
    h.run(2000);
    // 6-wide fetch/retire of pure ALU should sustain IPC near 6.
    EXPECT_GT(h.core.stats().ipc(), 4.5);
}

TEST(Core, LoadBlocksRetirementUntilDataReturns)
{
    std::vector<TraceInstr> script = {load(0x1000)};
    for (int i = 0; i < 100; ++i)
        script.push_back(alu());
    CoreHarness h(script, CoreParams{}, 100);
    h.run(400);
    const auto &s = h.core.stats();
    EXPECT_EQ(s.loadsRetired, 1u);
    EXPECT_EQ(s.loadsOffChip, 1u); // FakeMemory serves from "DRAM"
    EXPECT_EQ(s.offChipBlocking, 1u);
    EXPECT_GT(s.stallCyclesOffChip, 50u);
}

TEST(Core, IndependentLoadsOverlap)
{
    std::vector<TraceInstr> script;
    for (int i = 0; i < 16; ++i)
        script.push_back(load(0x1000 + i * 0x100));
    CoreHarness h(script, CoreParams{}, 100);
    h.run(100 + 150);
    // All 16 loads retire in roughly one memory latency, not 16.
    EXPECT_EQ(h.core.stats().loadsRetired, 16u);
}

TEST(Core, DependentLoadsSerialise)
{
    // Chain of 4 loads, each depending on the previous one.
    std::vector<TraceInstr> script;
    script.push_back(load(0x1000));
    for (int i = 1; i < 4; ++i)
        script.push_back(load(0x1000 + i * 0x100, 1));
    CoreHarness h(script, CoreParams{}, 100);
    h.run(250);
    EXPECT_LT(h.core.stats().loadsRetired, 4u); // not done yet
    h.run(250);
    EXPECT_EQ(h.core.stats().loadsRetired, 4u); // ~4 x latency total
}

TEST(Core, BranchMispredictStallsFetch)
{
    // Pseudo-random branch outcomes are inherently unpredictable;
    // throughput must fall well below the all-ALU rate.
    std::vector<TraceInstr> script;
    std::uint64_t lfsr = 0xACE1u;
    for (int i = 0; i < 600; ++i) {
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        script.push_back(branch((lfsr & 4) != 0));
        script.push_back(alu());
    }
    CoreHarness h(script);
    h.run(800);
    EXPECT_GT(h.core.stats().branchMispredicts, 20u);
    EXPECT_LT(h.core.stats().ipc(), 3.0);
}

TEST(Core, PredictableBranchesLearnt)
{
    std::vector<TraceInstr> script;
    for (int i = 0; i < 2000; ++i) {
        script.push_back(branch(true));
        script.push_back(alu());
    }
    CoreHarness h(script);
    h.run(1500);
    const auto &b = h.core.branchStats();
    ASSERT_GT(b.lookups, 500u);
    EXPECT_LT(static_cast<double>(b.mispredicts) /
                  static_cast<double>(b.lookups),
              0.05);
}

TEST(Core, StoresCommitToWriteQueue)
{
    std::vector<TraceInstr> script = {store(0x2000), alu(), alu()};
    CoreHarness h(script);
    h.run(50);
    EXPECT_EQ(h.core.stats().storesRetired, 1u);
    ASSERT_EQ(h.memory.writes.size(), 1u);
    EXPECT_EQ(h.memory.writes[0].line(), lineAddr(0x2000));
    EXPECT_EQ(static_cast<int>(h.memory.writes[0].type),
              static_cast<int>(AccessType::Rfo));
}

TEST(Core, LqLimitThrottlesDispatch)
{
    CoreParams p;
    p.lqSize = 2;
    std::vector<TraceInstr> script;
    for (int i = 0; i < 8; ++i)
        script.push_back(load(0x1000 + i * 0x100));
    CoreHarness h(script, p, 200);
    h.run(150);
    // Only 2 loads can be in flight; none retired yet and memory has
    // seen at most 2 reads.
    EXPECT_LE(h.memory.reads.size(), 2u);
    h.run(2000);
    EXPECT_EQ(h.core.stats().loadsRetired, 8u);
}

TEST(Core, RobWrapsCorrectly)
{
    CoreParams p;
    p.robSize = 32;
    std::vector<TraceInstr> script;
    for (int i = 0; i < 300; ++i)
        script.push_back(i % 7 == 0 ? load(0x1000 + i * 64) : alu());
    CoreHarness h(script, p, 20);
    h.run(3000);
    EXPECT_GE(h.core.stats().instrsRetired, 300u);
}

TEST(Core, StallAttributionSeparatesOffChip)
{
    // One load (off-chip via FakeMemory) followed by ALUs: all the
    // retirement stall must be attributed to the off-chip bucket.
    std::vector<TraceInstr> script = {load(0x3000)};
    for (int i = 0; i < 50; ++i)
        script.push_back(alu());
    CoreHarness h(script, CoreParams{}, 80);
    h.run(300);
    const auto &s = h.core.stats();
    EXPECT_GT(s.stallCyclesOffChip, 0u);
    EXPECT_EQ(s.stallCyclesOtherLoad, 0u);
}

TEST(Core, ClearStatsPreservesProgress)
{
    CoreHarness h({});
    h.run(200);
    const auto before = h.core.stats().instrsRetired;
    EXPECT_GT(before, 0u);
    h.core.clearStats();
    EXPECT_EQ(h.core.stats().instrsRetired, 0u);
    h.run(200);
    EXPECT_GT(h.core.stats().instrsRetired, 0u);
}

/** Parameterized: IPC scales sensibly with fetch width. */
class CoreWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreWidthTest, AluIpcTracksWidth)
{
    CoreParams p;
    p.fetchWidth = GetParam();
    p.retireWidth = GetParam();
    CoreHarness h({}, p);
    h.run(2000);
    EXPECT_GT(h.core.stats().ipc(), 0.75 * GetParam());
    EXPECT_LE(h.core.stats().ipc(), GetParam() + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Widths, CoreWidthTest,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u));

} // namespace
} // namespace hermes
