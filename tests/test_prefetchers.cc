// Tests for the five hardware prefetchers: pattern learning,
// address-range discipline, feedback handling and storage budgets.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/rng.hh"
#include "prefetch/bingo.hh"
#include "prefetch/mlop.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp.hh"
#include "prefetch/streamer.hh"

namespace hermes
{
namespace
{

/** Feed a unit-stride stream and count covered next-lines. */
double
streamCoverage(Prefetcher &pf, unsigned accesses = 2000,
               Addr pc = 0x400000)
{
    std::set<Addr> prefetched;
    unsigned covered = 0;
    Addr line = 0x100000;
    for (unsigned i = 0; i < accesses; ++i, ++line) {
        if (prefetched.count(line))
            ++covered;
        std::vector<Addr> out;
        const bool hit = prefetched.count(line) > 0;
        pf.onAccess(line << kLogBlockSize, pc, hit, out);
        for (Addr l : out) {
            prefetched.insert(l);
            pf.onPrefetchFill(l);
        }
    }
    return static_cast<double>(covered) / accesses;
}

TEST(Streamer, CoversUnitStrideStream)
{
    Streamer s;
    EXPECT_GT(streamCoverage(s), 0.9);
}

TEST(Streamer, DetectsDescendingStream)
{
    Streamer s;
    std::set<Addr> prefetched;
    Addr line = 0x200000;
    unsigned covered = 0;
    for (int i = 0; i < 500; ++i, --line) {
        covered += prefetched.count(line);
        std::vector<Addr> out;
        s.onAccess(line << kLogBlockSize, 0x400000, false, out);
        prefetched.insert(out.begin(), out.end());
    }
    EXPECT_GT(covered, 400u);
}

TEST(Streamer, NoPrefetchOnRandomAccesses)
{
    Streamer s;
    Rng rng(3);
    unsigned issued = 0;
    for (int i = 0; i < 500; ++i) {
        std::vector<Addr> out;
        s.onAccess(rng.next() & 0x3FFFFFC0, 0x400000, false, out);
        issued += out.size();
    }
    EXPECT_LT(issued, 100u);
}

TEST(Spp, CoversUnitStrideStream)
{
    Spp spp;
    EXPECT_GT(streamCoverage(spp), 0.85);
}

TEST(Spp, LearnsConstantStridePattern)
{
    Spp spp;
    // Stride of 3 lines within pages.
    std::set<Addr> prefetched;
    unsigned covered = 0;
    Addr line = 0x300000;
    for (int i = 0; i < 3000; ++i, line += 3) {
        covered += prefetched.count(line);
        std::vector<Addr> out;
        spp.onAccess(line << kLogBlockSize, 0x400000,
                     prefetched.count(line) > 0, out);
        prefetched.insert(out.begin(), out.end());
    }
    EXPECT_GT(covered, 2000u);
}

TEST(Spp, LookaheadRunsAhead)
{
    Spp spp;
    Addr line = 0x400000;
    std::vector<Addr> out;
    for (int i = 0; i < 200; ++i, ++line) {
        out.clear();
        spp.onAccess(line << kLogBlockSize, 0x400000, false, out);
    }
    // With high path confidence, candidates reach several lines ahead.
    Addr max_ahead = 0;
    for (Addr l : out)
        max_ahead = std::max(max_ahead, l - line);
    EXPECT_GE(max_ahead, 2u);
}

TEST(Spp, PerceptronFilterSuppressesAfterUselessFeedback)
{
    SppParams params;
    params.ppfThreshold = 0;
    Spp spp(params);
    // Train a stream, then punish every prefetch as useless; issue
    // volume must drop.
    Addr line = 0x500000;
    unsigned early = 0, late = 0;
    for (int i = 0; i < 4000; ++i, ++line) {
        std::vector<Addr> out;
        spp.onAccess(line << kLogBlockSize, 0x400000, false, out);
        if (i < 500)
            early += out.size();
        if (i >= 3500)
            late += out.size();
        for (Addr l : out)
            spp.onPrefetchUseless(l);
    }
    EXPECT_LT(late, early);
}

TEST(Bingo, ReplaysRegionFootprint)
{
    Bingo bingo;
    const Addr pc = 0x400000;
    // Touch a fixed footprint {0,2,5,9} in many different regions with
    // the same trigger (offset 0): Bingo should learn it via PC+Offset
    // and replay it for a fresh region.
    for (Addr region = 0; region < 300; ++region) {
        const Addr base = (0x1000 + region * 97) * 2048; // distinct
        for (unsigned off : {0u, 2u, 5u, 9u}) {
            std::vector<Addr> out;
            bingo.onAccess(base + off * 64, pc, false, out);
        }
    }
    const Addr fresh = 0x7777 * 2048ull * 131; // brand-new region
    std::vector<Addr> out;
    bingo.onAccess(fresh, pc, false, out);
    std::set<Addr> lines(out.begin(), out.end());
    const Addr fresh_line = fresh / 64;
    EXPECT_TRUE(lines.count(fresh_line + 2));
    EXPECT_TRUE(lines.count(fresh_line + 5));
    EXPECT_TRUE(lines.count(fresh_line + 9));
}

TEST(Bingo, SingleTouchRegionsNotStored)
{
    Bingo bingo;
    for (Addr region = 0; region < 200; ++region) {
        std::vector<Addr> out;
        bingo.onAccess(region * 2048 * 3, 0x400000, false, out);
    }
    // A fresh region with the same trigger must produce no replay.
    std::vector<Addr> out;
    bingo.onAccess(0x9999 * 2048ull * 7, 0x400000, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(Mlop, SelectsDominantOffset)
{
    MlopParams p;
    p.roundLength = 128;
    Mlop mlop(p);
    // Stride-2 stream: offset +2 should become active.
    Addr line = 0x600000;
    for (int i = 0; i < 1500; ++i, line += 2) {
        std::vector<Addr> out;
        mlop.onAccess(line << kLogBlockSize, 0x400000, false, out);
    }
    bool has_plus2 = false;
    for (int o : mlop.activeOffsets())
        has_plus2 |= o == 2;
    EXPECT_TRUE(has_plus2);
}

TEST(Mlop, StaysWithinZone)
{
    Mlop mlop;
    Addr line = 0x700000;
    for (int i = 0; i < 3000; ++i, ++line) {
        std::vector<Addr> out;
        mlop.onAccess(line << kLogBlockSize, 0x400000, false, out);
        for (Addr l : out)
            ASSERT_EQ(l / kBlocksPerPage, line / kBlocksPerPage);
    }
}

TEST(Sms, ReplaysSpatialPattern)
{
    Sms sms;
    const Addr pc = 0x400000;
    for (Addr region = 0; region < 300; ++region) {
        const Addr base = (0x2000 + region * 101) * 2048;
        for (unsigned off : {0u, 3u, 7u}) {
            std::vector<Addr> out;
            sms.onAccess(base + off * 64, pc, false, out);
        }
    }
    std::vector<Addr> out;
    const Addr fresh = 0x8888 * 2048ull * 113;
    sms.onAccess(fresh, pc, false, out);
    std::set<Addr> lines(out.begin(), out.end());
    EXPECT_TRUE(lines.count(fresh / 64 + 3));
    EXPECT_TRUE(lines.count(fresh / 64 + 7));
}

TEST(Pythia, LearnsToPrefetchStream)
{
    Pythia pythia;
    // Unit-stride stream with useful feedback for covered lines.
    std::set<Addr> prefetched;
    unsigned late_covered = 0;
    Addr line = 0x900000;
    for (int i = 0; i < 6000; ++i, ++line) {
        const bool hit = prefetched.count(line) > 0;
        if (hit) {
            pythia.onPrefetchUseful(line, 0x400000);
            if (i >= 4000)
                ++late_covered;
        }
        std::vector<Addr> out;
        pythia.onAccess(line << kLogBlockSize, 0x400000, hit, out);
        prefetched.insert(out.begin(), out.end());
    }
    EXPECT_GT(late_covered, 1200u); // >60% coverage once learnt
}

TEST(Pythia, LearnsToStopOnRandomAccesses)
{
    Pythia pythia;
    Rng rng(11);
    unsigned early = 0, late = 0;
    for (int i = 0; i < 20000; ++i) {
        std::vector<Addr> out;
        pythia.onAccess(rng.next() & 0x3FFFFFC0, 0x400000, false, out);
        if (i < 2000)
            early += out.size();
        if (i >= 18000)
            late += out.size();
    }
    // No reward ever arrives: the policy should drift toward the
    // no-prefetch action.
    EXPECT_LT(late, early / 2 + 100);
}

TEST(Pythia, PrefetchesStayInPage)
{
    Pythia pythia;
    Addr line = 0xA00000;
    for (int i = 0; i < 3000; ++i, ++line) {
        std::vector<Addr> out;
        pythia.onAccess(line << kLogBlockSize, 0x400000, false, out);
        for (Addr l : out)
            ASSERT_EQ(l / kBlocksPerPage, line / kBlocksPerPage);
    }
}

TEST(Registry, FactoryAndNames)
{
    EXPECT_EQ(makePrefetcher(PrefetcherKind::None), nullptr);
    for (auto kind : {PrefetcherKind::Streamer, PrefetcherKind::Spp,
                      PrefetcherKind::Bingo, PrefetcherKind::Mlop,
                      PrefetcherKind::Sms, PrefetcherKind::Pythia}) {
        auto pf = makePrefetcher(kind);
        ASSERT_NE(pf, nullptr);
        EXPECT_EQ(prefetcherKindFromString(pf->name()), kind);
        EXPECT_GT(pf->storageBits(), 0u);
    }
    EXPECT_THROW(prefetcherKindFromString("oracle"),
                 std::invalid_argument);
}

TEST(Storage, RelativeBudgetsMatchTable6Order)
{
    // Paper Table 6 ordering: MLOP < SMS < Pythia < SPP < Bingo.
    const auto bits = [](PrefetcherKind k) {
        return makePrefetcher(k)->storageBits();
    };
    EXPECT_LT(bits(PrefetcherKind::Mlop), bits(PrefetcherKind::Sms));
    EXPECT_LT(bits(PrefetcherKind::Sms), bits(PrefetcherKind::Pythia));
    EXPECT_LT(bits(PrefetcherKind::Pythia), bits(PrefetcherKind::Spp));
    EXPECT_LT(bits(PrefetcherKind::Spp), bits(PrefetcherKind::Bingo));
}

/** Property: every prefetcher returns bounded, sane candidates. */
class PrefetcherFuzzTest
    : public ::testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(PrefetcherFuzzTest, CandidatesBoundedUnderRandomTraffic)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        std::vector<Addr> out;
        Addr addr;
        if (rng.chance(0.5)) {
            addr = (0x100000ull + i) << kLogBlockSize; // stream phase
        } else {
            addr = rng.next() & 0xFFFFFFFFC0ull; // random phase
        }
        pf->onAccess(addr, 0x400000 + (rng.next() & 0x3C),
                     rng.chance(0.5), out);
        ASSERT_LE(out.size(), 64u);
        if (!out.empty() && rng.chance(0.3))
            pf->onPrefetchUseful(out.front(), 0x400000);
        if (!out.empty() && rng.chance(0.3))
            pf->onPrefetchUseless(out.front());
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    All, PrefetcherFuzzTest,
    ::testing::Values(PrefetcherKind::Streamer, PrefetcherKind::Spp,
                      PrefetcherKind::Bingo, PrefetcherKind::Mlop,
                      PrefetcherKind::Sms, PrefetcherKind::Pythia),
    [](const auto &info) {
        return std::string(prefetcherKindName(info.param));
    });

TEST(PrefetcherKindStrings, RoundTripsEveryKind)
{
    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Streamer,
          PrefetcherKind::Spp, PrefetcherKind::Bingo,
          PrefetcherKind::Mlop, PrefetcherKind::Sms,
          PrefetcherKind::Pythia}) {
        const char *name = prefetcherKindName(kind);
        EXPECT_STRNE(name, "?");
        EXPECT_EQ(prefetcherKindFromString(name), kind) << name;
    }
}

TEST(PrefetcherKindStrings, UnknownNameThrows)
{
    EXPECT_THROW(prefetcherKindFromString("stride"),
                 std::invalid_argument);
    EXPECT_THROW(prefetcherKindFromString(""), std::invalid_argument);
    EXPECT_THROW(prefetcherKindFromString("Pythia"),
                 std::invalid_argument);
}

} // namespace
} // namespace hermes
