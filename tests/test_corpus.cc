// Tests for the declarative workload corpus and the unified trace
// resolver: spec canonicalization (knob order / value formatting
// never fork a trace identity), knob validation with suggestions,
// and the resolver contract — suite names resolve exactly as before
// the resolver existed (fingerprint safety), corpus and file specs
// resolve to runnable workloads, and malformed specs fail with
// actionable errors.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/corpus.hh"
#include "trace/resolve.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace hermes
{
namespace
{

std::string
thrownMessage(const std::string &spec)
{
    try {
        resolveTrace(spec);
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
    return "";
}

TEST(Corpus, KnobOrderDoesNotForkIdentity)
{
    const TraceSpec a =
        makeCorpusTrace("corpus.chase:seed=7:footprint_mb=64");
    const TraceSpec b =
        makeCorpusTrace("corpus.chase:footprint_mb=64:seed=7");
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.category(), "CORPUS");
}

TEST(Corpus, ValueFormattingDoesNotForkIdentity)
{
    const TraceSpec a = makeCorpusTrace("corpus.chase:hit_frac=0.50");
    const TraceSpec b = makeCorpusTrace("corpus.chase:hit_frac=0.5");
    EXPECT_EQ(a.name(), b.name());
}

TEST(Corpus, DefaultsOmittedFromCanonicalName)
{
    const TraceSpec bare = makeCorpusTrace("corpus.stream");
    EXPECT_EQ(bare.name(), "corpus.stream");
}

TEST(Corpus, SameSpecSameStream)
{
    const TraceSpec a = makeCorpusTrace("corpus.gather:degree=4:seed=9");
    const TraceSpec b = makeCorpusTrace("corpus.gather:degree=4:seed=9");
    auto wa = a.make();
    auto wb = b.make();
    for (int i = 0; i < 2000; ++i) {
        const TraceInstr x = wa->next();
        const TraceInstr y = wb->next();
        ASSERT_EQ(x.pc, y.pc) << i;
        ASSERT_EQ(x.vaddr, y.vaddr) << i;
    }
}

TEST(Corpus, KnobChangesStream)
{
    auto a = makeCorpusTrace("corpus.chase:footprint_mb=4").make();
    auto b = makeCorpusTrace("corpus.chase:footprint_mb=64").make();
    bool differs = false;
    for (int i = 0; i < 5000 && !differs; ++i)
        differs = a->next().vaddr != b->next().vaddr;
    EXPECT_TRUE(differs);
}

TEST(Corpus, UnknownGeneratorSuggestsNearest)
{
    EXPECT_NE(thrownMessage("corpus.chse").find("chase"),
              std::string::npos);
}

TEST(Corpus, UnknownKnobSuggestsNearest)
{
    EXPECT_NE(thrownMessage("corpus.chase:footprnt_mb=8")
                  .find("footprint_mb"),
              std::string::npos);
}

TEST(Corpus, RejectsOutOfRangeValue)
{
    EXPECT_THROW(makeCorpusTrace("corpus.chase:footprint_mb=0"),
                 std::invalid_argument);
    EXPECT_THROW(makeCorpusTrace("corpus.chase:hit_frac=1.5"),
                 std::invalid_argument);
}

TEST(Corpus, RejectsNonIntegerForIntegerKnob)
{
    EXPECT_THROW(makeCorpusTrace("corpus.gather:degree=2.5"),
                 std::invalid_argument);
}

TEST(Corpus, RejectsDuplicateKnob)
{
    EXPECT_THROW(makeCorpusTrace("corpus.chase:seed=1:seed=2"),
                 std::invalid_argument);
}

TEST(Corpus, RejectsMalformedPair)
{
    EXPECT_THROW(makeCorpusTrace("corpus.chase:seed"),
                 std::invalid_argument);
    EXPECT_THROW(makeCorpusTrace("corpus.chase:seed=abc"),
                 std::invalid_argument);
}

TEST(Corpus, EveryGeneratorProducesRunnableWorkload)
{
    for (const auto &g : corpusGenerators()) {
        const TraceSpec spec =
            makeCorpusTrace(std::string("corpus.") + g.name);
        auto w = spec.make();
        int loads = 0;
        for (int i = 0; i < 5000; ++i)
            if (w->next().kind == InstrKind::Load)
                ++loads;
        EXPECT_GT(loads, 0) << g.name;
    }
}

TEST(Corpus, DescribeListsEveryGeneratorAndKnob)
{
    const std::string doc = describeCorpus();
    for (const auto &g : corpusGenerators()) {
        EXPECT_NE(doc.find(std::string("corpus.") + g.name),
                  std::string::npos)
            << g.name;
        for (const auto &k : g.knobs)
            EXPECT_NE(doc.find(k.key), std::string::npos)
                << g.name << ":" << k.key;
    }
}

TEST(Resolver, SuiteNamesResolveUnchanged)
{
    // Identity safety: the resolver must hand back suite traces with
    // the exact names the golden fingerprints were pinned against.
    for (const TraceSpec &t : fullSuite()) {
        const TraceSpec r = resolveTrace(t.name());
        EXPECT_EQ(r.name(), t.name());
        EXPECT_EQ(r.category(), t.category());
        EXPECT_EQ(static_cast<int>(r.source),
                  static_cast<int>(TraceSource::Synthetic));
    }
}

TEST(Resolver, UnknownNameSuggestsNearestSuiteTrace)
{
    const std::string msg = thrownMessage("spec06.mcf_like.9");
    EXPECT_NE(msg.find("spec06.mcf_like"), std::string::npos);
}

TEST(Resolver, EmptySpecThrows)
{
    EXPECT_THROW(resolveTrace(""), std::invalid_argument);
}

TEST(Resolver, FileSpecResolvesAndValidatesEagerly)
{
    const std::string path =
        ::testing::TempDir() + "corpus_resolver_test.hrm";
    auto w = makeCorpusTrace("corpus.stream").make();
    ASSERT_EQ(0u, writeTraceFile(path, *w, 200, "corpus.stream",
                                 "CORPUS"));

    const TraceSpec spec = resolveTrace("file:" + path);
    EXPECT_EQ(static_cast<int>(spec.source),
              static_cast<int>(TraceSource::File));
    EXPECT_EQ(spec.name(), "file:" + path);
    auto replay = spec.make();
    EXPECT_EQ(replay->name(), "corpus.stream");

    // A bad path must fail at resolve time, not mid-sweep.
    EXPECT_THROW(resolveTrace("file:/nonexistent/trace.hrm"),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(Resolver, SuiteSpecsQuickFullAndLists)
{
    EXPECT_EQ(resolveSuite("quick").size(), quickSuite().size());
    EXPECT_EQ(resolveSuite("full").size(), fullSuite().size());

    const auto list =
        resolveSuite("spec06.mcf_like.0,corpus.chase:seed=3");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0].name(), "spec06.mcf_like.0");
    EXPECT_EQ(list[1].name(), "corpus.chase:seed=3");

    EXPECT_THROW(resolveSuite(""), std::invalid_argument);
    EXPECT_THROW(resolveSuite("fulll"), std::invalid_argument);
}

TEST(Resolver, SuiteRejectsDuplicateNames)
{
    EXPECT_THROW(resolveSuite("spec06.mcf_like.0,spec06.mcf_like.0"),
                 std::invalid_argument);
    // Two spellings of one corpus workload are the same trace.
    EXPECT_THROW(
        resolveSuite("corpus.chase:seed=1:footprint_mb=64,"
                     "corpus.chase:footprint_mb=64:seed=1"),
        std::invalid_argument);
}

TEST(Resolver, BuiltInSuitesHaveUniqueNames)
{
    EXPECT_NO_THROW(validateUniqueTraceNames(fullSuite()));
    EXPECT_NO_THROW(validateUniqueTraceNames(quickSuite()));
}

} // namespace
} // namespace hermes
