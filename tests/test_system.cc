// End-to-end system tests: full-stack invariants, the paper's
// qualitative orderings on small runs, multi-core operation, Hermes
// coherence (drop-without-fill) and determinism.

#include <gtest/gtest.h>

#include "sim/power.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"

namespace hermes
{
namespace
{

SimBudget
smallBudget()
{
    SimBudget b;
    b.warmupInstrs = 30'000;
    b.simInstrs = 80'000;
    return b;
}

TEST(System, BaselineRunsAndProducesSaneStats)
{
    const auto spec = findTrace("spec06.lbm_like.0");
    const RunStats r =
        simulateOne(SystemConfig::baseline(1), spec, smallBudget());
    EXPECT_GE(r.core[0].instrsRetired, 80'000u);
    EXPECT_GT(r.ipc(0), 0.05);
    EXPECT_LT(r.ipc(0), 6.1);
    EXPECT_GT(r.llcMpki(), 1.0);
    // Stats consistency.
    EXPECT_LE(r.l1.loadHits, r.l1.loadLookups);
    EXPECT_LE(r.l2.loadHits, r.l2.loadLookups);
    EXPECT_LE(r.llc.loadHits, r.llc.loadLookups);
    EXPECT_LE(r.core[0].loadsOffChip, r.core[0].loadsRetired);
    EXPECT_GT(r.dram.totalReads(), 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    const auto spec = findTrace("ligra.bfs_like.0");
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    const RunStats a = simulateOne(cfg, spec, smallBudget());
    const RunStats b = simulateOne(cfg, spec, smallBudget());
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.core[0].instrsRetired, b.core[0].instrsRetired);
    EXPECT_EQ(a.dram.totalReads(), b.dram.totalReads());
    EXPECT_EQ(a.predTotal().truePositives, b.predTotal().truePositives);
}

TEST(System, PredictionCountsMatchCompletedLoads)
{
    const auto spec = findTrace("cvp.server_db_like.0");
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.predictor = PredictorKind::Popet;
    const RunStats r = simulateOne(cfg, spec, smallBudget());
    const PredictorStats p = r.predTotal();
    // Every retired load was predicted and trained exactly once
    // (modulo loads in flight at the measurement boundary).
    EXPECT_NEAR(static_cast<double>(p.total()),
                static_cast<double>(r.core[0].loadsRetired),
                0.02 * r.core[0].loadsRetired + 512);
}

TEST(System, HermesCoherenceDropNeverFills)
{
    // With Hermes enabled, LLC fills must still equal its own demand +
    // prefetch fetches: dropped Hermes requests never install lines.
    const auto spec = findTrace("ligra.pagerank_like.0");
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    const RunStats r = simulateOne(cfg, spec, smallBudget());
    EXPECT_GT(r.dram.hermesDropped, 0u); // mispredictions exist
    // Every LLC fill corresponds to an LLC-initiated fetch, not a
    // Hermes line: fills <= demand misses + prefetch issues (+ slack
    // for boundary effects).
    EXPECT_LE(r.llc.fills,
              r.llc.demandMisses() + r.llc.prefetchIssued + 64);
}

TEST(System, HermesServesLoadsAndHelpsOnIrregular)
{
    const auto spec = findTrace("spec06.mcf_like.0");
    SystemConfig base = SystemConfig::baseline(1);
    base.prefetcher = PrefetcherKind::Pythia;
    const RunStats rb = simulateOne(base, spec, smallBudget());

    SystemConfig hermes_cfg = base;
    hermes_cfg.predictor = PredictorKind::Popet;
    hermes_cfg.hermesIssueEnabled = true;
    const RunStats rh = simulateOne(hermes_cfg, spec, smallBudget());

    EXPECT_GT(rh.hermesLoadsServed, 0u);
    EXPECT_GT(rh.ipc(0), rb.ipc(0) * 1.08); // mcf-like: clear win
}

TEST(System, IdealPredictorIsNearPerfect)
{
    const auto spec = findTrace("cvp.server_db_like.0");
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Ideal;
    cfg.hermesIssueEnabled = true;
    const RunStats r = simulateOne(cfg, spec, smallBudget());
    const PredictorStats p = r.predTotal();
    EXPECT_GT(p.accuracy(), 0.9);
    EXPECT_GT(p.coverage(), 0.97);
}

TEST(System, PopetBeatsHmpOnAccuracyAndCoverage)
{
    const auto spec = findTrace("ligra.bfs_like.0");
    auto run_pred = [&](PredictorKind pk) {
        SystemConfig cfg = SystemConfig::baseline(1);
        cfg.prefetcher = PrefetcherKind::Pythia;
        cfg.predictor = pk;
        return simulateOne(cfg, spec, smallBudget()).predTotal();
    };
    const PredictorStats popet = run_pred(PredictorKind::Popet);
    const PredictorStats hmp = run_pred(PredictorKind::Hmp);
    EXPECT_GT(popet.coverage(), hmp.coverage());
    EXPECT_GT(popet.accuracy() + popet.coverage(),
              hmp.accuracy() + hmp.coverage());
}

TEST(System, TtpHasHighestCoverage)
{
    // The robust TTP property at any horizon: near-total coverage
    // (every line absent from its metadata is predicted off-chip).
    // Its accuracy collapse (paper Fig. 9: 16.6%) additionally needs
    // LLC capacity churn that only accumulates over long horizons; see
    // EXPERIMENTS.md for the scaling discussion.
    const auto spec = findTrace("cvp.compute_int_like.0");
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Ttp;
    const PredictorStats p =
        simulateOne(cfg, spec, smallBudget()).predTotal();
    EXPECT_GT(p.coverage(), 0.85);
    SystemConfig pcfg = cfg;
    pcfg.predictor = PredictorKind::Popet;
    const PredictorStats q =
        simulateOne(pcfg, spec, smallBudget()).predTotal();
    EXPECT_GE(p.coverage() + 0.02, q.coverage());
}

TEST(System, PrefetcherReducesOffChipLoads)
{
    const auto spec = findTrace("parsec.streamcluster_like.0");
    SystemConfig nopf = SystemConfig::baseline(1);
    const RunStats r0 = simulateOne(nopf, spec, smallBudget());
    SystemConfig pf = nopf;
    pf.prefetcher = PrefetcherKind::Spp;
    const RunStats r1 = simulateOne(pf, spec, smallBudget());
    EXPECT_LT(r1.llc.demandMisses(), r0.llc.demandMisses());
    EXPECT_GT(r1.ipc(0), r0.ipc(0));
}

TEST(System, EightCoreRunsAllCores)
{
    SystemConfig cfg = SystemConfig::baseline(8);
    cfg.prefetcher = PrefetcherKind::Pythia;
    std::vector<TraceSpec> mix(8, findTrace("spec06.lbm_like.0"));
    SimBudget b;
    b.warmupInstrs = 5'000;
    b.simInstrs = 20'000;
    const RunStats r = simulateMix(cfg, mix, b);
    ASSERT_EQ(r.core.size(), 8u);
    for (int c = 0; c < 8; ++c) {
        EXPECT_GE(r.core[c].instrsRetired, 20'000u) << "core " << c;
        EXPECT_GT(r.ipc(c), 0.01) << "core " << c;
    }
    EXPECT_EQ(cfg.dram.channels, 4u);
}

TEST(System, EightCoreHermesPredictorsPerCore)
{
    SystemConfig cfg = SystemConfig::baseline(4);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    std::vector<TraceSpec> mix(4, findTrace("ligra.bfs_like.0"));
    SimBudget b;
    b.warmupInstrs = 5'000;
    b.simInstrs = 15'000;
    const RunStats r = simulateMix(cfg, mix, b);
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(r.predictor[c].total(), 0u) << "core " << c;
}

TEST(System, BandwidthSweepIsMonotoneInThroughput)
{
    const auto spec = findTrace("spec06.lbm_like.0");
    double prev_ipc = 0;
    for (unsigned mtps : {400u, 3200u, 12800u}) {
        SystemConfig cfg = SystemConfig::baseline(1);
        cfg.dram.mtps = mtps;
        const RunStats r = simulateOne(cfg, spec, smallBudget());
        EXPECT_GE(r.ipc(0), prev_ipc * 0.93) << mtps;
        prev_ipc = r.ipc(0);
    }
}

TEST(System, LargerLlcReducesMisses)
{
    const auto spec = findTrace("cvp.server_db_like.0");
    SystemConfig small = SystemConfig::baseline(1);
    SystemConfig big = small;
    big.llcBytesPerCore = 24ull << 20;
    const RunStats r_small = simulateOne(small, spec, smallBudget());
    const RunStats r_big = simulateOne(big, spec, smallBudget());
    EXPECT_LE(r_big.llc.demandMisses(), r_small.llc.demandMisses());
}

TEST(System, PowerModelTracksActivity)
{
    const auto spec = findTrace("spec06.lbm_like.0");
    SystemConfig nopf = SystemConfig::baseline(1);
    const RunStats r0 = simulateOne(nopf, spec, smallBudget());
    SystemConfig pf = nopf;
    pf.prefetcher = PrefetcherKind::Pythia;
    const RunStats r1 = simulateOne(pf, spec, smallBudget());
    const PowerBreakdown p0 = computePower(r0);
    const PowerBreakdown p1 = computePower(r1);
    EXPECT_GT(p0.total(), 0.0);
    // Prefetching increases memory traffic energy per unit time.
    EXPECT_GT(p1.bus + p1.llc, 0.0);
}

TEST(System, HermesIssueLatencyMonotonicity)
{
    const auto spec = findTrace("spec06.mcf_like.0");
    SystemConfig fast = SystemConfig::baseline(1);
    fast.predictor = PredictorKind::Popet;
    fast.hermesIssueEnabled = true;
    fast.hermesIssueLatency = 0;
    SystemConfig slow = fast;
    slow.hermesIssueLatency = 24;
    const RunStats rf = simulateOne(fast, spec, smallBudget());
    const RunStats rs = simulateOne(slow, spec, smallBudget());
    EXPECT_GE(rf.ipc(0), rs.ipc(0) * 0.99);
}

TEST(System, ThrowsOnBadWorkloadCount)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    std::vector<TraceSpec> one(1, findTrace("spec06.lbm_like.0"));
    EXPECT_THROW(simulateMix(cfg, one, smallBudget()),
                 std::invalid_argument);
}

/** Property sweep: the full stack stays consistent across traces. */
class SystemTraceTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SystemTraceTest, FullStackInvariants)
{
    const auto spec = findTrace(GetParam());
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    SimBudget b;
    b.warmupInstrs = 15'000;
    b.simInstrs = 40'000;
    const RunStats r = simulateOne(cfg, spec, b);

    EXPECT_GE(r.core[0].instrsRetired, 40'000u);
    EXPECT_GT(r.ipc(0), 0.02);
    EXPECT_LE(r.core[0].loadsOffChip, r.core[0].loadsRetired);
    EXPECT_LE(r.l1.loadHits, r.l1.loadLookups);
    EXPECT_LE(r.llc.demandHits(), r.llc.demandLookups());
    EXPECT_LE(r.core[0].offChipBlocking + r.core[0].offChipNonBlocking,
              r.core[0].loadsOffChip + 1);
    const PredictorStats p = r.predTotal();
    EXPECT_GT(p.total(), 0u);
    // Hermes bookkeeping: useful + dropped == serviced hermes reads.
    EXPECT_EQ(r.dram.hermesUseful + r.dram.hermesDropped,
              r.dram.hermesReads);
}

INSTANTIATE_TEST_SUITE_P(
    QuickSuite, SystemTraceTest,
    ::testing::Values("spec06.mcf_like.0", "spec06.lbm_like.0",
                      "spec17.fotonik_like.0", "spec17.xalancbmk_like.0",
                      "parsec.streamcluster_like.0",
                      "parsec.canneal_like.0", "ligra.bfs_like.0",
                      "ligra.pagerank_like.0", "cvp.server_db_like.0",
                      "cvp.compute_int_like.0"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '.' || c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace hermes
