// Tests for POPET: hashed-perceptron prediction/training mechanics, the
// page buffer first-access hint, threshold semantics, feature ablation
// plumbing, storage accounting and weight-boundedness properties.

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictor/popet.hh"

namespace hermes
{
namespace
{

TEST(Popet, UntrainedPredictsOffChipAtDefaultThreshold)
{
    // tau_act = -18 and a zero-weight sum of 0 >= -18: the paper's
    // operating point biases an untrained POPET toward off-chip.
    Popet popet;
    PredMeta meta;
    EXPECT_TRUE(popet.predict(0x400000, 0x12345678, meta));
    EXPECT_TRUE(meta.valid);
    EXPECT_EQ(meta.sum, 0);
    EXPECT_EQ(meta.indexCount, kPopetFeatureCount);
}

TEST(Popet, TrainingMovesWeightsTowardOutcome)
{
    Popet popet;
    PredMeta meta;
    const Addr pc = 0x400100, va = 0x1000;
    popet.predict(pc, va, meta);
    popet.train(pc, va, meta, true);
    PredMeta meta2;
    popet.predict(pc, va, meta2);
    EXPECT_GT(meta2.sum, meta.sum);

    popet.train(pc, va, meta2, false);
    popet.train(pc, va, meta2, false);
    PredMeta meta3;
    popet.predict(pc, va, meta3);
    EXPECT_LT(meta3.sum, meta2.sum);
}

TEST(Popet, LearnsAlwaysOnChipPc)
{
    Popet popet;
    Rng rng(5);
    const Addr pc = 0x400200;
    for (int i = 0; i < 2000; ++i) {
        PredMeta meta;
        const Addr va = rng.below(1 << 14); // small hot region
        popet.predict(pc, va, meta);
        popet.train(pc, va, meta, false);
    }
    // After training, the PC should be predicted on-chip.
    int predicted_off = 0;
    for (int i = 0; i < 200; ++i) {
        PredMeta meta;
        predicted_off += popet.predict(pc, rng.below(1 << 14), meta);
        popet.train(pc, rng.below(1 << 14), meta, false);
    }
    EXPECT_LT(predicted_off, 20);
}

TEST(Popet, SeparatesTwoPcsByOutcome)
{
    Popet popet;
    Rng rng(6);
    const Addr hit_pc = 0x400300, miss_pc = 0x400304;
    for (int i = 0; i < 4000; ++i) {
        PredMeta meta;
        if (i % 2 == 0) {
            const Addr va = rng.below(1 << 14);
            popet.predict(hit_pc, va, meta);
            popet.train(hit_pc, va, meta, false);
        } else {
            const Addr va = (rng.next() & 0x3FFFFFFF);
            popet.predict(miss_pc, va, meta);
            popet.train(miss_pc, va, meta, true);
        }
    }
    int hit_off = 0, miss_off = 0;
    for (int i = 0; i < 200; ++i) {
        PredMeta meta;
        hit_off += popet.predict(hit_pc, rng.below(1 << 14), meta);
        miss_off += popet.predict(miss_pc, rng.next() & 0x3FFFFFFF, meta);
    }
    EXPECT_LT(hit_off, 30);
    EXPECT_GT(miss_off, 170);
}

TEST(Popet, ByteOffsetFeatureSeparatesStreamLeaders)
{
    // Streaming over 4B elements: only byte offset 0 loads go off-chip
    // (the paper's motivating example for the PC ^ byte-offset feature).
    PopetParams params;
    params.featureMask = 1u << kFeatPcXorByteOffset;
    Popet popet(params);
    const Addr pc = 0x400400;
    Addr va = 0x10000000;
    for (int i = 0; i < 30000; ++i) {
        PredMeta meta;
        popet.predict(pc, va, meta);
        popet.train(pc, va, meta, byteOffsetInLine(va) == 0);
        va += 4;
    }
    PredMeta meta;
    popet.predict(pc, 0x20000000, meta); // offset 0
    const bool leader = meta.predictedOffChip;
    popet.predict(pc, 0x20000004, meta); // offset 4
    const bool follower = meta.predictedOffChip;
    EXPECT_TRUE(leader);
    EXPECT_FALSE(follower);
}

TEST(Popet, FirstAccessHintTracksPageBuffer)
{
    // Use only the offset+first-access feature and observe that the
    // second touch of the same line yields a different prediction path
    // (trained in opposite directions).
    PopetParams params;
    params.featureMask = 1u << kFeatOffsetFirstAccess;
    Popet popet(params);
    const Addr pc = 0x400500;

    // First access to a fresh line is distinguishable from a repeat:
    // train first accesses off-chip and repeats on-chip with huge
    // volume, then check behaviour on a new page.
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Addr page = rng.below(1 << 20);
        const Addr va = (page << kLogPageSize) |
                        (rng.below(kBlocksPerPage) << kLogBlockSize);
        PredMeta m1;
        popet.predict(pc, va, m1);
        popet.train(pc, va, m1, true); // first touch -> off-chip
        PredMeta m2;
        popet.predict(pc, va, m2);
        popet.train(pc, va, m2, false); // repeat -> on-chip
    }
    const Addr fresh = 0xABC123000;
    PredMeta first, repeat;
    popet.predict(pc, fresh, first);
    popet.predict(pc, fresh, repeat);
    EXPECT_TRUE(first.predictedOffChip);
    EXPECT_FALSE(repeat.predictedOffChip);
}

TEST(Popet, TrainingGateStopsAtSaturation)
{
    PopetParams params;
    params.trainOnMispredict = false;
    Popet popet(params);
    const Addr pc = 0x400600, va = 0x1234000;
    // Push the sum past T_P = 40: training must stop there.
    for (int i = 0; i < 100; ++i) {
        PredMeta meta;
        popet.predict(pc, va, meta);
        popet.train(pc, va, meta, true);
    }
    PredMeta meta;
    popet.predict(pc, va, meta);
    EXPECT_LE(meta.sum, 40 + static_cast<int>(kPopetFeatureCount));
}

TEST(Popet, WeightsStayWithinFiveBitRange)
{
    Popet popet;
    Rng rng(8);
    for (int i = 0; i < 50000; ++i) {
        PredMeta meta;
        const Addr pc = 0x400000 + (rng.next() & 0x3C);
        const Addr va = rng.next() & 0xFFFFFFFF;
        popet.predict(pc, va, meta);
        popet.train(pc, va, meta, rng.chance(0.3));
    }
    for (unsigned f = 0; f < kPopetFeatureCount; ++f) {
        for (std::uint32_t i = 0; i < Popet::kTableSizes[f]; ++i) {
            const int w = popet.weightAt(f, i);
            ASSERT_GE(w, -16);
            ASSERT_LE(w, 15);
        }
    }
}

TEST(Popet, SumMatchesActiveFeatureCountBounds)
{
    Popet popet;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        PredMeta meta;
        popet.predict(rng.next(), rng.next(), meta);
        ASSERT_GE(meta.sum, -16 * static_cast<int>(kPopetFeatureCount));
        ASSERT_LE(meta.sum, 15 * static_cast<int>(kPopetFeatureCount));
    }
}

TEST(Popet, StorageMatchesTable3)
{
    Popet popet;
    // Table 3: POPET = 3.2 KB (weight tables + page buffer).
    const double kb = popet.storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 3.2, 0.3);
}

TEST(Popet, InvalidMetaIgnoredInTraining)
{
    Popet popet;
    PredMeta meta; // never produced by predict()
    popet.train(0x400000, 0x1000, meta, true);
    PredMeta fresh;
    popet.predict(0x400000, 0x1000, fresh);
    EXPECT_EQ(fresh.sum, 0);
}

/** Feature-mask ablation: every mask produces a working predictor. */
class PopetMaskTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PopetMaskTest, MaskedPredictorOperates)
{
    PopetParams params;
    params.featureMask = GetParam();
    Popet popet(params);
    Rng rng(GetParam());
    unsigned active = 0;
    for (unsigned f = 0; f < kPopetFeatureCount; ++f)
        active += (GetParam() >> f) & 1;

    for (int i = 0; i < 3000; ++i) {
        PredMeta meta;
        popet.predict(0x400000 + (rng.next() & 0x1C), rng.next(), meta);
        ASSERT_EQ(meta.indexCount, active);
        ASSERT_GE(meta.sum, -16 * static_cast<int>(active));
        ASSERT_LE(meta.sum, 15 * static_cast<int>(active));
        popet.train(0x400000, rng.next(), meta, rng.chance(0.2));
    }
    EXPECT_GT(popet.storageBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Masks, PopetMaskTest,
                         ::testing::Values(0x1u, 0x2u, 0x4u, 0x8u, 0x10u,
                                           0x3u, 0x7u, 0xFu, 0x1Fu));

} // namespace
} // namespace hermes
