// Tests for the content-addressed result store: cold/warm determinism
// (a second run simulates nothing and reproduces every byte), corrupt
// entry rejection + re-simulation, concurrent shards sharing one
// store, LRU eviction and the cache spec parser.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/report.hh"
#include "sweep/journal.hh"
#include "sweep/result_cache.hh"
#include "sweep/sweep.hh"

namespace hermes
{
namespace
{

SimBudget
tinyBudget()
{
    SimBudget b;
    b.warmupInstrs = 1'000;
    b.simInstrs = 4'000;
    return b;
}

/** A (2 configs x 3 traces) grid, small enough for unit tests. */
std::vector<sweep::GridPoint>
smallGrid()
{
    const SimBudget b = tinyBudget();
    SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;

    const auto traces = quickSuite();
    std::vector<sweep::GridPoint> grid;
    for (int c = 0; c < 2; ++c) {
        const SystemConfig &cfg = c == 0 ? nopf : pythia;
        for (int t = 0; t < 3; ++t)
            grid.push_back({"cfg" + std::to_string(c) + "." +
                                traces[t].name(),
                            cfg,
                            {traces[t]},
                            b});
    }
    return grid;
}

std::string
tempDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "hermes_cache_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

TEST(ResultCacheSpec, ParsesDirAndLimits)
{
    const auto plain = sweep::parseResultCacheSpec("/tmp/c");
    EXPECT_EQ(plain.dir, "/tmp/c");
    EXPECT_EQ(plain.maxBytes, 0u);
    EXPECT_EQ(plain.maxEntries, 0u);

    const auto full = sweep::parseResultCacheSpec(
        "cache,max_bytes=2M,max_entries=100");
    EXPECT_EQ(full.dir, "cache");
    EXPECT_EQ(full.maxBytes, 2u * 1024 * 1024);
    EXPECT_EQ(full.maxEntries, 100u);
}

TEST(ResultCacheSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(sweep::parseResultCacheSpec(""),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseResultCacheSpec(",max_entries=1"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseResultCacheSpec("c,max_bytes=0"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseResultCacheSpec("c,max_bytes=x"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseResultCacheSpec("c,max_entries=-3"),
                 std::invalid_argument);
    EXPECT_THROW(sweep::parseResultCacheSpec("c,bogus=1"),
                 std::invalid_argument);
}

TEST(ResultCache, StoreLoadRoundTripVerifiesEverything)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);
    sweep::ResultCache cache({tempDir("roundtrip"), 0, 0});

    EXPECT_FALSE(cache.load(grid[0]).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.store(grid[0], direct[0]);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    const auto hit = cache.load(grid[0]);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->label, grid[0].label);
    EXPECT_TRUE(hit->ok);
    EXPECT_EQ(statsFingerprint(hit->stats),
              statsFingerprint(direct[0].stats));
    // The stored result comes back wholesale, host-perf included.
    EXPECT_EQ(hit->wallSeconds, direct[0].wallSeconds);
    EXPECT_EQ(hit->stats.hostPerf.seconds,
              direct[0].stats.hostPerf.seconds);

    // By-fingerprint lookup (the server's restart path) agrees.
    const auto by_fp =
        cache.loadByFp(sweep::pointFingerprint(grid[0]));
    ASSERT_TRUE(by_fp.has_value());
    EXPECT_EQ(statsFingerprint(by_fp->stats),
              statsFingerprint(direct[0].stats));

    // Unknown fingerprints miss cleanly.
    EXPECT_FALSE(cache.loadByFp(0xdeadbeefu).has_value());

    // Failed results are never stored.
    sweep::PointResult bad = direct[1];
    bad.ok = false;
    cache.store(grid[1], bad);
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ResultCache, WarmRunSimulatesNothingAndMatchesByteForByte)
{
    const auto grid = smallGrid();
    sweep::ResultCache cache({tempDir("warm"), 0, 0});
    const std::string j1 = ::testing::TempDir() + "cache_warm1.jsonl";
    const std::string j2 = ::testing::TempDir() + "cache_warm2.jsonl";

    sweep::OrchestratedRun cold;
    {
        sweep::JournalWriter w(j1);
        sweep::OrchestrateOptions oopts;
        oopts.journal = &w;
        oopts.cache = &cache;
        cold = sweep::runJournaled({}, grid, oopts);
    }
    EXPECT_TRUE(cold.complete());
    EXPECT_EQ(cold.simulated, grid.size());
    EXPECT_EQ(cold.cached, 0u);
    EXPECT_EQ(cache.entryCount(), grid.size());

    sweep::OrchestratedRun warm;
    {
        sweep::JournalWriter w(j2);
        sweep::OrchestrateOptions oopts;
        oopts.journal = &w;
        oopts.cache = &cache;
        warm = sweep::runJournaled({}, grid, oopts);
    }
    EXPECT_TRUE(warm.complete());
    // The contract under test: the second run simulates ZERO points.
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cached, grid.size());

    // Cached and simulated results merge byte-identically: same CSV
    // (host-perf columns included), same fingerprints, and the two
    // journals are byte-for-byte the same file.
    EXPECT_EQ(sweep::toCsv(warm.results, true),
              sweep::toCsv(cold.results, true));
    EXPECT_EQ(sweep::toJson(warm.results, true),
              sweep::toJson(cold.results, true));
    EXPECT_EQ(sweep::sweepFingerprint(warm.results),
              sweep::sweepFingerprint(cold.results));
    EXPECT_EQ(slurp(j2), slurp(j1));
    std::remove(j1.c_str());
    std::remove(j2.c_str());
}

TEST(ResultCache, CorruptEntryIsRejectedAndResimulated)
{
    const auto grid = smallGrid();
    const std::string dir = tempDir("corrupt");
    sweep::ResultCache cache({dir, 0, 0});
    sweep::OrchestrateOptions oopts;
    oopts.cache = &cache;
    const auto cold = sweep::runJournaled({}, grid, oopts);

    // Flip a stats digit inside one entry: its recorded fingerprint no
    // longer matches, so the load must reject it rather than serve it.
    const std::string victim =
        dir + "/" +
        sweep::ResultCache::entryName(sweep::pointFingerprint(grid[2]));
    std::string text = slurp(victim);
    ASSERT_FALSE(text.empty());
    const std::size_t cycles = text.find("\"cycles\":");
    ASSERT_NE(cycles, std::string::npos);
    const std::size_t digit = cycles + 9;
    text[digit] = text[digit] == '1' ? '2' : '1';
    spit(victim, text);

    const auto warm = sweep::runJournaled({}, grid, oopts);
    EXPECT_TRUE(warm.complete());
    EXPECT_EQ(warm.cached, grid.size() - 1);
    EXPECT_EQ(warm.simulated, 1u);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(sweep::sweepFingerprint(warm.results),
              sweep::sweepFingerprint(cold.results));

    // The re-simulation rewrote the entry cleanly.
    ASSERT_TRUE(cache.load(grid[2]).has_value());
    EXPECT_EQ(cache.entryCount(), grid.size());
}

TEST(ResultCache, TruncatedEntryIsRejected)
{
    const auto grid = smallGrid();
    const std::string dir = tempDir("truncated");
    sweep::ResultCache cache({dir, 0, 0});
    cache.store(grid[0], sweep::SweepEngine().run(grid)[0]);

    const std::string path =
        dir + "/" +
        sweep::ResultCache::entryName(sweep::pointFingerprint(grid[0]));
    const std::string text = slurp(path);
    spit(path, text.substr(0, text.size() - 10));

    EXPECT_FALSE(cache.load(grid[0]).has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.entryCount(), 0u); // unlinked, not served
}

TEST(ResultCache, ConcurrentShardsShareOneStore)
{
    // Two writers (shard 1/2 and 2/2 of the same grid) filling one
    // directory concurrently, as two CI shard jobs sharing a cache
    // artifact would. Every point must land; a full follow-up run is
    // then answered entirely from the store.
    const auto grid = smallGrid();
    const std::string dir = tempDir("concurrent");
    sweep::ResultCache cache1({dir, 0, 0});
    sweep::ResultCache cache2({dir, 0, 0});

    std::thread t1([&] {
        sweep::OrchestrateOptions oopts;
        oopts.shard = {1, 2};
        oopts.cache = &cache1;
        sweep::runJournaled({}, grid, oopts);
    });
    std::thread t2([&] {
        sweep::OrchestrateOptions oopts;
        oopts.shard = {2, 2};
        oopts.cache = &cache2;
        sweep::runJournaled({}, grid, oopts);
    });
    t1.join();
    t2.join();
    EXPECT_EQ(cache1.entryCount(), grid.size());

    const auto direct = sweep::SweepEngine().run(grid);
    sweep::ResultCache reader({dir, 0, 0});
    sweep::OrchestrateOptions oopts;
    oopts.cache = &reader;
    const auto warm = sweep::runJournaled({}, grid, oopts);
    EXPECT_TRUE(warm.complete());
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cached, grid.size());
    EXPECT_EQ(sweep::sweepFingerprint(warm.results),
              sweep::sweepFingerprint(direct));
}

TEST(ResultCache, OverlappingGridsShareEntries)
{
    // A different grid containing some of the same points hits the
    // store for exactly the shared ones — content addressing, not
    // per-sweep caching.
    const auto grid = smallGrid();
    sweep::ResultCache cache({tempDir("overlap"), 0, 0});
    sweep::OrchestrateOptions oopts;
    oopts.cache = &cache;
    sweep::runJournaled({}, grid, oopts);

    std::vector<sweep::GridPoint> other(grid.begin() + 2,
                                        grid.begin() + 5);
    const auto run = sweep::runJournaled({}, other, oopts);
    EXPECT_TRUE(run.complete());
    EXPECT_EQ(run.cached, other.size());
    EXPECT_EQ(run.simulated, 0u);
}

TEST(ResultCache, LruEvictionDropsTheColdestEntry)
{
    const auto grid = smallGrid();
    const auto direct = sweep::SweepEngine().run(grid);
    sweep::ResultCache cache({tempDir("lru"), 0, 2});

    // Stores 10ms apart so the mtime LRU clock orders them even on a
    // coarse-timestamp filesystem.
    cache.store(grid[0], direct[0]);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cache.store(grid[1], direct[1]);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cache.store(grid[2], direct[2]);

    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.stats().evicted, 1u);
    EXPECT_FALSE(cache.load(grid[0]).has_value()); // the coldest
    EXPECT_TRUE(cache.load(grid[1]).has_value());
    EXPECT_TRUE(cache.load(grid[2]).has_value());

    // A hit refreshes the clock: touch grid[1], store another entry,
    // and grid[2] (now the coldest) is the one evicted.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(cache.load(grid[1]).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cache.store(grid[3], direct[3]);
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_TRUE(cache.load(grid[1]).has_value());
    EXPECT_TRUE(cache.load(grid[3]).has_value());
    EXPECT_FALSE(cache.load(grid[2]).has_value());
}

TEST(ResultCache, ResumedRecordsMigrateIntoTheStore)
{
    // A journal-only sweep followed by a resume WITH a cache seeds the
    // store from the journal — existing journals warm new caches.
    const auto grid = smallGrid();
    const std::string path =
        ::testing::TempDir() + "cache_migrate.jsonl";
    {
        sweep::JournalWriter w(path);
        sweep::OrchestrateOptions oopts;
        oopts.journal = &w;
        sweep::runJournaled({}, grid, oopts);
    }
    auto segments = sweep::readJournal(path);
    ASSERT_EQ(segments.size(), 1u);

    sweep::ResultCache cache({tempDir("migrate"), 0, 0});
    sweep::OrchestrateOptions oopts;
    oopts.resume = &segments[0];
    oopts.cache = &cache;
    const auto run = sweep::runJournaled({}, grid, oopts);
    EXPECT_EQ(run.resumed, grid.size());
    EXPECT_EQ(run.simulated, 0u);
    EXPECT_EQ(cache.entryCount(), grid.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace hermes
