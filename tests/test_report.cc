// Tests for the statistics report formatting and the power model.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/power.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

namespace hermes
{
namespace
{

RunStats
sampleRun()
{
    SystemConfig cfg = SystemConfig::baseline(1);
    cfg.prefetcher = PrefetcherKind::Pythia;
    cfg.predictor = PredictorKind::Popet;
    cfg.hermesIssueEnabled = true;
    SimBudget b;
    b.warmupInstrs = 10'000;
    b.simInstrs = 30'000;
    return simulateOne(cfg, findTrace("spec06.mcf_like.0"), b);
}

TEST(Report, ContainsAllSections)
{
    const RunStats r = sampleRun();
    const std::string report = formatReport(r);
    for (const char *needle :
         {"simulation report", "core 0", "off-chip predictor", "L1D",
          "LLC MPKI", "dram:", "hermes:", "dynamic power"})
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    const RunStats r = sampleRun();
    const std::string header = csvHeader();
    const std::string row = formatCsvRow("label", r);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(row.rfind("label,", 0), 0u);
}

TEST(Report, JsonRowCarriesEveryCsvColumn)
{
    const RunStats r = sampleRun();
    const std::string json = formatJsonRow("a \"label\"", r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"label\":\"a \\\"label\\\"\""),
              std::string::npos);

    // Every csvHeader() column name appears as a JSON key.
    std::istringstream header(csvHeader());
    std::string col;
    while (std::getline(header, col, ','))
        EXPECT_NE(json.find("\"" + col + "\":"), std::string::npos)
            << col;
}

TEST(Power, ZeroCyclesIsZeroPower)
{
    RunStats empty;
    const PowerBreakdown p = computePower(empty);
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(Power, ComponentsArePositiveAfterRun)
{
    const PowerBreakdown p = computePower(sampleRun());
    EXPECT_GT(p.l1, 0.0);
    EXPECT_GT(p.l2, 0.0);
    EXPECT_GT(p.llc, 0.0);
    EXPECT_GT(p.bus, 0.0);
    EXPECT_GT(p.total(), p.bus);
}

TEST(Power, ScalesWithAccessEnergy)
{
    const RunStats r = sampleRun();
    PowerParams cheap;
    PowerParams costly = cheap;
    costly.dramAccessPj *= 2;
    EXPECT_GT(computePower(r, costly).bus, computePower(r, cheap).bus);
}

TEST(Budget, EnvScalingParsesFloats)
{
    setenv("HERMES_SIM_SCALE", "2.0", 1);
    const SimBudget b = SimBudget::fromEnv(100, 200);
    EXPECT_EQ(b.warmupInstrs, 200u);
    EXPECT_EQ(b.simInstrs, 400u);
    setenv("HERMES_SIM_SCALE", "bogus", 1);
    const SimBudget c = SimBudget::fromEnv(100, 200);
    EXPECT_EQ(c.simInstrs, 200u);
    unsetenv("HERMES_SIM_SCALE");
    const SimBudget d = SimBudget::fromEnv(100, 200);
    EXPECT_EQ(d.simInstrs, 200u);
}

} // namespace
} // namespace hermes
