// Tests for the work-stealing sweep engine: determinism at any thread
// count, index-keyed seeding, edge cases and the CSV/JSON dumps.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/report.hh"
#include "sweep/sweep.hh"

namespace hermes
{
namespace
{

SimBudget
tinyBudget()
{
    SimBudget b;
    b.warmupInstrs = 2'000;
    b.simInstrs = 8'000;
    return b;
}

/** A (2 configs x 3 traces) grid, small enough for unit tests. */
std::vector<sweep::GridPoint>
smallGrid()
{
    const SimBudget b = tinyBudget();
    SystemConfig nopf = SystemConfig::baseline(1);
    SystemConfig pythia = nopf;
    pythia.prefetcher = PrefetcherKind::Pythia;

    const auto traces = quickSuite();
    std::vector<sweep::GridPoint> grid;
    for (int c = 0; c < 2; ++c) {
        const SystemConfig &cfg = c == 0 ? nopf : pythia;
        for (int t = 0; t < 3; ++t)
            grid.push_back({"cfg" + std::to_string(c) + "." +
                                traces[t].name(),
                            cfg,
                            {traces[t]},
                            b});
    }
    return grid;
}

std::string
csvAt(int threads, sweep::SeedPolicy policy = sweep::SeedPolicy::Keep)
{
    sweep::SweepOptions opts;
    opts.threads = threads;
    opts.seedPolicy = policy;
    return sweep::toCsv(sweep::SweepEngine(opts).run(smallGrid()));
}

TEST(Sweep, EmptyGridReturnsEmpty)
{
    sweep::SweepOptions opts;
    opts.threads = 4;
    const auto results = sweep::SweepEngine(opts).run({});
    EXPECT_TRUE(results.empty());
}

TEST(Sweep, SinglePointWithManyThreads)
{
    sweep::SweepOptions opts;
    opts.threads = 8;
    std::vector<sweep::GridPoint> grid = {
        {"solo", SystemConfig::baseline(1), {quickSuite()[0]},
         tinyBudget()}};
    const auto results = sweep::SweepEngine(opts).run(grid);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].index, 0u);
    EXPECT_EQ(results[0].label, "solo");
    EXPECT_GT(results[0].stats.instrsRetired(), 0u);
    EXPECT_GE(results[0].wallSeconds, 0.0);
}

TEST(Sweep, ResultsIdenticalAtAnyThreadCount)
{
    const std::string serial = csvAt(1);
    EXPECT_EQ(serial, csvAt(2));
    EXPECT_EQ(serial, csvAt(5));
    EXPECT_EQ(serial, csvAt(16));
}

TEST(Sweep, PerPointSeedingIsThreadCountInvariant)
{
    const std::string serial = csvAt(1, sweep::SeedPolicy::PerPoint);
    EXPECT_EQ(serial, csvAt(4, sweep::SeedPolicy::PerPoint));
}

TEST(Sweep, RepeatedRunsAreDeterministic)
{
    EXPECT_EQ(csvAt(3), csvAt(3));
}

TEST(Sweep, PointSeedIsKeyedByIndex)
{
    const std::uint64_t a = sweep::SweepEngine::pointSeed(1, 0);
    const std::uint64_t b = sweep::SweepEngine::pointSeed(1, 1);
    const std::uint64_t c = sweep::SweepEngine::pointSeed(2, 0);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    // Stable across calls: the derivation is pure.
    EXPECT_EQ(a, sweep::SweepEngine::pointSeed(1, 0));
}

TEST(Sweep, ProgressReportsEveryPoint)
{
    std::atomic<std::size_t> calls{0};
    std::size_t last_done = 0, last_total = 0;
    sweep::SweepOptions opts;
    opts.threads = 3;
    opts.onProgress = [&](std::size_t done, std::size_t total,
                          const sweep::PointResult &r) {
        ++calls;
        last_done = done;
        last_total = total;
        EXPECT_FALSE(r.label.empty());
    };
    const auto grid = smallGrid();
    sweep::SweepEngine(opts).run(grid);
    EXPECT_EQ(calls.load(), grid.size());
    EXPECT_EQ(last_done, grid.size());
    EXPECT_EQ(last_total, grid.size());
}

TEST(Sweep, SkipMaskRunsOnlySelectedPoints)
{
    const auto grid = smallGrid();
    const auto full = sweep::SweepEngine().run(grid);

    std::vector<bool> skip(grid.size(), false);
    skip[1] = skip[4] = true;
    const auto partial = sweep::SweepEngine().run(grid, skip);
    ASSERT_EQ(partial.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        // Identity is filled either way; skipped slots stay empty.
        EXPECT_EQ(partial[i].index, i);
        EXPECT_EQ(partial[i].label, grid[i].label);
        if (skip[i]) {
            EXPECT_EQ(partial[i].stats.instrsRetired(), 0u);
        } else {
            // Seeds are keyed by grid index, so a point simulates
            // identically with or without its neighbours.
            EXPECT_EQ(statsFingerprint(partial[i].stats),
                      statsFingerprint(full[i].stats));
        }
    }
    EXPECT_THROW(
        sweep::SweepEngine().run(grid, std::vector<bool>(2, false)),
        std::invalid_argument);
}

TEST(Sweep, SkipAllRunsNothing)
{
    const auto grid = smallGrid();
    std::size_t progress_calls = 0;
    sweep::SweepOptions opts;
    opts.onProgress = [&](std::size_t, std::size_t,
                          const sweep::PointResult &) {
        ++progress_calls;
    };
    const auto results = sweep::SweepEngine(opts).run(
        grid, std::vector<bool>(grid.size(), true));
    EXPECT_EQ(results.size(), grid.size());
    EXPECT_EQ(progress_calls, 0u);
}

TEST(Sweep, ThreadsZeroMeansHardwareConcurrency)
{
    // The documented contract for --threads 0 (and the default).
    sweep::SweepOptions opts;
    opts.threads = 0;
    const sweep::SweepEngine eng(opts);
    const unsigned hw = std::thread::hardware_concurrency();
    const int expected = hw ? static_cast<int>(hw) : 1;
    EXPECT_EQ(eng.effectiveThreads(100000), expected);
    // Never more threads than points.
    EXPECT_EQ(eng.effectiveThreads(1), 1);
    EXPECT_EQ(eng.effectiveThreads(0), 1);
}

TEST(Sweep, SweepFingerprintKeyedOnResults)
{
    const auto results = sweep::SweepEngine().run(smallGrid());
    const std::uint64_t base = sweep::sweepFingerprint(results);
    EXPECT_EQ(base, sweep::sweepFingerprint(results));
    auto tweaked = results;
    tweaked[0].stats.simCycles += 1;
    EXPECT_NE(sweep::sweepFingerprint(tweaked), base);
    EXPECT_NE(sweep::sweepFingerprint({}), base);
}

TEST(Sweep, ProgressMeterReportsRateAndEta)
{
    const sweep::ProgressMeter meter;
    const std::string start = meter.line(0, 10, "warm");
    EXPECT_NE(start.find("[0/10]"), std::string::npos);
    EXPECT_EQ(start.find("pts/s"), std::string::npos);
    const std::string mid = meter.line(5, 10, "half");
    EXPECT_NE(mid.find("[5/10]"), std::string::npos);
    EXPECT_NE(mid.find("pts/s"), std::string::npos);
    EXPECT_NE(mid.find("eta"), std::string::npos);
}

TEST(Sweep, MultiCoreMixPointRuns)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    const auto traces = quickSuite();
    sweep::GridPoint p{
        "mix", cfg, {traces[0], traces[1]}, tinyBudget()};
    const auto results = sweep::SweepEngine().run({p});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].stats.core.size(), 2u);
}

TEST(Sweep, PointExceptionPropagatesToCaller)
{
    // 2-core config with a single trace: simulateMix rejects it.
    SystemConfig cfg = SystemConfig::baseline(2);
    sweep::GridPoint bad{"bad", cfg, {quickSuite()[0]}, tinyBudget()};
    sweep::SweepOptions opts;
    opts.threads = 2;
    EXPECT_THROW(sweep::SweepEngine(opts).run({bad, bad}),
                 std::invalid_argument);
}

TEST(Sweep, ErrorStopsDispatchOfQueuedPoints)
{
    // After a point fails, the run is doomed to rethrow — queued
    // points must be abandoned, not simulated and discarded. Serial
    // execution makes the assertion deterministic.
    SystemConfig bad_cfg = SystemConfig::baseline(2);
    sweep::GridPoint bad{"bad", bad_cfg, {quickSuite()[0]},
                         tinyBudget()};
    std::vector<sweep::GridPoint> grid = smallGrid();
    grid.insert(grid.begin(), bad);

    std::size_t progress_calls = 0;
    sweep::SweepOptions opts;
    opts.threads = 1;
    opts.onProgress = [&](std::size_t, std::size_t,
                          const sweep::PointResult &) {
        ++progress_calls;
    };
    EXPECT_THROW(sweep::SweepEngine(opts).run(grid),
                 std::invalid_argument);
    EXPECT_EQ(progress_calls, 1u);
}

TEST(SweepOutput, CsvHasHeaderAndOneRowPerPoint)
{
    const auto results = sweep::SweepEngine().run(smallGrid());
    const std::string csv = sweep::toCsv(results);
    const auto lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines), results.size() + 1);
    EXPECT_EQ(csv.rfind("label,", 0), 0u);
}

TEST(SweepOutput, JsonShape)
{
    EXPECT_EQ(sweep::toJson({}), "[]");
    const auto results = sweep::SweepEngine().run(smallGrid());
    const std::string json = sweep::toJson(results);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    std::size_t labels = 0, pos = 0;
    while ((pos = json.find("\"label\":", pos)) != std::string::npos) {
        ++labels;
        pos += 1;
    }
    EXPECT_EQ(labels, results.size());
}

} // namespace
} // namespace hermes
