// Tests for the streaming trace layer: compressed (gzip/xz)
// round trips, ChampSim import/export determinism — including the
// acceptance property that a captured workload converted to
// compressed ChampSim replays with a statsFingerprint byte-identical
// to the direct synthetic run — chunk-boundary and EOF-loop behavior,
// corruption/truncation robustness, the bounded-memory guarantee and
// crash-safe publication.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"
#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"

namespace hermes
{
namespace
{

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Deterministic fixed-pattern workload (no RNG, easy to verify). */
class PatternWorkload : public Workload
{
  public:
    explicit PatternWorkload(std::uint64_t period) : period_(period) {}

    const std::string &name() const override { return name_; }
    const std::string &category() const override { return name_; }

    TraceInstr
    next() override
    {
        const std::uint64_t i = pos_ % period_;
        ++pos_;
        TraceInstr t;
        t.pc = 0x400000 + i * 4;
        switch (i % 4) {
          case 0:
            t.kind = InstrKind::Load;
            t.vaddr = 0x10000 + i * 64;
            t.depDistance = static_cast<std::uint32_t>(i % 7);
            break;
          case 1:
            t.kind = InstrKind::Alu;
            break;
          case 2:
            t.kind = InstrKind::Store;
            t.vaddr = 0x80000 + i * 8;
            break;
          default:
            t.kind = InstrKind::Branch;
            t.branchTaken = i % 8 == 3;
            break;
        }
        return t;
    }

    std::unique_ptr<Workload>
    clone(std::uint64_t) const override
    {
        return std::make_unique<PatternWorkload>(period_);
    }

  private:
    std::string name_ = "pattern";
    std::uint64_t period_;
    std::uint64_t pos_ = 0;
};

class TraceReaderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = ::testing::TempDir() + "hermes_reader_test";
    }

    void
    TearDown() override
    {
        for (const std::string &p : created_)
            std::remove(p.c_str());
    }

    std::string
    path(const std::string &suffix)
    {
        const std::string p = base_ + suffix;
        created_.push_back(p);
        return p;
    }

    std::string base_;
    std::vector<std::string> created_;
};

/** Capture @p count instructions and verify an identical replay. */
void
expectRoundTrip(const std::string &path, std::uint64_t count)
{
    PatternWorkload source(1000);
    ASSERT_EQ(0u, writeTraceFile(path, source, count, "pattern", "TEST"));
    FileWorkload replay(path);
    EXPECT_EQ(replay.recordCount(), count);
    PatternWorkload reference(1000);
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceInstr a = reference.next();
        const TraceInstr b = replay.next();
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(a.vaddr, b.vaddr) << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(a.branchTaken, b.branchTaken) << i;
        ASSERT_EQ(a.depDistance, b.depDistance) << i;
    }
}

TEST_F(TraceReaderTest, GzipRoundTrip)
{
    if (!compressionSupported(Compression::Gzip))
        GTEST_SKIP() << "zlib not compiled in";
    expectRoundTrip(path(".hrm.gz"), 20'000);
}

TEST_F(TraceReaderTest, XzRoundTrip)
{
    if (!compressionSupported(Compression::Xz))
        GTEST_SKIP() << "liblzma not compiled in";
    expectRoundTrip(path(".hrm.xz"), 20'000);
}

TEST_F(TraceReaderTest, CompressionDetectedByMagicNotName)
{
    if (!compressionSupported(Compression::Gzip))
        GTEST_SKIP() << "zlib not compiled in";
    // Write gzip bytes, then strip the ".gz" from the name: the reader
    // must still decompress (magic sniffing), since real trace
    // collections are full of misnamed files.
    const std::string gz = path(".hrm.gz");
    const std::string plain = path(".renamed.hrm");
    PatternWorkload source(100);
    ASSERT_EQ(0u, writeTraceFile(gz, source, 500, "pattern", "TEST"));
    ASSERT_EQ(0, std::rename(gz.c_str(), plain.c_str()));
    FileWorkload replay(plain);
    EXPECT_EQ(replay.recordCount(), 500u);
    EXPECT_EQ(replay.name(), "pattern");
}

TEST_F(TraceReaderTest, ChampSimExactRoundTrip)
{
    // Every suite-relevant feature (kinds, taken bits, load deps up to
    // 255) must survive HRMTRACE -> ChampSim -> replay unchanged.
    const std::string cs = path(".champsimtrace");
    const TraceSpec spec = findTrace("spec06.mcf_like.0");
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(cs, *source, 5000, spec.name(),
                                 spec.category()));
    FileWorkload replay(cs);
    EXPECT_EQ(replay.recordCount(), 5000u);
    auto reference = spec.make();
    for (int i = 0; i < 5000; ++i) {
        const TraceInstr a = reference->next();
        const TraceInstr b = replay.next();
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind))
            << i;
        ASSERT_EQ(a.vaddr, b.vaddr) << i;
        ASSERT_EQ(a.branchTaken, b.branchTaken) << i;
        ASSERT_EQ(a.depDistance, b.depDistance) << i;
    }
}

TEST_F(TraceReaderTest, ChampSimGzipReplayMatchesSyntheticFingerprint)
{
    // The acceptance property for the whole ingestion pipeline: a
    // captured suite workload exported to gzip'd ChampSim format and
    // replayed through the streaming reader must simulate to a
    // statsFingerprint byte-identical to running the synthetic
    // generator directly.
    if (!compressionSupported(Compression::Gzip))
        GTEST_SKIP() << "zlib not compiled in";
    const std::string cs = path(".champsimtrace.gz");
    const TraceSpec spec = findTrace("spec06.mcf_like.0");
    const SimBudget budget{2000, 8000};
    // The core fetches ahead of the measured window by up to the ROB
    // depth; capture enough margin that replay never wraps early.
    const std::uint64_t capture =
        budget.warmupInstrs + budget.simInstrs + 4096;
    auto source = spec.make();
    ASSERT_EQ(0u, writeTraceFile(cs, *source, capture, spec.name(),
                                 spec.category()));

    TraceSpec file_spec;
    file_spec.source = TraceSource::File;
    file_spec.filePath = cs;
    file_spec.params.name = spec.name();
    file_spec.params.category = spec.category();

    const SystemConfig cfg = SystemConfig::baseline(1);
    const RunStats direct = simulateOne(cfg, spec, budget);
    const RunStats replayed = simulateOne(cfg, file_spec, budget);
    EXPECT_EQ(fingerprintHex(statsFingerprint(direct)),
              fingerprintHex(statsFingerprint(replayed)));
}

TEST_F(TraceReaderTest, LoopBoundaryStraddlesChunks)
{
    // 24-byte records do not divide the reader's chunk size, so a
    // multi-chunk trace exercises records straddling refills; looping
    // twice through must reproduce the stream exactly.
    const std::string p = path(".hrm");
    const std::uint64_t n = 30'000;
    PatternWorkload source(997);
    ASSERT_EQ(0u, writeTraceFile(p, source, n, "pattern", "TEST"));
    FileWorkload replay(p);
    std::vector<TraceInstr> first;
    first.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        first.push_back(replay.next());
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceInstr t = replay.next();
        ASSERT_EQ(t.pc, first[i].pc) << i;
        ASSERT_EQ(t.vaddr, first[i].vaddr) << i;
        ASSERT_EQ(t.depDistance, first[i].depDistance) << i;
    }
}

TEST_F(TraceReaderTest, TruncatedGzipThrows)
{
    if (!compressionSupported(Compression::Gzip))
        GTEST_SKIP() << "zlib not compiled in";
    const std::string p = path(".hrm.gz");
    PatternWorkload source(100);
    ASSERT_EQ(0u, writeTraceFile(p, source, 10'000, "pattern", "TEST"));
    std::ifstream in(p, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
    out.close();

    // The header may decompress fine; the damage must surface as an
    // exception while streaming records — never a silent short trace.
    EXPECT_THROW(
        {
            TraceReader reader(openByteSource(p), formatForPath(p));
            TraceInstr t;
            while (reader.next(t)) {
            }
        },
        std::runtime_error);
}

TEST_F(TraceReaderTest, GzipGarbageThrows)
{
    if (!compressionSupported(Compression::Gzip))
        GTEST_SKIP() << "zlib not compiled in";
    const std::string p = path(".hrm.gz");
    std::ofstream out(p, std::ios::binary);
    const unsigned char magic[2] = {0x1f, 0x8b};
    out.write(reinterpret_cast<const char *>(magic), 2);
    out << "this is not a deflate stream, not even close............";
    out.close();
    EXPECT_THROW(
        {
            TraceReader reader(openByteSource(p), formatForPath(p));
            TraceInstr t;
            while (reader.next(t)) {
            }
        },
        std::runtime_error);
}

TEST_F(TraceReaderTest, ChampSimRejectsPartialRecord)
{
    const std::string p = path(".champsimtrace");
    std::ofstream out(p, std::ios::binary);
    const std::string data(64 * 3 + 17, '\0'); // not a multiple of 64
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.close();
    EXPECT_THROW(TraceReader(openByteSource(p), formatForPath(p)),
                 std::runtime_error);
}

TEST_F(TraceReaderTest, ChampSimMultiMemopExpansion)
{
    // Hand-crafted records pin the deterministic expansion order:
    // source-memory loads (slot order), then branch/ALU, then stores —
    // and register-carried load dependences.
    const std::string p = path(".champsimtrace");
    unsigned char recs[3][64];
    std::memset(recs, 0, sizeof(recs));

    auto put64 = [](unsigned char *at, std::uint64_t v) {
        std::memcpy(at, &v, sizeof(v));
    };
    // Record 0: ALU writing register 5 (no memory, not a branch).
    put64(recs[0] + 0, 0x1000);
    recs[0][10] = 5; // destRegs[0]
    // Record 1: two loads + one store; first load depends on reg 5.
    put64(recs[1] + 0, 0x1004);
    recs[1][12] = 5;            // srcRegs[0]
    put64(recs[1] + 32, 0xA000); // srcMem[0]
    put64(recs[1] + 40, 0xB000); // srcMem[1]
    put64(recs[1] + 16, 0xC000); // destMem[0]
    // Record 2: taken branch.
    put64(recs[2] + 0, 0x1008);
    recs[2][8] = 1; // is_branch
    recs[2][9] = 1; // branch_taken

    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char *>(recs), sizeof(recs));
    out.close();

    TraceReader reader(openByteSource(p), formatForPath(p));
    std::vector<TraceInstr> got;
    TraceInstr t;
    while (reader.next(t))
        got.push_back(t);

    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(static_cast<int>(got[0].kind),
              static_cast<int>(InstrKind::Alu)); // record 0
    EXPECT_EQ(static_cast<int>(got[1].kind),
              static_cast<int>(InstrKind::Load));
    EXPECT_EQ(got[1].vaddr, 0xA000u);
    // Load 1 is instruction #2 (1-based); the reg-5 writer was #1.
    EXPECT_EQ(got[1].depDistance, 1u);
    EXPECT_EQ(static_cast<int>(got[2].kind),
              static_cast<int>(InstrKind::Load));
    EXPECT_EQ(got[2].vaddr, 0xB000u);
    // ChampSim registers are per-record, not per-memory-slot, so the
    // second load carries the same reg-5 dependence (now 2 back).
    EXPECT_EQ(got[2].depDistance, 2u);
    EXPECT_EQ(static_cast<int>(got[3].kind),
              static_cast<int>(InstrKind::Store));
    EXPECT_EQ(got[3].vaddr, 0xC000u);
    EXPECT_EQ(static_cast<int>(got[4].kind),
              static_cast<int>(InstrKind::Branch));
    EXPECT_TRUE(got[4].branchTaken);

    // rewind() must reset the dependence tracker too: an identical
    // second pass proves replay loops are deterministic.
    reader.rewind();
    std::vector<TraceInstr> again;
    while (reader.next(t))
        again.push_back(t);
    ASSERT_EQ(again.size(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(again[i].vaddr, got[i].vaddr) << i;
        EXPECT_EQ(again[i].depDistance, got[i].depDistance) << i;
    }
}

TEST_F(TraceReaderTest, ReplayHoldsBoundedMemory)
{
    // A trace far larger than any reader buffer must replay while the
    // workload's resident buffering stays fixed (the bounded-memory
    // contract that lets multi-GB traces stream).
    const std::string p = path(".hrm");
    const std::uint64_t n = 1'500'000; // 36MB of records
    PatternWorkload source(4096);
    ASSERT_EQ(0u, writeTraceFile(p, source, n, "pattern", "TEST"));

    FileWorkload replay(p);
    for (int i = 0; i < 100'000; ++i)
        static_cast<void>(replay.next());
    EXPECT_LT(replay.residentBytes(), 1u << 20)
        << "streaming replay must not scale memory with trace length";
}

TEST_F(TraceReaderTest, AbandonedWriterLeavesNoResidue)
{
    // Dropping a writer without finish() (simulated crash) must leave
    // neither the destination nor the hidden temporary behind.
    const std::string p = path(".hrm");
    const std::string tmp = p + ".tmp." + std::to_string(::getpid());
    {
        auto writer = openTraceWriter(p, TraceFormat::Hrmtrace,
                                      Compression::None, 100, "crash",
                                      "TEST");
        TraceInstr t;
        t.kind = InstrKind::Load;
        t.vaddr = 0x1000;
        for (int i = 0; i < 50; ++i)
            writer->append(t);
        EXPECT_TRUE(fileExists(tmp));
        EXPECT_FALSE(fileExists(p));
    }
    EXPECT_FALSE(fileExists(tmp));
    EXPECT_FALSE(fileExists(p));
}

TEST_F(TraceReaderTest, WriterCountMismatchThrows)
{
    const std::string p = path(".hrm");
    auto writer = openTraceWriter(p, TraceFormat::Hrmtrace,
                                  Compression::None, 100, "short",
                                  "TEST");
    TraceInstr t;
    for (int i = 0; i < 99; ++i)
        writer->append(t);
    EXPECT_THROW(writer->finish(), std::runtime_error);
    EXPECT_FALSE(fileExists(p));
}

} // namespace
} // namespace hermes
