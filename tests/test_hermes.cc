// Tests for the Hermes controller: prediction plumbing, issue-latency
// timing, predictor-only mode and confusion-matrix accounting.

#include <gtest/gtest.h>

#include "dram/dram.hh"
#include "hermes/hermes.hh"
#include "predictor/offchip_pred.hh"
#include "test_helpers.hh"

namespace hermes
{
namespace
{

using test::loadReq;
using test::RecordingClient;

/** Predictor stub with a scripted answer. */
class FixedPredictor : public OffChipPredictor
{
  public:
    explicit FixedPredictor(bool answer) : answer_(answer) {}

    const char *name() const override { return "fixed"; }

    bool
    predict(Addr, Addr, PredMeta &meta) override
    {
        ++predicts;
        meta = PredMeta{};
        meta.valid = true;
        meta.predictedOffChip = answer_;
        return answer_;
    }

    void
    train(Addr, Addr, const PredMeta &, bool went) override
    {
        ++trains;
        lastOutcome = went;
    }

    std::uint64_t storageBits() const override { return 1; }

    bool answer_;
    unsigned predicts = 0;
    unsigned trains = 0;
    bool lastOutcome = false;
};

struct HermesHarness
{
    explicit HermesHarness(bool predict_offchip, bool issue = true,
                           Cycle latency = 6)
        : dram(DramParams{}), predictor(predict_offchip),
          hermes(HermesParams{issue, latency}, &predictor, &dram)
    {
        dram.setClient(0, &client);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            ++now;
            dram.tick(now);
            hermes.tick(now);
        }
    }

    DramController dram;
    RecordingClient client;
    FixedPredictor predictor;
    HermesController hermes;
    Cycle now = 0;
};

TEST(Hermes, IssuesAfterConfiguredLatency)
{
    HermesHarness h(true, true, 6);
    PredMeta meta;
    EXPECT_TRUE(h.hermes.predictLoad(0x400000, 0x1000, meta));
    h.hermes.onLoadIssued(loadReq(0x1000), meta, h.now);
    h.run(5);
    EXPECT_EQ(h.dram.stats().hermesIssued, 0u); // not yet (latency 6)
    h.run(2);
    EXPECT_EQ(h.dram.stats().hermesIssued, 1u);
    EXPECT_EQ(h.hermes.stats().requestsScheduled, 1u);
}

TEST(Hermes, NegativePredictionIssuesNothing)
{
    HermesHarness h(false);
    PredMeta meta;
    EXPECT_FALSE(h.hermes.predictLoad(0x400000, 0x1000, meta));
    h.hermes.onLoadIssued(loadReq(0x1000), meta, h.now);
    h.run(50);
    EXPECT_EQ(h.dram.stats().hermesIssued, 0u);
    EXPECT_EQ(h.hermes.stats().predictedOffChip, 0u);
}

TEST(Hermes, PredictorOnlyModeNeverIssues)
{
    HermesHarness h(true, /*issue=*/false);
    PredMeta meta;
    EXPECT_TRUE(h.hermes.predictLoad(0x400000, 0x1000, meta));
    h.hermes.onLoadIssued(loadReq(0x1000), meta, h.now);
    h.run(50);
    EXPECT_EQ(h.dram.stats().hermesIssued, 0u);
    // But predictions and training still counted.
    h.hermes.onLoadComplete(0x400000, 0x1000, meta, true, false);
    EXPECT_EQ(h.hermes.stats().pred.truePositives, 1u);
    EXPECT_EQ(h.predictor.trains, 1u);
}

TEST(Hermes, ConfusionMatrixAllQuadrants)
{
    HermesHarness h(true);
    PredMeta pos;
    pos.valid = true;
    pos.predictedOffChip = true;
    PredMeta neg;
    neg.valid = true;
    neg.predictedOffChip = false;

    h.hermes.onLoadComplete(0, 0, pos, true, true);   // TP
    h.hermes.onLoadComplete(0, 0, pos, false, false); // FP
    h.hermes.onLoadComplete(0, 0, neg, true, false);  // FN
    h.hermes.onLoadComplete(0, 0, neg, false, false); // TN
    const auto &p = h.hermes.stats().pred;
    EXPECT_EQ(p.truePositives, 1u);
    EXPECT_EQ(p.falsePositives, 1u);
    EXPECT_EQ(p.falseNegatives, 1u);
    EXPECT_EQ(p.trueNegatives, 1u);
    EXPECT_EQ(h.hermes.stats().loadsServedByHermes, 1u);
}

TEST(Hermes, InvalidMetaIgnored)
{
    HermesHarness h(true);
    PredMeta invalid; // valid == false
    h.hermes.onLoadComplete(0, 0, invalid, true, false);
    EXPECT_EQ(h.hermes.stats().pred.total(), 0u);
    EXPECT_EQ(h.predictor.trains, 0u);
}

TEST(Hermes, TrainingForwardsTrueOutcome)
{
    HermesHarness h(true);
    PredMeta meta;
    h.hermes.predictLoad(0x400000, 0x1000, meta);
    h.hermes.onLoadComplete(0x400000, 0x1000, meta, true, false);
    EXPECT_TRUE(h.predictor.lastOutcome);
    h.hermes.predictLoad(0x400000, 0x2000, meta);
    h.hermes.onLoadComplete(0x400000, 0x2000, meta, false, false);
    EXPECT_FALSE(h.predictor.lastOutcome);
}

TEST(Hermes, NoPredictorMeansNoPredictions)
{
    DramController dram{DramParams{}};
    HermesController ctl(HermesParams{true, 6}, nullptr, &dram);
    PredMeta meta;
    EXPECT_FALSE(ctl.predictLoad(0x400000, 0x1000, meta));
    EXPECT_FALSE(meta.valid);
    ctl.onLoadComplete(0x400000, 0x1000, meta, true, false);
    EXPECT_EQ(ctl.stats().pred.total(), 0u);
}

TEST(Hermes, ZeroLatencyIssuesNextTick)
{
    HermesHarness h(true, true, 0);
    PredMeta meta;
    h.hermes.predictLoad(0x400000, 0x1000, meta);
    h.hermes.onLoadIssued(loadReq(0x1000), meta, h.now);
    h.run(1);
    EXPECT_EQ(h.dram.stats().hermesIssued, 1u);
}

TEST(Hermes, MultipleRequestsDrainInOrder)
{
    HermesHarness h(true, true, 4);
    PredMeta meta;
    meta.valid = true;
    meta.predictedOffChip = true;
    for (int i = 0; i < 5; ++i)
        h.hermes.onLoadIssued(loadReq(0x1000 + i * 0x1000), meta,
                              h.now + i);
    h.run(12);
    EXPECT_EQ(h.hermes.stats().requestsScheduled, 5u);
    EXPECT_EQ(h.dram.stats().hermesIssued, 5u);
}

} // namespace
} // namespace hermes
