// Unit tests for src/common: RNG determinism, saturating counters,
// statistics helpers and the config parser.

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace hermes
{
namespace
{

TEST(Types, AddressDecomposition)
{
    const Addr a = 0x12345678;
    EXPECT_EQ(lineAddr(a), a >> 6);
    EXPECT_EQ(pageNumber(a), a >> 12);
    EXPECT_EQ(byteOffsetInLine(a), a & 63u);
    EXPECT_EQ(lineOffsetInPage(a), (a >> 6) & 63u);
    EXPECT_EQ(wordOffsetInLine(a), (a >> 2) & 15u);
}

TEST(Types, GeometryConstants)
{
    EXPECT_EQ(kBlockSize, 64u);
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kBlocksPerPage, 64u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentred)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SignedSatCounter, SaturatesAtFiveBitBounds)
{
    SignedSatCounter c(5);
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 15);
    EXPECT_TRUE(c.saturatedHigh());
    for (int i = 0; i < 100; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), -16);
    EXPECT_TRUE(c.saturatedLow());
}

TEST(SignedSatCounter, InitialClamped)
{
    SignedSatCounter c(3, 100);
    EXPECT_EQ(c.value(), 3);
    SignedSatCounter d(3, -100);
    EXPECT_EQ(d.value(), -4);
}

TEST(SatCounter, TwoBitHysteresis)
{
    SatCounter c(2);
    EXPECT_FALSE(c.taken());
    c.increment();
    EXPECT_FALSE(c.taken()); // value 1, max 3
    c.increment();
    EXPECT_TRUE(c.taken());
    c.increment();
    c.increment();
    EXPECT_EQ(c.value(), 3u);
    c.decrement();
    c.decrement();
    EXPECT_FALSE(c.taken());
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, BoxStatsBasic)
{
    const BoxStats b = boxStats({1, 2, 3, 4, 100});
    EXPECT_DOUBLE_EQ(b.min, 1);
    EXPECT_DOUBLE_EQ(b.max, 100);
    EXPECT_DOUBLE_EQ(b.median, 3);
    EXPECT_DOUBLE_EQ(b.mean, 22);
    EXPECT_LE(b.whiskerHigh, 100);
}

TEST(Stats, SummaryAccumulates)
{
    Summary s;
    s.add(3);
    s.add(1);
    s.add(2);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, HistogramBinsAndOverflow)
{
    Histogram h(0, 10, 5);
    h.add(-1);
    h.add(0);
    h.add(9.99);
    h.add(10);
    h.add(5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Config, ParsesKeyValueLines)
{
    Config c;
    EXPECT_TRUE(c.parse("a = 1\n# comment\n\nb=hello\nc = 2.5\nd=true\n"));
    EXPECT_EQ(c.get("a", std::int64_t{0}), 1);
    EXPECT_EQ(c.get("b", std::string("x")), "hello");
    EXPECT_DOUBLE_EQ(c.get("c", 0.0), 2.5);
    EXPECT_TRUE(c.get("d", false));
    EXPECT_FALSE(c.contains("nope"));
}

TEST(Config, MalformedLinesReported)
{
    Config c;
    EXPECT_FALSE(c.parse("novalue\n"));
    EXPECT_FALSE(c.parse("= 3\n"));
}

TEST(Config, ArgsParsing)
{
    const char *argv[] = {"prog", "--traces=3", "name=x", "ignored"};
    Config c;
    c.parseArgs(4, argv);
    EXPECT_EQ(c.get("traces", std::int64_t{0}), 3);
    EXPECT_EQ(c.get("name", std::string()), "x");
}

TEST(Config, LaterKeysOverride)
{
    Config c;
    c.parse("k = 1\nk = 2\n");
    EXPECT_EQ(c.get("k", std::int64_t{0}), 2);
    EXPECT_EQ(c.keys().size(), 1u);
}

} // namespace
} // namespace hermes
